# Empty dependencies file for dpx10_net.
# This may be replaced when dependencies are built.
