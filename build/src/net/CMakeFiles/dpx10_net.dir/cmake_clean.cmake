file(REMOVE_RECURSE
  "CMakeFiles/dpx10_net.dir/link_model.cpp.o"
  "CMakeFiles/dpx10_net.dir/link_model.cpp.o.d"
  "CMakeFiles/dpx10_net.dir/traffic.cpp.o"
  "CMakeFiles/dpx10_net.dir/traffic.cpp.o.d"
  "libdpx10_net.a"
  "libdpx10_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx10_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
