file(REMOVE_RECURSE
  "libdpx10_net.a"
)
