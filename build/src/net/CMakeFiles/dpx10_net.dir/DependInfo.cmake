
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/link_model.cpp" "src/net/CMakeFiles/dpx10_net.dir/link_model.cpp.o" "gcc" "src/net/CMakeFiles/dpx10_net.dir/link_model.cpp.o.d"
  "/root/repo/src/net/traffic.cpp" "src/net/CMakeFiles/dpx10_net.dir/traffic.cpp.o" "gcc" "src/net/CMakeFiles/dpx10_net.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpx10_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
