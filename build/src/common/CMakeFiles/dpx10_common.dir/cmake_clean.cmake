file(REMOVE_RECURSE
  "CMakeFiles/dpx10_common.dir/logging.cpp.o"
  "CMakeFiles/dpx10_common.dir/logging.cpp.o.d"
  "CMakeFiles/dpx10_common.dir/options.cpp.o"
  "CMakeFiles/dpx10_common.dir/options.cpp.o.d"
  "CMakeFiles/dpx10_common.dir/strings.cpp.o"
  "CMakeFiles/dpx10_common.dir/strings.cpp.o.d"
  "libdpx10_common.a"
  "libdpx10_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx10_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
