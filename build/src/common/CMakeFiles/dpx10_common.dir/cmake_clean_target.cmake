file(REMOVE_RECURSE
  "libdpx10_common.a"
)
