# Empty dependencies file for dpx10_common.
# This may be replaced when dependencies are built.
