# Empty dependencies file for dpx10_baseline.
# This may be replaced when dependencies are built.
