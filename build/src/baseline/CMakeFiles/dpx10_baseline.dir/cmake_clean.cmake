file(REMOVE_RECURSE
  "CMakeFiles/dpx10_baseline.dir/native_swlag.cpp.o"
  "CMakeFiles/dpx10_baseline.dir/native_swlag.cpp.o.d"
  "libdpx10_baseline.a"
  "libdpx10_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx10_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
