file(REMOVE_RECURSE
  "libdpx10_baseline.a"
)
