file(REMOVE_RECURSE
  "libdpx10_sim.a"
)
