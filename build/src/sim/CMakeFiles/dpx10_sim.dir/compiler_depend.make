# Empty compiler generated dependencies file for dpx10_sim.
# This may be replaced when dependencies are built.
