file(REMOVE_RECURSE
  "CMakeFiles/dpx10_sim.dir/event_queue.cpp.o"
  "CMakeFiles/dpx10_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/dpx10_sim.dir/slot_pool.cpp.o"
  "CMakeFiles/dpx10_sim.dir/slot_pool.cpp.o.d"
  "libdpx10_sim.a"
  "libdpx10_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx10_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
