file(REMOVE_RECURSE
  "CMakeFiles/dpx10_apgas.dir/dist.cpp.o"
  "CMakeFiles/dpx10_apgas.dir/dist.cpp.o.d"
  "CMakeFiles/dpx10_apgas.dir/domain.cpp.o"
  "CMakeFiles/dpx10_apgas.dir/domain.cpp.o.d"
  "libdpx10_apgas.a"
  "libdpx10_apgas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx10_apgas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
