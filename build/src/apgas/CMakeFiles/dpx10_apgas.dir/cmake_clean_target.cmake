file(REMOVE_RECURSE
  "libdpx10_apgas.a"
)
