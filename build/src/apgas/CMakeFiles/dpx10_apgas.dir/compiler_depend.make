# Empty compiler generated dependencies file for dpx10_apgas.
# This may be replaced when dependencies are built.
