
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dag.cpp" "src/core/CMakeFiles/dpx10_core.dir/dag.cpp.o" "gcc" "src/core/CMakeFiles/dpx10_core.dir/dag.cpp.o.d"
  "/root/repo/src/core/dag_validate.cpp" "src/core/CMakeFiles/dpx10_core.dir/dag_validate.cpp.o" "gcc" "src/core/CMakeFiles/dpx10_core.dir/dag_validate.cpp.o.d"
  "/root/repo/src/core/patterns/registry.cpp" "src/core/CMakeFiles/dpx10_core.dir/patterns/registry.cpp.o" "gcc" "src/core/CMakeFiles/dpx10_core.dir/patterns/registry.cpp.o.d"
  "/root/repo/src/core/report_io.cpp" "src/core/CMakeFiles/dpx10_core.dir/report_io.cpp.o" "gcc" "src/core/CMakeFiles/dpx10_core.dir/report_io.cpp.o.d"
  "/root/repo/src/core/scheduling.cpp" "src/core/CMakeFiles/dpx10_core.dir/scheduling.cpp.o" "gcc" "src/core/CMakeFiles/dpx10_core.dir/scheduling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpx10_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpx10_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpx10_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apgas/CMakeFiles/dpx10_apgas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
