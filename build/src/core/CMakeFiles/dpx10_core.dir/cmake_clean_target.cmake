file(REMOVE_RECURSE
  "libdpx10_core.a"
)
