file(REMOVE_RECURSE
  "CMakeFiles/dpx10_core.dir/dag.cpp.o"
  "CMakeFiles/dpx10_core.dir/dag.cpp.o.d"
  "CMakeFiles/dpx10_core.dir/dag_validate.cpp.o"
  "CMakeFiles/dpx10_core.dir/dag_validate.cpp.o.d"
  "CMakeFiles/dpx10_core.dir/patterns/registry.cpp.o"
  "CMakeFiles/dpx10_core.dir/patterns/registry.cpp.o.d"
  "CMakeFiles/dpx10_core.dir/report_io.cpp.o"
  "CMakeFiles/dpx10_core.dir/report_io.cpp.o.d"
  "CMakeFiles/dpx10_core.dir/scheduling.cpp.o"
  "CMakeFiles/dpx10_core.dir/scheduling.cpp.o.d"
  "libdpx10_core.a"
  "libdpx10_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx10_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
