# Empty dependencies file for dpx10_core.
# This may be replaced when dependencies are built.
