file(REMOVE_RECURSE
  "CMakeFiles/dpx10_dp.dir/banded.cpp.o"
  "CMakeFiles/dpx10_dp.dir/banded.cpp.o.d"
  "CMakeFiles/dpx10_dp.dir/edit_distance.cpp.o"
  "CMakeFiles/dpx10_dp.dir/edit_distance.cpp.o.d"
  "CMakeFiles/dpx10_dp.dir/inputs.cpp.o"
  "CMakeFiles/dpx10_dp.dir/inputs.cpp.o.d"
  "CMakeFiles/dpx10_dp.dir/knapsack.cpp.o"
  "CMakeFiles/dpx10_dp.dir/knapsack.cpp.o.d"
  "CMakeFiles/dpx10_dp.dir/lcs.cpp.o"
  "CMakeFiles/dpx10_dp.dir/lcs.cpp.o.d"
  "CMakeFiles/dpx10_dp.dir/lps.cpp.o"
  "CMakeFiles/dpx10_dp.dir/lps.cpp.o.d"
  "CMakeFiles/dpx10_dp.dir/manhattan.cpp.o"
  "CMakeFiles/dpx10_dp.dir/manhattan.cpp.o.d"
  "CMakeFiles/dpx10_dp.dir/nussinov.cpp.o"
  "CMakeFiles/dpx10_dp.dir/nussinov.cpp.o.d"
  "CMakeFiles/dpx10_dp.dir/runners.cpp.o"
  "CMakeFiles/dpx10_dp.dir/runners.cpp.o.d"
  "CMakeFiles/dpx10_dp.dir/smith_waterman.cpp.o"
  "CMakeFiles/dpx10_dp.dir/smith_waterman.cpp.o.d"
  "CMakeFiles/dpx10_dp.dir/swlag.cpp.o"
  "CMakeFiles/dpx10_dp.dir/swlag.cpp.o.d"
  "libdpx10_dp.a"
  "libdpx10_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx10_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
