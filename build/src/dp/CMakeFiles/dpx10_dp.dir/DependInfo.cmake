
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/banded.cpp" "src/dp/CMakeFiles/dpx10_dp.dir/banded.cpp.o" "gcc" "src/dp/CMakeFiles/dpx10_dp.dir/banded.cpp.o.d"
  "/root/repo/src/dp/edit_distance.cpp" "src/dp/CMakeFiles/dpx10_dp.dir/edit_distance.cpp.o" "gcc" "src/dp/CMakeFiles/dpx10_dp.dir/edit_distance.cpp.o.d"
  "/root/repo/src/dp/inputs.cpp" "src/dp/CMakeFiles/dpx10_dp.dir/inputs.cpp.o" "gcc" "src/dp/CMakeFiles/dpx10_dp.dir/inputs.cpp.o.d"
  "/root/repo/src/dp/knapsack.cpp" "src/dp/CMakeFiles/dpx10_dp.dir/knapsack.cpp.o" "gcc" "src/dp/CMakeFiles/dpx10_dp.dir/knapsack.cpp.o.d"
  "/root/repo/src/dp/lcs.cpp" "src/dp/CMakeFiles/dpx10_dp.dir/lcs.cpp.o" "gcc" "src/dp/CMakeFiles/dpx10_dp.dir/lcs.cpp.o.d"
  "/root/repo/src/dp/lps.cpp" "src/dp/CMakeFiles/dpx10_dp.dir/lps.cpp.o" "gcc" "src/dp/CMakeFiles/dpx10_dp.dir/lps.cpp.o.d"
  "/root/repo/src/dp/manhattan.cpp" "src/dp/CMakeFiles/dpx10_dp.dir/manhattan.cpp.o" "gcc" "src/dp/CMakeFiles/dpx10_dp.dir/manhattan.cpp.o.d"
  "/root/repo/src/dp/nussinov.cpp" "src/dp/CMakeFiles/dpx10_dp.dir/nussinov.cpp.o" "gcc" "src/dp/CMakeFiles/dpx10_dp.dir/nussinov.cpp.o.d"
  "/root/repo/src/dp/runners.cpp" "src/dp/CMakeFiles/dpx10_dp.dir/runners.cpp.o" "gcc" "src/dp/CMakeFiles/dpx10_dp.dir/runners.cpp.o.d"
  "/root/repo/src/dp/smith_waterman.cpp" "src/dp/CMakeFiles/dpx10_dp.dir/smith_waterman.cpp.o" "gcc" "src/dp/CMakeFiles/dpx10_dp.dir/smith_waterman.cpp.o.d"
  "/root/repo/src/dp/swlag.cpp" "src/dp/CMakeFiles/dpx10_dp.dir/swlag.cpp.o" "gcc" "src/dp/CMakeFiles/dpx10_dp.dir/swlag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpx10_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpx10_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpx10_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apgas/CMakeFiles/dpx10_apgas.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dpx10_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
