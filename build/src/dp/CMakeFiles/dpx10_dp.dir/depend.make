# Empty dependencies file for dpx10_dp.
# This may be replaced when dependencies are built.
