file(REMOVE_RECURSE
  "libdpx10_dp.a"
)
