# Empty compiler generated dependencies file for fault_tolerance.
# This may be replaced when dependencies are built.
