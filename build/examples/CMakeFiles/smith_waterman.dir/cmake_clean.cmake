file(REMOVE_RECURSE
  "CMakeFiles/smith_waterman.dir/smith_waterman.cpp.o"
  "CMakeFiles/smith_waterman.dir/smith_waterman.cpp.o.d"
  "smith_waterman"
  "smith_waterman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smith_waterman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
