# Empty compiler generated dependencies file for smith_waterman.
# This may be replaced when dependencies are built.
