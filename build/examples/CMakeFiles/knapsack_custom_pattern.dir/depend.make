# Empty dependencies file for knapsack_custom_pattern.
# This may be replaced when dependencies are built.
