file(REMOVE_RECURSE
  "CMakeFiles/knapsack_custom_pattern.dir/knapsack_custom_pattern.cpp.o"
  "CMakeFiles/knapsack_custom_pattern.dir/knapsack_custom_pattern.cpp.o.d"
  "knapsack_custom_pattern"
  "knapsack_custom_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knapsack_custom_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
