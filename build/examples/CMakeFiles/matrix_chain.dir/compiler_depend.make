# Empty compiler generated dependencies file for matrix_chain.
# This may be replaced when dependencies are built.
