file(REMOVE_RECURSE
  "CMakeFiles/matrix_chain.dir/matrix_chain.cpp.o"
  "CMakeFiles/matrix_chain.dir/matrix_chain.cpp.o.d"
  "matrix_chain"
  "matrix_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
