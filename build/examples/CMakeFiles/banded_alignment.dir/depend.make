# Empty dependencies file for banded_alignment.
# This may be replaced when dependencies are built.
