file(REMOVE_RECURSE
  "CMakeFiles/banded_alignment.dir/banded_alignment.cpp.o"
  "CMakeFiles/banded_alignment.dir/banded_alignment.cpp.o.d"
  "banded_alignment"
  "banded_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banded_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
