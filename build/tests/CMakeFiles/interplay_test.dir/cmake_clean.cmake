file(REMOVE_RECURSE
  "CMakeFiles/interplay_test.dir/interplay_test.cpp.o"
  "CMakeFiles/interplay_test.dir/interplay_test.cpp.o.d"
  "interplay_test"
  "interplay_test.pdb"
  "interplay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interplay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
