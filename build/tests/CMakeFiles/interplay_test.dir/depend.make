# Empty dependencies file for interplay_test.
# This may be replaced when dependencies are built.
