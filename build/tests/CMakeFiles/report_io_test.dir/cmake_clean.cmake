file(REMOVE_RECURSE
  "CMakeFiles/report_io_test.dir/report_io_test.cpp.o"
  "CMakeFiles/report_io_test.dir/report_io_test.cpp.o.d"
  "report_io_test"
  "report_io_test.pdb"
  "report_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
