# Empty dependencies file for report_io_test.
# This may be replaced when dependencies are built.
