# Empty dependencies file for traffic_test.
# This may be replaced when dependencies are built.
