file(REMOVE_RECURSE
  "CMakeFiles/engine_common_test.dir/engine_common_test.cpp.o"
  "CMakeFiles/engine_common_test.dir/engine_common_test.cpp.o.d"
  "engine_common_test"
  "engine_common_test.pdb"
  "engine_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
