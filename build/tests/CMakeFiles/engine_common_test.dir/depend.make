# Empty dependencies file for engine_common_test.
# This may be replaced when dependencies are built.
