# Empty dependencies file for patterns_property_test.
# This may be replaced when dependencies are built.
