file(REMOVE_RECURSE
  "CMakeFiles/patterns_property_test.dir/patterns_property_test.cpp.o"
  "CMakeFiles/patterns_property_test.dir/patterns_property_test.cpp.o.d"
  "patterns_property_test"
  "patterns_property_test.pdb"
  "patterns_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patterns_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
