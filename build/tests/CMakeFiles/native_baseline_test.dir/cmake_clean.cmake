file(REMOVE_RECURSE
  "CMakeFiles/native_baseline_test.dir/native_baseline_test.cpp.o"
  "CMakeFiles/native_baseline_test.dir/native_baseline_test.cpp.o.d"
  "native_baseline_test"
  "native_baseline_test.pdb"
  "native_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
