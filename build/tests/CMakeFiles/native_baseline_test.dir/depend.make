# Empty dependencies file for native_baseline_test.
# This may be replaced when dependencies are built.
