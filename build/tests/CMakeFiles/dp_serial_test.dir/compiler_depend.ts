# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dp_serial_test.
