file(REMOVE_RECURSE
  "CMakeFiles/dp_serial_test.dir/dp_serial_test.cpp.o"
  "CMakeFiles/dp_serial_test.dir/dp_serial_test.cpp.o.d"
  "dp_serial_test"
  "dp_serial_test.pdb"
  "dp_serial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_serial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
