# Empty dependencies file for dp_serial_test.
# This may be replaced when dependencies are built.
