file(REMOVE_RECURSE
  "CMakeFiles/dag_view_test.dir/dag_view_test.cpp.o"
  "CMakeFiles/dag_view_test.dir/dag_view_test.cpp.o.d"
  "dag_view_test"
  "dag_view_test.pdb"
  "dag_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
