file(REMOVE_RECURSE
  "CMakeFiles/engine_agreement_test.dir/engine_agreement_test.cpp.o"
  "CMakeFiles/engine_agreement_test.dir/engine_agreement_test.cpp.o.d"
  "engine_agreement_test"
  "engine_agreement_test.pdb"
  "engine_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
