# Empty dependencies file for engine_agreement_test.
# This may be replaced when dependencies are built.
