# Empty dependencies file for lru_cache_test.
# This may be replaced when dependencies are built.
