file(REMOVE_RECURSE
  "CMakeFiles/lru_cache_test.dir/lru_cache_test.cpp.o"
  "CMakeFiles/lru_cache_test.dir/lru_cache_test.cpp.o.d"
  "lru_cache_test"
  "lru_cache_test.pdb"
  "lru_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lru_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
