# Empty dependencies file for slot_pool_test.
# This may be replaced when dependencies are built.
