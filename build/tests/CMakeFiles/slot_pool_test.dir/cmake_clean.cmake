file(REMOVE_RECURSE
  "CMakeFiles/slot_pool_test.dir/slot_pool_test.cpp.o"
  "CMakeFiles/slot_pool_test.dir/slot_pool_test.cpp.o.d"
  "slot_pool_test"
  "slot_pool_test.pdb"
  "slot_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slot_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
