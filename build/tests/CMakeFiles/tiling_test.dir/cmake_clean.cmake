file(REMOVE_RECURSE
  "CMakeFiles/tiling_test.dir/tiling_test.cpp.o"
  "CMakeFiles/tiling_test.dir/tiling_test.cpp.o.d"
  "tiling_test"
  "tiling_test.pdb"
  "tiling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
