# Empty compiler generated dependencies file for extra_apps_test.
# This may be replaced when dependencies are built.
