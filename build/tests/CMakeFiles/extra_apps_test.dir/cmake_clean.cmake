file(REMOVE_RECURSE
  "CMakeFiles/extra_apps_test.dir/extra_apps_test.cpp.o"
  "CMakeFiles/extra_apps_test.dir/extra_apps_test.cpp.o.d"
  "extra_apps_test"
  "extra_apps_test.pdb"
  "extra_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
