# Empty dependencies file for domain_test.
# This may be replaced when dependencies are built.
