file(REMOVE_RECURSE
  "CMakeFiles/domain_test.dir/domain_test.cpp.o"
  "CMakeFiles/domain_test.dir/domain_test.cpp.o.d"
  "domain_test"
  "domain_test.pdb"
  "domain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
