file(REMOVE_RECURSE
  "CMakeFiles/misc_test.dir/misc_test.cpp.o"
  "CMakeFiles/misc_test.dir/misc_test.cpp.o.d"
  "misc_test"
  "misc_test.pdb"
  "misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
