# Empty dependencies file for dag_validate_test.
# This may be replaced when dependencies are built.
