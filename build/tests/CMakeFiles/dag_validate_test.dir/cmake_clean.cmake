file(REMOVE_RECURSE
  "CMakeFiles/dag_validate_test.dir/dag_validate_test.cpp.o"
  "CMakeFiles/dag_validate_test.dir/dag_validate_test.cpp.o.d"
  "dag_validate_test"
  "dag_validate_test.pdb"
  "dag_validate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_validate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
