# Empty compiler generated dependencies file for link_model_test.
# This may be replaced when dependencies are built.
