file(REMOVE_RECURSE
  "CMakeFiles/link_model_test.dir/link_model_test.cpp.o"
  "CMakeFiles/link_model_test.dir/link_model_test.cpp.o.d"
  "link_model_test"
  "link_model_test.pdb"
  "link_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
