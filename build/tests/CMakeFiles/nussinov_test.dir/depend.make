# Empty dependencies file for nussinov_test.
# This may be replaced when dependencies are built.
