file(REMOVE_RECURSE
  "CMakeFiles/nussinov_test.dir/nussinov_test.cpp.o"
  "CMakeFiles/nussinov_test.dir/nussinov_test.cpp.o.d"
  "nussinov_test"
  "nussinov_test.pdb"
  "nussinov_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nussinov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
