# Empty dependencies file for scheduling_test.
# This may be replaced when dependencies are built.
