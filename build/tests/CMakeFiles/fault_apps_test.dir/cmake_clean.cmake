file(REMOVE_RECURSE
  "CMakeFiles/fault_apps_test.dir/fault_apps_test.cpp.o"
  "CMakeFiles/fault_apps_test.dir/fault_apps_test.cpp.o.d"
  "fault_apps_test"
  "fault_apps_test.pdb"
  "fault_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
