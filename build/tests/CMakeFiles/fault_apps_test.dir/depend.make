# Empty dependencies file for fault_apps_test.
# This may be replaced when dependencies are built.
