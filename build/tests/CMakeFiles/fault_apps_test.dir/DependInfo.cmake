
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fault_apps_test.cpp" "tests/CMakeFiles/fault_apps_test.dir/fault_apps_test.cpp.o" "gcc" "tests/CMakeFiles/fault_apps_test.dir/fault_apps_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dp/CMakeFiles/dpx10_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/dpx10_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpx10_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpx10_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpx10_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apgas/CMakeFiles/dpx10_apgas.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dpx10_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
