file(REMOVE_RECURSE
  "CMakeFiles/runners_test.dir/runners_test.cpp.o"
  "CMakeFiles/runners_test.dir/runners_test.cpp.o.d"
  "runners_test"
  "runners_test.pdb"
  "runners_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runners_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
