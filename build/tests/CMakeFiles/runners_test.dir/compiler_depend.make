# Empty compiler generated dependencies file for runners_test.
# This may be replaced when dependencies are built.
