file(REMOVE_RECURSE
  "CMakeFiles/place_test.dir/place_test.cpp.o"
  "CMakeFiles/place_test.dir/place_test.cpp.o.d"
  "place_test"
  "place_test.pdb"
  "place_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/place_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
