# Empty compiler generated dependencies file for place_test.
# This may be replaced when dependencies are built.
