file(REMOVE_RECURSE
  "CMakeFiles/threaded_engine_test.dir/threaded_engine_test.cpp.o"
  "CMakeFiles/threaded_engine_test.dir/threaded_engine_test.cpp.o.d"
  "threaded_engine_test"
  "threaded_engine_test.pdb"
  "threaded_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
