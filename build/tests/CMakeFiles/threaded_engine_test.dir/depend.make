# Empty dependencies file for threaded_engine_test.
# This may be replaced when dependencies are built.
