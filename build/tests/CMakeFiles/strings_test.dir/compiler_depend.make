# Empty compiler generated dependencies file for strings_test.
# This may be replaced when dependencies are built.
