file(REMOVE_RECURSE
  "CMakeFiles/strings_test.dir/strings_test.cpp.o"
  "CMakeFiles/strings_test.dir/strings_test.cpp.o.d"
  "strings_test"
  "strings_test.pdb"
  "strings_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
