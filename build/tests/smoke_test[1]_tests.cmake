add_test([=[Smoke.ThreadedLcsMatchesSerial]=]  /root/repo/build/tests/smoke_test [==[--gtest_filter=Smoke.ThreadedLcsMatchesSerial]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Smoke.ThreadedLcsMatchesSerial]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  smoke_test_TESTS Smoke.ThreadedLcsMatchesSerial)
