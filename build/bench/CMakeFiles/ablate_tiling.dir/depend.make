# Empty dependencies file for ablate_tiling.
# This may be replaced when dependencies are built.
