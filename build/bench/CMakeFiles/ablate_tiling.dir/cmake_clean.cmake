file(REMOVE_RECURSE
  "CMakeFiles/ablate_tiling.dir/ablate_tiling.cpp.o"
  "CMakeFiles/ablate_tiling.dir/ablate_tiling.cpp.o.d"
  "ablate_tiling"
  "ablate_tiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
