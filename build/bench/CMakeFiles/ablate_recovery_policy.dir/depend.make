# Empty dependencies file for ablate_recovery_policy.
# This may be replaced when dependencies are built.
