file(REMOVE_RECURSE
  "CMakeFiles/ablate_recovery_policy.dir/ablate_recovery_policy.cpp.o"
  "CMakeFiles/ablate_recovery_policy.dir/ablate_recovery_policy.cpp.o.d"
  "ablate_recovery_policy"
  "ablate_recovery_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_recovery_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
