# Empty compiler generated dependencies file for ablate_distribution.
# This may be replaced when dependencies are built.
