file(REMOVE_RECURSE
  "CMakeFiles/ablate_distribution.dir/ablate_distribution.cpp.o"
  "CMakeFiles/ablate_distribution.dir/ablate_distribution.cpp.o.d"
  "ablate_distribution"
  "ablate_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
