file(REMOVE_RECURSE
  "CMakeFiles/fig12_overhead.dir/fig12_overhead.cpp.o"
  "CMakeFiles/fig12_overhead.dir/fig12_overhead.cpp.o.d"
  "fig12_overhead"
  "fig12_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
