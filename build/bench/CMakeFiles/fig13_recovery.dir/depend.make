# Empty dependencies file for fig13_recovery.
# This may be replaced when dependencies are built.
