file(REMOVE_RECURSE
  "CMakeFiles/fig13_recovery.dir/fig13_recovery.cpp.o"
  "CMakeFiles/fig13_recovery.dir/fig13_recovery.cpp.o.d"
  "fig13_recovery"
  "fig13_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
