file(REMOVE_RECURSE
  "CMakeFiles/fig11_size_scaling.dir/fig11_size_scaling.cpp.o"
  "CMakeFiles/fig11_size_scaling.dir/fig11_size_scaling.cpp.o.d"
  "fig11_size_scaling"
  "fig11_size_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_size_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
