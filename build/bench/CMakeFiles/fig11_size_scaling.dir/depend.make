# Empty dependencies file for fig11_size_scaling.
# This may be replaced when dependencies are built.
