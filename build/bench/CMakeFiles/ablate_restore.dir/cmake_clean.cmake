file(REMOVE_RECURSE
  "CMakeFiles/ablate_restore.dir/ablate_restore.cpp.o"
  "CMakeFiles/ablate_restore.dir/ablate_restore.cpp.o.d"
  "ablate_restore"
  "ablate_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
