# Empty dependencies file for ablate_restore.
# This may be replaced when dependencies are built.
