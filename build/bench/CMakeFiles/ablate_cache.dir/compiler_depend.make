# Empty compiler generated dependencies file for ablate_cache.
# This may be replaced when dependencies are built.
