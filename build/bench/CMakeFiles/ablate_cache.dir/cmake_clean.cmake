file(REMOVE_RECURSE
  "CMakeFiles/ablate_cache.dir/ablate_cache.cpp.o"
  "CMakeFiles/ablate_cache.dir/ablate_cache.cpp.o.d"
  "ablate_cache"
  "ablate_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
