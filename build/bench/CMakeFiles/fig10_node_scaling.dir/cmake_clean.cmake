file(REMOVE_RECURSE
  "CMakeFiles/fig10_node_scaling.dir/fig10_node_scaling.cpp.o"
  "CMakeFiles/fig10_node_scaling.dir/fig10_node_scaling.cpp.o.d"
  "fig10_node_scaling"
  "fig10_node_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_node_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
