# Empty dependencies file for fig10_node_scaling.
# This may be replaced when dependencies are built.
