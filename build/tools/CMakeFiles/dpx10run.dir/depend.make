# Empty dependencies file for dpx10run.
# This may be replaced when dependencies are built.
