file(REMOVE_RECURSE
  "CMakeFiles/dpx10run.dir/dpx10run.cpp.o"
  "CMakeFiles/dpx10run.dir/dpx10run.cpp.o.d"
  "dpx10run"
  "dpx10run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx10run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
