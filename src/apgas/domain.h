// DagDomain — the set of valid cells of a DP matrix.
//
// Most 2D/0D DP problems fill a full rectangle, but several classic ones do
// not: interval DPs (LPS, matrix chain) only populate the upper triangle,
// and banded alignment restricts |i-j|. The domain gives every valid cell a
// dense linear index so vertex state can live in a flat array with no holes,
// and so distributions can reason about contiguous blocks.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/vertex_id.h"

namespace dpx10 {

class DagDomain {
 public:
  enum class Kind { Rect, UpperTriangular, Banded };

  /// Full height × width rectangle.
  static DagDomain rect(std::int32_t height, std::int32_t width);

  /// Cells with i <= j of an n × n matrix (interval DPs).
  static DagDomain upper_triangular(std::int32_t n);

  /// Cells of a height × width rectangle with |i - j| <= band.
  static DagDomain banded(std::int32_t height, std::int32_t width, std::int32_t band);

  Kind kind() const { return kind_; }
  std::int32_t height() const { return height_; }
  std::int32_t width() const { return width_; }
  std::int32_t band() const { return band_; }

  /// Number of valid cells.
  std::int64_t size() const { return size_; }

  bool contains(VertexId id) const {
    if (id.i < 0 || id.i >= height_ || id.j < 0 || id.j >= width_) return false;
    switch (kind_) {
      case Kind::Rect: return true;
      case Kind::UpperTriangular: return id.i <= id.j;
      case Kind::Banded: {
        std::int64_t d = static_cast<std::int64_t>(id.i) - id.j;
        return d <= band_ && -d <= band_;
      }
    }
    return false;
  }

  /// First valid column of row i (row must be non-empty — every row of the
  /// supported kinds is non-empty by construction).
  std::int32_t row_begin(std::int32_t i) const {
    switch (kind_) {
      case Kind::Rect: return 0;
      case Kind::UpperTriangular: return i;
      case Kind::Banded: return i - band_ > 0 ? i - band_ : 0;
    }
    return 0;
  }

  /// One past the last valid column of row i.
  std::int32_t row_end(std::int32_t i) const {
    switch (kind_) {
      case Kind::Rect: return width_;
      case Kind::UpperTriangular: return width_;
      case Kind::Banded: {
        std::int32_t end = i + band_ + 1;
        return end < width_ ? end : width_;
      }
    }
    return width_;
  }

  /// Number of valid cells in rows [0, i).
  std::int64_t row_prefix(std::int32_t i) const;

  /// Dense index of a valid cell; cells are ordered row-major within the
  /// domain. Requires contains(id).
  std::int64_t linearize(VertexId id) const {
    return row_prefix(id.i) + (id.j - row_begin(id.i));
  }

  /// Inverse of linearize(). Requires 0 <= index < size().
  VertexId delinearize(std::int64_t index) const;

  std::string_view kind_name() const;

  friend bool operator==(const DagDomain& a, const DagDomain& b) {
    return a.kind_ == b.kind_ && a.height_ == b.height_ && a.width_ == b.width_ &&
           a.band_ == b.band_;
  }

 private:
  DagDomain(Kind kind, std::int32_t height, std::int32_t width, std::int32_t band);

  /// Row index whose prefix contains `index` (binary search on row_prefix).
  std::int32_t row_of_index(std::int64_t index) const;

  Kind kind_ = Kind::Rect;
  std::int32_t height_ = 0;
  std::int32_t width_ = 0;
  std::int32_t band_ = 0;
  std::int64_t size_ = 0;
};

}  // namespace dpx10
