// DistArray<T> — the distributed vertex store.
//
// The X10 original keeps all vertices in a DistArray partitioned across
// places; here the partition is logical. Cell state lives in one flat array
// indexed by the domain's dense linearization, and ownership is a pure
// function (Dist × PlaceGroup). Every remote access still flows through the
// traffic-accounted net layer, so communication behaviour is preserved; the
// flat layout is purely a host-memory representation. A place "dying" means
// its slots are wiped — see ResilientStore-style rebuild in the engines.
//
// Per-cell state matches §VI-B: a value of the user's type, an indegree
// counter of unfinished predecessors, and a finished flag.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "apgas/dist.h"
#include "apgas/domain.h"
#include "apgas/place.h"
#include "common/error.h"

namespace dpx10 {

enum class CellState : std::uint8_t {
  Unfinished = 0,
  Finished = 1,
  /// Marked finished before execution by DPX10App::initial_value() — the
  /// "Initialization of DAG" refinement of §VI-E. Never scheduled, never
  /// counted in indegrees, always recoverable by re-applying the app's
  /// initializer.
  Prefinished = 2,
  /// Computed, consumed by every anti-dependency, and payload released by
  /// the memory governor (src/mem). Still "done" for scheduling purposes;
  /// the value lives only in the SpillStore (spill mode) or nowhere
  /// (retire mode — recovery recomputes it if needed).
  Retired = 3,
};

/// One cell's runtime state. Atomics make the threaded engine's
/// store-result/decrement-indegree protocol race-free; the simulator uses
/// them with relaxed ordering from a single thread.
template <typename T>
struct Cell {
  T value{};
  std::atomic<std::int32_t> indegree{0};
  std::atomic<std::uint8_t> state{static_cast<std::uint8_t>(CellState::Unfinished)};

  CellState load_state(std::memory_order order = std::memory_order_acquire) const {
    return static_cast<CellState>(state.load(order));
  }

  bool is_done(std::memory_order order = std::memory_order_acquire) const {
    return load_state(order) != CellState::Unfinished;
  }

  void store_state(CellState s, std::memory_order order = std::memory_order_release) {
    state.store(static_cast<std::uint8_t>(s), order);
  }

  /// Memory-governor retire hook: releases the payload's storage (swapping
  /// with a default-constructed value frees heap-owning payloads such as
  /// tile edges) and marks the cell Retired. The caller must have spilled
  /// the value first if it will ever be read again.
  void retire_value(std::memory_order order = std::memory_order_release) {
    T released{};
    using std::swap;
    swap(value, released);
    store_state(CellState::Retired, order);
  }
};

template <typename T>
class DistArray {
 public:
  DistArray(DagDomain domain, DistKind kind, PlaceGroup group)
      : domain_(domain),
        kind_(kind),
        group_(std::move(group)),
        dist_(make_dist(kind, group_.size(), domain_)),
        cells_(static_cast<std::size_t>(domain_.size())) {}

  DistArray(const DistArray&) = delete;
  DistArray& operator=(const DistArray&) = delete;

  const DagDomain& domain() const { return domain_; }
  DistKind dist_kind() const { return kind_; }
  const PlaceGroup& group() const { return group_; }
  const Dist& dist() const { return *dist_; }
  std::int64_t size() const { return domain_.size(); }

  Cell<T>& cell(std::int64_t index) {
    check_internal(index >= 0 && index < size(), "DistArray::cell: index out of range");
    return cells_[static_cast<std::size_t>(index)];
  }
  const Cell<T>& cell(std::int64_t index) const {
    check_internal(index >= 0 && index < size(), "DistArray::cell: index out of range");
    return cells_[static_cast<std::size_t>(index)];
  }

  Cell<T>& cell(VertexId id) { return cell(domain_.linearize(id)); }
  const Cell<T>& cell(VertexId id) const { return cell(domain_.linearize(id)); }

  /// Distribution slot (position within the group) owning `id`.
  std::int32_t owner_slot(VertexId id) const { return dist_->slot_of(id); }

  /// Concrete place id owning `id`.
  std::int32_t owner_place(VertexId id) const { return group_[dist_->slot_of(id)]; }

 private:
  DagDomain domain_;
  DistKind kind_;
  PlaceGroup group_;
  std::unique_ptr<Dist> dist_;
  std::vector<Cell<T>> cells_;
};

}  // namespace dpx10
