// Places — the APGAS unit of locality.
//
// An X10 place is a partition of the global address space plus the worker
// threads operating on it; the paper launches two places per node. Here a
// place is a logical id; PlaceManager tracks which places are alive (places
// die when a fault is injected) and PlaceGroup is an ordered set of live
// place ids that a distribution maps onto.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"

namespace dpx10 {

/// An ordered set of place ids. Distributions map cells onto *slots*
/// [0, size()); the group translates a slot to a concrete place id. After a
/// failure the group shrinks but surviving ids keep their identity, exactly
/// like Resilient X10's surviving places.
class PlaceGroup {
 public:
  PlaceGroup() = default;
  explicit PlaceGroup(std::vector<std::int32_t> places) : places_(std::move(places)) {
    require(!places_.empty(), "PlaceGroup: must contain at least one place");
  }

  /// The dense group {0, 1, ..., n-1}.
  static PlaceGroup dense(std::int32_t n) {
    require(n > 0, "PlaceGroup::dense: need at least one place");
    std::vector<std::int32_t> ids(static_cast<std::size_t>(n));
    for (std::int32_t p = 0; p < n; ++p) ids[static_cast<std::size_t>(p)] = p;
    return PlaceGroup(std::move(ids));
  }

  std::int32_t size() const { return static_cast<std::int32_t>(places_.size()); }

  std::int32_t operator[](std::int32_t slot) const {
    check_internal(slot >= 0 && slot < size(), "PlaceGroup: slot out of range");
    return places_[static_cast<std::size_t>(slot)];
  }

  bool contains(std::int32_t place) const {
    for (std::int32_t p : places_) {
      if (p == place) return true;
    }
    return false;
  }

  /// Group with `place` removed. Requires the place to be a member and the
  /// result to be non-empty.
  PlaceGroup without(std::int32_t place) const {
    std::vector<std::int32_t> rest;
    rest.reserve(places_.size());
    for (std::int32_t p : places_) {
      if (p != place) rest.push_back(p);
    }
    require(rest.size() + 1 == places_.size(), "PlaceGroup::without: place not in group");
    return PlaceGroup(std::move(rest));
  }

  const std::vector<std::int32_t>& ids() const { return places_; }

 private:
  std::vector<std::int32_t> places_;
};

/// Tracks liveness of the world's places.
class PlaceManager {
 public:
  explicit PlaceManager(std::int32_t nplaces)
      : alive_(static_cast<std::size_t>(nplaces), true), alive_count_(nplaces) {
    require(nplaces > 0, "PlaceManager: need at least one place");
  }

  std::int32_t nplaces() const { return static_cast<std::int32_t>(alive_.size()); }
  std::int32_t alive_count() const { return alive_count_; }

  bool is_alive(std::int32_t place) const {
    check_internal(place >= 0 && place < nplaces(), "PlaceManager: place out of range");
    return alive_[static_cast<std::size_t>(place)];
  }

  /// Marks a place dead. Killing an already-dead place is an internal error;
  /// killing the last place is a configuration error.
  void kill(std::int32_t place) {
    check_internal(is_alive(place), "PlaceManager::kill: place already dead");
    require(alive_count_ > 1, "PlaceManager::kill: cannot kill the last place");
    alive_[static_cast<std::size_t>(place)] = false;
    --alive_count_;
  }

  PlaceGroup alive_group() const {
    std::vector<std::int32_t> ids;
    ids.reserve(static_cast<std::size_t>(alive_count_));
    for (std::int32_t p = 0; p < nplaces(); ++p) {
      if (alive_[static_cast<std::size_t>(p)]) ids.push_back(p);
    }
    return PlaceGroup(std::move(ids));
  }

 private:
  std::vector<bool> alive_;
  std::int32_t alive_count_;
};

}  // namespace dpx10
