// Fault model — the C++ analogue of Resilient X10's DeadPlaceException.
//
// The paper injects one node failure "manually in the middle of the
// execution" (§VIII-C). A FaultPlan expresses the same thing portably
// across both engines: kill place `place` once `at_fraction` of the
// computable vertices have finished. Plans compose: several places may die
// at the same instant (killed in place-id order), and further deaths may
// land while a recovery is still in flight. Resilient X10 cannot survive
// the death of place 0; we lift that limitation with coordinator failover
// (docs/FAULTS.md) — the lowest-id survivor inherits the monitor role, and
// only "every place died" remains fatal.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.h"

namespace dpx10 {

/// Raised when a place dies and the computation cannot recover. Since the
/// coordinator-failover work this is reserved for the hopeless case: every
/// place (or every place the failure detector still trusted) is gone.
class DeadPlaceException : public Error {
 public:
  explicit DeadPlaceException(std::int32_t place)
      : Error("place " + std::to_string(place) + " died"), place_(place) {}

  std::int32_t place() const { return place_; }

 private:
  std::int32_t place_;
};

/// Kill `place` when at least `at_fraction` of computable vertices are done
/// — or, when `at_event >= 0`, at an absolute progress point instead: the
/// SimEngine crashes the place just before processing its `at_event`-th
/// event, the ThreadedEngine when `at_event` vertices have finished. The
/// event form is what dpx10check's crash-point sweep uses to kill a place
/// at every K-th event of a run deterministically.
struct FaultPlan {
  std::int32_t place = -1;
  double at_fraction = 0.5;
  std::int64_t at_event = -1;  ///< -1 = use at_fraction

  bool event_based() const { return at_event >= 0; }

  void validate(std::int32_t nplaces) const {
    require(place >= 0 && place < nplaces, "FaultPlan: place out of range");
    if (!event_based()) {
      require(at_fraction >= 0.0 && at_fraction < 1.0,
              "FaultPlan: at_fraction must be in [0, 1)");
    }
  }
};

}  // namespace dpx10
