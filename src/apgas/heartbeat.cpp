#include "apgas/heartbeat.h"

#include <algorithm>

namespace dpx10 {

HeartbeatDetector::HeartbeatDetector(const HeartbeatConfig& cfg,
                                     std::int32_t nplaces, double now)
    : cfg_(cfg), entries_(static_cast<std::size_t>(nplaces)) {
  cfg_.validate();
  require(nplaces > 0, "HeartbeatDetector: need at least one place");
  for (Entry& e : entries_) e.last_beat = now;
}

void HeartbeatDetector::beat(std::int32_t place, double at) {
  check_internal(place >= 0 && place < static_cast<std::int32_t>(entries_.size()),
                 "HeartbeatDetector::beat: place out of range");
  if (place == monitor_) return;  // the monitor does not monitor itself
  Entry& e = entries_[static_cast<std::size_t>(place)];
  if (e.health == PlaceHealth::Dead) return;  // beats from the grave: fenced
  e.last_beat = std::max(e.last_beat, at);
  if (e.health == PlaceHealth::Suspected) {
    e.health = PlaceHealth::Alive;
    pending_.push_back({place, PlaceHealth::Alive, at});
  }
}

void HeartbeatDetector::sweep(double now, std::vector<HealthTransition>& out) {
  // Beat-driven clears first: a straggler that resumed before this sweep
  // must be un-suspected before we judge anyone else.
  out.insert(out.end(), pending_.begin(), pending_.end());
  pending_.clear();
  for (std::size_t p = 0; p < entries_.size(); ++p) {
    if (static_cast<std::int32_t>(p) == monitor_) continue;
    Entry& e = entries_[p];
    if (e.health == PlaceHealth::Dead) continue;
    const double silent = now - e.last_beat;
    if (e.health == PlaceHealth::Alive && silent >= cfg_.suspect_delay()) {
      e.health = PlaceHealth::Suspected;
      out.push_back({static_cast<std::int32_t>(p), PlaceHealth::Suspected, now});
    }
    if (e.health == PlaceHealth::Suspected && silent >= cfg_.declare_delay()) {
      e.health = PlaceHealth::Dead;
      out.push_back({static_cast<std::int32_t>(p), PlaceHealth::Dead, now});
    }
  }
}

PlaceHealth HeartbeatDetector::health(std::int32_t place) const {
  check_internal(place >= 0 && place < static_cast<std::int32_t>(entries_.size()),
                 "HeartbeatDetector::health: place out of range");
  return entries_[static_cast<std::size_t>(place)].health;
}

void HeartbeatDetector::mark_dead(std::int32_t place) {
  check_internal(place >= 0 && place < static_cast<std::int32_t>(entries_.size()),
                 "HeartbeatDetector::mark_dead: place out of range");
  entries_[static_cast<std::size_t>(place)].health = PlaceHealth::Dead;
}

void HeartbeatDetector::fail_over(std::int32_t successor) {
  check_internal(successor >= 0 &&
                     successor < static_cast<std::int32_t>(entries_.size()),
                 "HeartbeatDetector::fail_over: successor out of range");
  check_internal(successor != monitor_,
                 "HeartbeatDetector::fail_over: successor is the monitor");
  // Fence the deposed monitor: dead or evicted, it never reclaims the role.
  entries_[static_cast<std::size_t>(monitor_)].health = PlaceHealth::Dead;
  monitor_ = successor;
}

void HeartbeatDetector::reset(double now) {
  pending_.clear();
  for (Entry& e : entries_) {
    if (e.health == PlaceHealth::Dead) continue;
    e.last_beat = now;
    e.health = PlaceHealth::Alive;
  }
}

}  // namespace dpx10
