// Dist — the X10 `Dist` structure: how cells map to places.
//
// A Dist maps every cell of a domain to a *slot* in [0, nslots). The engine
// composes it with a PlaceGroup to get a concrete place id, which is what
// lets the same distribution kind be re-instantiated over the survivors
// after a failure (the paper's recovery builds "a new distributed array
// among the remaining places").
//
// Four distributions are provided, mirroring the flexibility §VI-B/§VI-E
// describe: contiguous row blocks (the recovery example in Fig. 6),
// contiguous column blocks (the paper's stated default), block-cyclic rows,
// and a 2D block grid.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "apgas/domain.h"
#include "common/vertex_id.h"

namespace dpx10 {

enum class DistKind : std::uint8_t {
  BlockRow = 0,    ///< contiguous bands of rows
  BlockCol,        ///< contiguous bands of columns
  BlockCyclicRow,  ///< fixed-height row blocks dealt round-robin
  Block2D,         ///< pr × pc grid of tiles
};

std::string_view dist_kind_name(DistKind kind);

class Dist {
 public:
  virtual ~Dist() = default;

  /// Slot owning `id`. `id` must be inside the domain the Dist was built
  /// for. Must be pure and O(1): engines call it per dependency access.
  virtual std::int32_t slot_of(VertexId id) const = 0;

  virtual DistKind kind() const = 0;

  std::int32_t nslots() const { return nslots_; }

 protected:
  explicit Dist(std::int32_t nslots);

  std::int32_t nslots_;
};

/// Builds a distribution of `kind` over `nslots` slots for `domain`.
std::unique_ptr<Dist> make_dist(DistKind kind, std::int32_t nslots, const DagDomain& domain);

/// Rows [i*P/h, (i+1)*P/h) style contiguous banding (exposed for tests).
std::int32_t block_index(std::int64_t coord, std::int64_t extent, std::int32_t nblocks);

}  // namespace dpx10
