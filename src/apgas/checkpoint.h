// Durable checkpoint bundles — the on-disk extension of SnapshotVault.
//
// A bundle is one versioned directory `bundle-<seq>` holding a text
// MANIFEST (progress counters, RNG cursors, per-place census — everything
// the SimEngine needs to resume a run bit-identically) plus `cells.bin`,
// the cell-state/value extents encoded with the same trivially-copyable
// codec the spill path uses (mem::SpillCodec). Commit is atomic: the bundle
// is staged under `.tmp-<seq>` and renamed into place only after both files
// are fully written, so a process killed mid-checkpoint leaves either the
// previous consistent bundle or a garbage temp directory — never a
// half-written bundle that resume could mistake for truth. Loading walks
// the bundles newest-first and takes the first one whose manifest sentinel
// and payload checksum both verify; corruption therefore costs at most one
// checkpoint interval of progress and can never produce a wrong answer.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "apgas/dist_array.h"
#include "common/error.h"
#include "core/app.h"
#include "mem/spill_codec.h"

namespace dpx10::checkpoint {

/// splitmix64-style running fold over a byte stream; used as the bundle
/// payload checksum. Not cryptographic — it only has to catch truncation
/// and bit rot, the failure modes of a killed or sick writer.
inline std::uint64_t fold_bytes(const std::byte* data, std::size_t size,
                                std::uint64_t h = 0x9e3779b97f4a7c15ULL) {
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ULL;
  }
  return h;
}

/// The key=value side of a bundle. Values are single lines; doubles are
/// stored as hexfloats ("%a") so they round-trip bit-exactly — resume
/// identity depends on it. A parse without the trailing "end" sentinel is
/// rejected: a truncated manifest must read as "no bundle", never as a
/// shorter-but-plausible one.
class Manifest {
 public:
  bool has(const std::string& key) const { return kv_.count(key) != 0; }

  void set(const std::string& key, const std::string& value) {
    check_internal(key.find('=') == std::string::npos &&
                       key.find('\n') == std::string::npos,
                   "Manifest: key must not contain '=' or newline");
    check_internal(value.find('\n') == std::string::npos,
                   "Manifest: value must be a single line");
    kv_[key] = value;
  }
  void set_u64(const std::string& key, std::uint64_t v) { set(key, std::to_string(v)); }
  void set_i64(const std::string& key, std::int64_t v) { set(key, std::to_string(v)); }
  void set_double(const std::string& key, double v) { set(key, encode_double(v)); }
  void set_u64s(const std::string& key, const std::vector<std::uint64_t>& vs) {
    std::string line;
    for (std::uint64_t v : vs) {
      if (!line.empty()) line += ' ';
      line += std::to_string(v);
    }
    set(key, line);
  }
  void set_doubles(const std::string& key, const std::vector<double>& vs) {
    std::string line;
    for (double v : vs) {
      if (!line.empty()) line += ' ';
      line += encode_double(v);
    }
    set(key, line);
  }

  const std::string& get(const std::string& key) const {
    const auto it = kv_.find(key);
    require(it != kv_.end(), "checkpoint manifest: missing key '" + key + "'");
    return it->second;
  }
  std::uint64_t get_u64(const std::string& key) const {
    return std::strtoull(get(key).c_str(), nullptr, 10);
  }
  std::int64_t get_i64(const std::string& key) const {
    return std::strtoll(get(key).c_str(), nullptr, 10);
  }
  double get_double(const std::string& key) const {
    return std::strtod(get(key).c_str(), nullptr);
  }
  std::vector<std::uint64_t> get_u64s(const std::string& key) const {
    std::vector<std::uint64_t> out;
    const std::string& line = get(key);
    const char* s = line.c_str();
    char* end = nullptr;
    while (*s != '\0') {
      out.push_back(std::strtoull(s, &end, 10));
      require(end != s, "checkpoint manifest: malformed list in '" + key + "'");
      s = end;
      while (*s == ' ') ++s;
    }
    return out;
  }
  std::vector<double> get_doubles(const std::string& key) const {
    std::vector<double> out;
    const std::string& line = get(key);
    const char* s = line.c_str();
    char* end = nullptr;
    while (*s != '\0') {
      out.push_back(std::strtod(s, &end));
      require(end != s, "checkpoint manifest: malformed list in '" + key + "'");
      s = end;
      while (*s == ' ') ++s;
    }
    return out;
  }

  std::string serialize() const {
    std::string out;
    for (const auto& [key, value] : kv_) {
      out += key;
      out += '=';
      out += value;
      out += '\n';
    }
    out += "end\n";
    return out;
  }

  /// Parses `text`; false on any malformed line or a missing "end" sentinel
  /// (the caller treats that bundle as inconsistent and falls back).
  bool parse(const std::string& text) {
    kv_.clear();
    std::size_t pos = 0;
    bool complete = false;
    while (pos < text.size()) {
      const std::size_t nl = text.find('\n', pos);
      if (nl == std::string::npos) break;  // unterminated final line
      const std::string line = text.substr(pos, nl - pos);
      pos = nl + 1;
      if (line == "end") {
        complete = pos == text.size();  // nothing may follow the sentinel
        break;
      }
      const std::size_t eq = line.find('=');
      if (eq == std::string::npos || eq == 0) return false;
      kv_[line.substr(0, eq)] = line.substr(eq + 1);
    }
    return complete;
  }

 private:
  static std::string encode_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
  }

  std::map<std::string, std::string> kv_;
};

inline std::filesystem::path bundle_path(const std::string& dir,
                                         std::uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof name, "bundle-%06llu",
                static_cast<unsigned long long>(seq));
  return std::filesystem::path(dir) / name;
}

/// Stages one bundle and commits it with an atomic rename. A bundle that is
/// never commit()ed leaves only the temp directory behind (cleaned by the
/// next writer for the same seq).
class BundleWriter {
 public:
  BundleWriter(const std::string& dir, std::uint64_t seq) : seq_(seq) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    require(!ec, "checkpoint: cannot create directory '" + dir + "'");
    char name[32];
    std::snprintf(name, sizeof name, ".tmp-%06llu",
                  static_cast<unsigned long long>(seq));
    tmp_ = fs::path(dir) / name;
    final_ = bundle_path(dir, seq);
    fs::remove_all(tmp_, ec);  // a stale temp from a killed writer
    fs::create_directory(tmp_, ec);
    require(!ec, "checkpoint: cannot create staging directory '" +
                     tmp_.string() + "'");
  }

  Manifest& manifest() { return manifest_; }

  void write_cells(const std::vector<std::byte>& blob) {
    manifest_.set_u64("cells.bytes", blob.size());
    manifest_.set_u64("cells.checksum", fold_bytes(blob.data(), blob.size()));
    std::ofstream os(tmp_ / "cells.bin", std::ios::binary | std::ios::trunc);
    require(os.good(), "checkpoint: cannot write '" +
                           (tmp_ / "cells.bin").string() + "'");
    os.write(reinterpret_cast<const char*>(blob.data()),
             static_cast<std::streamsize>(blob.size()));
    os.flush();
    require(os.good(), "checkpoint: short write to cells.bin");
  }

  void commit() {
    namespace fs = std::filesystem;
    manifest_.set_u64("seq", seq_);
    {
      std::ofstream os(tmp_ / "MANIFEST", std::ios::binary | std::ios::trunc);
      require(os.good(), "checkpoint: cannot write MANIFEST");
      const std::string text = manifest_.serialize();
      os.write(text.data(), static_cast<std::streamsize>(text.size()));
      os.flush();
      require(os.good(), "checkpoint: short write to MANIFEST");
    }
    std::error_code ec;
    fs::remove_all(final_, ec);  // a resumed run re-commits later seqs
    fs::rename(tmp_, final_, ec);
    require(!ec, "checkpoint: cannot commit bundle '" + final_.string() + "'");
  }

 private:
  std::uint64_t seq_;
  std::filesystem::path tmp_;
  std::filesystem::path final_;
  Manifest manifest_;
};

struct Bundle {
  std::uint64_t seq = 0;
  Manifest manifest;
  std::vector<std::byte> cells;
};

/// Loads one bundle directory; false if anything about it is off (missing
/// files, truncated manifest, payload size or checksum mismatch).
inline bool try_load_bundle(const std::filesystem::path& path,
                            std::uint64_t seq, Bundle& out) {
  std::ifstream mf(path / "MANIFEST", std::ios::binary);
  if (!mf.good()) return false;
  std::string text((std::istreambuf_iterator<char>(mf)),
                   std::istreambuf_iterator<char>());
  if (!out.manifest.parse(text)) return false;
  if (!out.manifest.has("cells.bytes") || !out.manifest.has("cells.checksum") ||
      !out.manifest.has("seq")) {
    return false;
  }
  if (out.manifest.get_u64("seq") != seq) return false;
  std::ifstream cf(path / "cells.bin", std::ios::binary | std::ios::ate);
  if (!cf.good()) return false;
  const std::streamsize n = cf.tellg();
  cf.seekg(0);
  out.cells.resize(static_cast<std::size_t>(n));
  cf.read(reinterpret_cast<char*>(out.cells.data()), n);
  if (!cf.good()) return false;
  if (out.cells.size() != out.manifest.get_u64("cells.bytes")) return false;
  if (fold_bytes(out.cells.data(), out.cells.size()) !=
      out.manifest.get_u64("cells.checksum")) {
    return false;
  }
  out.seq = seq;
  return true;
}

/// The latest consistent bundle under `dir`. Walks committed bundles
/// newest-first, skipping any that fail verification, so a corrupt or
/// truncated newest bundle degrades to the previous one — a clean
/// diagnostic (ConfigError) only when nothing valid remains.
inline Bundle load_latest(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  require(fs::is_directory(dir, ec),
          "checkpoint: '" + dir + "' is not a directory");
  std::vector<std::uint64_t> seqs;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("bundle-", 0) != 0) continue;
    char* end = nullptr;
    const std::uint64_t seq = std::strtoull(name.c_str() + 7, &end, 10);
    if (end == nullptr || *end != '\0') continue;
    seqs.push_back(seq);
  }
  require(!seqs.empty(), "checkpoint: no bundles in '" + dir + "'");
  std::sort(seqs.begin(), seqs.end());
  for (std::size_t i = seqs.size(); i-- > 0;) {
    Bundle bundle;
    if (try_load_bundle(bundle_path(dir, seqs[i]), seqs[i], bundle)) {
      return bundle;
    }
  }
  throw ConfigError("checkpoint: no consistent bundle in '" + dir +
                    "' (every candidate failed manifest or checksum "
                    "verification)");
}

namespace detail {
constexpr std::uint64_t kCellsMagic = 0xD9C410C4E117ULL;
}

/// Serializes every cell's state (and Finished values) into one blob.
/// Prefinished values are not stored — they are re-derived from the app's
/// initializer on resume, exactly as §VI-D recovery re-derives them.
template <typename T>
std::vector<std::byte> encode_cells(const DistArray<T>& array) {
  static_assert(mem::SpillCodec<T>::available || sizeof(T) > 0,
                "encode_cells instantiated");
  require(mem::SpillCodec<T>::available,
          "checkpoint: the value type is not trivially copyable");
  std::vector<std::byte> out;
  out.reserve(16 + static_cast<std::size_t>(array.size()) * (1 + sizeof(T)));
  const auto put_u64 = [&out](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
  };
  put_u64(detail::kCellsMagic);
  put_u64(static_cast<std::uint64_t>(array.size()));
  std::vector<std::byte> scratch;
  for (std::int64_t idx = 0; idx < array.size(); ++idx) {
    const Cell<T>& cell = array.cell(idx);
    const CellState state = cell.load_state(std::memory_order_relaxed);
    check_internal(state != CellState::Retired,
                   "checkpoint: retired cells cannot be checkpointed "
                   "(validate() forbids retirement with checkpoint_dir)");
    out.push_back(static_cast<std::byte>(state));
    if (state == CellState::Finished) {
      mem::SpillCodec<T>::encode(cell.value, scratch);
      out.insert(out.end(), scratch.begin(), scratch.end());
    }
  }
  return out;
}

/// Applies a cells blob onto a fresh (all-Unfinished) array. Throws
/// ConfigError on structural mismatch — a bundle from a different run shape
/// must fail loudly, not quietly corrupt the resume. The caller recomputes
/// indegrees afterwards.
template <typename T>
void apply_cells(const std::vector<std::byte>& blob, DistArray<T>& array,
                 const DPX10App<T>& app) {
  require(mem::SpillCodec<T>::available,
          "checkpoint: the value type is not trivially copyable");
  std::size_t pos = 0;
  const auto take_u64 = [&blob, &pos]() {
    require(pos + 8 <= blob.size(), "checkpoint: cells.bin truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(blob[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 8;
    return v;
  };
  require(take_u64() == detail::kCellsMagic,
          "checkpoint: cells.bin has the wrong magic");
  require(take_u64() == static_cast<std::uint64_t>(array.size()),
          "checkpoint: bundle cell count does not match this run's domain");
  for (std::int64_t idx = 0; idx < array.size(); ++idx) {
    require(pos < blob.size(), "checkpoint: cells.bin truncated");
    const auto state = static_cast<CellState>(blob[pos]);
    ++pos;
    Cell<T>& cell = array.cell(idx);
    switch (state) {
      case CellState::Unfinished:
        break;
      case CellState::Prefinished: {
        auto init = app.initial_value(array.domain().delinearize(idx));
        require(init.has_value(),
                "checkpoint: bundle marks a cell prefinished but the app's "
                "initial_value() disagrees — wrong app or input for this "
                "bundle");
        cell.value = *init;
        cell.store_state(CellState::Prefinished, std::memory_order_relaxed);
        break;
      }
      case CellState::Finished: {
        require(pos + sizeof(T) <= blob.size(),
                "checkpoint: cells.bin truncated");
        T value{};
        require(mem::SpillCodec<T>::decode(blob.data() + pos, sizeof(T), value),
                "checkpoint: undecodable cell value");
        pos += sizeof(T);
        cell.value = value;
        cell.store_state(CellState::Finished, std::memory_order_relaxed);
        break;
      }
      default:
        throw ConfigError("checkpoint: cells.bin carries an invalid state");
    }
  }
  require(pos == blob.size(), "checkpoint: trailing bytes in cells.bin");
}

}  // namespace dpx10::checkpoint
