// SnapshotVault<T> — the periodic-snapshot mechanism of Resilient X10's
// ResilientDistArray (§VI-D's comparison baseline).
//
// The paper rejects periodic snapshots because "a large volume of
// intermediate results may be produced in the progress of computing"; we
// implement the mechanism anyway so the claim is measurable
// (bench/ablate_recovery_policy). A snapshot captures every cell's
// state+value at a consistent point; like ResilientDistArray's redundant
// copies, the vault survives place deaths, so restore() works regardless of
// which place died — at the price of rolling the whole computation back to
// the snapshot instant.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "apgas/dist_array.h"
#include "common/error.h"

namespace dpx10 {

template <typename T>
class SnapshotVault {
 public:
  SnapshotVault() = default;

  bool has_snapshot() const { return !states_.empty(); }

  /// Number of computed-and-done cells (Finished, or Retired-and-pinned, or
  /// Retired-kept — not pre-finished) in the stored snapshot.
  std::uint64_t finished_in_snapshot() const { return finished_; }

  /// Captures the array. Caller must guarantee quiescence (both engines
  /// pause all places, exactly like Resilient X10's global snapshot).
  ///
  /// `retired_reader` integrates the memory governor: a Retired cell's
  /// payload is gone from the array, so in spill mode the engines pass a
  /// reader that fetches it back from the SpillStore and the snapshot PINS
  /// it as a plain Finished value (the vault, like ResilientDistArray's
  /// redundant copies, must survive the owner's death — the spill file
  /// won't). With no reader, or when the reader misses, the cell is stored
  /// Retired and stateless: still "done", recomputable via resurrection.
  void capture(const DistArray<T>& array,
               const std::function<bool(std::int64_t, T&)>& retired_reader = {}) {
    const std::size_t n = static_cast<std::size_t>(array.size());
    values_.resize(n);
    states_.resize(n);
    finished_ = 0;
    for (std::int64_t idx = 0; idx < array.size(); ++idx) {
      const Cell<T>& cell = array.cell(idx);
      CellState state = cell.load_state(std::memory_order_relaxed);
      if (state == CellState::Retired) {
        T pinned{};
        if (retired_reader && retired_reader(idx, pinned)) {
          values_[static_cast<std::size_t>(idx)] = pinned;
          state = CellState::Finished;
        }
        ++finished_;
      } else if (state != CellState::Unfinished) {
        values_[static_cast<std::size_t>(idx)] = cell.value;
        if (state == CellState::Finished) ++finished_;
      }
      states_[static_cast<std::size_t>(idx)] = static_cast<std::uint8_t>(state);
    }
  }

  /// Rolls `array` (usually a fresh one over the survivors) back to the
  /// snapshot: done cells get their snapshot values, everything newer is
  /// dropped. Indegrees are NOT touched — the caller re-initializes them,
  /// same as after a rebuild.
  void restore(DistArray<T>& array) const {
    check_internal(has_snapshot(), "SnapshotVault::restore: no snapshot taken");
    check_internal(static_cast<std::int64_t>(states_.size()) == array.size(),
                   "SnapshotVault::restore: size mismatch");
    for (std::int64_t idx = 0; idx < array.size(); ++idx) {
      Cell<T>& cell = array.cell(idx);
      const auto state = static_cast<CellState>(states_[static_cast<std::size_t>(idx)]);
      if (state != CellState::Unfinished) {
        cell.value = values_[static_cast<std::size_t>(idx)];
      }
      cell.store_state(state, std::memory_order_relaxed);
    }
  }

 private:
  std::vector<T> values_;
  std::vector<std::uint8_t> states_;
  std::uint64_t finished_ = 0;
};

}  // namespace dpx10
