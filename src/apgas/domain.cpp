#include "apgas/domain.h"

#include "common/error.h"

namespace dpx10 {

DagDomain::DagDomain(Kind kind, std::int32_t height, std::int32_t width, std::int32_t band)
    : kind_(kind), height_(height), width_(width), band_(band) {
  require(height > 0 && width > 0, "DagDomain: height and width must be positive");
  if (kind == Kind::UpperTriangular) {
    require(height == width, "DagDomain: upper-triangular domains must be square");
  }
  if (kind == Kind::Banded) {
    require(band >= 0, "DagDomain: band must be non-negative");
  }
  size_ = row_prefix(height_);
  check_internal(size_ > 0, "DagDomain: empty domain");
}

DagDomain DagDomain::rect(std::int32_t height, std::int32_t width) {
  return DagDomain(Kind::Rect, height, width, 0);
}

DagDomain DagDomain::upper_triangular(std::int32_t n) {
  return DagDomain(Kind::UpperTriangular, n, n, 0);
}

DagDomain DagDomain::banded(std::int32_t height, std::int32_t width, std::int32_t band) {
  // A band narrower than |height - width| would leave some rows empty;
  // widen it so every row has at least one cell (keeps linearization total).
  std::int64_t min_band = 0;
  if (height > width) min_band = static_cast<std::int64_t>(height) - width;
  require(band >= min_band,
          "DagDomain::banded: band too narrow, some rows would be empty");
  return DagDomain(Kind::Banded, height, width, band);
}

std::int64_t DagDomain::row_prefix(std::int32_t i) const {
  const std::int64_t n = i;
  switch (kind_) {
    case Kind::Rect:
      return n * width_;
    case Kind::UpperTriangular: {
      // Row r has (width - r) cells; prefix = sum_{r<i} (width - r).
      return n * width_ - n * (n - 1) / 2;
    }
    case Kind::Banded: {
      // Row r spans [max(0, r-band), min(width, r+band+1)), so
      //   prefix(i) = sum min(w, r+b+1) - sum max(0, r-b)  over r in [0, i).
      // Both sums have closed forms (clamped arithmetic series); this must
      // be O(1) because linearize() sits on the engines' hot path.
      const std::int64_t b = band_;
      const std::int64_t w = width_;
      // First sum: r + b + 1 while r < w - b, then clamped at w.
      std::int64_t c1 = w - b;
      if (c1 < 0) c1 = 0;
      if (c1 > n) c1 = n;
      std::int64_t sum_end = c1 * (b + 1) + c1 * (c1 - 1) / 2 + (n - c1) * w;
      // Second sum: rows r > b contribute r - b.
      std::int64_t c2 = n - (b + 1);
      if (c2 < 0) c2 = 0;
      std::int64_t sum_begin = c2 * (c2 + 1) / 2;
      return sum_end - sum_begin;
    }
  }
  return 0;
}

std::int32_t DagDomain::row_of_index(std::int64_t index) const {
  // Binary search for the last row whose prefix is <= index.
  std::int32_t lo = 0, hi = height_ - 1;
  while (lo < hi) {
    std::int32_t mid = lo + (hi - lo + 1) / 2;
    if (row_prefix(mid) <= index) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

VertexId DagDomain::delinearize(std::int64_t index) const {
  check_internal(index >= 0 && index < size_, "DagDomain::delinearize: index out of range");
  std::int32_t i;
  switch (kind_) {
    case Kind::Rect:
      i = static_cast<std::int32_t>(index / width_);
      break;
    case Kind::UpperTriangular:
    case Kind::Banded:
      i = row_of_index(index);
      break;
    default:
      i = 0;
  }
  std::int64_t offset = index - row_prefix(i);
  return VertexId{i, static_cast<std::int32_t>(row_begin(i) + offset)};
}

std::string_view DagDomain::kind_name() const {
  switch (kind_) {
    case Kind::Rect: return "rect";
    case Kind::UpperTriangular: return "upper-triangular";
    case Kind::Banded: return "banded";
  }
  return "?";
}

}  // namespace dpx10
