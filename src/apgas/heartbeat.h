// Heartbeat failure detection — replacing §VI-D's oracle death broadcast.
//
// Resilient X10 learns about a place death from its transport layer; the
// paper's experiment (and our FaultPlan seed implementation) idealized that
// into an oracle that announces the death the instant it happens, making
// detection latency invisible in Fig. 13. This module models the real
// mechanism: every place sends periodic heartbeats to place 0 over the
// modeled NIC; a place that misses `suspect_after` consecutive beats is
// *suspected* (schedulers stop routing work to it), and after a further
// `confirm_after` beats of silence it is *declared dead*, which is the
// moment §VI-D recovery actually begins. A suspected place that beats again
// is cleared — that is what distinguishes a straggler from a corpse.
//
// The detector is deliberately engine-agnostic: the SimEngine feeds it
// virtual-time beat arrivals, the ThreadedEngine feeds it wall-clock worker
// progress. The monitor role starts at place 0 but is not pinned there: the
// ledger (beat clocks, health states, pending transitions) models state
// that is replicated along a deterministic successor chain, so when the
// monitor itself dies the lowest-id survivor adopts the ledger via
// fail_over() and declares the old monitor dead like any other place. Only
// "all places dead" remains fatal — the engines raise DeadPlaceException
// for that case directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/error.h"

namespace dpx10 {

struct HeartbeatConfig {
  /// Master switch. When disabled the engines fall back to the oracle
  /// broadcast (recovery starts the instant the fault fires, as in the seed
  /// implementation — useful for isolating recovery cost from detection).
  bool enabled = true;
  double interval_s = 500.0e-6;     ///< beat period (virtual time, SimEngine)
  std::int32_t suspect_after = 3;   ///< missed beats before suspicion
  std::int32_t confirm_after = 3;   ///< further missed beats before death

  double suspect_delay() const { return interval_s * suspect_after; }
  double declare_delay() const {
    return interval_s * (suspect_after + confirm_after);
  }

  void validate() const {
    require(interval_s > 0.0, "HeartbeatConfig: interval_s must be positive");
    require(suspect_after > 0,
            "HeartbeatConfig: suspect_after must be positive");
    require(confirm_after > 0,
            "HeartbeatConfig: confirm_after must be positive");
  }
};

enum class PlaceHealth : std::uint8_t { Alive = 0, Suspected, Dead };

struct HealthTransition {
  std::int32_t place = -1;
  PlaceHealth to = PlaceHealth::Alive;
  double at = 0.0;
};

/// The monitor-side state machine. Not thread-safe: the SimEngine drives it
/// from the event loop, the ThreadedEngine from its single monitor thread.
class HeartbeatDetector {
 public:
  HeartbeatDetector(const HeartbeatConfig& cfg, std::int32_t nplaces,
                    double now);

  /// Records a beat from `place` arriving at time `at` (may be ahead of the
  /// caller's clock — the simulator stamps beats with their NIC completion
  /// time). A beat from a suspected place queues a Suspected->Alive
  /// transition for the next sweep. Beats from the current monitor or from
  /// dead places are ignored.
  void beat(std::int32_t place, double at);

  /// Advances the state machine to `now`, appending every transition to
  /// `out` (cleared suspicions first, then new suspicions/deaths).
  void sweep(double now, std::vector<HealthTransition>& out);

  PlaceHealth health(std::int32_t place) const;

  /// Marks a place dead without a transition (the engine already acted).
  void mark_dead(std::int32_t place);

  /// The place currently holding the monitor role (initially 0).
  std::int32_t monitor() const { return monitor_; }

  /// Coordinator failover: `successor` adopts the replicated ledger and
  /// becomes the monitor; the previous monitor is fenced as Dead (it is
  /// either truly dead or about to be evicted — an evicted monitor must
  /// never reclaim the role). The successor stops being monitored itself.
  void fail_over(std::int32_t successor);

  /// Deterministic successor chain: the lowest-id place that is neither
  /// dead in the ledger nor excluded by `is_down` (engine-side knowledge:
  /// places that crashed but are not yet declared). Returns -1 when no
  /// candidate remains — the "all places dead" fatal case.
  template <typename IsDown>
  std::int32_t successor(IsDown&& is_down) const {
    for (std::size_t p = 0; p < entries_.size(); ++p) {
      const auto place = static_cast<std::int32_t>(p);
      if (entries_[p].health == PlaceHealth::Dead) continue;
      if (is_down(place)) continue;
      return place;
    }
    return -1;
  }

  /// Re-baselines every non-dead place's beat clock to `now` and clears
  /// suspicion. Called after recovery (the world paused; silence during the
  /// pause is not evidence) and after a ThreadedEngine snapshot.
  void reset(double now);

 private:
  struct Entry {
    double last_beat = 0.0;
    PlaceHealth health = PlaceHealth::Alive;
  };

  HeartbeatConfig cfg_;
  std::int32_t monitor_ = 0;
  std::vector<Entry> entries_;
  std::vector<HealthTransition> pending_;  ///< beat-driven clears, FIFO
};

/// Lock-free "which places are currently suspected" bitmap shared between
/// the detector's owner and the scheduling hot path. Relaxed ordering is
/// fine: suspicion is advisory — acting on a stale bit only costs a
/// slightly worse placement decision, never correctness.
class SuspicionSet {
 public:
  explicit SuspicionSet(std::int32_t nplaces)
      : words_((static_cast<std::size_t>(nplaces) + 63) / 64) {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  void set(std::int32_t place) {
    words_[word(place)].fetch_or(bit(place), std::memory_order_relaxed);
    any_.store(true, std::memory_order_relaxed);
  }

  void clear(std::int32_t place) {
    words_[word(place)].fetch_and(~bit(place), std::memory_order_relaxed);
    refresh_any();
  }

  void clear_all() {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
    any_.store(false, std::memory_order_relaxed);
  }

  bool test(std::int32_t place) const {
    return (words_[word(place)].load(std::memory_order_relaxed) &
            bit(place)) != 0;
  }

  /// Fast-path gate: false means no place is suspected and schedulers can
  /// take their exact legacy path (preserving RNG streams).
  bool any() const { return any_.load(std::memory_order_relaxed); }

 private:
  static std::size_t word(std::int32_t place) {
    return static_cast<std::size_t>(place) / 64;
  }
  static std::uint64_t bit(std::int32_t place) {
    return std::uint64_t{1} << (static_cast<std::uint32_t>(place) % 64);
  }
  void refresh_any() {
    for (const auto& w : words_) {
      if (w.load(std::memory_order_relaxed) != 0) {
        any_.store(true, std::memory_order_relaxed);
        return;
      }
    }
    any_.store(false, std::memory_order_relaxed);
  }

  std::vector<std::atomic<std::uint64_t>> words_;
  std::atomic<bool> any_{false};
};

}  // namespace dpx10
