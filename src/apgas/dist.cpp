#include "apgas/dist.h"

#include <cmath>

#include "common/error.h"

namespace dpx10 {

std::string_view dist_kind_name(DistKind kind) {
  switch (kind) {
    case DistKind::BlockRow: return "block-row";
    case DistKind::BlockCol: return "block-col";
    case DistKind::BlockCyclicRow: return "block-cyclic-row";
    case DistKind::Block2D: return "block-2d";
  }
  return "?";
}

Dist::Dist(std::int32_t nslots) : nslots_(nslots) {
  require(nslots > 0, "Dist: need at least one slot");
}

std::int32_t block_index(std::int64_t coord, std::int64_t extent, std::int32_t nblocks) {
  // Standard balanced block partition: block b owns coordinates
  // [b*extent/nblocks, (b+1)*extent/nblocks). The inverse below is exact
  // for all extents because (coord*nblocks + nblocks - 1) / extent can
  // overshoot by at most the rounding we then clamp away.
  std::int64_t b = (coord * nblocks) / extent;
  if (b >= nblocks) b = nblocks - 1;
  // Fix rare off-by-one from integer division: ensure coord is inside b.
  while (b > 0 && (b * extent) / nblocks > coord) --b;
  while (((b + 1) * extent) / nblocks <= coord && b + 1 < nblocks) ++b;
  return static_cast<std::int32_t>(b);
}

namespace {

class BlockRowDist final : public Dist {
 public:
  BlockRowDist(std::int32_t nslots, const DagDomain& domain)
      : Dist(nslots), height_(domain.height()) {}

  std::int32_t slot_of(VertexId id) const override {
    return block_index(id.i, height_, nslots_);
  }

  DistKind kind() const override { return DistKind::BlockRow; }

 private:
  std::int64_t height_;
};

class BlockColDist final : public Dist {
 public:
  BlockColDist(std::int32_t nslots, const DagDomain& domain)
      : Dist(nslots), width_(domain.width()) {}

  std::int32_t slot_of(VertexId id) const override {
    return block_index(id.j, width_, nslots_);
  }

  DistKind kind() const override { return DistKind::BlockCol; }

 private:
  std::int64_t width_;
};

class BlockCyclicRowDist final : public Dist {
 public:
  BlockCyclicRowDist(std::int32_t nslots, const DagDomain& domain) : Dist(nslots) {
    // Pick a block height that deals each slot several blocks while keeping
    // blocks tall enough that wavefronts stay mostly local.
    std::int64_t target_blocks = static_cast<std::int64_t>(nslots) * 8;
    block_ = domain.height() / target_blocks;
    if (block_ < 1) block_ = 1;
  }

  std::int32_t slot_of(VertexId id) const override {
    return static_cast<std::int32_t>((id.i / block_) % nslots_);
  }

  DistKind kind() const override { return DistKind::BlockCyclicRow; }

 private:
  std::int64_t block_;
};

class Block2DDist final : public Dist {
 public:
  Block2DDist(std::int32_t nslots, const DagDomain& domain)
      : Dist(nslots), height_(domain.height()), width_(domain.width()) {
    // Most-square factorization pr × pc == nslots with pr <= pc.
    pr_ = 1;
    for (std::int32_t f = 1; static_cast<std::int64_t>(f) * f <= nslots; ++f) {
      if (nslots % f == 0) pr_ = f;
    }
    pc_ = nslots / pr_;
  }

  std::int32_t slot_of(VertexId id) const override {
    std::int32_t br = block_index(id.i, height_, pr_);
    std::int32_t bc = block_index(id.j, width_, pc_);
    return br * pc_ + bc;
  }

  DistKind kind() const override { return DistKind::Block2D; }

 private:
  std::int64_t height_;
  std::int64_t width_;
  std::int32_t pr_ = 1;
  std::int32_t pc_ = 1;
};

}  // namespace

std::unique_ptr<Dist> make_dist(DistKind kind, std::int32_t nslots, const DagDomain& domain) {
  switch (kind) {
    case DistKind::BlockRow: return std::make_unique<BlockRowDist>(nslots, domain);
    case DistKind::BlockCol: return std::make_unique<BlockColDist>(nslots, domain);
    case DistKind::BlockCyclicRow:
      return std::make_unique<BlockCyclicRowDist>(nslots, domain);
    case DistKind::Block2D: return std::make_unique<Block2DDist>(nslots, domain);
  }
  throw ConfigError("make_dist: unknown DistKind");
}

}  // namespace dpx10
