// MemoryGovernor<T> — anti-dependency-driven cell retirement, per-place
// memory accounting, and out-of-core spill (docs/MEMORY.md).
//
// The Dag contract makes anti_dependencies(v) the exact consumer set of
// v's value, so the governor can track, per cell, how many consumers have
// not yet published. When that count reaches zero the payload is retired:
// released from the DistArray (retire mode) or first preserved in the
// owner place's file-backed SpillStore (spill mode). The engines call
//   rebuild()      after initialize_cells() and after every recovery,
//   on_publish()   when a cell's value is stored and made Finished,
//   on_consumed()  once per (consumer, dependency) edge after the consumer
//                  publishes (uniform across local reads, cache hits,
//                  fetches, and coalesced batches),
//   read()         in spill mode, for every dependency value read.
//
// Concurrency: consumer counts are lock-free atomics; the acq_rel decrement
// chain guarantees every consumer's value read happens-before the final
// decrement that triggers retirement, so retire-mode reads stay lock-free.
// Pressure spill (--memory-limit) retires cells that still HAVE pending
// consumers, which is why spill mode routes every read through read() under
// the owner place's mutex. The simulator calls the same API from one thread.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "apgas/dist_array.h"
#include "check/hooks.h"
#include "common/error.h"
#include "core/dag.h"
#include "core/value_traits.h"
#include "mem/options.h"
#include "mem/spill_codec.h"
#include "mem/spill_store.h"

namespace dpx10::mem {

/// One place's memory ledger. live_* are gauges over currently resident
/// payloads; the rest are cumulative over the whole run (they survive
/// recovery rebuilds, like PlaceStats traffic counters).
struct MemAccount {
  std::uint64_t live_cells = 0;
  std::uint64_t live_bytes = 0;
  std::uint64_t live_cells_peak = 0;
  std::uint64_t live_bytes_peak = 0;
  std::uint64_t retired_cells = 0;  ///< payloads released from the array
  std::uint64_t spilled_cells = 0;  ///< payloads written to the spill file
  std::uint64_t spill_reads = 0;    ///< demand reads served from the file
  std::uint64_t spill_bytes = 0;    ///< cumulative bytes written to the file
};

template <typename T>
class MemoryGovernor {
 public:
  MemoryGovernor(const MemoryOptions& opts, std::int32_t num_places)
      : opts_(opts) {
    require(opts_.retirement != RetirementMode::Off,
            "MemoryGovernor constructed with --retirement=off");
    if (spill_on()) {
      require(SpillCodec<T>::available,
              "MemoryGovernor: --retirement=spill needs a SpillCodec "
              "specialization for this value type");
    }
    places_.reserve(static_cast<std::size_t>(num_places));
    for (std::int32_t p = 0; p < num_places; ++p) {
      places_.push_back(std::make_unique<PerPlace>());
      if (spill_on()) places_.back()->spill.configure(opts_.spill_dir, p);
    }
  }

  ~MemoryGovernor() {
    // Release whatever is still resident from the shared gauge so a host
    // multiplexing runs (src/serve) sees this run's bytes disappear when
    // the engine is torn down.
    if (opts_.budget_hook) {
      for (auto& place : places_) {
        std::lock_guard<std::mutex> lock(place->mu);
        if (place->acct.live_bytes > 0) {
          opts_.budget_hook->on_live_sub(place->acct.live_bytes);
        }
      }
    }
  }

  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  bool spill_on() const { return opts_.retirement == RetirementMode::Spill; }
  const MemoryOptions& options() const { return opts_; }

  /// Re-derives consumer counts and the live ledger from the array's
  /// current states. Called after initialize_cells() and after every
  /// recovery (the fault and the restore policy both change which
  /// consumers are still pending). Cumulative counters and peaks are kept;
  /// spill files are kept so recovery can read values retired before the
  /// death. A Finished cell whose consumers all happen to be done already
  /// stays resident — nothing will ever decrement it to zero — which only
  /// arises transiently around recovery and keeps the pass conservative.
  void rebuild(const DistArray<T>& array, const Dag& dag) {
    const DagDomain& domain = array.domain();
    const std::int64_t n = domain.size();
    consumers_ = std::vector<std::atomic<std::int32_t>>(
        static_cast<std::size_t>(n));
    for (auto& place : places_) {
      std::lock_guard<std::mutex> lock(place->mu);
      if (opts_.budget_hook && place->acct.live_bytes > 0) {
        opts_.budget_hook->on_live_sub(place->acct.live_bytes);
      }
      place->acct.live_cells = 0;
      place->acct.live_bytes = 0;
      place->fifo.clear();
    }
    std::vector<VertexId> anti;
    for (std::int64_t idx = 0; idx < n; ++idx) {
      const Cell<T>& cell = array.cell(idx);
      const CellState state = cell.load_state(std::memory_order_relaxed);
      if (state != CellState::Prefinished) {
        anti.clear();
        dag.anti_dependencies(domain.delinearize(idx), anti);
        std::int32_t pending = 0;
        for (VertexId a : anti) {
          // Finished/Retired successors already consumed; Prefinished ones
          // never run, so they never will.
          if (array.cell(a).load_state(std::memory_order_relaxed) ==
              CellState::Unfinished) {
            ++pending;
          }
        }
        consumers_[static_cast<std::size_t>(idx)].store(
            pending, std::memory_order_relaxed);
      }
      if (state == CellState::Finished) {
        PerPlace& place = place_of(array, idx);
        std::lock_guard<std::mutex> lock(place.mu);
        account_live_locked(place, value_wire_bytes(cell.value));
        place.fifo.push_back(idx);
      }
    }
  }

  /// Accounts a freshly finished cell and, in spill mode with a memory
  /// limit, retires the owner place's oldest resident cells until the place
  /// is back under budget. Victims (including, possibly, `idx` itself) are
  /// appended to `evicted` so the caller can drop their cache entries.
  void on_publish(DistArray<T>& array, std::int64_t idx,
                  std::vector<std::int64_t>* evicted = nullptr) {
    PerPlace& place = place_of(array, idx);
    check::sync_point(check::SyncPoint::GovernorPublish, owner_of(array, idx));
    std::lock_guard<std::mutex> lock(place.mu);
    account_live_locked(place, value_wire_bytes(array.cell(idx).value));
    place.fifo.push_back(idx);
    if (!spill_on()) return;
    if (opts_.memory_limit_bytes != 0) {
      while (place.acct.live_bytes > opts_.memory_limit_bytes &&
             !place.fifo.empty()) {
        const std::int64_t victim = place.fifo.front();
        place.fifo.pop_front();
        Cell<T>& cell = array.cell(victim);
        if (cell.load_state(std::memory_order_relaxed) != CellState::Finished) {
          continue;  // already retired through the refcount path
        }
        retire_locked(place, cell, victim);
        if (evicted) evicted->push_back(victim);
      }
    }
    // Global pressure: the shared arbiter decides whether THIS run should
    // shed. Victims come from the publishing place's FIFO — the only one
    // whose lock we hold — which converges because every place publishes.
    if (opts_.budget_hook) {
      while (opts_.budget_hook->should_spill(opts_.budget_priority) &&
             !place.fifo.empty()) {
        const std::int64_t victim = place.fifo.front();
        place.fifo.pop_front();
        Cell<T>& cell = array.cell(victim);
        if (cell.load_state(std::memory_order_relaxed) != CellState::Finished) {
          continue;
        }
        retire_locked(place, cell, victim);
        if (evicted) evicted->push_back(victim);
      }
    }
  }

  /// One consumer of `dep_idx` has published. Returns true iff this was the
  /// last pending consumer and the payload was retired here (the caller
  /// then drops the cell's cache entries everywhere).
  bool on_consumed(DistArray<T>& array, std::int64_t dep_idx) {
    Cell<T>& cell = array.cell(dep_idx);
    if (cell.load_state(std::memory_order_relaxed) == CellState::Prefinished) {
      return false;  // initializer cells are not refcounted
    }
    auto& count = consumers_[static_cast<std::size_t>(dep_idx)];
    const std::int32_t left =
        count.fetch_sub(1, std::memory_order_acq_rel) - 1;
    check_internal(left >= 0,
                   "MemoryGovernor: consumer count underflow — "
                   "anti_dependencies() is not the dual of dependencies()");
    if (left != 0) return false;
    PerPlace& place = place_of(array, dep_idx);
    check::sync_point(check::SyncPoint::GovernorConsume, owner_of(array, dep_idx));
    std::lock_guard<std::mutex> lock(place.mu);
    if (cell.load_state(std::memory_order_relaxed) != CellState::Finished) {
      return false;  // pressure spill got there first
    }
    retire_locked(place, cell, dep_idx);
    return true;
  }

  /// Spill-mode read of any done cell's value, resident or retired. The
  /// owner-place lock orders it against pressure retirement.
  void read(const DistArray<T>& array, std::int64_t idx, T& out) {
    PerPlace& place = place_of(array, idx);
    std::lock_guard<std::mutex> lock(place.mu);
    const Cell<T>& cell = array.cell(idx);
    if (cell.load_state(std::memory_order_acquire) == CellState::Retired) {
      const bool ok = spill_get_locked(place, idx, out);
      check_internal(ok, "MemoryGovernor: retired cell missing from spill");
      ++place.acct.spill_reads;
    } else {
      out = cell.value;
    }
  }

  /// Recovery helpers: direct spill access by place, bypassing the array
  /// (the dead place's slots are already wiped when these run).
  bool spill_read(std::int32_t place_id, std::int64_t key, T& out) {
    PerPlace& place = *places_[static_cast<std::size_t>(place_id)];
    std::lock_guard<std::mutex> lock(place.mu);
    return spill_get_locked(place, key, out);
  }

  void spill_write(std::int32_t place_id, std::int64_t key, const T& value) {
    PerPlace& place = *places_[static_cast<std::size_t>(place_id)];
    std::lock_guard<std::mutex> lock(place.mu);
    std::vector<std::byte> bytes;
    SpillCodec<T>::encode(value, bytes);
    place.spill.put(key, bytes.data(), bytes.size());
    ++place.acct.spilled_cells;
    place.acct.spill_bytes += bytes.size();
  }

  bool spill_has(std::int32_t place_id, std::int64_t key) const {
    PerPlace& place = *places_[static_cast<std::size_t>(place_id)];
    std::lock_guard<std::mutex> lock(place.mu);
    return place.spill.has(key);
  }

  MemAccount account(std::int32_t place_id) const {
    PerPlace& place = *places_[static_cast<std::size_t>(place_id)];
    std::lock_guard<std::mutex> lock(place.mu);
    return place.acct;
  }

  MemAccount totals() const {
    MemAccount sum;
    for (std::int32_t p = 0; p < static_cast<std::int32_t>(places_.size());
         ++p) {
      const MemAccount a = account(p);
      sum.live_cells += a.live_cells;
      sum.live_bytes += a.live_bytes;
      sum.live_cells_peak += a.live_cells_peak;
      sum.live_bytes_peak += a.live_bytes_peak;
      sum.retired_cells += a.retired_cells;
      sum.spilled_cells += a.spilled_cells;
      sum.spill_reads += a.spill_reads;
      sum.spill_bytes += a.spill_bytes;
    }
    return sum;
  }

  std::int32_t num_places() const {
    return static_cast<std::int32_t>(places_.size());
  }

 private:
  struct PerPlace {
    mutable std::mutex mu;
    MemAccount acct;
    /// Resident finished cells in publish order — pressure-spill victims
    /// are popped from the front; refcount-retired entries are skipped
    /// lazily.
    std::deque<std::int64_t> fifo;
    SpillStore spill;
  };

  PerPlace& place_of(const DistArray<T>& array, std::int64_t idx) const {
    return *places_[static_cast<std::size_t>(owner_of(array, idx))];
  }

  static std::int32_t owner_of(const DistArray<T>& array, std::int64_t idx) {
    return array.owner_place(array.domain().delinearize(idx));
  }

  void account_live_locked(PerPlace& place, std::uint64_t bytes) {
    if (opts_.budget_hook) opts_.budget_hook->on_live_add(bytes);
    ++place.acct.live_cells;
    place.acct.live_bytes += bytes;
    place.acct.live_cells_peak =
        std::max(place.acct.live_cells_peak, place.acct.live_cells);
    place.acct.live_bytes_peak =
        std::max(place.acct.live_bytes_peak, place.acct.live_bytes);
  }

  void retire_locked(PerPlace& place, Cell<T>& cell, std::int64_t idx) {
    const std::uint64_t bytes = value_wire_bytes(cell.value);
    if (spill_on()) {
      std::vector<std::byte> encoded;
      SpillCodec<T>::encode(cell.value, encoded);
      place.spill.put(idx, encoded.data(), encoded.size());
      ++place.acct.spilled_cells;
      place.acct.spill_bytes += encoded.size();
    }
    check_internal(place.acct.live_cells > 0 && place.acct.live_bytes >= bytes,
                   "MemoryGovernor: live ledger underflow");
    if (opts_.budget_hook) opts_.budget_hook->on_live_sub(bytes);
    --place.acct.live_cells;
    place.acct.live_bytes -= bytes;
    cell.retire_value(std::memory_order_release);
    ++place.acct.retired_cells;
  }

  bool spill_get_locked(PerPlace& place, std::int64_t key, T& out) {
    std::vector<std::byte> bytes;
    if (!place.spill.get(key, bytes)) return false;
    return SpillCodec<T>::decode(bytes.data(), bytes.size(), out);
  }

  MemoryOptions opts_;
  std::vector<std::unique_ptr<PerPlace>> places_;
  std::vector<std::atomic<std::int32_t>> consumers_;
};

}  // namespace dpx10::mem
