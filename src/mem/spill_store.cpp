#include "mem/spill_store.h"

#include <filesystem>

#include "common/error.h"

namespace dpx10::mem {

namespace fs = std::filesystem;

SpillStore::~SpillStore() { clear(); }

void SpillStore::configure(const std::string& dir, int place) {
  clear();
  fs::path base = dir.empty() ? fs::temp_directory_path() : fs::path(dir);
  std::error_code ec;
  fs::create_directories(base, ec);  // best effort; open_file reports failure
  // getpid-equivalent uniqueness without <unistd.h>: the store's address is
  // unique within the process and stable for its lifetime.
  path_ = (base / ("dpx10-spill-p" + std::to_string(place) + "-" +
                   std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
                   ".bin"))
              .string();
}

void SpillStore::open_file() {
  if (file_.is_open()) return;
  require(!path_.empty(), "SpillStore: put() before configure()");
  // trunc creates the file; then reopen for mixed read/append positioning.
  file_.open(path_, std::ios::binary | std::ios::out | std::ios::trunc);
  require(file_.is_open(), "SpillStore: cannot create spill file " + path_);
  file_.close();
  file_.open(path_, std::ios::binary | std::ios::in | std::ios::out);
  require(file_.is_open(), "SpillStore: cannot open spill file " + path_);
}

void SpillStore::put(std::int64_t key, const std::byte* data,
                     std::size_t size) {
  open_file();
  file_.seekp(static_cast<std::streamoff>(end_offset_));
  file_.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  require(file_.good(), "SpillStore: write failed on " + path_);
  file_.flush();
  auto it = index_.find(key);
  if (it != index_.end()) bytes_stored_ -= it->second.size;
  index_[key] = Extent{end_offset_, size};
  end_offset_ += size;
  bytes_stored_ += size;
  bytes_written_ += size;
}

bool SpillStore::get(std::int64_t key, std::vector<std::byte>& out) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  out.resize(it->second.size);
  file_.seekg(static_cast<std::streamoff>(it->second.offset));
  file_.read(reinterpret_cast<char*>(out.data()),
             static_cast<std::streamsize>(it->second.size));
  require(file_.good(), "SpillStore: read failed on " + path_);
  return true;
}

void SpillStore::clear() {
  if (file_.is_open()) file_.close();
  if (!path_.empty()) {
    std::error_code ec;
    fs::remove(path_, ec);
  }
  index_.clear();
  end_offset_ = 0;
  bytes_stored_ = 0;
  bytes_written_ = 0;
}

}  // namespace dpx10::mem
