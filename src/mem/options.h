// MemoryOptions — knobs of the memory governor (src/mem, docs/MEMORY.md).
//
// The paper's DAG API exposes getAntiDependency precisely so the runtime
// can know when a cell's value will never be read again; RetirementMode
// decides what the engines do with that knowledge. Off (the default) is the
// legacy behaviour — every computed cell stays resident from first write to
// the end of the run — and is byte-identical to the pre-governor runtime.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/error.h"

namespace dpx10::mem {

/// Cross-run arbitration of live payload bytes. A host that multiplexes
/// several engine instances (src/serve) installs one shared hook in every
/// job's MemoryOptions; each MemoryGovernor reports every live-gauge change
/// and, in spill mode, asks on publish whether ITS run should shed resident
/// cells to relieve global pressure. Implementations must be thread-safe:
/// calls arrive concurrently from every place mutex of every governor.
/// The default (no hook) is byte-identical to the standalone runtime.
class BudgetHook {
 public:
  virtual ~BudgetHook() = default;
  /// `bytes` of payload became resident in the calling governor.
  virtual void on_live_add(std::uint64_t bytes) = 0;
  /// `bytes` of payload left residency (retired, spilled, or rebuilt away).
  virtual void on_live_sub(std::uint64_t bytes) = 0;
  /// True while the global gauge is over budget AND the calling run (the
  /// one identified by `priority`, higher = more important) is the one that
  /// should shed next. Re-consulted after every victim so pressure stops as
  /// soon as either condition clears.
  virtual bool should_spill(std::int32_t priority) const = 0;
};

enum class RetirementMode : std::uint8_t {
  /// Legacy: no consumer refcounting, no accounting, no spill.
  Off = 0,
  /// Release a cell's payload from the DistArray once its last pending
  /// consumer has published. The value is gone for good — recovery must
  /// recompute any retired cell a resurrected consumer needs.
  Retire,
  /// Like Retire, but the payload is written to the owner place's
  /// file-backed SpillStore first, so traceback, snapshots and recovery can
  /// still read it. Also enables the --memory-limit pressure spill.
  Spill,
};

inline std::string_view retirement_mode_name(RetirementMode m) {
  switch (m) {
    case RetirementMode::Off: return "off";
    case RetirementMode::Retire: return "retire";
    case RetirementMode::Spill: return "spill";
  }
  return "?";
}

inline bool parse_retirement_mode(const std::string& name, RetirementMode& out) {
  if (name == "off") { out = RetirementMode::Off; return true; }
  if (name == "retire") { out = RetirementMode::Retire; return true; }
  if (name == "spill") { out = RetirementMode::Spill; return true; }
  return false;
}

struct MemoryOptions {
  RetirementMode retirement = RetirementMode::Off;
  /// Spill mode only: per-place budget of live payload bytes. When a
  /// publish pushes a place past it, the oldest resident finished cells are
  /// spilled even though consumers are still pending (they read the values
  /// back from the spill file). 0 = no pressure limit.
  std::uint64_t memory_limit_bytes = 0;
  /// Spill mode: directory for the per-place spill files. Empty = the
  /// system temporary directory. Files are removed when the run ends.
  std::string spill_dir;
  /// Shared cross-run byte arbiter (src/serve). Null = standalone run, no
  /// global accounting or pressure. Requires --retirement=spill to actually
  /// shed anything; in retire mode the hook only sees the gauges.
  std::shared_ptr<BudgetHook> budget_hook;
  /// This run's weight in the arbiter's victim choice: when the global
  /// budget is exceeded, the lowest-priority run holding bytes sheds first.
  std::int32_t budget_priority = 0;

  void validate() const {
    require(memory_limit_bytes == 0 || retirement == RetirementMode::Spill,
            "MemoryOptions: --memory-limit requires --retirement=spill "
            "(a limit without a spill target would have to drop live data)");
    require(spill_dir.empty() || retirement == RetirementMode::Spill,
            "MemoryOptions: --spill-dir requires --retirement=spill");
  }
};

}  // namespace dpx10::mem
