// SpillCodec<T> — fixed encoding of a cell payload for the SpillStore.
//
// The primary template covers trivially-copyable payloads (all the scalar
// DP apps) with a raw memcpy. Types that own heap storage must provide a
// specialization (see ValueTraits for the same pattern with wire_bytes);
// TileEdge<C> gets one in src/core/tiling.h. A type without a usable codec
// still compiles — `available` is false and the governor rejects
// --retirement=spill for it at construction time instead.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace dpx10::mem {

template <typename T, typename Enable = void>
struct SpillCodec {
  static constexpr bool available = std::is_trivially_copyable_v<T>;

  static void encode(const T& value, std::vector<std::byte>& out) {
    if constexpr (available) {
      out.resize(sizeof(T));
      std::memcpy(out.data(), &value, sizeof(T));
    }
  }

  static bool decode(const std::byte* data, std::size_t size, T& out) {
    if constexpr (available) {
      if (size != sizeof(T)) return false;
      std::memcpy(&out, data, sizeof(T));
      return true;
    } else {
      (void)data; (void)size; (void)out;
      return false;
    }
  }
};

}  // namespace dpx10::mem
