// SpillStore — append-only, file-backed byte store for one place's retired
// cell payloads.
//
// One store per place (sim: all in one process, distinct files; threaded:
// one per place struct). Values are written once at retirement and read
// back for pending consumers, traceback (DagView), snapshot capture and
// recovery. The file is append-only — a cell respilled after recovery gets
// a new extent and the index simply points at the newest one; the file is
// deleted when the store is destroyed or configured anew.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

namespace dpx10::mem {

class SpillStore {
 public:
  SpillStore() = default;
  ~SpillStore();

  SpillStore(const SpillStore&) = delete;
  SpillStore& operator=(const SpillStore&) = delete;

  /// Chooses the backing file (created lazily on first put). `dir` empty
  /// means the system temporary directory. Drops any previous contents.
  void configure(const std::string& dir, int place);

  bool has(std::int64_t key) const { return index_.count(key) != 0; }

  /// Appends `size` bytes for `key`, replacing any previous extent.
  void put(std::int64_t key, const std::byte* data, std::size_t size);

  /// Reads `key`'s payload into `out`; false if the key was never spilled.
  bool get(std::int64_t key, std::vector<std::byte>& out);

  /// Forgets all entries and removes the backing file.
  void clear();

  std::size_t entries() const { return index_.size(); }
  /// Bytes addressable through the index (latest extent per key).
  std::uint64_t bytes_stored() const { return bytes_stored_; }
  /// Cumulative bytes appended to the file, including superseded extents.
  std::uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  struct Extent {
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
  };

  void open_file();

  std::string path_;
  std::fstream file_;
  std::unordered_map<std::int64_t, Extent> index_;
  std::uint64_t end_offset_ = 0;
  std::uint64_t bytes_stored_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace dpx10::mem
