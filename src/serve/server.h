// Server — the dpx10serve daemon core (docs/SERVE.md).
//
// Listens on a Unix-domain stream socket and speaks a line-delimited JSON
// protocol: each request is one JSON object on one line, each response one
// JSON object on one line, many requests per connection. Operations:
//   ping    liveness + build/protocol identification
//   submit  admit a JobSpec (429 when the queue is full, 503 draining)
//   status  one job's state, result summary and artifact paths
//   cancel  dequeue a still-queued job
//   stats   scheduler occupancy, per-tenant fairness counters, memory gauge
//   drain   stop admitting, finish everything admitted, then respond
//
// One dispatcher thread leases worker slots through the FairScheduler and
// spawns an executor thread per running job; each executor builds a fully
// job-private engine (its own RuntimeOptions, memory governor, status
// file), runs dp::run_dp_app, writes the artifact bundle into the
// Registry, and records the manifest entry. The only cross-job couplings
// are the slot pool and the MemoryArbiter's byte budget — both explicit.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/budget.h"
#include "serve/registry.h"
#include "serve/scheduler.h"

namespace dpx10::serve {

struct ServerOptions {
  std::string socket_path;   ///< AF_UNIX path (unlinked+rebound on start)
  std::string registry_dir;  ///< Registry root
  std::int32_t total_slots = 4;
  std::size_t max_queue = 16;
  /// Global live-bytes budget arbitrated across spill-mode jobs; 0 = off.
  std::uint64_t mem_budget_bytes = 0;
  /// WFQ weights; tenants not listed default to weight 1.
  std::map<std::string, std::uint64_t> tenant_weights;

  void validate() const;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and starts the accept + dispatcher threads. Throws
  /// Error if the socket cannot be bound.
  void start();

  /// Graceful shutdown: reject new submits, finish every admitted job,
  /// stop the dispatcher, close the listener and every connection, join
  /// all threads, unlink the socket. Idempotent.
  void drain_and_stop();

  /// True once a client's drain request has fully completed — the signal
  /// for the daemon main loop to exit.
  bool drain_requested() const {
    return drain_done_.load(std::memory_order_acquire);
  }

  /// Protocol entry point, public for tests: one request line in, one
  /// response line out (no trailing newline).
  std::string handle_line(const std::string& line);

  FairScheduler& scheduler() { return scheduler_; }
  Registry& registry() { return registry_; }
  MemoryArbiter& arbiter() { return arbiter_; }

 private:
  void accept_loop();
  void dispatch_loop();
  void serve_connection(int fd);
  void run_job(std::int64_t id);

  Json op_submit(const Json& req);
  Json op_status(const Json& req);
  Json op_cancel(const Json& req);
  Json op_stats();
  Json op_ping();
  Json op_drain();

  ServerOptions opts_;
  Registry registry_;
  MemoryArbiter arbiter_;
  FairScheduler scheduler_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::mutex threads_mu_;  ///< guards conn_threads_, job_threads_, conn_fds_
  std::vector<std::thread> conn_threads_;
  std::vector<std::thread> job_threads_;
  std::set<int> conn_fds_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> drain_done_{false};
  bool stopped_ = false;  ///< drain_and_stop ran to completion
};

}  // namespace dpx10::serve
