// Client — blocking connection to a dpx10serve daemon (docs/SERVE.md).
//
// Used by dpx10submit and the serve tests. One connection, many
// request/response round trips, line-delimited JSON both ways.
#pragma once

#include <string>

#include "serve/json.h"

namespace dpx10::serve {

class Client {
 public:
  /// Connects to the daemon's Unix socket; throws Error on failure.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One round trip: sends `req` as a line, returns the parsed response.
  /// Throws Error if the daemon hangs up mid-exchange.
  Json request(const Json& req);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last response line
};

}  // namespace dpx10::serve
