// MemoryArbiter — the serve-side implementation of mem::BudgetHook.
//
// One arbiter guards one global live-bytes budget across every job the
// daemon is multiplexing. Each spill-mode job attaches and receives its own
// per-job hook (a JobLease) that forwards gauge changes with the job's
// identity; the governor's pressure loop then asks should_spill() on every
// publish, and the arbiter answers yes only while
//   (a) the global gauge is over budget, and
//   (b) the asking job is the shedding victim: the lowest-priority job
//       currently holding bytes, newest submission breaking ties.
// So when the fleet is over budget exactly one job sheds at a time, and it
// is always the least important one — a high-priority job's working set is
// never evicted to make room for a low-priority one.
//
// Thread-safety: gauges are plain atomics; the victim choice takes a mutex
// but only when the budget is actually exceeded (the common under-budget
// path is one relaxed load).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "mem/options.h"

namespace dpx10::serve {

class MemoryArbiter {
 public:
  /// budget_bytes == 0 disables arbitration: leases still account (stats
  /// show the global gauge) but should_spill is always false.
  explicit MemoryArbiter(std::uint64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  /// Per-job hook to install as MemoryOptions::budget_hook. The lease
  /// detaches itself when the job's governor releases its last byte AND
  /// the shared_ptr dies, so a finished job can never be chosen as victim.
  std::shared_ptr<mem::BudgetHook> attach(std::int64_t job_id,
                                          std::int32_t priority);

  std::uint64_t live_bytes() const {
    return live_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t budget_bytes() const { return budget_bytes_; }
  /// Cumulative count of should_spill() == true answers (i.e. victim
  /// publishes that shed at least one cell) — the "arb_spills" stat.
  std::uint64_t pressure_hits() const {
    return pressure_hits_.load(std::memory_order_relaxed);
  }

 private:
  class JobLease;

  /// True iff the job is the current victim (see file comment).
  bool is_victim(const JobLease& asking) const;

  const std::uint64_t budget_bytes_;
  std::atomic<std::uint64_t> live_bytes_{0};
  mutable std::atomic<std::uint64_t> pressure_hits_{0};
  mutable std::mutex mu_;  ///< guards leases_
  std::vector<JobLease*> leases_;
};

}  // namespace dpx10::serve
