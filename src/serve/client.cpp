#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "common/error.h"

namespace dpx10::serve {

Client::Client(const std::string& socket_path) {
  require(socket_path.size() < sizeof(sockaddr_un::sun_path),
          "Client: socket path too long for AF_UNIX");
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(fd_ >= 0, "Client: socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error("Client: cannot connect to '" + socket_path + "': " + why);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Json Client::request(const Json& req) {
  const std::string line = req.dump() + "\n";
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0 && errno == EINTR) continue;
    require(n > 0, "Client: daemon hung up while writing request");
    off += static_cast<std::size_t>(n);
  }
  char chunk[4096];
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      const std::string resp = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return Json::parse(resp);
    }
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    require(n > 0, "Client: daemon hung up before responding");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace dpx10::serve
