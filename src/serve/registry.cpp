#include "serve/registry.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace dpx10::serve {

namespace fs = std::filesystem;

Registry::Registry(std::string root) : root_(std::move(root)) {
  require(!root_.empty(), "Registry: empty root directory");
  std::error_code ec;
  fs::create_directories(fs::path(root_) / "jobs", ec);
  require(!ec, "Registry: cannot create '" + root_ + "/jobs': " + ec.message());
  const fs::path manifest_path = fs::path(root_) / "manifest.json";
  if (fs::exists(manifest_path)) {
    std::ifstream is(manifest_path);
    std::stringstream buf;
    buf << is.rdbuf();
    const Json m = Json::parse(buf.str());
    require(m.at("dpx10_serve_registry").as_int() == 1,
            "Registry: '" + manifest_path.string() +
                "' is not a dpx10 serve registry manifest");
    for (const Json& entry : m.at("jobs").items()) {
      entries_[entry.at("id").as_int()] = entry;
    }
  }
}

std::string Registry::job_dir(std::int64_t id) const {
  const fs::path dir = fs::path(root_) / "jobs" / std::to_string(id);
  std::error_code ec;
  fs::create_directories(dir, ec);
  require(!ec, "Registry: cannot create '" + dir.string() + "': " + ec.message());
  return dir.string();
}

std::string Registry::artifact_rel(std::int64_t id, const std::string& name) {
  return "jobs/" + std::to_string(id) + "/" + name;
}

std::string Registry::artifact_abs(std::int64_t id,
                                   const std::string& name) const {
  return (fs::path(root_) / artifact_rel(id, name)).string();
}

void Registry::record(const JobRecord& job) {
  Json entry = Json::object();
  entry.set("id", job.id);
  entry.set("tenant", job.spec.tenant);
  entry.set("app", job.spec.app);
  entry.set("engine", job.spec.engine);
  entry.set("vertices", job.spec.vertices);
  entry.set("priority", job.spec.priority);
  entry.set("state", std::string(job_state_name(job.state)));
  entry.set("elapsed_s", job.elapsed_seconds);
  entry.set("computed", job.computed);
  if (!job.error.empty()) entry.set("error", job.error);
  Json arts = Json::array();
  for (const std::string& a : job.artifacts) arts.push(a);
  entry.set("artifacts", arts);
  std::lock_guard<std::mutex> lock(mu_);
  entries_[job.id] = std::move(entry);
  write_manifest_locked();
}

Json Registry::manifest() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json m = Json::object();
  m.set("dpx10_serve_registry", 1);
  Json jobs = Json::array();
  for (const auto& [id, entry] : entries_) jobs.push(entry);
  m.set("jobs", jobs);
  return m;
}

void Registry::write_manifest_locked() const {
  Json m = Json::object();
  m.set("dpx10_serve_registry", 1);
  Json jobs = Json::array();
  for (const auto& [id, entry] : entries_) jobs.push(entry);
  m.set("jobs", jobs);
  const fs::path final_path = fs::path(root_) / "manifest.json";
  const fs::path tmp_path = fs::path(root_) / "manifest.json.tmp";
  {
    std::ofstream os(tmp_path);
    require(os.good(), "Registry: cannot write '" + tmp_path.string() + "'");
    os << m.dump() << '\n';
    os.flush();
    require(os.good(), "Registry: write failed for '" + tmp_path.string() + "'");
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  require(!ec, "Registry: rename to '" + final_path.string() +
                   "' failed: " + ec.message());
}

}  // namespace dpx10::serve
