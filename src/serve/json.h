// Minimal JSON value, parser and writer for the serve protocol
// (docs/SERVE.md). The daemon speaks line-delimited JSON over a Unix
// socket; requests and responses are small flat-ish objects, so this
// deliberately supports just what the protocol needs: null, bool, int64,
// double, string, array, object. Object keys serialize in insertion order
// so responses are stable for tests and diffing.
//
// Parsing throws ConfigError on malformed input (the server turns that
// into a protocol error response instead of dying).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dpx10::serve {

class Json {
 public:
  enum class Kind { Null, Bool, Int, Double, Str, Arr, Obj };

  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}  // NOLINT
  Json(std::int64_t i) : kind_(Kind::Int), int_(i) {}  // NOLINT
  Json(int i) : kind_(Kind::Int), int_(i) {}  // NOLINT
  Json(std::uint64_t u)  // NOLINT
      : kind_(Kind::Int), int_(static_cast<std::int64_t>(u)) {}
  Json(double d) : kind_(Kind::Double), double_(d) {}  // NOLINT
  Json(std::string s) : kind_(Kind::Str), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::Str), str_(s) {}  // NOLINT

  static Json array() {
    Json j;
    j.kind_ = Kind::Arr;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::Obj;
    return j;
  }

  /// Parses one JSON document; trailing garbage is an error. Throws
  /// ConfigError with a position on malformed input.
  static Json parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_obj() const { return kind_ == Kind::Obj; }
  bool is_arr() const { return kind_ == Kind::Arr; }

  /// Typed reads with fallbacks — protocol fields are all optional-with-
  /// default, so lookups never throw on absent or mistyped values.
  bool as_bool(bool fallback = false) const;
  std::int64_t as_int(std::int64_t fallback = 0) const;
  double as_double(double fallback = 0.0) const;
  std::string as_str(const std::string& fallback = "") const;

  bool has(const std::string& key) const;
  /// Object member lookup; returns a shared Null for absent keys.
  const Json& at(const std::string& key) const;
  /// Object member insert/overwrite (first write fixes key order).
  void set(const std::string& key, Json value);

  const std::vector<Json>& items() const { return arr_; }
  void push(Json value);

  /// Compact single-line serialization (the protocol framing unit).
  std::string dump() const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  /// Insertion-ordered object: parallel key/value vectors (objects here are
  /// tiny; linear lookup beats a map + separate order vector).
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace dpx10::serve
