#include "serve/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"

namespace dpx10::serve {
namespace {

const Json kNull;

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw ConfigError("json: " + what + " at offset " + std::to_string(pos));
  }

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (pos >= text.size() || text[pos] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (text.compare(pos, n, lit) != 0) return false;
    pos += n;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          unsigned int cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed by the protocol; a lone surrogate encodes as-is).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    bool is_double = false;
    while (pos < text.size()) {
      char c = text[pos];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos;
      } else {
        break;
      }
    }
    const std::string tok = text.substr(start, pos - start);
    if (tok.empty() || tok == "-") fail("bad number");
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end && *end == '\0') {
        return Json(static_cast<std::int64_t>(v));
      }
      // fall through: out-of-range integers degrade to double
    }
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (!end || *end != '\0') fail("bad number");
    return Json(d);
  }

  Json parse_value(int depth) {
    if (depth > 64) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      skip_ws();
      if (peek() == '}') { ++pos; return obj; }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        obj.set(key, parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') { ++pos; continue; }
        expect('}');
        return obj;
      }
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      skip_ws();
      if (peek() == ']') { ++pos; return arr; }
      while (true) {
        arr.push(parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') { ++pos; continue; }
        expect(']');
        return arr;
      }
    }
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json(nullptr);
    return parse_number();
  }
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

Json Json::parse(const std::string& text) {
  Parser p{text};
  Json v = p.parse_value(0);
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing characters");
  return v;
}

bool Json::as_bool(bool fallback) const {
  return kind_ == Kind::Bool ? bool_ : fallback;
}

std::int64_t Json::as_int(std::int64_t fallback) const {
  if (kind_ == Kind::Int) return int_;
  if (kind_ == Kind::Double) return static_cast<std::int64_t>(double_);
  return fallback;
}

double Json::as_double(double fallback) const {
  if (kind_ == Kind::Double) return double_;
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  return fallback;
}

std::string Json::as_str(const std::string& fallback) const {
  return kind_ == Kind::Str ? str_ : fallback;
}

bool Json::has(const std::string& key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  return kNull;
}

void Json::set(const std::string& key, Json value) {
  kind_ = Kind::Obj;
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj_.emplace_back(key, std::move(value));
}

void Json::push(Json value) {
  kind_ = Kind::Arr;
  arr_.push_back(std::move(value));
}

std::string Json::dump() const {
  std::string out;
  switch (kind_) {
    case Kind::Null: out = "null"; break;
    case Kind::Bool: out = bool_ ? "true" : "false"; break;
    case Kind::Int: out = std::to_string(int_); break;
    case Kind::Double: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      out = buf;
      break;
    }
    case Kind::Str: dump_string(str_, out); break;
    case Kind::Arr: {
      out.push_back('[');
      bool first = true;
      for (const Json& item : arr_) {
        if (!first) out.push_back(',');
        first = false;
        out += item.dump();
      }
      out.push_back(']');
      break;
    }
    case Kind::Obj: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(k, out);
        out.push_back(':');
        out += v.dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

}  // namespace dpx10::serve
