#include "serve/scheduler.h"

#include <algorithm>

#include "common/error.h"

namespace dpx10::serve {

FairScheduler::FairScheduler(Options opts,
                             std::map<std::string, std::uint64_t> weights)
    : opts_(opts), free_slots_(opts.total_slots) {
  require(opts_.total_slots > 0, "FairScheduler: total_slots must be positive");
  require(opts_.max_queue > 0, "FairScheduler: max_queue must be positive");
  for (auto& [name, w] : weights) {
    require(w > 0, "FairScheduler: tenant weight must be positive: " + name);
    tenants_[name].weight = w;
  }
}

FairScheduler::Tenant& FairScheduler::tenant_locked(const std::string& name) {
  auto [it, inserted] = tenants_.try_emplace(name);
  if (inserted || it->second.queue.empty()) {
    // Joining (or returning from idle): resume at the system clock so idle
    // time does not accumulate as credit against active tenants.
    it->second.vtime = std::max(it->second.vtime, vclock_);
  }
  return it->second;
}

std::size_t FairScheduler::queued_total_locked() const {
  std::size_t n = 0;
  for (const auto& [name, t] : tenants_) n += t.queue.size();
  return n;
}

Admission FairScheduler::submit(const JobSpec& spec, std::int64_t& id) {
  spec.validate();
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& tenant = tenant_locked(spec.tenant);
  if (spec.slots() > opts_.total_slots) {
    ++tenant.rejected;
    ++rejected_total_;
    return Admission::TooLarge;
  }
  if (draining_ || stopped_) {
    ++tenant.rejected;
    ++rejected_total_;
    return Admission::Draining;
  }
  if (queued_total_locked() >= opts_.max_queue) {
    ++tenant.rejected;
    ++rejected_total_;
    return Admission::QueueFull;
  }
  id = next_id_++;
  JobRecord& job = jobs_[id];
  job.id = id;
  job.spec = spec;
  job.state = JobState::Queued;
  job.submit_seq = next_seq_++;
  // Insert in priority-then-FIFO position: after the last queued job whose
  // priority is >= ours.
  auto pos = tenant.queue.end();
  while (pos != tenant.queue.begin()) {
    auto prev = std::prev(pos);
    if (jobs_.at(*prev).spec.priority >= spec.priority) break;
    pos = prev;
  }
  tenant.queue.insert(pos, id);
  ++tenant.submitted;
  cv_.notify_all();
  return Admission::Admitted;
}

std::int64_t FairScheduler::dequeue() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (stopped_) return -1;
    // Backlogged tenants in ascending (vtime, name); dispatch the first
    // whose head job fits the free slots. A head too wide for the CURRENT
    // free slots (but not the pool) just waits — its tenant keeps its
    // place, and smaller tenants behind it may backfill.
    std::string best;
    double best_vt = 0.0;
    bool any_backlog = false;
    for (auto& [name, t] : tenants_) {
      if (t.queue.empty()) continue;
      any_backlog = true;
      const JobRecord& head = jobs_.at(t.queue.front());
      if (head.spec.slots() > free_slots_) continue;
      if (best.empty() || t.vtime < best_vt) {
        best = name;
        best_vt = t.vtime;
      }
    }
    if (!best.empty()) {
      Tenant& t = tenants_.at(best);
      const std::int64_t id = t.queue.front();
      t.queue.pop_front();
      JobRecord& job = jobs_.at(id);
      job.state = JobState::Running;
      const double start = std::max(t.vtime, vclock_);
      vclock_ = start;
      t.vtime = start + static_cast<double>(job.spec.slots()) /
                            static_cast<double>(t.weight);
      ++t.dispatched;
      dispatch_order_.push_back(best);
      free_slots_ -= job.spec.slots();
      ++running_;
      return id;
    }
    if (draining_ && !any_backlog && running_ == 0) return -1;
    cv_.wait(lock);
  }
}

void FairScheduler::finish(std::int64_t id, JobState terminal,
                           double elapsed_seconds, std::uint64_t computed,
                           const std::string& error,
                           std::vector<std::string> artifacts) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  check_internal(it != jobs_.end() && it->second.state == JobState::Running,
                 "FairScheduler::finish on a job that is not running");
  JobRecord& job = it->second;
  job.state = terminal;
  job.elapsed_seconds = elapsed_seconds;
  job.computed = computed;
  job.error = error;
  job.artifacts = std::move(artifacts);
  Tenant& t = tenants_.at(job.spec.tenant);
  if (terminal == JobState::Done) ++t.completed;
  if (terminal == JobState::Failed) ++t.failed;
  t.slot_seconds += elapsed_seconds * job.spec.slots();
  free_slots_ += job.spec.slots();
  --running_;
  cv_.notify_all();
  if (running_ == 0 && queued_total_locked() == 0) idle_cv_.notify_all();
}

bool FairScheduler::cancel(std::int64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.state != JobState::Queued) return false;
  Tenant& t = tenants_.at(it->second.spec.tenant);
  auto& q = t.queue;
  q.erase(std::remove(q.begin(), q.end(), id), q.end());
  it->second.state = JobState::Cancelled;
  ++t.cancelled;
  if (running_ == 0 && queued_total_locked() == 0) idle_cv_.notify_all();
  return true;
}

bool FairScheduler::get(std::int64_t id, JobRecord& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  out = it->second;
  return true;
}

void FairScheduler::begin_drain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
  cv_.notify_all();
  if (running_ == 0 && queued_total_locked() == 0) idle_cv_.notify_all();
}

bool FairScheduler::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void FairScheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return running_ == 0 && queued_total_locked() == 0;
  });
}

void FairScheduler::stop() {
  std::lock_guard<std::mutex> lock(mu_);
  stopped_ = true;
  cv_.notify_all();
  idle_cv_.notify_all();
}

Json FairScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json s = Json::object();
  Json slots = Json::object();
  slots.set("total", opts_.total_slots);
  slots.set("busy", opts_.total_slots - free_slots_);
  s.set("slots", slots);
  s.set("queued", static_cast<std::int64_t>(queued_total_locked()));
  s.set("running", running_);
  s.set("max_queue", static_cast<std::int64_t>(opts_.max_queue));
  s.set("rejected", rejected_total_);
  s.set("draining", draining_);
  Json tenants = Json::object();
  for (const auto& [name, t] : tenants_) {
    Json tj = Json::object();
    tj.set("weight", t.weight);
    tj.set("vtime", t.vtime);
    tj.set("queued", static_cast<std::int64_t>(t.queue.size()));
    tj.set("submitted", t.submitted);
    tj.set("dispatched", t.dispatched);
    tj.set("completed", t.completed);
    tj.set("failed", t.failed);
    tj.set("cancelled", t.cancelled);
    tj.set("rejected", t.rejected);
    tj.set("slot_seconds", t.slot_seconds);
    tenants.set(name, tj);
  }
  s.set("tenants", tenants);
  return s;
}

std::vector<std::string> FairScheduler::dispatch_order() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dispatch_order_;
}

}  // namespace dpx10::serve
