// Job model of the serve subsystem (docs/SERVE.md).
//
// A job is one dp::run_dp_app invocation owned by a tenant. The submit
// request carries a JobSpec; the scheduler tracks it as a JobRecord from
// admission to its terminal state. Jobs are isolated by construction: each
// one gets its own engine instance, RuntimeOptions, memory governor and
// artifact directory — the only shared resources are the worker-slot pool
// and the global memory budget, both arbitrated by the scheduler layer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "mem/options.h"
#include "serve/json.h"

namespace dpx10::serve {

/// What a submit request asks for. Field defaults are the protocol
/// defaults: absent JSON keys mean exactly these values.
struct JobSpec {
  std::string tenant = "default";
  std::string app = "swlag";     ///< dp::runnable_apps() key, or "nussinov"
  std::string engine = "sim";    ///< "sim" | "threaded"
  std::int64_t vertices = 10000; ///< target DAG size (dp::shape_for rounds)
  std::uint64_t input_seed = 1234;
  /// Higher runs sooner within the tenant and sheds memory later across
  /// jobs (the lowest-priority byte-holder spills first).
  std::int32_t priority = 0;
  std::int32_t nplaces = 2;
  std::int32_t nthreads = 1;     ///< threaded engine only
  /// "off" | "retire" | "spill" — spill opts the job into the shared
  /// memory-budget arbitration.
  std::string retirement = "off";
  bool trace = false;            ///< also write jobs/<id>/run.trace
  /// Chaos knob: kill this place at `fault_at` completion fraction (-1 =
  /// no injected fault). The job recovers via the engine's normal
  /// heartbeat-detect + rebuild path; its detection window is dead wall
  /// clock the scheduler fills with other tenants' work (bench/ablate_serve
  /// measures exactly that latency hiding).
  std::int32_t fault_place = -1;
  double fault_at = 0.5;         ///< completion fraction of the kill

  /// Worker slots this job occupies while running: real threads for the
  /// threaded engine, one executor thread for the simulator.
  std::int32_t slots() const {
    return engine == "threaded" ? nplaces * nthreads : 1;
  }

  void validate() const {
    require(!tenant.empty() && tenant.find('/') == std::string::npos &&
                tenant.find('\n') == std::string::npos,
            "JobSpec: tenant must be non-empty without '/' or newlines");
    require(engine == "sim" || engine == "threaded",
            "JobSpec: engine must be \"sim\" or \"threaded\"");
    require(vertices > 0, "JobSpec: vertices must be positive");
    require(nplaces > 0 && nthreads > 0,
            "JobSpec: nplaces and nthreads must be positive");
    mem::RetirementMode mode;
    require(mem::parse_retirement_mode(retirement, mode),
            "JobSpec: retirement must be off|retire|spill");
    require(fault_place < nplaces,
            "JobSpec: fault_place must be < nplaces");
    require(fault_at >= 0.0 && fault_at <= 1.0,
            "JobSpec: fault_at must be a completion fraction in [0,1]");
  }

  static JobSpec from_json(const Json& j) {
    JobSpec s;
    s.tenant = j.at("tenant").as_str(s.tenant);
    s.app = j.at("app").as_str(s.app);
    s.engine = j.at("engine").as_str(s.engine);
    s.vertices = j.at("vertices").as_int(s.vertices);
    s.input_seed =
        static_cast<std::uint64_t>(j.at("seed").as_int(
            static_cast<std::int64_t>(s.input_seed)));
    s.priority = static_cast<std::int32_t>(j.at("priority").as_int(s.priority));
    s.nplaces = static_cast<std::int32_t>(j.at("nplaces").as_int(s.nplaces));
    s.nthreads = static_cast<std::int32_t>(j.at("nthreads").as_int(s.nthreads));
    s.retirement = j.at("retirement").as_str(s.retirement);
    s.trace = j.at("trace").as_bool(s.trace);
    s.fault_place =
        static_cast<std::int32_t>(j.at("fault_place").as_int(s.fault_place));
    s.fault_at = j.at("fault_at").as_double(s.fault_at);
    return s;
  }

  Json to_json() const {
    Json j = Json::object();
    j.set("tenant", tenant);
    j.set("app", app);
    j.set("engine", engine);
    j.set("vertices", vertices);
    j.set("seed", input_seed);
    j.set("priority", priority);
    j.set("nplaces", nplaces);
    j.set("nthreads", nthreads);
    j.set("retirement", retirement);
    j.set("trace", trace);
    j.set("fault_place", fault_place);
    j.set("fault_at", fault_at);
    return j;
  }
};

enum class JobState : std::uint8_t {
  Queued = 0,
  Running,
  Done,       ///< terminal: report written, artifacts registered
  Failed,     ///< terminal: the run threw; error string captured
  Cancelled,  ///< terminal: dequeued before it ever ran
};

inline std::string_view job_state_name(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  return "?";
}

/// One admitted job, owned by the scheduler. Guarded by the scheduler's
/// mutex; the executor thread only touches it through scheduler calls.
struct JobRecord {
  std::int64_t id = 0;
  JobSpec spec;
  JobState state = JobState::Queued;
  std::uint64_t submit_seq = 0;   ///< admission order, for FIFO tie-breaks
  double elapsed_seconds = 0.0;   ///< engine-reported, terminal states only
  std::uint64_t computed = 0;     ///< engine-reported vertex executions
  std::string error;              ///< Failed only
  std::vector<std::string> artifacts;  ///< registry-relative paths
};

}  // namespace dpx10::serve
