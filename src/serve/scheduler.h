// FairScheduler — admission control and weighted fair queuing over one
// shared worker-slot pool (docs/SERVE.md).
//
// The daemon owns a fixed budget of worker slots (roughly: cores). Every
// admitted job leases spec.slots() of them for the duration of its run —
// nplaces*nthreads real threads for the threaded engine, one executor
// thread for the simulator — so concurrent jobs multiplex the machine
// instead of oversubscribing it.
//
// Admission is bounded: at most max_queue jobs may wait. Beyond that,
// submit() rejects immediately (the protocol's 429) rather than queueing
// unboundedly or blocking the client. Draining rejects everything new (503)
// while letting already-admitted jobs finish.
//
// Scheduling is weighted fair queuing (WFQ) across tenants with start-time
// virtual clocks: dispatching a job advances its tenant's virtual time by
// slots/weight, and the next dispatch goes to the backlogged tenant with
// the smallest virtual time whose head job fits the free slots. A tenant
// returning from idle resumes at the system clock (no credit hoarding).
// Within a tenant, higher JobSpec::priority runs first, FIFO among equals.
//
// All public methods are thread-safe; dequeue() blocks and is intended for
// the server's single dispatcher thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/job.h"
#include "serve/json.h"

namespace dpx10::serve {

enum class Admission : std::uint8_t {
  Admitted = 0,
  QueueFull,  ///< bounded queue at capacity — protocol code 429
  Draining,   ///< daemon is draining — protocol code 503
  TooLarge,   ///< spec.slots() exceeds the whole pool — protocol code 400
};

class FairScheduler {
 public:
  struct Options {
    std::int32_t total_slots = 4;
    std::size_t max_queue = 16;
  };

  FairScheduler(Options opts, std::map<std::string, std::uint64_t> weights);

  /// Validates and admits `spec`. On Admitted, `id` is the new job id and
  /// the job is queued; every other outcome leaves no trace besides the
  /// per-tenant rejected counter. Throws ConfigError on an invalid spec.
  Admission submit(const JobSpec& spec, std::int64_t& id);

  /// Blocks until a job is dispatchable (marks it Running and leases its
  /// slots) and returns its id. Returns -1 once stop() was called, or once
  /// draining and nothing is left to dispatch.
  std::int64_t dequeue();

  /// Executor callback: releases the job's slots and records its terminal
  /// state. `artifacts` are registry-relative paths for status responses.
  void finish(std::int64_t id, JobState terminal, double elapsed_seconds,
              std::uint64_t computed, const std::string& error,
              std::vector<std::string> artifacts);

  /// Cancels a QUEUED job (removes it from its tenant queue). Running jobs
  /// are not interruptible — returns false for them and terminal jobs.
  bool cancel(std::int64_t id);

  /// Copies the record for `id`; false if unknown.
  bool get(std::int64_t id, JobRecord& out) const;

  /// Reject all new submits from now on; already-admitted jobs still run.
  void begin_drain();
  bool draining() const;

  /// Blocks until no job is queued or running (use after begin_drain()).
  void wait_idle();

  /// Hard stop: dequeue() returns -1 immediately even with queued jobs.
  void stop();

  /// Protocol stats object: pool occupancy, queue depth, per-tenant
  /// weights/virtual times/counters (docs/SERVE.md#stats).
  Json stats() const;

  /// Tenant name of every dispatch, in dispatch order — the fairness
  /// counters serve_test asserts on.
  std::vector<std::string> dispatch_order() const;

  std::int32_t total_slots() const { return opts_.total_slots; }

 private:
  struct Tenant {
    std::uint64_t weight = 1;
    double vtime = 0.0;  ///< WFQ virtual finish time of the last dispatch
    std::deque<std::int64_t> queue;  ///< priority-then-FIFO order
    std::uint64_t submitted = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t rejected = 0;
    double slot_seconds = 0.0;  ///< sum of elapsed x slots over finished jobs
  };

  Tenant& tenant_locked(const std::string& name);
  std::size_t queued_total_locked() const;

  const Options opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;       ///< dispatchability changes
  std::condition_variable idle_cv_;  ///< queued+running reaching zero
  std::map<std::string, Tenant> tenants_;
  std::map<std::int64_t, JobRecord> jobs_;
  std::vector<std::string> dispatch_order_;
  std::int64_t next_id_ = 1;
  std::uint64_t next_seq_ = 1;
  std::int32_t free_slots_ = 0;
  std::int32_t running_ = 0;
  double vclock_ = 0.0;  ///< system virtual time (last dispatch's start tag)
  bool draining_ = false;
  bool stopped_ = false;
  std::uint64_t rejected_total_ = 0;
};

}  // namespace dpx10::serve
