#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <fstream>

#include "common/build_info.h"
#include "common/error.h"
#include "core/report_io.h"
#include "core/runtime_options.h"
#include "dp/runners.h"
#include "obs/trace_io.h"

namespace dpx10::serve {

namespace {

/// Writes the whole buffer, retrying short writes; false on error.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

Json error_response(int code, const std::string& message) {
  Json r = Json::object();
  r.set("ok", false);
  r.set("code", code);
  r.set("error", message);
  return r;
}

/// Set by op_drain on the handler thread that served it, consumed by the
/// same thread's serve_connection after the response line is on the wire —
/// so drain_requested() only flips once the client can have seen its
/// response, and the main loop's shutdown cannot clip it.
thread_local bool t_drain_replied = false;

}  // namespace

void ServerOptions::validate() const {
  require(!socket_path.empty(), "ServerOptions: socket_path is required");
  require(socket_path.size() < sizeof(sockaddr_un::sun_path),
          "ServerOptions: socket_path too long for AF_UNIX");
  require(!registry_dir.empty(), "ServerOptions: registry_dir is required");
  require(total_slots > 0, "ServerOptions: total_slots must be positive");
}

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      registry_(opts_.registry_dir),
      arbiter_(opts_.mem_budget_bytes),
      scheduler_(FairScheduler::Options{opts_.total_slots, opts_.max_queue},
                 opts_.tenant_weights) {
  opts_.validate();
}

Server::~Server() { drain_and_stop(); }

void Server::start() {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(listen_fd_ >= 0, "dpx10serve: socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(opts_.socket_path.c_str());  // stale socket from a dead daemon
  require(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) == 0,
          "dpx10serve: cannot bind '" + opts_.socket_path +
              "': " + std::strerror(errno));
  require(::listen(listen_fd_, 64) == 0, "dpx10serve: listen() failed");
  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
}

void Server::drain_and_stop() {
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  scheduler_.begin_drain();
  if (dispatch_thread_.joinable()) {
    scheduler_.wait_idle();  // every admitted job reaches a terminal state
  }
  scheduler_.stop();  // dispatcher's dequeue() returns -1
  stopping_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  std::vector<std::thread> conns, jobs;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    conns.swap(conn_threads_);
    jobs.swap(job_threads_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  for (std::thread& t : jobs) {
    if (t.joinable()) t.join();
  }
  ::unlink(opts_.socket_path.c_str());
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by drain_and_stop
    }
    std::lock_guard<std::mutex> lock(threads_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void Server::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.empty()) continue;
      const bool wrote = write_all(fd, handle_line(line) + "\n");
      if (t_drain_replied) {
        t_drain_replied = false;
        if (wrote) drain_done_.store(true, std::memory_order_release);
      }
      if (!wrote) {
        ::close(fd);
        std::lock_guard<std::mutex> lock(threads_mu_);
        conn_fds_.erase(fd);
        return;
      }
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(threads_mu_);
  conn_fds_.erase(fd);
}

void Server::dispatch_loop() {
  while (true) {
    const std::int64_t id = scheduler_.dequeue();
    if (id < 0) return;
    std::lock_guard<std::mutex> lock(threads_mu_);
    job_threads_.emplace_back([this, id] { run_job(id); });
  }
}

void Server::run_job(std::int64_t id) {
  JobRecord job;
  check_internal(scheduler_.get(id, job), "run_job: unknown job id");
  const JobSpec& spec = job.spec;
  std::vector<std::string> artifacts;
  try {
    const std::string dir = registry_.job_dir(id);
    RuntimeOptions opts;
    opts.nplaces = spec.nplaces;
    opts.nthreads = spec.nthreads;
    opts.status_file = dir + "/status";
    mem::RetirementMode mode = mem::RetirementMode::Off;
    mem::parse_retirement_mode(spec.retirement, mode);
    opts.memory.retirement = mode;
    if (mode == mem::RetirementMode::Spill) {
      opts.memory.spill_dir = dir;
      opts.memory.budget_hook = arbiter_.attach(id, spec.priority);
      opts.memory.budget_priority = spec.priority;
    }
    if (spec.trace) opts.trace_level = obs::TraceLevel::Full;
    if (spec.fault_place >= 0) {
      opts.faults.push_back(FaultPlan{spec.fault_place, spec.fault_at});
    }
    const dp::EngineKind kind = spec.engine == "threaded"
                                    ? dp::EngineKind::Threaded
                                    : dp::EngineKind::Sim;
    const RunReport report =
        dp::run_dp_app(spec.app, kind, spec.vertices, opts, spec.input_seed);
    {
      std::ofstream os(registry_.artifact_abs(id, "report.json"));
      require(os.good(), "cannot write report.json for job " +
                             std::to_string(id));
      print_json(os, report);
      os.flush();
      require(os.good(), "report.json write failed for job " +
                             std::to_string(id));
    }
    artifacts.push_back(Registry::artifact_rel(id, "report.json"));
    if (spec.trace && report.trace_log) {
      std::ofstream os(registry_.artifact_abs(id, "run.trace"));
      require(os.good(), "cannot write run.trace for job " +
                             std::to_string(id));
      obs::write_native_trace(os, *report.trace_log, report.metrics.get());
      artifacts.push_back(Registry::artifact_rel(id, "run.trace"));
    }
    scheduler_.finish(id, JobState::Done, report.elapsed_seconds,
                      report.computed, "", artifacts);
  } catch (const std::exception& e) {
    scheduler_.finish(id, JobState::Failed, 0.0, 0, e.what(), artifacts);
  }
  // The manifest entry goes in only after finish(): it reflects the
  // terminal record, and its artifacts are already fully on disk.
  scheduler_.get(id, job);
  registry_.record(job);
}

std::string Server::handle_line(const std::string& line) {
  Json req;
  try {
    req = Json::parse(line);
  } catch (const std::exception& e) {
    return error_response(400, e.what()).dump();
  }
  const std::string op = req.at("op").as_str();
  try {
    if (op == "ping") return op_ping().dump();
    if (op == "submit") return op_submit(req).dump();
    if (op == "status") return op_status(req).dump();
    if (op == "cancel") return op_cancel(req).dump();
    if (op == "stats") return op_stats().dump();
    if (op == "drain") return op_drain().dump();
    return error_response(400, "unknown op '" + op + "'").dump();
  } catch (const std::exception& e) {
    return error_response(400, e.what()).dump();
  }
}

Json Server::op_ping() {
  Json r = Json::object();
  r.set("ok", true);
  r.set("server", "dpx10serve");
  r.set("version", std::string(git_describe()));
  r.set("build", std::string(build_type()));
  r.set("protocol", kServeProtocolVersion);
  return r;
}

Json Server::op_submit(const Json& req) {
  const JobSpec spec = JobSpec::from_json(req);
  std::int64_t id = -1;
  switch (scheduler_.submit(spec, id)) {
    case Admission::Admitted: {
      Json r = Json::object();
      r.set("ok", true);
      r.set("job", id);
      r.set("state", std::string(job_state_name(JobState::Queued)));
      return r;
    }
    case Admission::QueueFull:
      return error_response(429, "queue full (max_queue=" +
                                     std::to_string(opts_.max_queue) + ")");
    case Admission::Draining:
      return error_response(503, "draining: not accepting new jobs");
    case Admission::TooLarge:
      return error_response(
          400, "job needs " + std::to_string(spec.slots()) +
                   " slots but the pool has " +
                   std::to_string(opts_.total_slots));
  }
  return error_response(500, "unreachable");
}

Json Server::op_status(const Json& req) {
  const std::int64_t id = req.at("job").as_int(-1);
  JobRecord job;
  if (!scheduler_.get(id, job)) {
    return error_response(404, "unknown job " + std::to_string(id));
  }
  Json r = Json::object();
  r.set("ok", true);
  r.set("job", job.id);
  r.set("tenant", job.spec.tenant);
  r.set("state", std::string(job_state_name(job.state)));
  r.set("elapsed_s", job.elapsed_seconds);
  r.set("computed", job.computed);
  if (!job.error.empty()) r.set("error", job.error);
  Json arts = Json::array();
  for (const std::string& a : job.artifacts) arts.push(a);
  r.set("artifacts", arts);
  return r;
}

Json Server::op_cancel(const Json& req) {
  const std::int64_t id = req.at("job").as_int(-1);
  if (scheduler_.cancel(id)) {
    JobRecord job;
    scheduler_.get(id, job);
    registry_.record(job);
    Json r = Json::object();
    r.set("ok", true);
    r.set("job", id);
    r.set("state", std::string(job_state_name(JobState::Cancelled)));
    return r;
  }
  JobRecord job;
  if (!scheduler_.get(id, job)) {
    return error_response(404, "unknown job " + std::to_string(id));
  }
  return error_response(409, "job " + std::to_string(id) + " is " +
                                 std::string(job_state_name(job.state)) +
                                 "; only queued jobs can be cancelled");
}

Json Server::op_stats() {
  Json r = scheduler_.stats();
  r.set("ok", true);
  Json mem = Json::object();
  mem.set("budget_bytes", arbiter_.budget_bytes());
  mem.set("live_bytes", arbiter_.live_bytes());
  mem.set("arb_spills", arbiter_.pressure_hits());
  r.set("mem", mem);
  r.set("registry", registry_.root());
  return r;
}

Json Server::op_drain() {
  scheduler_.begin_drain();
  scheduler_.wait_idle();
  Json r = Json::object();
  r.set("ok", true);
  r.set("draining", true);
  Json st = scheduler_.stats();
  r.set("queued", st.at("queued"));
  r.set("running", st.at("running"));
  t_drain_replied = true;  // serve_connection flips drain_done_ post-write
  return r;
}

}  // namespace dpx10::serve
