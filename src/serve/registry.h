// Run registry — the daemon's on-disk artifact store (docs/SERVE.md).
//
// Layout under one root directory:
//   manifest.json          index of every job the daemon recorded
//   jobs/<id>/report.json  the run's RunReport (core/report_io print_json)
//   jobs/<id>/run.trace    native trace (JobSpec::trace only)
//   jobs/<id>/status       live engine status file while the job runs
//
// The manifest is rewritten atomically (tmp + rename, the status-file
// idiom) after every job reaches a terminal state, and a job is only added
// once its artifacts are fully written — so a reader, or a daemon killed
// mid-job, never observes a manifest entry pointing at a partial artifact.
// Artifacts of jobs that never made the manifest are orphan files a
// restarted daemon may overwrite; the manifest is the source of truth.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "serve/job.h"
#include "serve/json.h"

namespace dpx10::serve {

class Registry {
 public:
  /// Creates `root`/ and `root`/jobs/ if needed; loads an existing
  /// manifest.json so a restarted daemon appends rather than clobbers.
  explicit Registry(std::string root);

  const std::string& root() const { return root_; }

  /// Creates and returns the absolute jobs/<id> directory.
  std::string job_dir(std::int64_t id) const;

  /// Registry-relative artifact path ("jobs/<id>/<name>") — the form used
  /// in manifest entries and protocol responses.
  static std::string artifact_rel(std::int64_t id, const std::string& name);

  /// Absolute path for the same artifact.
  std::string artifact_abs(std::int64_t id, const std::string& name) const;

  /// Upserts the job's manifest entry and atomically rewrites
  /// manifest.json. Call only with terminal-state records whose artifacts
  /// are already on disk.
  void record(const JobRecord& job);

  /// Parsed manifest.json (for tests and the stats handler).
  Json manifest() const;

 private:
  void write_manifest_locked() const;

  std::string root_;
  mutable std::mutex mu_;
  std::map<std::int64_t, Json> entries_;
};

}  // namespace dpx10::serve
