#include "serve/budget.h"

#include <algorithm>

namespace dpx10::serve {

/// Forwards one job's gauge changes into the shared arbiter. The governor
/// holds this via MemoryOptions::budget_hook; the arbiter must outlive
/// every lease (the server joins all jobs before tearing it down).
class MemoryArbiter::JobLease : public mem::BudgetHook {
 public:
  JobLease(MemoryArbiter& arb, std::int64_t job_id, std::int32_t priority)
      : arb_(arb), job_id_(job_id), priority_(priority) {}

  ~JobLease() override {
    // The governor's destructor released the job's bytes already; drop any
    // residue defensively so a leaked gauge cannot wedge the fleet over
    // budget forever.
    const std::uint64_t left = bytes_.load(std::memory_order_relaxed);
    if (left > 0) arb_.live_bytes_.fetch_sub(left, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(arb_.mu_);
    auto& v = arb_.leases_;
    v.erase(std::remove(v.begin(), v.end(), this), v.end());
  }

  void on_live_add(std::uint64_t bytes) override {
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    arb_.live_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  void on_live_sub(std::uint64_t bytes) override {
    bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    arb_.live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  bool should_spill(std::int32_t /*priority*/) const override {
    if (arb_.budget_bytes_ == 0) return false;
    if (arb_.live_bytes_.load(std::memory_order_relaxed) <=
        arb_.budget_bytes_) {
      return false;
    }
    if (!arb_.is_victim(*this)) return false;
    arb_.pressure_hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  std::uint64_t held_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  std::int32_t priority() const { return priority_; }
  std::int64_t job_id() const { return job_id_; }

 private:
  MemoryArbiter& arb_;
  const std::int64_t job_id_;
  const std::int32_t priority_;
  std::atomic<std::uint64_t> bytes_{0};
};

std::shared_ptr<mem::BudgetHook> MemoryArbiter::attach(std::int64_t job_id,
                                                       std::int32_t priority) {
  auto lease = std::make_shared<JobLease>(*this, job_id, priority);
  std::lock_guard<std::mutex> lock(mu_);
  leases_.push_back(lease.get());
  return lease;
}

bool MemoryArbiter::is_victim(const JobLease& asking) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const JobLease* other : leases_) {
    if (other == &asking) continue;
    if (other->held_bytes() == 0) continue;  // nothing to shed there anyway
    if (other->priority() < asking.priority()) return false;
    if (other->priority() == asking.priority() &&
        other->job_id() > asking.job_id()) {
      return false;  // an equally important but newer job sheds first
    }
  }
  return true;
}

}  // namespace dpx10::serve
