// Framework-tax attribution: where the per-vertex framework cost goes.
//
// The ROADMAP's "close the gap to hand-coded" item needs a per-vertex
// breakdown before devirtualization work can be gated on it. When
// RuntimeOptions::framework_tax is set, each engine splits every vertex
// execution into five buckets:
//
//   dispatch — delinearize + getDependency() virtual calls + scratch setup
//   cache    — dependency gather: cache-stripe locks, governor reads, copies
//   compute  — the application compute() itself (the only non-tax bucket)
//   alloc    — cell write + publish_value + governor memory accounting
//   publish  — indegree decrements, coalesced control flushes, ready pushes
//
// The ThreadedEngine measures real wall time at the section boundaries
// (6 clock reads per vertex, only when the profile is requested); the
// SimEngine attributes its modeled costs (framework_ns -> dispatch,
// local_dep_ns reads -> cache, compute_ns x units -> compute, control-wire
// transfer time -> publish; alloc is not modeled and stays zero).
#pragma once

#include <cstdint>
#include <iosfwd>

namespace dpx10::obs {

struct TraceMeta;

struct FrameworkTax {
  double dispatch_s = 0.0;
  double cache_s = 0.0;
  double alloc_s = 0.0;
  double publish_s = 0.0;
  double compute_s = 0.0;
  std::uint64_t vertices = 0;
  /// Cell-equivalents executed (Σ compute_cost_units per vertex). Equal to
  /// `vertices` for per-cell runs; under --tile each macro-vertex
  /// contributes its interior cell count, so tax_s() / units is the
  /// amortized per-CELL framework cost the tiling mode exists to shrink.
  double units = 0.0;

  double total_s() const {
    return dispatch_s + cache_s + alloc_s + publish_s + compute_s;
  }
  double tax_s() const { return total_s() - compute_s; }

  void merge(const FrameworkTax& o) {
    dispatch_s += o.dispatch_s;
    cache_s += o.cache_s;
    alloc_s += o.alloc_s;
    publish_s += o.publish_s;
    compute_s += o.compute_s;
    vertices += o.vertices;
    units += o.units;
  }
};

/// Renders the per-vertex breakdown table `dpx10run --profile=framework-tax`
/// prints: per-bucket totals, share of total, and ns/vertex.
void print_framework_tax(std::ostream& os, const FrameworkTax& tax,
                         const TraceMeta& meta);

}  // namespace dpx10::obs
