// The recorded-trace data model shared by the tracer, the exporters and the
// critical-path profiler.
//
// A TraceLog is the full observable history of one run: vertex lifecycle
// spans (ready -> queued -> compute -> publish), message lifecycle events
// (send -> deliver, including dropped/duplicated fates from the fault
// injector) and failure-detector health transitions, plus enough metadata
// (app, dag pattern, dimensions) for a standalone tool to rebuild the DAG
// and walk the critical path. Timestamps are seconds from run start —
// virtual time for the SimEngine, wall time for the ThreadedEngine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.h"

namespace dpx10::obs {

struct TraceMeta {
  std::string app;
  std::string dag;       ///< pattern-registry name (make_pattern key)
  std::string engine;    ///< "sim" or "threaded"
  std::int32_t height = 0;
  std::int32_t width = 0;
  std::int32_t nplaces = 0;
  std::int32_t nthreads = 0;
  double elapsed_s = 0.0;
};

/// One vertex execution. The four timestamps delimit the lifecycle phases:
///   ready      — indegree hit zero / the vertex landed on a ready list
///   start      — a slot/worker picked it up (ready..start = queue wait)
///   data_ready — remote dependency fetches completed (start..data_ready =
///                network wait; == start when all deps were local/cached)
///   end        — compute() + publish finished
/// A fault can discard an execution after it ran (the result was never
/// published); such spans carry published = false and recovery re-runs the
/// vertex, so one index may appear in several spans.
struct VertexSpan {
  std::int64_t index = 0;   ///< domain linear index
  std::int32_t place = -1;
  std::int32_t slot = 0;    ///< sim: execution slot; threaded: worker id
  double ready = 0.0;
  double start = 0.0;
  double data_ready = 0.0;
  double end = 0.0;
  bool published = true;
};

enum class MessageFate : std::uint8_t {
  Delivered = 0,
  Dropped,     ///< injector ate it; deliver is meaningless (< 0)
  Duplicated,  ///< an extra copy beyond the first delivery
};

inline std::string_view message_fate_name(MessageFate f) {
  switch (f) {
    case MessageFate::Delivered: return "delivered";
    case MessageFate::Dropped: return "dropped";
    case MessageFate::Duplicated: return "duplicated";
  }
  return "?";
}

inline std::string_view message_kind_name(net::MessageKind k) {
  switch (k) {
    case net::MessageKind::FetchRequest: return "fetch-request";
    case net::MessageKind::FetchReply: return "fetch-reply";
    case net::MessageKind::IndegreeControl: return "indegree";
    case net::MessageKind::ReadyTransfer: return "ready-transfer";
    case net::MessageKind::ResultWriteback: return "writeback";
    case net::MessageKind::RecoveryTransfer: return "recovery";
    case net::MessageKind::Heartbeat: return "heartbeat";
    case net::MessageKind::BatchFetchRequest: return "batch-fetch-request";
    case net::MessageKind::BatchFetchReply: return "batch-fetch-reply";
    case net::MessageKind::BatchIndegreeControl: return "batch-indegree";
    case net::MessageKind::KindCount: break;
  }
  return "?";
}

/// One message's trip through the modeled network: it leaves `src` at
/// `send` and reaches `dst`'s application layer at `deliver` (wire time +
/// injected delay + NIC queueing). Dropped messages have deliver < 0.
struct MessageEvent {
  net::MessageKind kind = net::MessageKind::FetchRequest;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  double send = 0.0;
  double deliver = -1.0;
  MessageFate fate = MessageFate::Delivered;
};

/// A failure-detector health transition (PlaceHealth as uint8 to keep this
/// header free of the apgas dependency): 0 = alive, 1 = suspected, 2 = dead.
struct DetectorEvent {
  std::int32_t place = -1;
  std::uint8_t to = 0;
  double t = 0.0;
};

struct TraceLog {
  TraceMeta meta;
  std::vector<VertexSpan> vertices;
  std::vector<MessageEvent> messages;
  std::vector<DetectorEvent> detector;

  bool empty() const {
    return vertices.empty() && messages.empty() && detector.empty();
  }
};

}  // namespace dpx10::obs
