// The recorded-trace data model shared by the tracer, the exporters and the
// critical-path profiler.
//
// A TraceLog is the full observable history of one run: vertex lifecycle
// spans (ready -> queued -> compute -> publish), message lifecycle events
// (send -> deliver, including dropped/duplicated fates from the fault
// injector) and failure-detector health transitions, plus enough metadata
// (app, dag pattern, dimensions) for a standalone tool to rebuild the DAG
// and walk the critical path. Timestamps are seconds from run start —
// virtual time for the SimEngine, wall time for the ThreadedEngine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.h"

namespace dpx10::obs {

struct TraceMeta {
  std::string app;
  std::string dag;       ///< pattern-registry name (make_pattern key)
  std::string engine;    ///< "sim" or "threaded"
  std::int32_t height = 0;
  std::int32_t width = 0;
  std::int32_t nplaces = 0;
  std::int32_t nthreads = 0;
  double elapsed_s = 0.0;
  /// Macro-DAG tile size when the run was tiled (RuntimeOptions::tile_size);
  /// 0 for per-cell runs. When > 1, height/width/indices are tile-level and
  /// each vertex span covers a whole tile interior. Written to native traces
  /// only when > 1, so untiled traces stay byte-identical to pre-tiling ones.
  std::int32_t tile = 0;
};

/// One vertex execution. The four timestamps delimit the lifecycle phases:
///   ready      — indegree hit zero / the vertex landed on a ready list
///   start      — a slot/worker picked it up (ready..start = queue wait)
///   data_ready — remote dependency fetches completed (start..data_ready =
///                network wait; == start when all deps were local/cached)
///   end        — compute() + publish finished
/// A fault can discard an execution after it ran (the result was never
/// published); such spans carry published = false and recovery re-runs the
/// vertex, so one index may appear in several spans.
struct VertexSpan {
  std::int64_t index = 0;   ///< domain linear index
  std::int32_t place = -1;
  std::int32_t slot = 0;    ///< sim: execution slot; threaded: worker id
  double ready = 0.0;
  double start = 0.0;
  double data_ready = 0.0;
  double end = 0.0;
  bool published = true;
};

enum class MessageFate : std::uint8_t {
  Delivered = 0,
  Dropped,     ///< injector ate it; deliver is meaningless (< 0)
  Duplicated,  ///< an extra copy beyond the first delivery
};

inline std::string_view message_fate_name(MessageFate f) {
  switch (f) {
    case MessageFate::Delivered: return "delivered";
    case MessageFate::Dropped: return "dropped";
    case MessageFate::Duplicated: return "duplicated";
  }
  return "?";
}

inline std::string_view message_kind_name(net::MessageKind k) {
  switch (k) {
    case net::MessageKind::FetchRequest: return "fetch-request";
    case net::MessageKind::FetchReply: return "fetch-reply";
    case net::MessageKind::IndegreeControl: return "indegree";
    case net::MessageKind::ReadyTransfer: return "ready-transfer";
    case net::MessageKind::ResultWriteback: return "writeback";
    case net::MessageKind::RecoveryTransfer: return "recovery";
    case net::MessageKind::Heartbeat: return "heartbeat";
    case net::MessageKind::BatchFetchRequest: return "batch-fetch-request";
    case net::MessageKind::BatchFetchReply: return "batch-fetch-reply";
    case net::MessageKind::BatchIndegreeControl: return "batch-indegree";
    case net::MessageKind::KindCount: break;
  }
  return "?";
}

/// One message's trip through the modeled network: it leaves `src` at
/// `send` and reaches `dst`'s application layer at `deliver` (wire time +
/// injected delay + NIC queueing). Dropped messages have deliver < 0.
struct MessageEvent {
  net::MessageKind kind = net::MessageKind::FetchRequest;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  double send = 0.0;
  double deliver = -1.0;
  MessageFate fate = MessageFate::Delivered;
};

/// A failure-detector health transition (PlaceHealth as uint8 to keep this
/// header free of the apgas dependency): 0 = alive, 1 = suspected, 2 = dead.
struct DetectorEvent {
  std::int32_t place = -1;
  std::uint8_t to = 0;
  double t = 0.0;
};

/// Runtime-subsystem event kinds: everything the coalescer, memory governor,
/// recovery loop and checkpointer do that vertex/message spans cannot
/// express. The same records feed the full-level tracer and the always-on
/// flight recorder. The `a`/`b` payload meaning is per-kind (see
/// rt_event_kind_name and docs/OBSERVABILITY.md).
enum class RtEventKind : std::uint8_t {
  VertexDone = 0,    ///< a = linear index, b = slot/worker
  MessageDrop,       ///< a = message kind, b = destination place
  BatchFetchFlush,   ///< a = owner place, b = entries coalesced
  BatchControlFlush, ///< a = destination place, b = edges coalesced
  GovRetire,         ///< a = retired cell index
  GovSpill,          ///< a = spilled cell index
  GovResurrect,      ///< a = cells resurrected, b = recovery epoch
  SpillRestore,      ///< a = cells restored from spill, b = recovery epoch
  RecoveryBegin,     ///< place = first dead place, a = batch size, b = nested
  RecoveryEnd,       ///< a = recovery epoch, b = vertices restored
  CheckpointWrite,   ///< a = bundle sequence, b = finished count
  CheckpointResume,  ///< a = bundle sequence, b = finished count
  SnapshotTaken,     ///< a = snapshots taken so far
  PlaceCrash,        ///< place = crashed place
  PlaceDeclared,     ///< place = place declared dead by the detector
  WedgeFire,         ///< a = stall class, b = unfinished vertices
  KindCount
};

inline constexpr std::size_t kRtEventKindCount =
    static_cast<std::size_t>(RtEventKind::KindCount);

inline std::string_view rt_event_kind_name(RtEventKind k) {
  switch (k) {
    case RtEventKind::VertexDone: return "vertex-done";
    case RtEventKind::MessageDrop: return "message-drop";
    case RtEventKind::BatchFetchFlush: return "batch-fetch-flush";
    case RtEventKind::BatchControlFlush: return "batch-control-flush";
    case RtEventKind::GovRetire: return "gov-retire";
    case RtEventKind::GovSpill: return "gov-spill";
    case RtEventKind::GovResurrect: return "gov-resurrect";
    case RtEventKind::SpillRestore: return "spill-restore";
    case RtEventKind::RecoveryBegin: return "recovery-begin";
    case RtEventKind::RecoveryEnd: return "recovery-end";
    case RtEventKind::CheckpointWrite: return "checkpoint-write";
    case RtEventKind::CheckpointResume: return "checkpoint-resume";
    case RtEventKind::SnapshotTaken: return "snapshot-taken";
    case RtEventKind::PlaceCrash: return "place-crash";
    case RtEventKind::PlaceDeclared: return "place-declared";
    case RtEventKind::WedgeFire: return "wedge-fire";
    case RtEventKind::KindCount: break;
  }
  return "?";
}

/// One runtime-subsystem event. Compact by design: the flight recorder keeps
/// millions of these per MB of ring, and the tracer appends them to full
/// traces as `r` records.
struct RtEvent {
  double t = 0.0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int32_t place = -1;
  RtEventKind kind = RtEventKind::VertexDone;
};

struct TraceLog {
  TraceMeta meta;
  std::vector<VertexSpan> vertices;
  std::vector<MessageEvent> messages;
  std::vector<DetectorEvent> detector;
  std::vector<RtEvent> events;  ///< runtime-subsystem events (`r` records)

  bool empty() const {
    return vertices.empty() && messages.empty() && detector.empty() &&
           events.empty();
  }
};

}  // namespace dpx10::obs
