// Metrics registry: fixed-bucket histograms and time-series samplers.
//
// Histograms use a fixed log2 bucket layout (no allocation, mergeable by
// bucket-wise addition, deterministic) so per-worker shards can record
// without synchronization and be combined at collection time. Time series
// are (t, value) samples of gauges the paper's evaluation reasons about:
// ready-queue depth, busy slots, NIC backlog.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dpx10::obs {

/// Fixed-layout histogram over positive values. Bucket 0 catches values
/// below kMinValue, bucket kBucketCount-1 values at or above the ceiling;
/// bucket b (1 <= b <= kLogBuckets) covers [kMinValue * 2^(b-1),
/// kMinValue * 2^b). With kMinValue = 1e-9 the layout spans one nanosecond
/// to ~4400 s of latency — and doubles as a count histogram (1, 2, 4, ...)
/// for retry distributions.
class Histogram {
 public:
  static constexpr int kLogBuckets = 42;
  static constexpr int kBucketCount = kLogBuckets + 2;  // + under/overflow
  static constexpr double kMinValue = 1e-9;

  void record(double value);
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Bucket-resolution percentile estimate (upper bound of the bucket that
  /// contains the p-quantile), p in [0, 1]. Returns 0 on an empty histogram.
  double percentile(double p) const;

  /// Inclusive lower bound of bucket b (0 for the underflow bucket).
  static double bucket_floor(int b);

  const std::array<std::uint64_t, kBucketCount>& buckets() const { return buckets_; }

  /// Rebuilds a histogram from serialized parts (native trace reader).
  static Histogram restore(std::uint64_t count, double sum, double min, double max,
                           const std::array<std::uint64_t, kBucketCount>& buckets);

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct NamedHistogram {
  std::string name;
  Histogram hist;
};

struct SamplePoint {
  double t = 0.0;
  double value = 0.0;
};

/// One gauge sampled over the run, scoped to a place (-1 = whole run).
struct TimeSeries {
  std::string name;
  std::int32_t place = -1;
  std::vector<SamplePoint> points;
};

/// The collected metrics of one run, attached to RunReport when tracing is
/// at least at Counters level.
struct MetricsReport {
  std::vector<NamedHistogram> histograms;
  std::vector<TimeSeries> series;

  bool empty() const { return histograms.empty() && series.empty(); }
  const Histogram* find(const std::string& name) const;
};

/// JSON export: {"histograms":[{name,count,sum,min,max,mean,p50,p99,
/// buckets:[[floor,count],...nonzero]}], "series":[{name,place,points:
/// [[t,v],...]}]}. Doubles print with %.17g so same-seed sim runs export
/// byte-identically.
void write_metrics_json(std::ostream& os, const MetricsReport& metrics);

/// CSV export: one long-format table, kind,name,place,key,value per row —
/// histogram buckets and series points alike, trivially greppable.
void write_metrics_csv(std::ostream& os, const MetricsReport& metrics);

/// Human-readable summary (one line per histogram, series elided to their
/// extents) for CLI output.
void print_metrics_summary(std::ostream& os, const MetricsReport& metrics);

}  // namespace dpx10::obs
