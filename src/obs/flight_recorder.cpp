#include "obs/flight_recorder.h"

#include <csignal>

#include <algorithm>
#include <cmath>
#include <ostream>

#include "obs/trace_io.h"

namespace dpx10::obs {

FlightRecorder::FlightRecorder(std::size_t nshards, std::size_t capacity)
    : capacity_(capacity) {
  if (nshards == 0) nshards = 1;
  rings_.reserve(nshards);
  for (std::size_t i = 0; i < nshards; ++i) {
    auto ring = std::make_unique<Ring>();
    if (capacity_ != 0) ring->buf.resize(capacity_);
    rings_.push_back(std::move(ring));
  }
}

void FlightRecorder::record(std::size_t shard, RtEventKind kind,
                            std::int32_t place, std::int64_t a, std::int64_t b,
                            double t) {
  Ring& r = *rings_[shard];
  std::lock_guard<std::mutex> lk(r.mu);
  const std::uint64_t h = r.head.load(std::memory_order_relaxed);
  r.buf[h % capacity_] = RtEvent{t, a, b, place, kind};
  r.head.store(h + 1, std::memory_order_release);
}

std::uint64_t FlightRecorder::recorded() const {
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r->head.load(std::memory_order_acquire);
  return n;
}

std::uint64_t FlightRecorder::dropped() const {
  std::uint64_t n = 0;
  for (const auto& r : rings_) {
    const std::uint64_t h = r->head.load(std::memory_order_acquire);
    if (h > capacity_) n += h - capacity_;
  }
  return n;
}

std::vector<RtEvent> FlightRecorder::drain_sorted() const {
  std::vector<RtEvent> out;
  for (const auto& r : rings_) {
    // The lock excludes record() writers; record_fast() writers are not
    // excluded (that's the point — they never block), so a shard being
    // actively written may yield one in-flight slot with torn contents.
    std::lock_guard<std::mutex> lk(r->mu);
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    const std::uint64_t resident = std::min<std::uint64_t>(head, capacity_);
    // Oldest resident event first, preserving per-ring push order.
    for (std::uint64_t i = 0; i < resident; ++i) {
      const RtEvent& ev = r->buf[(head - resident + i) % capacity_];
      // Discard a torn slot rather than emit a record the trace reader
      // would reject (kind range is validated on load).
      if (static_cast<int>(ev.kind) < 0 ||
          static_cast<int>(ev.kind) >= kRtEventKindCount ||
          !std::isfinite(ev.t)) {
        continue;
      }
      out.push_back(ev);
    }
  }
  // stable_sort keeps same-timestamp events in shard/push order, so
  // same-seed SimEngine dumps are deterministic.
  std::stable_sort(out.begin(), out.end(),
                   [](const RtEvent& x, const RtEvent& y) { return x.t < y.t; });
  return out;
}

void FlightRecorder::dump(std::ostream& os, const TraceMeta& meta) const {
  TraceLog log;
  log.meta = meta;
  log.events = drain_sorted();
  write_native_trace(os, log);
}

namespace {

// sig_atomic_t would do for the handler itself, but the consumers race each
// other (any worker may poll), so use a lock-free atomic flag. Stores on
// lock-free atomics are async-signal-safe.
std::atomic<int> g_dump_requested{0};

extern "C" void flight_signal_handler(int) { g_dump_requested.store(1); }

}  // namespace

void install_flight_signal_handlers() {
  std::signal(SIGUSR1, flight_signal_handler);
  std::signal(SIGQUIT, flight_signal_handler);
}

void request_flight_dump() { g_dump_requested.store(1); }

bool consume_dump_request() {
  if (g_dump_requested.load(std::memory_order_relaxed) == 0) return false;
  return g_dump_requested.exchange(0) != 0;
}

}  // namespace dpx10::obs
