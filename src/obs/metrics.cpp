#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/strings.h"

namespace dpx10::obs {

void Histogram::record(double value) {
  int b;
  if (value < kMinValue) {
    b = 0;
  } else {
    // ilogb(value / kMinValue) = number of doublings above the floor.
    const int log2 = std::ilogb(value / kMinValue);
    b = log2 >= kLogBuckets ? kBucketCount - 1 : 1 + log2;
  }
  ++buckets_[static_cast<std::size_t>(b)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (int b = 0; b < kBucketCount; ++b) {
    buckets_[static_cast<std::size_t>(b)] += other.buckets_[static_cast<std::size_t>(b)];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::bucket_floor(int b) {
  if (b <= 0) return 0.0;
  return kMinValue * std::ldexp(1.0, b - 1);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBucketCount; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (seen >= rank) {
      // Upper edge of the bucket, clamped to the observed extremes.
      const double hi = b == kBucketCount - 1 ? max_ : bucket_floor(b + 1);
      return std::clamp(hi, min_, max_);
    }
  }
  return max_;
}

Histogram Histogram::restore(std::uint64_t count, double sum, double min,
                             double max,
                             const std::array<std::uint64_t, kBucketCount>& buckets) {
  Histogram h;
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = min;
  h.max_ = max;
  h.buckets_ = buckets;
  return h;
}

const Histogram* MetricsReport::find(const std::string& name) const {
  for (const NamedHistogram& h : histograms) {
    if (h.name == name) return &h.hist;
  }
  return nullptr;
}

namespace {

void json_double(std::ostream& os, double v) { os << strformat("%.17g", v); }

}  // namespace

void write_metrics_json(std::ostream& os, const MetricsReport& metrics) {
  os << "{\"histograms\":[";
  for (std::size_t i = 0; i < metrics.histograms.size(); ++i) {
    const NamedHistogram& nh = metrics.histograms[i];
    if (i) os << ',';
    os << "{\"name\":\"" << nh.name << "\",\"count\":" << nh.hist.count()
       << ",\"sum\":";
    json_double(os, nh.hist.sum());
    os << ",\"min\":";
    json_double(os, nh.hist.min());
    os << ",\"max\":";
    json_double(os, nh.hist.max());
    os << ",\"mean\":";
    json_double(os, nh.hist.mean());
    os << ",\"p50\":";
    json_double(os, nh.hist.percentile(0.50));
    os << ",\"p99\":";
    json_double(os, nh.hist.percentile(0.99));
    os << ",\"buckets\":[";
    bool first = true;
    for (int b = 0; b < Histogram::kBucketCount; ++b) {
      const std::uint64_t n = nh.hist.buckets()[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      if (!first) os << ',';
      first = false;
      os << "[";
      json_double(os, Histogram::bucket_floor(b));
      os << ',' << n << ']';
    }
    os << "]}";
  }
  os << "],\"series\":[";
  for (std::size_t i = 0; i < metrics.series.size(); ++i) {
    const TimeSeries& s = metrics.series[i];
    if (i) os << ',';
    os << "{\"name\":\"" << s.name << "\",\"place\":" << s.place << ",\"points\":[";
    for (std::size_t j = 0; j < s.points.size(); ++j) {
      if (j) os << ',';
      os << '[';
      json_double(os, s.points[j].t);
      os << ',';
      json_double(os, s.points[j].value);
      os << ']';
    }
    os << "]}";
  }
  os << "]}\n";
}

void write_metrics_csv(std::ostream& os, const MetricsReport& metrics) {
  os << "kind,name,place,key,value\n";
  for (const NamedHistogram& nh : metrics.histograms) {
    os << "hist," << nh.name << ",-1,count," << nh.hist.count() << '\n';
    os << "hist," << nh.name << ",-1,sum," << strformat("%.17g", nh.hist.sum()) << '\n';
    os << "hist," << nh.name << ",-1,min," << strformat("%.17g", nh.hist.min()) << '\n';
    os << "hist," << nh.name << ",-1,max," << strformat("%.17g", nh.hist.max()) << '\n';
    for (int b = 0; b < Histogram::kBucketCount; ++b) {
      const std::uint64_t n = nh.hist.buckets()[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      os << "hist," << nh.name << ",-1,bucket:"
         << strformat("%.17g", Histogram::bucket_floor(b)) << ',' << n << '\n';
    }
  }
  for (const TimeSeries& s : metrics.series) {
    for (const SamplePoint& p : s.points) {
      os << "series," << s.name << ',' << s.place << ','
         << strformat("%.17g", p.t) << ',' << strformat("%.17g", p.value) << '\n';
    }
  }
}

void print_metrics_summary(std::ostream& os, const MetricsReport& metrics) {
  for (const NamedHistogram& nh : metrics.histograms) {
    if (nh.hist.count() == 0) continue;
    os << strformat("  %-22s n=%-10llu mean=%-12s p50=%-12s p99=%-12s max=%s\n",
                    nh.name.c_str(),
                    static_cast<unsigned long long>(nh.hist.count()),
                    human_seconds(nh.hist.mean()).c_str(),
                    human_seconds(nh.hist.percentile(0.50)).c_str(),
                    human_seconds(nh.hist.percentile(0.99)).c_str(),
                    human_seconds(nh.hist.max()).c_str());
  }
  std::size_t points = 0;
  for (const TimeSeries& s : metrics.series) points += s.points.size();
  if (!metrics.series.empty()) {
    os << "  " << metrics.series.size() << " time series, " << points
       << " sample points\n";
  }
}

}  // namespace dpx10::obs
