#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/strings.h"

namespace dpx10::obs {

namespace {

// Microseconds with fixed nanosecond precision: deterministic output and
// the native unit of the trace_event format.
std::string us(double seconds) { return strformat("%.3f", seconds * 1e6); }

}  // namespace

void write_chrome_trace(std::ostream& os, const TraceLog& log,
                        const MetricsReport* metrics) {
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) os << ',';
    first = false;
    os << '\n' << event;
  };

  // Process/thread naming metadata. Slots present per place are discovered
  // from the spans so the exporter needs no engine configuration.
  std::vector<std::int32_t> max_slot(
      static_cast<std::size_t>(std::max(log.meta.nplaces, 1)), -1);
  for (const VertexSpan& v : log.vertices) {
    const auto p = static_cast<std::size_t>(v.place);
    if (p >= max_slot.size()) max_slot.resize(p + 1, -1);
    max_slot[p] = std::max(max_slot[p], v.slot);
  }
  for (std::size_t p = 0; p < max_slot.size(); ++p) {
    emit(strformat("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%zu,"
                   "\"tid\":0,\"args\":{\"name\":\"place %zu\"}}",
                   p, p));
    for (std::int32_t s = 0; s <= std::max(max_slot[p], 0); ++s) {
      emit(strformat("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%zu,"
                     "\"tid\":%d,\"args\":{\"name\":\"slot %d\"}}",
                     p, s, s));
    }
  }

  for (const VertexSpan& v : log.vertices) {
    const double queue_s = std::max(0.0, v.start - v.ready);
    const double net_s = std::max(0.0, v.data_ready - v.start);
    emit(strformat(
        "{\"name\":\"v%lld%s\",\"cat\":\"vertex\",\"ph\":\"X\",\"pid\":%d,"
        "\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":{\"index\":%lld,"
        "\"queue_us\":%s,\"net_us\":%s,\"published\":%s}}",
        static_cast<long long>(v.index), v.published ? "" : "!", v.place,
        v.slot, us(v.start).c_str(), us(v.end - v.start).c_str(),
        static_cast<long long>(v.index), us(queue_s).c_str(),
        us(net_s).c_str(), v.published ? "true" : "false"));
  }

  std::uint64_t next_id = 1;
  for (const MessageEvent& m : log.messages) {
    const auto kind = std::string(message_kind_name(m.kind));
    switch (m.fate) {
      case MessageFate::Delivered: {
        const std::uint64_t id = next_id++;
        emit(strformat("{\"name\":\"%s\",\"cat\":\"net\",\"ph\":\"b\","
                       "\"id\":%llu,\"pid\":%d,\"tid\":0,\"ts\":%s,"
                       "\"args\":{\"dst\":%d}}",
                       kind.c_str(), static_cast<unsigned long long>(id),
                       m.src, us(m.send).c_str(), m.dst));
        emit(strformat("{\"name\":\"%s\",\"cat\":\"net\",\"ph\":\"e\","
                       "\"id\":%llu,\"pid\":%d,\"tid\":0,\"ts\":%s}",
                       kind.c_str(), static_cast<unsigned long long>(id),
                       m.src, us(std::max(m.deliver, m.send)).c_str()));
        break;
      }
      case MessageFate::Dropped:
        emit(strformat("{\"name\":\"drop:%s\",\"cat\":\"net\",\"ph\":\"i\","
                       "\"s\":\"p\",\"pid\":%d,\"tid\":0,\"ts\":%s,"
                       "\"args\":{\"dst\":%d}}",
                       kind.c_str(), m.src, us(m.send).c_str(), m.dst));
        break;
      case MessageFate::Duplicated:
        emit(strformat("{\"name\":\"dup:%s\",\"cat\":\"net\",\"ph\":\"i\","
                       "\"s\":\"p\",\"pid\":%d,\"tid\":0,\"ts\":%s,"
                       "\"args\":{\"dst\":%d}}",
                       kind.c_str(), m.src, us(m.send).c_str(), m.dst));
        break;
    }
  }

  for (const DetectorEvent& d : log.detector) {
    const char* what = d.to == 0 ? "cleared" : d.to == 1 ? "suspected" : "declared-dead";
    emit(strformat("{\"name\":\"%s: place %d\",\"cat\":\"detector\","
                   "\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":%s}",
                   what, d.place, us(d.t).c_str()));
  }

  for (const RtEvent& r : log.events) {
    const auto name = std::string(rt_event_kind_name(r.kind));
    emit(strformat("{\"name\":\"%s\",\"cat\":\"runtime\",\"ph\":\"i\","
                   "\"s\":\"p\",\"pid\":%d,\"tid\":0,\"ts\":%s,"
                   "\"args\":{\"a\":%lld,\"b\":%lld}}",
                   name.c_str(), std::max(r.place, 0), us(r.t).c_str(),
                   static_cast<long long>(r.a), static_cast<long long>(r.b)));
  }

  if (metrics != nullptr) {
    for (const TimeSeries& s : metrics->series) {
      const std::int32_t pid = std::max(s.place, 0);
      for (const SamplePoint& pt : s.points) {
        emit(strformat("{\"name\":\"%s\",\"ph\":\"C\",\"pid\":%d,\"tid\":0,"
                       "\"ts\":%s,\"args\":{\"value\":%s}}",
                       s.name.c_str(), pid, us(pt.t).c_str(),
                       strformat("%.17g", pt.value).c_str()));
      }
    }
  }

  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
     << "\"app\":\"" << log.meta.app << "\",\"dag\":\"" << log.meta.dag
     << "\",\"engine\":\"" << log.meta.engine << "\",\"elapsed_s\":"
     << strformat("%.17g", log.meta.elapsed_s) << "}}\n";
}

}  // namespace dpx10::obs
