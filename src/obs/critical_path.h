// Critical-path profiler: walks recorded vertex spans against the DAG's
// dependency structure and reports the longest dependency chain with a
// compute / queue / network / publish breakdown.
//
// The walk starts at the last-finishing published span and repeatedly steps
// to the dependency whose span finished last — the predecessor that gated
// this vertex. Per chain link the elapsed time decomposes exactly:
//
//   dep.end --(publish: readiness signal travels)--> ready
//   ready   --(queue: waiting for a slot/worker)---> start
//   start   --(network: remote dependency fetches)-> data_ready
//   data    --(compute)----------------------------> end
//
// so the segment sums telescope to sink.end, which equals the run's
// elapsed time up to model tolerance — the acceptance check of ISSUE 2 and
// the quantity the nested-dataflow literature calls the span/depth of the
// schedule. The chain breaks at vertices whose dependencies have no
// recorded span (DAG sources, pre-finished cells, or values restored by
// recovery); time before the first chain vertex became ready is reported
// as lead_in_s.
//
// Dependencies are supplied as a callback on linear indices so this module
// stays independent of the core Dag class (callers adapt, see
// report_io/dpx10trace).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "obs/trace_log.h"

namespace dpx10::obs {

/// Appends the dependency *linear indices* of vertex `index` to `out`
/// (without clearing it).
using DepsFn =
    std::function<void(std::int64_t index, std::vector<std::int64_t>& out)>;

struct CriticalPathReport {
  std::vector<std::int64_t> chain;  ///< source -> sink linear indices
  double total_s = 0.0;             ///< end of the sink span
  double lead_in_s = 0.0;           ///< run start -> first chain vertex ready
  double publish_s = 0.0;           ///< dep finished -> successor ready
  double queue_s = 0.0;             ///< ready -> dispatched
  double network_s = 0.0;           ///< dispatched -> remote deps fetched
  double compute_s = 0.0;           ///< deps fetched -> finished

  bool empty() const { return chain.empty(); }
  std::size_t length() const { return chain.size(); }
  /// lead_in + publish + queue + network + compute; equals total_s by
  /// construction (up to floating-point noise).
  double accounted_s() const {
    return lead_in_s + publish_s + queue_s + network_s + compute_s;
  }
};

CriticalPathReport compute_critical_path(const TraceLog& log, const DepsFn& deps);

/// Human-readable breakdown table for CLI output.
void print_critical_path(std::ostream& os, const CriticalPathReport& cp,
                         const TraceLog& log);

}  // namespace dpx10::obs
