// TraceLevel — how much the observability subsystem records.
//
// Kept in its own tiny header so RuntimeOptions (included by every engine
// and every bench) does not pull in the full span/metrics data model.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dpx10::obs {

/// Off       — tracing compiled in but dormant: one predictable branch per
///             potential event, no allocation, no clock reads.
/// Counters  — histograms and time-series samplers only (fetch latency,
///             compute duration, queue depth, ...): cheap enough for
///             production runs.
/// Full      — Counters plus per-vertex lifecycle spans and per-message
///             lifecycle events, exportable to Perfetto.
enum class TraceLevel : std::uint8_t { Off = 0, Counters = 1, Full = 2 };

inline std::string_view trace_level_name(TraceLevel level) {
  switch (level) {
    case TraceLevel::Off: return "off";
    case TraceLevel::Counters: return "counters";
    case TraceLevel::Full: return "full";
  }
  return "?";
}

/// Parses "off"/"counters"/"full"; returns false (leaving `out` untouched)
/// on junk, so CLIs can produce their own error message.
inline bool parse_trace_level(const std::string& text, TraceLevel& out) {
  if (text == "off") { out = TraceLevel::Off; return true; }
  if (text == "counters") { out = TraceLevel::Counters; return true; }
  if (text == "full") { out = TraceLevel::Full; return true; }
  return false;
}

}  // namespace dpx10::obs
