#include "obs/status.h"

#include <cstdio>

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/strings.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace dpx10::obs {

std::int64_t current_pid() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<std::int64_t>(::getpid());
#else
  return 0;
#endif
}

std::int64_t StatusSnapshot::total_ready() const {
  std::int64_t n = 0;
  for (const PlaceStatus& p : places) n += p.ready;
  return n;
}

std::int64_t StatusSnapshot::total_busy() const {
  std::int64_t n = 0;
  for (const PlaceStatus& p : places) n += p.busy;
  return n;
}

std::int64_t StatusSnapshot::total_spill_reads() const {
  std::int64_t n = 0;
  for (const PlaceStatus& p : places) n += p.spill_reads;
  return n;
}

void write_status(std::ostream& os, const StatusSnapshot& s) {
  os << "dpx10-status 1\n";
  os << "seq " << s.seq << '\n';
  os << "pid " << s.pid << '\n';
  os << "run " << (s.app.empty() ? "?" : s.app) << ' '
     << (s.dag.empty() ? "?" : s.dag) << ' '
     << (s.engine.empty() ? "?" : s.engine) << '\n';
  os << "progress " << s.finished << ' ' << s.target << '\n';
  os << "epoch " << s.epoch << ' ' << (s.recovering ? 1 : 0) << '\n';
  os << "elapsed " << strformat("%.17g", s.elapsed_s) << '\n';
  os << "places " << s.places.size() << '\n';
  for (const PlaceStatus& p : s.places) {
    os << "p " << p.place << ' ' << p.ready << ' ' << p.busy << ' '
       << p.live_cells << ' ' << p.live_bytes << ' '
       << strformat("%.17g", p.nic_backlog_s) << ' ' << p.computed << ' '
       << p.spill_reads << ' ' << (p.crashed ? 1 : 0) << '\n';
  }
  os << "end " << s.seq << '\n';
}

bool read_status(std::istream& is, StatusSnapshot& s) {
  s = StatusSnapshot{};
  std::string magic, tag;
  int version = 0;
  if (!(is >> magic >> version)) return false;
  if (magic != "dpx10-status" || version != 1) return false;
  while (is >> tag) {
    if (tag == "end") {
      std::uint64_t trailer = 0;
      if (!(is >> trailer)) return false;
      return trailer == s.seq;
    }
    if (tag == "seq") {
      is >> s.seq;
    } else if (tag == "pid") {
      is >> s.pid;
    } else if (tag == "run") {
      is >> s.app >> s.dag >> s.engine;
    } else if (tag == "progress") {
      is >> s.finished >> s.target;
    } else if (tag == "epoch") {
      int recovering = 0;
      is >> s.epoch >> recovering;
      s.recovering = recovering != 0;
    } else if (tag == "elapsed") {
      is >> s.elapsed_s;
    } else if (tag == "places") {
      std::size_t n = 0;
      is >> n;
      s.places.reserve(n);
    } else if (tag == "p") {
      PlaceStatus p;
      int crashed = 0;
      is >> p.place >> p.ready >> p.busy >> p.live_cells >> p.live_bytes >>
          p.nic_backlog_s >> p.computed >> p.spill_reads >> crashed;
      p.crashed = crashed != 0;
      s.places.push_back(p);
    } else {
      return false;  // unknown record: wrong/newer format, don't guess
    }
    if (!is) return false;  // truncated record
  }
  return false;  // missing end trailer
}

bool write_status_file(const std::string& path, const StatusSnapshot& s) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) return false;
    write_status(os, s);
    if (!os) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool read_status_file(const std::string& path, StatusSnapshot& s) {
  std::ifstream is(path);
  if (!is) return false;
  return read_status(is, s);
}

void print_status(std::ostream& os, const StatusSnapshot& s,
                  const StatusSnapshot* prev) {
  const double pct =
      s.target > 0 ? 100.0 * static_cast<double>(s.finished) /
                         static_cast<double>(s.target)
                   : 0.0;
  os << s.app << " / " << s.dag << " on " << s.engine << "  (pid " << s.pid
     << ", snapshot " << s.seq << ")\n";
  os << strformat("progress %lld / %lld (%.1f%%)  elapsed %.3f s",
                  static_cast<long long>(s.finished),
                  static_cast<long long>(s.target), pct, s.elapsed_s);
  if (prev != nullptr && s.elapsed_s > prev->elapsed_s) {
    const double rate = static_cast<double>(s.finished - prev->finished) /
                        (s.elapsed_s - prev->elapsed_s);
    os << strformat("  (%.0f vertices/s)", rate);
  }
  os << '\n';
  os << "recovery epoch " << s.epoch
     << (s.recovering ? "  [RECOVERING]" : "") << '\n';
  os << strformat("%5s %10s %5s %10s %12s %12s %10s %11s %s\n", "place",
                  "ready", "busy", "live", "live-bytes", "nic-backlog",
                  "computed", "spill-reads", "state");
  for (const PlaceStatus& p : s.places) {
    os << strformat("%5d %10lld %5d %10lld %12lld %12.6f %10lld %11lld %s\n",
                    p.place, static_cast<long long>(p.ready), p.busy,
                    static_cast<long long>(p.live_cells),
                    static_cast<long long>(p.live_bytes), p.nic_backlog_s,
                    static_cast<long long>(p.computed),
                    static_cast<long long>(p.spill_reads),
                    p.crashed ? "DEAD" : "up");
  }
}

}  // namespace dpx10::obs
