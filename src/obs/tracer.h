// Tracer — the low-overhead recording front end of the observability
// subsystem.
//
// Design rules (the <2% disabled-overhead budget of ISSUE 2):
//   * every hot-path hook is guarded by one branch on a level the caller
//     hoists into a local (`if (tracer.spans_on()) ...`) — disabled tracing
//     costs a predictable branch, no clock read, no allocation;
//   * recording never feeds back into engine behaviour: the SimEngine's
//     virtual time and the threaded engine's scheduling are identical with
//     tracing on or off (property-tested in tests/obs_test.cpp);
//   * concurrent writers get private shards (one per worker thread) that
//     are merged deterministically at collect() time — the single-threaded
//     SimEngine uses shard 0 for everything, so same-seed runs produce
//     byte-identical exports.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "net/fault_injector.h"
#include "obs/framework_tax.h"
#include "obs/metrics.h"
#include "obs/trace_level.h"
#include "obs/trace_log.h"

namespace dpx10::obs {

class Tracer : public net::PerturbObserver {
 public:
  /// `nshards` is the number of concurrent writers (1 for the SimEngine,
  /// nworkers + 1 for the ThreadedEngine: one per worker plus the monitor).
  /// `vertex_spans_extra` forces vertex-span recording below Full level —
  /// the legacy RuntimeOptions::record_trace path, which the span tracer
  /// subsumes. `framework_tax` turns on per-vertex bucket attribution
  /// (RuntimeOptions::framework_tax / dpx10run --profile=framework-tax).
  Tracer(TraceLevel level, std::size_t nshards, bool vertex_spans_extra = false,
         bool framework_tax = false);

  TraceLevel level() const { return level_; }
  bool counters_on() const { return level_ >= TraceLevel::Counters; }
  bool spans_on() const { return level_ == TraceLevel::Full; }
  bool vertex_spans_on() const { return spans_on() || vertex_spans_extra_; }
  bool tax_on() const { return framework_tax_; }
  bool active() const {
    return counters_on() || vertex_spans_extra_ || framework_tax_;
  }

  /// One writer's private buffers. Histograms are recorded shard-locally
  /// and merged at collect(); span vectors are concatenated shard-by-shard.
  struct Shard {
    std::vector<VertexSpan> vertices;
    std::vector<MessageEvent> messages;
    std::vector<RtEvent> events;  ///< runtime-subsystem events (Full level)
    Histogram fetch_latency_s;    ///< remote dependency fetch, send -> value
    Histogram compute_s;          ///< compute() duration (incl. gather cost)
    Histogram queue_wait_s;       ///< ready -> dispatched
    Histogram fetch_retries;      ///< retransmissions per retried fetch
    FrameworkTax tax;             ///< per-vertex bucket attribution
  };

  Shard& shard(std::size_t i) { return *shards_[i]; }

  /// Failure-detector health transition (single-writer: the sim event loop
  /// or the threaded monitor thread).
  void detector_event(std::int32_t place, std::uint8_t to, double t);

  /// Appends one gauge sample, creating the series on first use
  /// (single-writer: the sim event loop or the threaded sampler thread).
  void sample(const std::string& name, std::int32_t place, double t, double value);

  /// net::PerturbObserver — the fault injector reports every message fate
  /// it rolls. May be called concurrently by threaded workers, hence the
  /// mutex; only wired up when counters are on, so the lock is never taken
  /// on an untraced run.
  void on_perturb(net::MessageKind kind, std::int32_t src, std::int32_t dst,
                  const net::Perturbation& p, double now) override;

  struct Collected {
    TraceLog log;
    MetricsReport metrics;
    FrameworkTax tax;  ///< merged across shards; vertices == 0 when off
  };

  /// Merges all shards into one TraceLog + MetricsReport. Shards are
  /// visited in index order and series in creation order, so the result is
  /// deterministic whenever the recording was (SimEngine). Call once, after
  /// all writers have stopped.
  Collected collect(TraceMeta meta);

 private:
  TraceLevel level_;
  bool vertex_spans_extra_;
  bool framework_tax_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<DetectorEvent> detector_;
  std::vector<TimeSeries> series_;
  std::map<std::pair<std::string, std::int32_t>, std::size_t> series_index_;
  std::mutex perturb_mu_;
  Histogram injected_delay_s_;
  std::uint64_t perturb_drops_ = 0;
  std::uint64_t perturb_dups_ = 0;
};

}  // namespace dpx10::obs
