// Stall watchdog — classifies "this run is making no progress" into a
// diagnosable cause from consecutive StatusSnapshots.
//
// PR 5's wedge detector turns a lost-decrement hang into an InternalError
// after wedge_timeout_s; this generalizes that into "hang -> diagnosable
// artifact": the watchdog watches snapshot deltas, names the stall, and the
// engines attach the classification to the wedge error and dump the flight
// recorder so there is something to load into dpx10trace.
#pragma once

#include <optional>
#include <string_view>

#include "obs/status.h"

namespace dpx10::obs {

enum class StallClass : std::uint8_t {
  Progressing = 0,  ///< finished count advanced
  Recovering,       ///< a recovery pass is running / epoch advanced
  SpillThrashing,   ///< no progress but out-of-core reads are churning
  Wedged,           ///< nothing ready, nothing running: lost work
  Starved,          ///< work exists or workers busy, yet nothing finishes
};

inline std::string_view stall_class_name(StallClass c) {
  switch (c) {
    case StallClass::Progressing: return "progressing";
    case StallClass::Recovering: return "recovering";
    case StallClass::SpillThrashing: return "spill-thrashing";
    case StallClass::Wedged: return "wedged";
    case StallClass::Starved: return "starved";
  }
  return "?";
}

/// Pure classification of the interval prev -> cur, in priority order:
///   1. finished advanced                      -> Progressing
///   2. recovering flag / epoch advanced       -> Recovering
///   3. spill reads advanced                   -> SpillThrashing
///   4. nothing ready and nothing busy         -> Wedged
///   5. otherwise                              -> Starved
StallClass classify_stall(const StatusSnapshot& prev, const StatusSnapshot& cur);

/// Stateful detector: feed it every snapshot in order; once no snapshot has
/// shown progress for `stall_after_s` (measured on the snapshots' own
/// elapsed_s clock) it reports the stall ONCE per no-progress episode.
/// Progress re-arms it.
class StallWatchdog {
 public:
  explicit StallWatchdog(double stall_after_s) : after_(stall_after_s) {}

  struct Stall {
    StallClass cls = StallClass::Starved;
    double stalled_for_s = 0.0;  ///< since the last progressing snapshot
  };

  std::optional<Stall> observe(const StatusSnapshot& cur);

 private:
  double after_;
  bool have_prev_ = false;
  bool fired_ = false;
  double stall_since_ = 0.0;
  StatusSnapshot prev_;
};

}  // namespace dpx10::obs
