// Flight recorder — an always-on, fixed-size ring of runtime events.
//
// Unlike the tracer (opt-in, unbounded, collected post-mortem), the flight
// recorder runs on every run by default and keeps only the most recent
// `capacity` RtEvents per shard (one shard per worker, so hot-path pushes
// never contend). It answers "what were the last things this run did?"
// when a run crashes, wedges, or is poked with SIGUSR1/SIGQUIT — the rings
// are merged, time-sorted and written as a normal native trace that
// `dpx10trace` can load.
//
// Cost budget: the per-vertex path uses record_fast() — one branch, one
// plain 32-byte slot store, and one release store of the ring head; no
// lock, no CAS. Each worker shard has exactly one writer (the worker), so
// plain stores are race-free; the shared shard (monitor/obs/coordinator
// threads) goes through the mutex-taking record() instead. Timestamps on
// the hottest path are amortized via tick_time(), which re-reads the clock
// once every kClockStride events. The recorder never feeds back into
// engine behaviour, so reports stay byte-identical with the recorder on or
// off (tested in obs_live_test).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/trace_log.h"

namespace dpx10::obs {

class FlightRecorder {
 public:
  /// `capacity` events are retained per shard; 0 disables the recorder
  /// entirely (record() must then not be called — check enabled() first,
  /// engines hoist it into a local).
  FlightRecorder(std::size_t nshards, std::size_t capacity);

  bool enabled() const { return capacity_ != 0; }
  std::size_t capacity() const { return capacity_; }
  std::size_t nshards() const { return rings_.size(); }

  /// Multi-writer-safe push (takes the shard mutex). Use for shards shared
  /// between threads — the engines' obs shard — and anywhere off the hot
  /// path.
  void record(std::size_t shard, RtEventKind kind, std::int32_t place,
              std::int64_t a, std::int64_t b, double t);

  /// Single-writer push: no lock, plain slot store + release head bump.
  /// Only legal when `shard` has exactly one recording thread (each engine
  /// worker owns its shard). A dump taken while a fast writer is mid-push
  /// may observe at most one half-written slot per shard; drain_sorted()
  /// discards slots whose kind is out of range, so dumps stay loadable.
  void record_fast(std::size_t shard, RtEventKind kind, std::int32_t place,
                   std::int64_t a, std::int64_t b, double t) {
    Ring& r = *rings_[shard];
    const std::uint64_t h = r.head.load(std::memory_order_relaxed);
    r.buf[h % capacity_] = RtEvent{t, a, b, place, kind};
    r.head.store(h + 1, std::memory_order_release);
  }

  /// Amortized timestamp for record_fast() on per-vertex paths: returns a
  /// cached reading of `now` and refreshes it every kClockStride calls.
  /// Events between refreshes share a timestamp; drain_sorted() is stable,
  /// so their per-shard order survives the merge. Same single-writer
  /// contract as record_fast().
  template <class NowFn>
  double tick_time(std::size_t shard, NowFn&& now) {
    Ring& r = *rings_[shard];
    if ((r.clock_tick++ & (kClockStride - 1)) == 0) r.clock_cache = now();
    return r.clock_cache;
  }

  /// Total events ever recorded / overwritten by ring wrap, summed over
  /// shards. dropped() == recorded() - resident events.
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  /// Snapshot of all rings, merged and sorted by (t, shard push order).
  /// Safe to call while other threads are still recording.
  std::vector<RtEvent> drain_sorted() const;

  /// Writes the merged ring contents as a native trace file (meta + `r`
  /// records only) that dpx10trace summary/convert can load.
  void dump(std::ostream& os, const TraceMeta& meta) const;

  /// Clock refresh stride of tick_time(); power of two.
  static constexpr std::uint32_t kClockStride = 16;

 private:
  struct Ring {
    mutable std::mutex mu;          ///< serializes record() writers only
    std::vector<RtEvent> buf;       ///< capacity slots, written mod capacity
    std::atomic<std::uint64_t> head{0};  ///< pushes; next slot = head % capacity
    // tick_time() state — touched only by the shard's single fast writer.
    std::uint32_t clock_tick = 0;
    double clock_cache = 0.0;
  };

  std::size_t capacity_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// Async-signal-safe dump requests. install_flight_signal_handlers() hooks
/// SIGUSR1 and SIGQUIT to set a process-global flag; engines with a
/// configured --flight-dump path poll consume_dump_request() and dump when
/// it returns true (once per request). request_flight_dump() sets the same
/// flag programmatically (tests, tooling).
void install_flight_signal_handlers();
void request_flight_dump();
bool consume_dump_request();

}  // namespace dpx10::obs
