#include "obs/framework_tax.h"

#include <ostream>

#include "common/strings.h"
#include "obs/trace_log.h"

namespace dpx10::obs {

namespace {

void row(std::ostream& os, const char* name, double bucket_s, double total_s,
         std::uint64_t vertices) {
  const double share = total_s > 0.0 ? 100.0 * bucket_s / total_s : 0.0;
  const double per_vertex_ns =
      vertices > 0 ? 1e9 * bucket_s / static_cast<double>(vertices) : 0.0;
  os << strformat("  %-10s %12.6f s  %6.2f %%  %10.1f ns/vertex\n", name,
                  bucket_s, share, per_vertex_ns);
}

}  // namespace

void print_framework_tax(std::ostream& os, const FrameworkTax& tax,
                         const TraceMeta& meta) {
  const double total = tax.total_s();
  os << "framework tax (" << meta.app << " / " << meta.dag << " on "
     << meta.engine << ", " << tax.vertices << " vertex executions):\n";
  row(os, "dispatch", tax.dispatch_s, total, tax.vertices);
  row(os, "cache", tax.cache_s, total, tax.vertices);
  row(os, "alloc", tax.alloc_s, total, tax.vertices);
  row(os, "publish", tax.publish_s, total, tax.vertices);
  row(os, "compute", tax.compute_s, total, tax.vertices);
  row(os, "total", total, total, tax.vertices);
  const double tax_share = total > 0.0 ? 100.0 * tax.tax_s() / total : 0.0;
  os << strformat("  tax (non-compute): %.2f %% of attributed time\n",
                  tax_share);
  // Tiled runs: each vertex is a whole tile, so amortize the framework cost
  // over the interior cells it covered — the per-CELL number is what a
  // per-vertex (untiled) run's tax row should be compared against.
  if (tax.units > static_cast<double>(tax.vertices) && tax.vertices > 0) {
    const double cells_per_vertex =
        tax.units / static_cast<double>(tax.vertices);
    os << strformat(
        "  tiled: %.0f cells in %llu tiles (%.1f cells/tile); "
        "amortized tax %.1f ns/cell (%.1f ns/tile)\n",
        tax.units, static_cast<unsigned long long>(tax.vertices),
        cells_per_vertex, 1e9 * tax.tax_s() / tax.units,
        1e9 * tax.tax_s() / static_cast<double>(tax.vertices));
  }
}

}  // namespace dpx10::obs
