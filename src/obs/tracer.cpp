#include "obs/tracer.h"

namespace dpx10::obs {

Tracer::Tracer(TraceLevel level, std::size_t nshards, bool vertex_spans_extra,
               bool framework_tax)
    : level_(level),
      vertex_spans_extra_(vertex_spans_extra),
      framework_tax_(framework_tax) {
  if (nshards == 0) nshards = 1;
  shards_.reserve(nshards);
  for (std::size_t i = 0; i < nshards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void Tracer::detector_event(std::int32_t place, std::uint8_t to, double t) {
  detector_.push_back(DetectorEvent{place, to, t});
}

void Tracer::sample(const std::string& name, std::int32_t place, double t,
                    double value) {
  const auto key = std::make_pair(name, place);
  auto it = series_index_.find(key);
  if (it == series_index_.end()) {
    it = series_index_.emplace(key, series_.size()).first;
    series_.push_back(TimeSeries{name, place, {}});
  }
  series_[it->second].points.push_back(SamplePoint{t, value});
}

void Tracer::on_perturb(net::MessageKind kind, std::int32_t src,
                        std::int32_t dst, const net::Perturbation& p,
                        double now) {
  (void)kind;
  (void)src;
  (void)dst;
  (void)now;
  std::lock_guard<std::mutex> lk(perturb_mu_);
  if (p.dropped) ++perturb_drops_;
  if (p.extra_copies > 0) perturb_dups_ += static_cast<std::uint64_t>(p.extra_copies);
  if (p.extra_delay_s > 0.0) injected_delay_s_.record(p.extra_delay_s);
}

Tracer::Collected Tracer::collect(TraceMeta meta) {
  Collected out;
  out.log.meta = std::move(meta);

  Histogram fetch_latency, compute, queue_wait, retries;
  for (auto& sh : shards_) {
    out.log.vertices.insert(out.log.vertices.end(), sh->vertices.begin(),
                            sh->vertices.end());
    out.log.messages.insert(out.log.messages.end(), sh->messages.begin(),
                            sh->messages.end());
    out.log.events.insert(out.log.events.end(), sh->events.begin(),
                          sh->events.end());
    fetch_latency.merge(sh->fetch_latency_s);
    compute.merge(sh->compute_s);
    queue_wait.merge(sh->queue_wait_s);
    retries.merge(sh->fetch_retries);
    out.tax.merge(sh->tax);
  }
  out.log.detector = std::move(detector_);

  if (counters_on()) {
    out.metrics.histograms.push_back({"fetch_latency_s", fetch_latency});
    out.metrics.histograms.push_back({"compute_s", compute});
    out.metrics.histograms.push_back({"queue_wait_s", queue_wait});
    out.metrics.histograms.push_back({"fetch_retries", retries});
    out.metrics.histograms.push_back({"net_injected_delay_s", injected_delay_s_});
    out.metrics.series = std::move(series_);
  }
  return out;
}

}  // namespace dpx10::obs
