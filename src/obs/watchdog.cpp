#include "obs/watchdog.h"

namespace dpx10::obs {

StallClass classify_stall(const StatusSnapshot& prev, const StatusSnapshot& cur) {
  if (cur.finished > prev.finished) return StallClass::Progressing;
  if (cur.recovering || cur.epoch != prev.epoch) return StallClass::Recovering;
  if (cur.total_spill_reads() > prev.total_spill_reads()) {
    return StallClass::SpillThrashing;
  }
  if (cur.total_ready() == 0 && cur.total_busy() == 0) {
    return StallClass::Wedged;
  }
  return StallClass::Starved;
}

std::optional<StallWatchdog::Stall> StallWatchdog::observe(
    const StatusSnapshot& cur) {
  if (!have_prev_) {
    have_prev_ = true;
    stall_since_ = cur.elapsed_s;
    prev_ = cur;
    return std::nullopt;
  }
  const StallClass cls = classify_stall(prev_, cur);
  prev_ = cur;
  if (cls == StallClass::Progressing || cls == StallClass::Recovering) {
    // Recovery passes restart the clock too: they make no vertex progress
    // by design and have their own (engine-side) failure handling.
    stall_since_ = cur.elapsed_s;
    fired_ = false;
    return std::nullopt;
  }
  const double stalled = cur.elapsed_s - stall_since_;
  if (fired_ || after_ <= 0.0 || stalled < after_) return std::nullopt;
  fired_ = true;
  return Stall{cls, stalled};
}

}  // namespace dpx10::obs
