// Native on-disk trace format: a line-oriented text serialization of
// TraceLog + MetricsReport that round-trips exactly.
//
// This is the format `dpx10run --trace-out=run.trace` records and the
// `dpx10trace` CLI consumes (summarize / convert to Chrome JSON). It embeds
// the dag pattern name and dimensions so a standalone tool can rebuild the
// DAG from the pattern registry and recompute the critical path without the
// original binary. Doubles are written with %.17g so same-seed simulator
// runs serialize byte-identically.
//
// Grammar (one record per line, whitespace-separated):
//   dpx10-trace 1
//   app <name> / dag <name> / engine <name>
//   dims <height> <width> <nplaces> <nthreads>
//   elapsed <seconds>
//   v <index> <place> <slot> <ready> <start> <data_ready> <end> <published>
//   m <kind> <src> <dst> <send> <deliver> <fate>
//   d <place> <to> <t>
//   r <kind> <place> <a> <b> <t>
//   h <name> <count> <sum> <min> <max> <bucket counts x44>
//   s <name> <place> <npoints> <t value>...
//   end
//
// `r` records are runtime-subsystem events (RtEvent: coalescer flushes,
// governor retire/spill/resurrect, recovery epochs, checkpoints, crashes)
// added in ISSUE 7; a log with no events writes no `r` lines, so older
// traces and span-only traces are unchanged byte-for-byte.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.h"
#include "obs/trace_log.h"

namespace dpx10::obs {

void write_native_trace(std::ostream& os, const TraceLog& log,
                        const MetricsReport* metrics = nullptr);

/// Parses a native trace. Throws dpx10::ConfigError on malformed input.
/// `metrics` may be null if the caller does not need them.
void read_native_trace(std::istream& is, TraceLog& log, MetricsReport* metrics);

}  // namespace dpx10::obs
