#include "obs/trace_io.h"

#include <istream>
#include <ostream>

#include "common/error.h"
#include "common/strings.h"

namespace dpx10::obs {

namespace {

const char* g17(double v) {
  // strformat returns a temporary; callers stream it immediately.
  thread_local std::string buf;
  buf = strformat("%.17g", v);
  return buf.c_str();
}

}  // namespace

void write_native_trace(std::ostream& os, const TraceLog& log,
                        const MetricsReport* metrics) {
  os << "dpx10-trace 1\n";
  os << "app " << (log.meta.app.empty() ? "?" : log.meta.app) << '\n';
  os << "dag " << (log.meta.dag.empty() ? "?" : log.meta.dag) << '\n';
  os << "engine " << (log.meta.engine.empty() ? "?" : log.meta.engine) << '\n';
  os << "dims " << log.meta.height << ' ' << log.meta.width << ' '
     << log.meta.nplaces << ' ' << log.meta.nthreads << '\n';
  os << "elapsed " << g17(log.meta.elapsed_s) << '\n';
  // Only tiled runs carry the key: untiled traces stay byte-identical to
  // pre-tiling files and remain loadable by older readers.
  if (log.meta.tile > 1) os << "tile " << log.meta.tile << '\n';
  for (const VertexSpan& v : log.vertices) {
    os << "v " << v.index << ' ' << v.place << ' ' << v.slot << ' '
       << g17(v.ready) << ' ' << g17(v.start) << ' ' << g17(v.data_ready)
       << ' ' << g17(v.end) << ' ' << (v.published ? 1 : 0) << '\n';
  }
  for (const MessageEvent& m : log.messages) {
    os << "m " << static_cast<int>(m.kind) << ' ' << m.src << ' ' << m.dst
       << ' ' << g17(m.send) << ' ' << g17(m.deliver) << ' '
       << static_cast<int>(m.fate) << '\n';
  }
  for (const DetectorEvent& d : log.detector) {
    os << "d " << d.place << ' ' << static_cast<int>(d.to) << ' ' << g17(d.t)
       << '\n';
  }
  for (const RtEvent& r : log.events) {
    os << "r " << static_cast<int>(r.kind) << ' ' << r.place << ' ' << r.a
       << ' ' << r.b << ' ' << g17(r.t) << '\n';
  }
  if (metrics != nullptr) {
    for (const NamedHistogram& nh : metrics->histograms) {
      os << "h " << nh.name << ' ' << nh.hist.count() << ' '
         << g17(nh.hist.sum()) << ' ' << g17(nh.hist.min()) << ' '
         << g17(nh.hist.max());
      for (std::uint64_t b : nh.hist.buckets()) os << ' ' << b;
      os << '\n';
    }
    for (const TimeSeries& s : metrics->series) {
      os << "s " << s.name << ' ' << s.place << ' ' << s.points.size();
      for (const SamplePoint& p : s.points) {
        os << ' ' << g17(p.t) << ' ' << g17(p.value);
      }
      os << '\n';
    }
  }
  os << "end\n";
}

void read_native_trace(std::istream& is, TraceLog& log, MetricsReport* metrics) {
  log = TraceLog{};
  if (metrics != nullptr) *metrics = MetricsReport{};

  std::string magic;
  int version = 0;
  is >> magic >> version;
  require(magic == "dpx10-trace" && version == 1,
          "read_native_trace: not a dpx10-trace v1 file");

  std::string tag;
  while (is >> tag) {
    if (tag == "end") return;
    if (tag == "app") {
      is >> log.meta.app;
    } else if (tag == "dag") {
      is >> log.meta.dag;
    } else if (tag == "engine") {
      is >> log.meta.engine;
    } else if (tag == "dims") {
      is >> log.meta.height >> log.meta.width >> log.meta.nplaces >>
          log.meta.nthreads;
    } else if (tag == "elapsed") {
      is >> log.meta.elapsed_s;
    } else if (tag == "tile") {
      is >> log.meta.tile;
    } else if (tag == "v") {
      VertexSpan v;
      int published = 1;
      is >> v.index >> v.place >> v.slot >> v.ready >> v.start >>
          v.data_ready >> v.end >> published;
      v.published = published != 0;
      log.vertices.push_back(v);
    } else if (tag == "m") {
      MessageEvent m;
      int kind = 0, fate = 0;
      is >> kind >> m.src >> m.dst >> m.send >> m.deliver >> fate;
      require(kind >= 0 && kind < static_cast<int>(net::kMessageKindCount),
              "read_native_trace: message kind out of range");
      require(fate >= 0 && fate <= 2, "read_native_trace: fate out of range");
      m.kind = static_cast<net::MessageKind>(kind);
      m.fate = static_cast<MessageFate>(fate);
      log.messages.push_back(m);
    } else if (tag == "d") {
      DetectorEvent d;
      int to = 0;
      is >> d.place >> to >> d.t;
      d.to = static_cast<std::uint8_t>(to);
      log.detector.push_back(d);
    } else if (tag == "r") {
      RtEvent r;
      int kind = 0;
      is >> kind >> r.place >> r.a >> r.b >> r.t;
      require(kind >= 0 && kind < static_cast<int>(kRtEventKindCount),
              "read_native_trace: runtime-event kind out of range");
      r.kind = static_cast<RtEventKind>(kind);
      log.events.push_back(r);
    } else if (tag == "h") {
      std::string name;
      std::uint64_t count = 0;
      double sum = 0, min = 0, max = 0;
      std::array<std::uint64_t, Histogram::kBucketCount> buckets{};
      is >> name >> count >> sum >> min >> max;
      for (auto& b : buckets) is >> b;
      if (metrics != nullptr) {
        metrics->histograms.push_back(
            {name, Histogram::restore(count, sum, min, max, buckets)});
      }
    } else if (tag == "s") {
      TimeSeries s;
      std::size_t n = 0;
      is >> s.name >> s.place >> n;
      s.points.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        SamplePoint p;
        is >> p.t >> p.value;
        s.points.push_back(p);
      }
      if (metrics != nullptr) metrics->series.push_back(std::move(s));
    } else {
      throw ConfigError("read_native_trace: unknown record '" + tag + "'");
    }
    require(static_cast<bool>(is), "read_native_trace: truncated record");
  }
  throw ConfigError("read_native_trace: missing 'end' marker");
}

}  // namespace dpx10::obs
