// Live status export — the versioned snapshot both engines publish for
// dpx10top and the stall watchdog.
//
// File format "dpx10-status 1" (line-oriented text, like trace_io):
//
//   dpx10-status 1
//   seq <n>
//   pid <pid>
//   run <app> <dag> <engine>
//   progress <finished> <target>
//   epoch <recovery epoch> <recovering 0|1>
//   elapsed <seconds>
//   places <nplaces>
//   p <place> <ready> <busy> <live_cells> <live_bytes> <nic_backlog_s>
//     <computed> <spill_reads> <crashed>          (one line per place)
//   end <n>
//
// Atomicity contract: writers serialize to `<path>.tmp` and rename(2) it
// over `<path>` — readers therefore always see a complete file on POSIX.
// As defense in depth `seq` is repeated in the `end` record and readers
// reject a file whose trailer disagrees with its header (a torn write on a
// filesystem without atomic rename). `seq` is strictly increasing within a
// run, so pollers can tell a fresh snapshot from a stale one.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dpx10::obs {

struct PlaceStatus {
  std::int32_t place = 0;
  std::int64_t ready = 0;          ///< ready-queue depth
  std::int32_t busy = 0;           ///< slots (sim) / non-idle workers (threaded)
  std::int64_t live_cells = 0;     ///< governor-accounted live payloads
  std::int64_t live_bytes = 0;
  double nic_backlog_s = 0.0;      ///< sim NIC serialization backlog; 0 threaded
  std::int64_t computed = 0;
  std::int64_t spill_reads = 0;    ///< cumulative out-of-core demand reads
  bool crashed = false;
};

struct StatusSnapshot {
  std::uint64_t seq = 0;
  std::int64_t pid = 0;
  std::string app;
  std::string dag;
  std::string engine;
  std::int64_t finished = 0;
  std::int64_t target = 0;
  std::int64_t epoch = 0;      ///< recovery epoch counter
  bool recovering = false;     ///< a recovery pass is in flight
  double elapsed_s = 0.0;      ///< virtual (sim) or wall (threaded) seconds
  std::vector<PlaceStatus> places;

  std::int64_t total_ready() const;
  std::int64_t total_busy() const;
  std::int64_t total_spill_reads() const;
};

void write_status(std::ostream& os, const StatusSnapshot& s);

/// Parses one status snapshot. Returns false (leaving `s` unspecified) on
/// bad magic/version, truncation, or a seq mismatch between header and
/// trailer; never throws on malformed input — pollers just retry.
bool read_status(std::istream& is, StatusSnapshot& s);

/// Atomically replaces `path` with the serialized snapshot (write to
/// `<path>.tmp`, then rename). Returns false if either step fails.
bool write_status_file(const std::string& path, const StatusSnapshot& s);

/// Reads `path`; returns false when the file is missing or unreadable yet.
bool read_status_file(const std::string& path, StatusSnapshot& s);

/// Renders the per-place table dpx10top shows. `prev` (may be null) adds
/// finished/s and per-place throughput deltas.
void print_status(std::ostream& os, const StatusSnapshot& s,
                  const StatusSnapshot* prev);

/// The publishing process's pid (0 where unavailable) — lets dpx10top name
/// the run and lets operators aim SIGUSR1.
std::int64_t current_pid();

}  // namespace dpx10::obs
