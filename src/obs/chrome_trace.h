// Chrome trace_event JSON exporter.
//
// Writes a TraceLog (plus optional metrics time series) in the Trace Event
// Format consumed by Perfetto and chrome://tracing:
//   * each place is a process (pid = place, named "place N");
//   * each execution slot / worker is a thread (tid = slot, named
//     "slot N"), carrying the vertex compute spans as complete ("X")
//     events with the queue/network phase breakdown in args;
//   * messages are async ("b"/"e") events on the source place so
//     overlapping in-flight messages render on their own tracks; dropped
//     and duplicated messages appear as instant ("i") events;
//   * failure-detector transitions are instant events on the monitor;
//   * metric time series become counter ("C") events.
// Timestamps are microseconds (the format's native unit) from run start.
#pragma once

#include <iosfwd>

#include "obs/metrics.h"
#include "obs/trace_log.h"

namespace dpx10::obs {

void write_chrome_trace(std::ostream& os, const TraceLog& log,
                        const MetricsReport* metrics = nullptr);

}  // namespace dpx10::obs
