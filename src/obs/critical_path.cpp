#include "obs/critical_path.h"

#include <algorithm>
#include <ostream>
#include <unordered_map>

#include "common/strings.h"

namespace dpx10::obs {

CriticalPathReport compute_critical_path(const TraceLog& log,
                                         const DepsFn& deps) {
  CriticalPathReport cp;

  // Last published span per vertex: with faults a vertex can run several
  // times; only the publish that survived feeds dependents.
  std::unordered_map<std::int64_t, const VertexSpan*> last;
  last.reserve(log.vertices.size());
  for (const VertexSpan& v : log.vertices) {
    if (!v.published) continue;
    auto [it, inserted] = last.emplace(v.index, &v);
    if (!inserted && v.end > it->second->end) it->second = &v;
  }
  if (last.empty()) return cp;

  // Sink: the latest-finishing span (ties broken by smaller index so the
  // walk is deterministic across identical runs).
  const VertexSpan* sink = nullptr;
  for (const auto& [idx, span] : last) {
    if (sink == nullptr || span->end > sink->end ||
        (span->end == sink->end && span->index < sink->index)) {
      sink = span;
    }
  }

  std::vector<std::int64_t> dep_scratch;
  const VertexSpan* cur = sink;
  cp.total_s = sink->end;
  while (true) {
    cp.chain.push_back(cur->index);
    const double data_ready = std::max(cur->data_ready, cur->start);
    cp.compute_s += cur->end - std::max(data_ready, cur->start);
    cp.network_s += std::max(0.0, cur->data_ready - cur->start);
    cp.queue_s += std::max(0.0, cur->start - cur->ready);

    dep_scratch.clear();
    deps(cur->index, dep_scratch);
    const VertexSpan* gate = nullptr;
    for (std::int64_t d : dep_scratch) {
      auto it = last.find(d);
      if (it == last.end()) continue;  // source / pre-finished / restored
      const VertexSpan* s = it->second;
      if (s->end >= cur->ready + 1e-15) continue;  // published after we were
                                                   // ready: not our gate
      if (gate == nullptr || s->end > gate->end ||
          (s->end == gate->end && s->index < gate->index)) {
        gate = s;
      }
    }
    if (gate == nullptr) {
      cp.lead_in_s = std::max(0.0, cur->ready);
      break;
    }
    cp.publish_s += std::max(0.0, cur->ready - gate->end);
    cur = gate;
  }
  std::reverse(cp.chain.begin(), cp.chain.end());
  return cp;
}

void print_critical_path(std::ostream& os, const CriticalPathReport& cp,
                         const TraceLog& log) {
  if (cp.empty()) {
    os << "critical path: no published vertex spans recorded\n";
    return;
  }
  const auto pct = [&](double v) {
    return cp.total_s > 0.0 ? 100.0 * v / cp.total_s : 0.0;
  };
  os << "critical path (" << log.meta.app << " on '" << log.meta.dag << "', "
     << log.meta.engine << " engine):\n";
  os << strformat("  chain length:  %zu vertices (of %zu executed spans)\n",
                  cp.length(), log.vertices.size());
  os << strformat("  total:         %s  (run elapsed %s)\n",
                  human_seconds(cp.total_s).c_str(),
                  human_seconds(log.meta.elapsed_s).c_str());
  os << strformat("    compute:     %12s  %5.1f%%\n",
                  human_seconds(cp.compute_s).c_str(), pct(cp.compute_s));
  os << strformat("    queue wait:  %12s  %5.1f%%\n",
                  human_seconds(cp.queue_s).c_str(), pct(cp.queue_s));
  os << strformat("    network:     %12s  %5.1f%%\n",
                  human_seconds(cp.network_s).c_str(), pct(cp.network_s));
  os << strformat("    publish:     %12s  %5.1f%%\n",
                  human_seconds(cp.publish_s).c_str(), pct(cp.publish_s));
  if (cp.lead_in_s > 0.0) {
    os << strformat("    lead-in:     %12s  %5.1f%%\n",
                    human_seconds(cp.lead_in_s).c_str(), pct(cp.lead_in_s));
  }
}

}  // namespace dpx10::obs
