// Execution-slot bookkeeping for one simulated place.
//
// A place has `nthreads` execution slots (the paper runs X10_NTHREADS = 6
// worker threads per place). A slot is either free from some time onward or
// busy until a known completion time. The pool answers "when could the next
// vertex start?" and records reservations. It also tracks busy-time so a
// run report can give per-place utilization.
#pragma once

#include <cstdint>
#include <vector>

namespace dpx10::sim {

class SlotPool {
 public:
  SlotPool(std::int32_t nthreads, double now = 0.0);

  std::int32_t nthreads() const { return static_cast<std::int32_t>(free_at_.size()); }

  /// Earliest time at or after `now` at which some slot is available.
  double earliest_start(double now) const;

  /// True when at least one slot is free at time `now`.
  bool available(double now) const { return earliest_start(now) <= now; }

  /// Reserves the earliest-available slot for [start, end). `start` must be
  /// >= earliest_start(start). Returns the slot index.
  std::int32_t reserve(double start, double end);

  /// Releases every reservation and makes all slots free from `time` —
  /// used when a fault pauses the cluster and in-flight work is discarded.
  void reset_all(double time);

  /// Keeps reservations but forbids new work before `time` — used when a
  /// global pause (snapshot) must not discard in-flight work. Not counted
  /// as busy time.
  void delay_all_until(double time);

  double busy_seconds() const { return busy_seconds_; }

  /// Returns the accumulated busy time and zeroes the accumulator — the
  /// checkpoint barrier folds it into the durable per-place stats so a
  /// resumed run (manifest value + fresh accumulator) performs bit-for-bit
  /// the same additions as the run that wrote the bundle.
  double take_busy_seconds() {
    const double b = busy_seconds_;
    busy_seconds_ = 0.0;
    return b;
  }
  std::uint64_t reservations() const { return reservations_; }

  /// Number of slots reserved past `now` — the observability sampler's
  /// slot-utilization gauge.
  std::int32_t busy_count(double now) const {
    std::int32_t n = 0;
    for (double f : free_at_) n += f > now ? 1 : 0;
    return n;
  }

 private:
  std::size_t min_index() const;

  std::vector<double> free_at_;
  double busy_seconds_ = 0.0;
  std::uint64_t reservations_ = 0;
};

}  // namespace dpx10::sim
