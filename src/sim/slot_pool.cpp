#include "sim/slot_pool.h"

#include <algorithm>

#include "common/error.h"

namespace dpx10::sim {

SlotPool::SlotPool(std::int32_t nthreads, double now) {
  require(nthreads > 0, "SlotPool: nthreads must be positive");
  free_at_.assign(static_cast<std::size_t>(nthreads), now);
}

std::size_t SlotPool::min_index() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < free_at_.size(); ++i) {
    if (free_at_[i] < free_at_[best]) best = i;
  }
  return best;
}

double SlotPool::earliest_start(double now) const {
  return std::max(now, free_at_[min_index()]);
}

std::int32_t SlotPool::reserve(double start, double end) {
  std::size_t slot = min_index();
  check_internal(free_at_[slot] <= start, "SlotPool::reserve: slot not free at start");
  check_internal(end >= start, "SlotPool::reserve: negative duration");
  free_at_[slot] = end;
  busy_seconds_ += end - start;
  ++reservations_;
  return static_cast<std::int32_t>(slot);
}

void SlotPool::reset_all(double time) {
  std::fill(free_at_.begin(), free_at_.end(), time);
}

void SlotPool::delay_all_until(double time) {
  for (double& t : free_at_) t = std::max(t, time);
}

}  // namespace dpx10::sim
