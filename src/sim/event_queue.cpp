#include "sim/event_queue.h"

#include "common/error.h"

namespace dpx10::sim {

std::uint64_t EventQueue::push(SimTime time, std::uint32_t kind, std::int64_t a,
                               std::int64_t b) {
  check_internal(time >= 0.0 && time == time, "EventQueue::push: bad time");
  Event ev;
  ev.time = time;
  ev.seq = next_seq_++;
  ev.kind = kind;
  ev.a = a;
  ev.b = b;
  heap_.push(ev);
  return ev.seq;
}

SimTime EventQueue::next_time() const {
  check_internal(!heap_.empty(), "EventQueue::next_time on empty queue");
  return heap_.top().time;
}

Event EventQueue::pop() {
  check_internal(!heap_.empty(), "EventQueue::pop on empty queue");
  Event ev = heap_.top();
  heap_.pop();
  return ev;
}

void EventQueue::clear() {
  heap_ = {};
}

}  // namespace dpx10::sim
