// Deterministic discrete-event queue.
//
// Events are ordered by (time, sequence-number): ties in virtual time break
// by insertion order, which makes a simulation a pure function of its
// inputs — two runs with the same seed produce byte-identical traces. This
// determinism is what lets us property-test the cluster simulator and make
// the figure benches reproducible.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace dpx10::sim {

using SimTime = double;  ///< virtual seconds since run start

/// Event identity: what to do is encoded by the engine in `kind` plus two
/// engine-defined payload words (typically a place id and a vertex index).
struct Event {
  SimTime time = 0.0;
  std::uint64_t seq = 0;   ///< tiebreaker, assigned by the queue
  std::uint32_t kind = 0;  ///< engine-defined discriminator
  std::int64_t a = 0;      ///< engine-defined payload
  std::int64_t b = 0;      ///< engine-defined payload
};

class EventQueue {
 public:
  EventQueue() = default;

  /// Schedules an event; returns the assigned sequence number.
  std::uint64_t push(SimTime time, std::uint32_t kind, std::int64_t a, std::int64_t b);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  SimTime next_time() const;

  /// Removes and returns the earliest event. Requires !empty().
  Event pop();

  void clear();

  /// Total events ever pushed — useful for run reports and loop guards.
  std::uint64_t pushed() const { return next_seq_; }

 private:
  struct Later {
    bool operator()(const Event& x, const Event& y) const {
      if (x.time != y.time) return x.time > y.time;
      return x.seq > y.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dpx10::sim
