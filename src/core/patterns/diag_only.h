// Pattern (f): each cell depends only on its top-left diagonal neighbour.
//
// Diagonals are independent chains; used by recurrences that advance both
// indices together (e.g. match-only alignment scoring).
#pragma once

#include "core/dag.h"

namespace dpx10::patterns {

class DiagOnlyDag final : public Dag {
 public:
  DiagOnlyDag(std::int32_t height, std::int32_t width)
      : Dag(height, width, DagDomain::rect(height, width)) {}

  void dependencies(VertexId v, std::vector<VertexId>& out) const override {
    emit_if(v.i - 1, v.j - 1, out);
  }

  void anti_dependencies(VertexId v, std::vector<VertexId>& out) const override {
    emit_if(v.i + 1, v.j + 1, out);
  }

  std::string_view name() const override { return "diag"; }
};

}  // namespace dpx10::patterns
