#include "core/patterns/registry.h"

#include "common/error.h"
#include "core/patterns/diag_only.h"
#include "core/patterns/full_prefix.h"
#include "core/patterns/interval.h"
#include "core/patterns/interval_prefix.h"
#include "core/patterns/left_only.h"
#include "core/patterns/left_top.h"
#include "core/patterns/left_top_diag.h"
#include "core/patterns/pyramid.h"
#include "core/patterns/top_only.h"

namespace dpx10::patterns {

const std::vector<std::string>& builtin_pattern_names() {
  static const std::vector<std::string> names = {
      "left-top", "left-top-diag", "left",    "interval",
      "top",      "diag",          "pyramid", "full-prefix",
  };
  return names;
}

const std::vector<std::string>& extended_pattern_names() {
  static const std::vector<std::string> names = {"interval-prefix"};
  return names;
}

std::unique_ptr<Dag> make_pattern(const std::string& name, std::int32_t height,
                                  std::int32_t width) {
  if (name == "left-top") return std::make_unique<LeftTopDag>(height, width);
  if (name == "left-top-diag") return std::make_unique<LeftTopDiagDag>(height, width);
  if (name == "left") return std::make_unique<LeftOnlyDag>(height, width);
  if (name == "interval") {
    require(height == width, "make_pattern: interval pattern must be square");
    return std::make_unique<IntervalDag>(height);
  }
  if (name == "top") return std::make_unique<TopOnlyDag>(height, width);
  if (name == "diag") return std::make_unique<DiagOnlyDag>(height, width);
  if (name == "pyramid") return std::make_unique<PyramidDag>(height, width);
  if (name == "full-prefix") return std::make_unique<FullPrefixDag>(height, width);
  if (name == "interval-prefix") {
    require(height == width, "make_pattern: interval-prefix pattern must be square");
    return std::make_unique<IntervalPrefixDag>(height);
  }
  throw ConfigError("make_pattern: unknown pattern '" + name + "'");
}

}  // namespace dpx10::patterns
