// Pattern (h): 2D/1D dependencies — a cell depends on its whole row and
// column prefix.
//
// D[i,j] <- D[i,k] for all k < j and D[k,j] for all k < i. This is the
// Galil-Park 2D/1D class (§III, Algorithm 3.2-like shapes: matrix chain,
// optimal BST). The paper notes DPX10 *can* express this class though
// performance is "less than satisfactory" — the O(n) fan-in per vertex is
// inherent; we ship the pattern and demonstrate it in an example so the
// expressibility claim is reproduced.
#pragma once

#include "core/dag.h"

namespace dpx10::patterns {

class FullPrefixDag final : public Dag {
 public:
  FullPrefixDag(std::int32_t height, std::int32_t width)
      : Dag(height, width, DagDomain::rect(height, width)) {}

  void dependencies(VertexId v, std::vector<VertexId>& out) const override {
    for (std::int32_t k = 0; k < v.j; ++k) emit_if(v.i, k, out);
    for (std::int32_t k = 0; k < v.i; ++k) emit_if(k, v.j, out);
  }

  void anti_dependencies(VertexId v, std::vector<VertexId>& out) const override {
    for (std::int32_t k = v.j + 1; k < width(); ++k) emit_if(v.i, k, out);
    for (std::int32_t k = v.i + 1; k < height(); ++k) emit_if(k, v.j, out);
  }

  std::string_view name() const override { return "full-prefix"; }
};

}  // namespace dpx10::patterns
