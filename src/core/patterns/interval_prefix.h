// Extension pattern: 2D/1D interval-prefix dependencies.
//
// Cell (i, j), i <= j, depends on its whole row prefix (i, k), k < j, and
// column suffix (k, j), k > i — the Galil-Park 2D/1D class of §III
// (Algorithm 3.2): matrix-chain multiplication, optimal BSTs, and (with an
// extra inner-diagonal edge) Nussinov folding. Not one of the paper's
// eight built-ins; shipped as the library form of the expressibility claim
// ("DPX10 can also express the type of 2D/iD (i >= 1)", §III) — the O(n)
// fan-in per vertex is what makes its performance "less than satisfactory".
#pragma once

#include "core/dag.h"

namespace dpx10::patterns {

class IntervalPrefixDag final : public Dag {
 public:
  explicit IntervalPrefixDag(std::int32_t n)
      : Dag(n, n, DagDomain::upper_triangular(n)) {}

  void dependencies(VertexId v, std::vector<VertexId>& out) const override {
    for (std::int32_t k = v.i; k < v.j; ++k) out.push_back({v.i, k});
    for (std::int32_t k = v.i + 1; k <= v.j; ++k) out.push_back({k, v.j});
  }

  void anti_dependencies(VertexId v, std::vector<VertexId>& out) const override {
    for (std::int32_t k = v.j + 1; k < width(); ++k) out.push_back({v.i, k});
    for (std::int32_t k = 0; k < v.i; ++k) out.push_back({k, v.j});
  }

  std::string_view name() const override { return "interval-prefix"; }
};

}  // namespace dpx10::patterns
