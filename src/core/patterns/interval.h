// Pattern (d): interval DP on the upper triangle.
//
// D[i,j] (i <= j) depends on D[i+1,j], D[i,j-1] and D[i+1,j-1]; cells fill
// from the main diagonal outward to the top-right corner. This is the shape
// of the Longest Palindromic Subsequence recurrence the paper evaluates,
// and of interval DPs generally.
#pragma once

#include "core/dag.h"

namespace dpx10::patterns {

class IntervalDag final : public Dag {
 public:
  explicit IntervalDag(std::int32_t n) : Dag(n, n, DagDomain::upper_triangular(n)) {}

  void dependencies(VertexId v, std::vector<VertexId>& out) const override {
    emit_if(v.i + 1, v.j, out);
    emit_if(v.i, v.j - 1, out);
    emit_if(v.i + 1, v.j - 1, out);
  }

  void anti_dependencies(VertexId v, std::vector<VertexId>& out) const override {
    emit_if(v.i - 1, v.j, out);
    emit_if(v.i, v.j + 1, out);
    emit_if(v.i - 1, v.j + 1, out);
  }

  std::string_view name() const override { return "interval"; }
};

}  // namespace dpx10::patterns
