// Pattern (a): each cell depends on its left and top neighbours.
//
// The dependency shape of the Manhattan Tourists Problem and of many
// grid-path DPs: D[i,j] <- D[i-1,j], D[i,j-1].
#pragma once

#include "core/dag.h"

namespace dpx10::patterns {

class LeftTopDag final : public Dag {
 public:
  LeftTopDag(std::int32_t height, std::int32_t width)
      : Dag(height, width, DagDomain::rect(height, width)) {}

  void dependencies(VertexId v, std::vector<VertexId>& out) const override {
    emit_if(v.i - 1, v.j, out);
    emit_if(v.i, v.j - 1, out);
  }

  void anti_dependencies(VertexId v, std::vector<VertexId>& out) const override {
    emit_if(v.i + 1, v.j, out);
    emit_if(v.i, v.j + 1, out);
  }

  std::string_view name() const override { return "left-top"; }
};

}  // namespace dpx10::patterns
