// Pattern registry — the DAG pattern library's front door (§VI-B).
//
// Benches, examples and tests construct built-in patterns by name so sweeps
// can iterate "every shipped pattern" without hard-coding the list.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/dag.h"

namespace dpx10::patterns {

/// Names of all built-in patterns, in the order of paper Fig. 5 as mapped
/// in DESIGN.md: left-top, left-top-diag, left, interval, top, diag,
/// pyramid, full-prefix.
const std::vector<std::string>& builtin_pattern_names();

/// Names of extension patterns beyond the paper's eight (constructible via
/// make_pattern but not part of the Fig. 5 library): today "interval-prefix"
/// (the 2D/1D class of paper Sec. III).
const std::vector<std::string>& extended_pattern_names();

/// Instantiates a built-in or extension pattern. Square-only patterns
/// ("interval", "interval-prefix") require height == width. Throws
/// ConfigError for unknown names.
std::unique_ptr<Dag> make_pattern(const std::string& name, std::int32_t height,
                                  std::int32_t width);

}  // namespace dpx10::patterns
