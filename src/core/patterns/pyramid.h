// Pattern (g): each cell depends on the three cells above it.
//
// D[i,j] <- D[i-1,j-1], D[i-1,j], D[i-1,j+1]: the triangle-path / trellis
// shape (Viterbi-style recurrences, minimum triangle path sums).
#pragma once

#include "core/dag.h"

namespace dpx10::patterns {

class PyramidDag final : public Dag {
 public:
  PyramidDag(std::int32_t height, std::int32_t width)
      : Dag(height, width, DagDomain::rect(height, width)) {}

  void dependencies(VertexId v, std::vector<VertexId>& out) const override {
    emit_if(v.i - 1, v.j - 1, out);
    emit_if(v.i - 1, v.j, out);
    emit_if(v.i - 1, v.j + 1, out);
  }

  void anti_dependencies(VertexId v, std::vector<VertexId>& out) const override {
    emit_if(v.i + 1, v.j - 1, out);
    emit_if(v.i + 1, v.j, out);
    emit_if(v.i + 1, v.j + 1, out);
  }

  std::string_view name() const override { return "pyramid"; }
};

}  // namespace dpx10::patterns
