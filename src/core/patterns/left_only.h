// Pattern (c): each cell depends only on its left neighbour.
//
// Rows are independent scan chains — embarrassingly parallel across rows.
// Useful for per-row recurrences (prefix scores, independent 1D DPs).
#pragma once

#include "core/dag.h"

namespace dpx10::patterns {

class LeftOnlyDag final : public Dag {
 public:
  LeftOnlyDag(std::int32_t height, std::int32_t width)
      : Dag(height, width, DagDomain::rect(height, width)) {}

  void dependencies(VertexId v, std::vector<VertexId>& out) const override {
    emit_if(v.i, v.j - 1, out);
  }

  void anti_dependencies(VertexId v, std::vector<VertexId>& out) const override {
    emit_if(v.i, v.j + 1, out);
  }

  std::string_view name() const override { return "left"; }
};

}  // namespace dpx10::patterns
