// Pattern (b): left, top, and top-left diagonal dependencies.
//
// The classic sequence-alignment wavefront: LCS, Smith-Waterman and SWLAG
// all use D[i,j] <- D[i-1,j], D[i,j-1], D[i-1,j-1] (paper Figs. 1 and 5b).
#pragma once

#include "core/dag.h"

namespace dpx10::patterns {

class LeftTopDiagDag final : public Dag {
 public:
  LeftTopDiagDag(std::int32_t height, std::int32_t width)
      : Dag(height, width, DagDomain::rect(height, width)) {}

  void dependencies(VertexId v, std::vector<VertexId>& out) const override {
    emit_if(v.i - 1, v.j - 1, out);
    emit_if(v.i - 1, v.j, out);
    emit_if(v.i, v.j - 1, out);
  }

  void anti_dependencies(VertexId v, std::vector<VertexId>& out) const override {
    emit_if(v.i + 1, v.j + 1, out);
    emit_if(v.i + 1, v.j, out);
    emit_if(v.i, v.j + 1, out);
  }

  std::string_view name() const override { return "left-top-diag"; }
};

}  // namespace dpx10::patterns
