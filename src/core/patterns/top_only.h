// Pattern (e): each cell depends only on the cell above it.
//
// Columns are independent scan chains; the transpose of the left-only
// pattern.
#pragma once

#include "core/dag.h"

namespace dpx10::patterns {

class TopOnlyDag final : public Dag {
 public:
  TopOnlyDag(std::int32_t height, std::int32_t width)
      : Dag(height, width, DagDomain::rect(height, width)) {}

  void dependencies(VertexId v, std::vector<VertexId>& out) const override {
    emit_if(v.i - 1, v.j, out);
  }

  void anti_dependencies(VertexId v, std::vector<VertexId>& out) const override {
    emit_if(v.i + 1, v.j, out);
  }

  std::string_view name() const override { return "top"; }
};

}  // namespace dpx10::patterns
