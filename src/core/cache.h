// FifoVertexCache<T> — the per-place remote-vertex cache (§VI-C).
//
// "The worker maintains a cache list that caches recently transmitted
// vertices. For efficiency, the cache list is implemented using a static
// array and its size can be specified by the user. We adopt a simple FIFO
// replacement mechanism." We keep exactly that: a fixed ring of entries
// plus an index for O(1) lookup. Capacity 0 disables caching (as the
// paper's overhead experiment does).
//
// Thread safety is the caller's concern: the threaded engine guards each
// place's cache with that place's cache mutex; the simulator is
// single-threaded.
#pragma once

#include <algorithm>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/vertex_id.h"

namespace dpx10 {

template <typename T>
class FifoVertexCache {
 public:
  explicit FifoVertexCache(std::size_t capacity) : capacity_(capacity) {
    entries_.reserve(capacity_);
    index_.reserve(capacity_ * 2);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }
  /// Cumulative capacity evictions (not erase() drops; survives clear()).
  std::uint64_t evictions() const { return evictions_; }

  /// Looks up `id`; on hit copies the cached value into `out`.
  bool get(VertexId id, T& out) const {
    auto it = index_.find(id.key());
    if (it == index_.end()) return false;
    out = entries_[it->second].value;
    return true;
  }

  /// Inserts (id, value), evicting the oldest entry when full. Re-inserting
  /// a present key refreshes its value but not its age (pure FIFO).
  void put(VertexId id, const T& value) {
    if (capacity_ == 0) return;
    auto it = index_.find(id.key());
    if (it != index_.end()) {
      entries_[it->second].value = value;
      return;
    }
    if (entries_.size() < capacity_) {
      index_.emplace(id.key(), entries_.size());
      entries_.push_back(Entry{id.key(), value, true});
      return;
    }
    // Evict (or reuse, if erase() already emptied it) the slot the FIFO
    // cursor points at.
    Entry& victim = entries_[cursor_];
    if (victim.occupied) {
      index_.erase(victim.key);
      ++evictions_;
    }
    victim.key = id.key();
    victim.value = value;
    victim.occupied = true;
    index_.emplace(id.key(), cursor_);
    cursor_ = (cursor_ + 1) % capacity_;
  }

  /// Drops `id` if cached (memory governor: the vertex was retired, its
  /// value must not be served anymore). The ring slot stays in place and is
  /// reused when the cursor reaches it; not counted as an eviction.
  void erase(VertexId id) {
    auto it = index_.find(id.key());
    if (it == index_.end()) return;
    Entry& entry = entries_[it->second];
    entry.occupied = false;
    entry.value = T{};
    index_.erase(it);
  }

  void clear() {
    entries_.clear();
    index_.clear();
    cursor_ = 0;
  }

 private:
  struct Entry {
    std::uint64_t key;
    T value;
    bool occupied;
  };

  std::size_t capacity_;
  std::vector<Entry> entries_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::size_t cursor_ = 0;
  std::uint64_t evictions_ = 0;
};

/// LRU alternative to the paper's FIFO list. The paper argues FIFO is
/// enough "considering that the DP algorithm normally has a regular DAG
/// pattern and each vertex may only be needed in a short period";
/// bench/ablate_cache puts that argument to the test by running both
/// policies on regular (SWLAG) and irregular (0/1KP) access patterns.
template <typename T>
class LruVertexCache {
 public:
  explicit LruVertexCache(std::size_t capacity) : capacity_(capacity) {
    index_.reserve(capacity_ * 2);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return order_.size(); }
  /// Cumulative capacity evictions (not erase() drops; survives clear()).
  std::uint64_t evictions() const { return evictions_; }

  /// Lookup; a hit refreshes the entry's recency.
  bool get(VertexId id, T& out) {
    auto it = index_.find(id.key());
    if (it == index_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);  // move to front
    out = it->second->value;
    return true;
  }

  void put(VertexId id, const T& value) {
    if (capacity_ == 0) return;
    auto it = index_.find(id.key());
    if (it != index_.end()) {
      it->second->value = value;
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (order_.size() == capacity_) {
      index_.erase(order_.back().key);
      order_.pop_back();
      ++evictions_;
    }
    order_.push_front(Entry{id.key(), value});
    index_.emplace(id.key(), order_.begin());
  }

  /// Drops `id` if cached (not counted as an eviction).
  void erase(VertexId id) {
    auto it = index_.find(id.key());
    if (it == index_.end()) return;
    order_.erase(it->second);
    index_.erase(it);
  }

  void clear() {
    order_.clear();
    index_.clear();
  }

 private:
  struct Entry {
    std::uint64_t key;
    T value;
  };

  std::size_t capacity_;
  std::list<Entry> order_;  // front = most recently used
  std::unordered_map<std::uint64_t, typename std::list<Entry>::iterator> index_;
  std::uint64_t evictions_ = 0;
};

/// Runtime-selectable cache used by the engines.
enum class CachePolicy : std::uint8_t { Fifo = 0, Lru };

inline std::string_view cache_policy_name(CachePolicy p) {
  return p == CachePolicy::Fifo ? "fifo" : "lru";
}

template <typename T>
class VertexCache {
 public:
  VertexCache(CachePolicy policy, std::size_t capacity)
      : policy_(policy), fifo_(policy == CachePolicy::Fifo ? capacity : 0),
        lru_(policy == CachePolicy::Lru ? capacity : 0) {}

  bool get(VertexId id, T& out) {
    return policy_ == CachePolicy::Fifo ? fifo_.get(id, out) : lru_.get(id, out);
  }

  void put(VertexId id, const T& value) {
    if (policy_ == CachePolicy::Fifo) {
      fifo_.put(id, value);
    } else {
      lru_.put(id, value);
    }
  }

  void erase(VertexId id) {
    if (policy_ == CachePolicy::Fifo) {
      fifo_.erase(id);
    } else {
      lru_.erase(id);
    }
  }

  std::uint64_t evictions() const {
    return fifo_.evictions() + lru_.evictions();
  }

  void clear() {
    fifo_.clear();
    lru_.clear();
  }

 private:
  CachePolicy policy_;
  FifoVertexCache<T> fifo_;
  LruVertexCache<T> lru_;
};

/// N-way lock-striped wrapper around VertexCache for the threaded engine.
/// Each stripe owns an independent mutex + cache holding its share of the
/// capacity; a key always maps to the same stripe, so get/put for one
/// vertex never contend with a different stripe's traffic. One stripe
/// reproduces the legacy single-lock, single-FIFO behaviour exactly.
template <typename T>
class StripedVertexCache {
 public:
  StripedVertexCache(CachePolicy policy, std::size_t capacity, std::size_t stripes)
      : stripes_(std::max<std::size_t>(1, stripes)) {
    // Split the capacity evenly, rounding up so `stripes` one-entry caches
    // never degenerate to zero; total capacity may exceed the request by at
    // most stripes-1 entries.
    const std::size_t share =
        capacity == 0 ? 0 : (capacity + stripes_.size() - 1) / stripes_.size();
    for (Stripe& s : stripes_) {
      s.cache = std::make_unique<VertexCache<T>>(policy, share);
    }
  }

  std::size_t stripe_count() const { return stripes_.size(); }

  bool get(VertexId id, T& out) {
    Stripe& s = stripe_of(id);
    std::lock_guard<std::mutex> lock(s.mu);
    return s.cache->get(id, out);
  }

  void put(VertexId id, const T& value) {
    Stripe& s = stripe_of(id);
    std::lock_guard<std::mutex> lock(s.mu);
    s.cache->put(id, value);
  }

  void erase(VertexId id) {
    Stripe& s = stripe_of(id);
    std::lock_guard<std::mutex> lock(s.mu);
    s.cache->erase(id);
  }

  std::uint64_t evictions() const {
    std::uint64_t n = 0;
    for (const Stripe& s : stripes_) {
      std::lock_guard<std::mutex> lock(s.mu);
      n += s.cache->evictions();
    }
    return n;
  }

  void clear() {
    for (Stripe& s : stripes_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.cache->clear();
    }
  }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unique_ptr<VertexCache<T>> cache;
  };

  Stripe& stripe_of(VertexId id) {
    // key() already mixes row and column; a multiplicative hash spreads
    // neighbouring diagonals across stripes.
    const std::uint64_t h = id.key() * 0x9e3779b97f4a7c15ull;
    return stripes_[(h >> 32) % stripes_.size()];
  }

  std::vector<Stripe> stripes_;
};

}  // namespace dpx10
