// validate_dag — structural checker for custom DAG patterns.
//
// The engine's correctness rests on two contracts a custom pattern must
// honor (core/dag.h): dependencies/anti_dependencies are exact duals, and
// the graph is acyclic with every cell reachable from the zero-indegree
// seeds. Pattern authors run this once in a test (it is O(V + E) time and
// O(V + E) memory — not for billion-vertex production DAGs) and get a
// precise diagnostic instead of an engine hang.
#pragma once

#include <string>
#include <vector>

#include "core/dag.h"

namespace dpx10 {

struct DagValidation {
  bool ok = true;
  /// Human-readable findings; empty when ok.
  std::vector<std::string> problems;
  std::int64_t edges = 0;
  std::int64_t seeds = 0;  ///< zero-indegree cells
};

/// Checks, for every cell of `dag.domain()`:
///  * emitted ids lie inside the domain,
///  * no self-edges and no duplicate edges,
///  * duality: u in deps(v) <=> v in antideps(u),
///  * Kahn's algorithm consumes the whole domain (acyclic & complete).
/// Stops collecting after `max_problems` findings.
DagValidation validate_dag(const Dag& dag, std::size_t max_problems = 16);

}  // namespace dpx10
