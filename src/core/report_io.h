// Pretty-printing of RunReports for examples and benches.
#pragma once

#include <iosfwd>
#include <string>

#include "core/metrics.h"

namespace dpx10 {

/// One-paragraph summary: app, dag, time, computed vertices, traffic,
/// cache hit rate, recoveries.
void print_report(std::ostream& os, const RunReport& report);

/// Per-place breakdown table (computed / remote fetches / cache hits /
/// steals / busy time).
void print_place_table(std::ostream& os, const RunReport& report);

/// Machine-readable export: one header row + one data row per report.
/// `label` identifies the sweep point (e.g. "fig10,swlag,nodes=4").
void print_csv_header(std::ostream& os);
void print_csv_row(std::ostream& os, const std::string& label, const RunReport& report);

/// Full report as one JSON object (counters, per-place stats, recoveries,
/// traffic). Doubles are printed with %.17g so the output round-trips
/// bit-exactly — the determinism tests compare two same-seed runs by their
/// serialized JSON, byte for byte.
void print_json(std::ostream& os, const RunReport& report);

}  // namespace dpx10
