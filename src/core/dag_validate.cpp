#include "core/dag_validate.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace dpx10 {

namespace {

std::string cell_name(VertexId v) {
  return strformat("(%d,%d)", v.i, v.j);
}

}  // namespace

DagValidation validate_dag(const Dag& dag, std::size_t max_problems) {
  const DagDomain& domain = dag.domain();
  DagValidation result;
  auto report = [&](std::string problem) {
    result.ok = false;
    if (result.problems.size() < max_problems) {
      result.problems.push_back(std::move(problem));
    }
  };

  // Pass 1: local well-formedness + collect both edge sets.
  std::set<std::pair<std::int64_t, std::int64_t>> forward;   // dep -> cell
  std::set<std::pair<std::int64_t, std::int64_t>> backward;  // cell -> antidep
  std::vector<std::int32_t> indegree(static_cast<std::size_t>(domain.size()), 0);
  std::vector<VertexId> out;
  for (std::int64_t idx = 0; idx < domain.size(); ++idx) {
    VertexId v = domain.delinearize(idx);
    for (bool anti : {false, true}) {
      out.clear();
      if (anti) {
        dag.anti_dependencies(v, out);
      } else {
        dag.dependencies(v, out);
      }
      std::set<std::int64_t> seen;
      for (VertexId u : out) {
        if (!domain.contains(u)) {
          report(cell_name(v) + (anti ? " anti-dependency " : " dependency ") +
                 cell_name(u) + " is outside the domain");
          continue;
        }
        if (u == v) {
          report(cell_name(v) + " has a self-edge");
          continue;
        }
        const std::int64_t uidx = domain.linearize(u);
        if (!seen.insert(uidx).second) {
          report(cell_name(v) + " lists " + cell_name(u) +
                 (anti ? " twice in anti_dependencies" : " twice in dependencies"));
          continue;
        }
        if (anti) {
          backward.insert({idx, uidx});
        } else {
          forward.insert({uidx, idx});
          ++indegree[static_cast<std::size_t>(idx)];
        }
      }
    }
  }
  result.edges = static_cast<std::int64_t>(forward.size());

  // Pass 2: duality.
  for (const auto& [u, v] : forward) {
    if (!backward.count({u, v})) {
      report(cell_name(domain.delinearize(v)) + " depends on " +
             cell_name(domain.delinearize(u)) +
             " but is missing from its anti_dependencies");
    }
  }
  for (const auto& [u, v] : backward) {
    if (!forward.count({u, v})) {
      report(cell_name(domain.delinearize(u)) + " lists anti-dependency " +
             cell_name(domain.delinearize(v)) +
             " which does not declare it as a dependency");
    }
  }

  // Pass 3: Kahn — acyclicity and completeness.
  std::vector<std::int64_t> frontier;
  for (std::int64_t idx = 0; idx < domain.size(); ++idx) {
    if (indegree[static_cast<std::size_t>(idx)] == 0) frontier.push_back(idx);
  }
  result.seeds = static_cast<std::int64_t>(frontier.size());
  if (frontier.empty()) {
    report("no zero-indegree seeds: the computation can never start");
    return result;
  }
  std::int64_t consumed = 0;
  std::vector<std::int32_t> remaining = indegree;
  while (!frontier.empty()) {
    std::int64_t idx = frontier.back();
    frontier.pop_back();
    ++consumed;
    out.clear();
    dag.anti_dependencies(domain.delinearize(idx), out);
    for (VertexId u : out) {
      if (!domain.contains(u)) continue;  // already reported above
      const std::int64_t uidx = domain.linearize(u);
      if (forward.count({idx, uidx}) &&
          --remaining[static_cast<std::size_t>(uidx)] == 0) {
        frontier.push_back(uidx);
      }
    }
  }
  if (consumed != domain.size()) {
    report(strformat("only %lld of %lld cells are reachable (cycle or missing edges)",
                     static_cast<long long>(consumed),
                     static_cast<long long>(domain.size())));
  }
  return result;
}

}  // namespace dpx10
