// SimEngine<T> — deterministic discrete-event execution of a DPX10 program
// on a virtual cluster.
//
// This engine substitutes for the paper's Tianhe-1A testbed (see DESIGN.md
// §2): it executes the *real* user compute() on every vertex, so results
// are bit-identical to the threaded engine and the serial references, but
// time is modeled, not measured. Each place has `nthreads` execution slots;
// a vertex occupies a slot from dispatch to completion, blocking on remote
// dependency fetches exactly like a DPX10 worker does ("the worker first
// retrieves the dependent vertices ... then passes them to compute()",
// §VI-C). Remote fetches pay latency + bandwidth and queue on the owner's
// NIC, which is what bends the Fig. 10 speedup curves once communication
// dominates.
//
// Everything is driven off one (time, seq)-ordered event queue, so a run is
// a pure function of (dag, app, options): identical seeds give identical
// traces, times and traffic counts — property-tested in
// tests/sim_engine_test.cpp.
#pragma once

#include <algorithm>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "apgas/dist_array.h"
#include "apgas/fault.h"
#include "apgas/place.h"
#include "apgas/snapshot.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/app.h"
#include "core/cache.h"
#include "core/dag.h"
#include "core/engine_common.h"
#include "core/metrics.h"
#include "core/runtime_options.h"
#include "core/scheduling.h"
#include "core/value_traits.h"
#include "net/message.h"
#include "net/traffic.h"
#include "sim/event_queue.h"
#include "sim/slot_pool.h"

namespace dpx10 {

template <typename T>
class SimEngine {
 public:
  explicit SimEngine(RuntimeOptions opts) : opts_(std::move(opts)) { opts_.validate(); }

  RunReport run(const Dag& dag, DPX10App<T>& app) {
    State state(opts_, dag, app);
    return state.run();
  }

 private:
  enum EventKind : std::uint32_t { kReady = 0, kDispatch = 1, kDone = 2 };

  struct PlaceSim {
    std::deque<std::int64_t> ready;
    sim::SlotPool slots;
    double nic_free = 0.0;
    VertexCache<T> cache;
    PlaceStats stats;
    // Dispatch arming: exactly one live dispatch event per place. Re-arming
    // at an earlier time bumps armed_seq so the superseded event is dropped
    // as stale when popped — without this, saturated places accumulate
    // dispatch events quadratically.
    bool dispatch_pending = false;
    double dispatch_time = 0.0;
    std::uint64_t armed_seq = 0;

    PlaceSim(std::int32_t nthreads, CachePolicy policy, std::size_t cache_capacity)
        : slots(nthreads), cache(policy, cache_capacity) {}
  };

  class State {
   public:
    State(const RuntimeOptions& opts, const Dag& dag, DPX10App<T>& app)
        : opts_(opts),
          dag_(dag),
          app_(app),
          pm_(opts.nplaces),
          book_(opts.nplaces),
          rng_(mix64(opts.seed, 0x5157ULL)),
          array_(std::make_unique<DistArray<T>>(dag.domain(), opts.dist,
                                                PlaceGroup::dense(opts.nplaces))) {
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        places_.emplace_back(opts_.nthreads, opts_.cache_policy, opts_.cache_capacity);
      }
      faults_ = opts_.faults;
      std::sort(faults_.begin(), faults_.end(),
                [](const FaultPlan& a, const FaultPlan& b) {
                  return a.at_fraction < b.at_fraction;
                });
    }

    RunReport run() {
      detail::InitSummary init = detail::initialize_cells(*array_, dag_, app_);
      target_ = static_cast<std::int64_t>(init.to_compute);
      require(target_ > 0, "SimEngine: nothing to compute (all cells pre-finished)");
      for (const FaultPlan& f : faults_) {
        fault_thresholds_.push_back(static_cast<std::int64_t>(
            f.at_fraction * static_cast<double>(target_)) + 1);
      }
      if (opts_.recovery == RecoveryPolicy::PeriodicSnapshot) {
        snapshot_step_ = static_cast<std::int64_t>(
            opts_.snapshot_interval * static_cast<double>(target_));
        if (snapshot_step_ < 1) snapshot_step_ = 1;
        next_snapshot_at_ = snapshot_step_;
      }
      detail::seed_ready(*array_, [&](std::int32_t place, std::int64_t idx) {
        queue_.push(0.0, kReady, place, idx);
      });

      while (!done_) {
        check_internal(!queue_.empty(),
                       "SimEngine: event queue drained before completion — "
                       "the DAG is cyclic or a vertex was lost");
        sim::Event ev = queue_.pop();
        now_ = ev.time;
        switch (ev.kind) {
          case kReady: on_ready(static_cast<std::int32_t>(ev.a), ev.b); break;
          case kDispatch:
            on_dispatch(static_cast<std::int32_t>(ev.a), static_cast<std::uint64_t>(ev.b));
            break;
          case kDone: on_done(static_cast<std::int32_t>(ev.a), ev.b); break;
          default: check_internal(false, "SimEngine: unknown event kind");
        }
      }

      RunReport report;
      report.app_name = std::string(app_.name());
      report.dag_name = std::string(dag_.name());
      report.vertices = static_cast<std::uint64_t>(dag_.domain().size());
      report.prefinished = init.prefinished;
      report.computed = computed_total_;
      report.elapsed_seconds = elapsed_;
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        PlaceStats s = places_[static_cast<std::size_t>(p)].stats;
        s.busy_seconds = places_[static_cast<std::size_t>(p)].slots.busy_seconds();
        report.places.push_back(s);
      }
      report.recoveries = recoveries_;
      for (const RecoveryRecord& r : recoveries_) {
        report.recovery_seconds += r.recovery_seconds;
      }
      report.snapshots_taken = snapshots_taken_;
      report.snapshot_seconds = snapshot_seconds_;
      report.traffic = book_.total();
      report.sim_events = queue_.pushed();
      report.trace = std::move(trace_);

      app_.app_finished(DagView<T>(*array_));
      return report;
    }

   private:
    PlaceSim& place(std::int32_t p) { return places_[static_cast<std::size_t>(p)]; }

    void schedule_dispatch(std::int32_t p, double t) {
      PlaceSim& pl = place(p);
      if (pl.dispatch_pending && pl.dispatch_time <= t) return;
      pl.dispatch_pending = true;
      pl.dispatch_time = t;
      pl.armed_seq = ++arm_counter_;
      queue_.push(t, kDispatch, p, static_cast<std::int64_t>(pl.armed_seq));
    }

    void on_ready(std::int32_t p, std::int64_t idx) {
      if (!pm_.is_alive(p)) return;  // message to a place that died in flight
      place(p).ready.push_back(idx);
      schedule_dispatch(p, now_);
    }

    void on_dispatch(std::int32_t p, std::uint64_t seq) {
      PlaceSim& pl = place(p);
      if (!pl.dispatch_pending || seq != pl.armed_seq) return;  // stale event
      pl.dispatch_pending = false;
      if (!pm_.is_alive(p)) return;
      while (!pl.ready.empty() && pl.slots.available(now_)) {
        std::int64_t idx;
        if (opts_.ready_order == ReadyOrder::Lifo) {
          idx = pl.ready.back();
          pl.ready.pop_back();
        } else {
          idx = pl.ready.front();
          pl.ready.pop_front();
        }
        start_vertex(p, idx);
      }
      if (!pl.ready.empty()) {
        schedule_dispatch(p, pl.slots.earliest_start(now_));
      } else if (opts_.scheduling == Scheduling::WorkStealing && pl.slots.available(now_)) {
        try_steal(p);
      }
    }

    /// Work-stealing in virtual time: an idle place raids the deepest
    /// backlog, paying one control-message hop for the transfer. One vertex
    /// per attempt — the next dispatch can steal again.
    void try_steal(std::int32_t thief) {
      std::int32_t victim = -1;
      std::size_t deepest = 1;  // leave lone vertices local
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        if (p == thief || !pm_.is_alive(p)) continue;
        if (place(p).ready.size() > deepest) {
          deepest = place(p).ready.size();
          victim = p;
        }
      }
      if (victim < 0) return;
      PlaceSim& vp = place(victim);
      std::int64_t idx;
      if (opts_.ready_order == ReadyOrder::Lifo) {
        idx = vp.ready.front();  // steal the oldest end
        vp.ready.pop_front();
      } else {
        idx = vp.ready.back();
        vp.ready.pop_back();
      }
      book_.record(victim, thief, net::MessageKind::ReadyTransfer,
                   net::kControlPayloadBytes);
      ++place(thief).stats.steals;
      queue_.push(now_ + opts_.link.transfer_time(net::wire_bytes(net::kControlPayloadBytes)),
                  kReady, thief, idx);
    }

    /// Reserves a slot, models the dependency-gather + compute time, and —
    /// because values never change once finished — executes the real
    /// compute() eagerly. The cell is only *published* (state, indegree
    /// decrements) at the kDone event.
    void start_vertex(std::int32_t p, std::int64_t idx) {
      PlaceSim& pl = place(p);
      DistArray<T>& array = *array_;
      const VertexId id = array.domain().delinearize(idx);

      deps_scratch_.clear();
      dag_.dependencies(id, deps_scratch_);
      dep_values_.clear();

      double gather_cost = 0.0;      // sequential local/cached reads
      double data_ready = now_;      // parallel remote fetches finish here
      for (VertexId d : deps_scratch_) {
        const std::int32_t owner = array.owner_place(d);
        T value;
        if (owner == p) {
          value = array.cell(d).value;
          gather_cost += opts_.cost.local_dep_ns * 1e-9;
          ++pl.stats.local_dep_reads;
        } else if (pl.cache.get(d, value)) {
          gather_cost += opts_.cost.local_dep_ns * 1e-9;
          ++pl.stats.cache_hits;
        } else {
          value = array.cell(d).value;
          book_.record(p, owner, net::MessageKind::FetchRequest, net::kControlPayloadBytes);
          const std::size_t reply_bytes = value_wire_bytes(value);
          book_.record(owner, p, net::MessageKind::FetchReply, reply_bytes);
          ++pl.stats.remote_fetches;
          // Request flies to the owner, waits for its NIC, reply flies back.
          const double request_arrives =
              now_ + opts_.link.transfer_time(net::wire_bytes(net::kControlPayloadBytes));
          PlaceSim& owner_pl = place(owner);
          const double nic_start = std::max(request_arrives, owner_pl.nic_free);
          const double nic_end = nic_start + opts_.link.nic_time(net::wire_bytes(reply_bytes));
          owner_pl.nic_free = nic_end;
          const double reply_arrives =
              nic_end + opts_.link.transfer_time(net::wire_bytes(reply_bytes));
          data_ready = std::max(data_ready, reply_arrives);
          pl.cache.put(d, value);
        }
        dep_values_.push_back(Vertex<T>{d, value});
      }

      T result = app_.compute(id.i, id.j, std::span<const Vertex<T>>(dep_values_));
      array.cell(idx).value = result;

      const double compute_s =
          (opts_.cost.compute_ns * app_.compute_cost_units(id) + opts_.cost.framework_ns) *
              1e-9 +
          gather_cost;
      const double end = std::max(now_, data_ready) + compute_s;
      pl.slots.reserve(now_, end);
      if (opts_.record_trace) trace_.push_back(TraceEvent{idx, p, now_, end});
      queue_.push(end, kDone, p, idx);
    }

    void on_done(std::int32_t p, std::int64_t idx) {
      if (!pm_.is_alive(p)) return;  // defensive: queue is cleared on death
      PlaceSim& pl = place(p);
      DistArray<T>& array = *array_;
      const VertexId id = array.domain().delinearize(idx);

      Cell<T>& cell = array.cell(idx);
      cell.store_state(CellState::Finished, std::memory_order_relaxed);
      ++pl.stats.computed;
      ++computed_total_;
      const std::int32_t owner = array.owner_place(id);
      if (owner != p) {
        book_.record(p, owner, net::MessageKind::ResultWriteback, value_wire_bytes(cell.value));
        ++pl.stats.executed_nonlocal;
      }

      anti_scratch_.clear();
      dag_.anti_dependencies(id, anti_scratch_);
      for (VertexId a : anti_scratch_) {
        Cell<T>& ac = array.cell(a);
        if (ac.load_state(std::memory_order_relaxed) == CellState::Prefinished) continue;
        const std::int32_t a_owner = array.owner_place(a);
        double delay = 0.0;
        if (a_owner != p) {
          book_.record(p, a_owner, net::MessageKind::IndegreeControl,
                       net::kControlPayloadBytes);
          ++pl.stats.control_msgs_out;
          // The decrement is processed by the destination place's comm
          // thread: wire time plus serialized per-message handling.
          const double arrives =
              now_ + opts_.link.transfer_time(net::wire_bytes(net::kControlPayloadBytes));
          PlaceSim& dest = place(a_owner);
          const double handled = std::max(arrives, dest.nic_free) +
                                 opts_.link.nic_time(net::wire_bytes(net::kControlPayloadBytes));
          dest.nic_free = handled;
          delay = handled - now_;
        }
        if (ac.indegree.fetch_sub(1, std::memory_order_relaxed) - 1 == 0) {
          std::int32_t slot = choose_target_slot(opts_.scheduling, a, dag_, array.dist(),
                                                 sizeof(T), rng_, sched_scratch_);
          std::int32_t target = array.group()[slot];
          if (target != a_owner) {
            book_.record(a_owner, target, net::MessageKind::ReadyTransfer,
                         net::kControlPayloadBytes);
            delay += opts_.link.transfer_time(net::wire_bytes(net::kControlPayloadBytes));
          }
          queue_.push(now_ + delay, kReady, target, array.domain().linearize(a));
        }
      }

      ++finished_;
      elapsed_ = now_;

      if (snapshot_step_ > 0 && finished_ >= next_snapshot_at_ && finished_ < target_) {
        take_snapshot();
        next_snapshot_at_ += snapshot_step_;
      }

      if (next_fault_ < faults_.size() && finished_ >= fault_thresholds_[next_fault_]) {
        const FaultPlan fault = faults_[next_fault_];
        ++next_fault_;
        perform_recovery(fault.place);
        return;
      }

      if (finished_ >= target_) {
        done_ = true;
        return;
      }
      schedule_dispatch(p, now_);
    }

    /// Periodic snapshot (RecoveryPolicy::PeriodicSnapshot): capture a
    /// consistent global state and pause every place for the modeled copy
    /// time. In-flight vertices keep running to completion — they are
    /// simply newer than the snapshot.
    void take_snapshot() {
      vault_.capture(*array_);
      const double duration =
          static_cast<double>(dag_.domain().size()) * opts_.cost.snapshot_copy_ns * 1e-9 /
              static_cast<double>(pm_.alive_count()) +
          opts_.link.latency_s;
      const double resume_at = now_ + duration;
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        place(p).slots.delay_all_until(resume_at);
        place(p).nic_free = std::max(place(p).nic_free, resume_at);
      }
      ++snapshots_taken_;
      snapshot_seconds_ += duration;
    }

    /// §VI-D recovery in virtual time. The rebuild runs "in parallel on all
    /// alive places": every survivor scans its share of the new array and
    /// copies the locally-restorable results, so the modeled duration is the
    /// per-cell work divided by the survivor count, plus the wire time of
    /// any cross-place restores.
    void perform_recovery(std::int32_t dead_place) {
      if (dead_place == 0) throw DeadPlaceException(0);
      const double started_at = now_;
      const std::int64_t finished_before = finished_;

      pm_.kill(dead_place);
      PlaceGroup survivors = pm_.alive_group();
      const double nsurv = static_cast<double>(survivors.size());
      const double scan_s =
          static_cast<double>(dag_.domain().size()) * opts_.cost.recovery_scan_ns * 1e-9;

      auto fresh = std::make_unique<DistArray<T>>(dag_.domain(), opts_.dist, survivors);
      RecoveryRecord record;
      double recovery_s;
      if (opts_.recovery == RecoveryPolicy::Rebuild) {
        record = detail::rebuild_after_death(*array_, dead_place, opts_.restore, dag_, app_,
                                             *fresh, book_);
        const double copy_s =
            static_cast<double>(record.restored) * opts_.cost.restore_copy_ns * 1e-9;
        const double wire_s = static_cast<double>(record.restored_remote) *
                              static_cast<double>(net::wire_bytes(sizeof(T))) /
                              opts_.link.bandwidth_bytes_s;
        recovery_s = (scan_s + copy_s + wire_s) / nsurv + opts_.link.latency_s;
      } else {
        // Periodic-snapshot rollback: every survivor reloads its share of
        // the last snapshot; everything newer than the snapshot recomputes.
        record.dead_place = dead_place;
        if (vault_.has_snapshot()) {
          vault_.restore(*fresh);
          detail::recompute_indegrees(*fresh, dag_);
          record.restored = vault_.finished_in_snapshot();
        } else {
          // No snapshot yet: restart from scratch.
          detail::initialize_cells(*fresh, dag_, app_);
        }
        record.lost = static_cast<std::uint64_t>(finished_before) - record.restored;
        const double copy_s =
            static_cast<double>(record.restored) * opts_.cost.restore_copy_ns * 1e-9;
        recovery_s = (scan_s + copy_s) / nsurv + opts_.link.latency_s;
      }
      array_ = std::move(fresh);
      const double resume_at = now_ + recovery_s;

      record.started_at = started_at;
      record.recovery_seconds = recovery_s;
      recoveries_.push_back(record);
      DPX10_INFO << "sim: place " << dead_place << " died at t=" << started_at
                 << "s; recovery took " << recovery_s << "s (restored " << record.restored
                 << ", lost " << record.lost << ", discarded " << record.discarded << ")";

      // Discard all in-flight work and restart the survivors at resume_at.
      queue_.clear();
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        PlaceSim& pl = place(p);
        pl.ready.clear();
        pl.cache.clear();
        pl.slots.reset_all(resume_at);
        pl.nic_free = resume_at;
        pl.dispatch_pending = false;
      }
      detail::seed_ready(*array_, [&](std::int32_t owner, std::int64_t idx) {
        queue_.push(resume_at, kReady, owner, idx);
      });
      finished_ = static_cast<std::int64_t>(detail::count_finished(*array_));
      elapsed_ = resume_at;
      if (finished_ >= target_) done_ = true;
    }

    // ---- state ----

    const RuntimeOptions& opts_;
    const Dag& dag_;
    DPX10App<T>& app_;

    PlaceManager pm_;
    net::TrafficBook book_;
    Xoshiro256 rng_;
    std::unique_ptr<DistArray<T>> array_;
    std::vector<PlaceSim> places_;
    sim::EventQueue queue_;

    std::vector<FaultPlan> faults_;
    std::vector<std::int64_t> fault_thresholds_;
    std::size_t next_fault_ = 0;

    SnapshotVault<T> vault_;
    std::int64_t snapshot_step_ = 0;   // 0 = policy disabled
    std::int64_t next_snapshot_at_ = 0;
    std::uint64_t snapshots_taken_ = 0;
    double snapshot_seconds_ = 0.0;

    std::uint64_t arm_counter_ = 0;
    double now_ = 0.0;
    double elapsed_ = 0.0;
    std::int64_t target_ = 0;
    std::int64_t finished_ = 0;
    std::uint64_t computed_total_ = 0;
    bool done_ = false;

    std::vector<RecoveryRecord> recoveries_;
    std::vector<TraceEvent> trace_;

    std::vector<VertexId> deps_scratch_;
    std::vector<VertexId> anti_scratch_;
    std::vector<VertexId> sched_scratch_;
    std::vector<Vertex<T>> dep_values_;
  };

  RuntimeOptions opts_;
};

}  // namespace dpx10
