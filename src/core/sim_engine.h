// SimEngine<T> — deterministic discrete-event execution of a DPX10 program
// on a virtual cluster.
//
// This engine substitutes for the paper's Tianhe-1A testbed (see DESIGN.md
// §2): it executes the *real* user compute() on every vertex, so results
// are bit-identical to the threaded engine and the serial references, but
// time is modeled, not measured. Each place has `nthreads` execution slots;
// a vertex occupies a slot from dispatch to completion, blocking on remote
// dependency fetches exactly like a DPX10 worker does ("the worker first
// retrieves the dependent vertices ... then passes them to compute()",
// §VI-C). Remote fetches pay latency + bandwidth and queue on the owner's
// NIC, which is what bends the Fig. 10 speedup curves once communication
// dominates.
//
// On top of the reliable baseline the engine models an *unreliable* cluster
// when RuntimeOptions::netfaults or a FaultPlan is configured: messages can
// be dropped/duplicated/delayed by the FaultInjector, remote fetches run a
// timeout + exponential-backoff retry protocol, and place deaths are no
// longer announced by an oracle — a fault only *crashes* the place
// (silently), and §VI-D recovery starts when the heartbeat failure detector
// declares it dead, so runs include real detection latency.
//
// Everything is driven off one (time, seq)-ordered event queue, so a run is
// a pure function of (dag, app, options): identical seeds give identical
// traces, times, traffic counts and fault sequences — property-tested in
// tests/sim_engine_test.cpp and tests/net_fault_test.cpp.
#pragma once

#include <algorithm>
#include <deque>
#include <fstream>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "apgas/checkpoint.h"
#include "apgas/dist_array.h"
#include "apgas/fault.h"
#include "apgas/heartbeat.h"
#include "apgas/place.h"
#include "apgas/snapshot.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/app.h"
#include "core/cache.h"
#include "core/dag.h"
#include "core/engine_common.h"
#include "core/metrics.h"
#include "core/runtime_options.h"
#include "core/scheduling.h"
#include "core/value_traits.h"
#include "mem/governor.h"
#include "net/fault_injector.h"
#include "net/message.h"
#include "net/traffic.h"
#include "obs/flight_recorder.h"
#include "obs/status.h"
#include "obs/tracer.h"
#include "sim/event_queue.h"
#include "sim/slot_pool.h"

namespace dpx10 {

template <typename T>
class SimEngine {
 public:
  explicit SimEngine(RuntimeOptions opts) : opts_(std::move(opts)) { opts_.validate(); }

  RunReport run(const Dag& dag, DPX10App<T>& app) {
    State state(opts_, dag, app);
    return state.run();
  }

 private:
  enum EventKind : std::uint32_t {
    kReady = 0,
    kDispatch = 1,
    kDone = 2,
    kHeartbeat = 3,  ///< place `a` emits its periodic beat to the monitor
    kSweep = 4,      ///< the monitor advances the failure detector
  };

  struct PlaceSim {
    std::deque<std::int64_t> ready;
    sim::SlotPool slots;
    double nic_free = 0.0;
    VertexCache<T> cache;
    PlaceStats stats;
    // Dispatch arming: exactly one live dispatch event per place. Re-arming
    // at an earlier time bumps armed_seq so the superseded event is dropped
    // as stale when popped — without this, saturated places accumulate
    // dispatch events quadratically.
    bool dispatch_pending = false;
    double dispatch_time = 0.0;
    std::uint64_t armed_seq = 0;

    PlaceSim(std::int32_t nthreads, CachePolicy policy, std::size_t cache_capacity)
        : slots(nthreads), cache(policy, cache_capacity) {}
  };

  class State {
   public:
    State(const RuntimeOptions& opts, const Dag& dag, DPX10App<T>& app)
        : opts_(opts),
          dag_(dag),
          app_(app),
          pm_(opts.nplaces),
          book_(opts.nplaces),
          rng_(mix64(opts.seed, 0x5157ULL)),
          injector_(opts.netfaults, mix64(opts.seed, 0x4e4654ULL)),
          tracer_(opts.trace_level, 1, opts.record_trace, opts.framework_tax),
          flight_(1, static_cast<std::size_t>(opts.flight_events)),
          detector_(opts.heartbeat, opts.nplaces, 0.0),
          suspected_(opts.nplaces),
          crashed_(static_cast<std::size_t>(opts.nplaces), 0),
          crash_time_(static_cast<std::size_t>(opts.nplaces), 0.0),
          array_(std::make_unique<DistArray<T>>(dag.domain(), opts.dist,
                                                PlaceGroup::dense(opts.nplaces))) {
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        places_.emplace_back(opts_.nthreads, opts_.cache_policy, opts_.cache_capacity);
      }
      if (opts_.memory.retirement != mem::RetirementMode::Off) {
        gov_ = std::make_unique<mem::MemoryGovernor<T>>(opts_.memory,
                                                        opts_.nplaces);
        gov_spill_ = gov_->spill_on();
      }
      // Fraction-based faults fire off the finished count (on_done);
      // event-based faults fire off the event counter at the loop top.
      // validate() already sorted each kind into firing order.
      for (const FaultPlan& f : opts_.faults) {
        (f.event_based() ? event_faults_ : faults_).push_back(f);
      }
      // The detector (and its heartbeat traffic) only engages when there is
      // something to detect; a fault-free reliable run stays event-for-event
      // identical to the baseline engine.
      detector_active_ = opts_.heartbeat.enabled &&
                         (!faults_.empty() || !event_faults_.empty() ||
                          injector_.enabled());
      // The injector only reports message fates somebody is listening for;
      // an untraced run never pays the observer's lock.
      if (tracer_.counters_on() && injector_.enabled()) {
        injector_.set_observer(&tracer_);
      }
      events_on_ = tracer_.spans_on();
      flight_on_ = flight_.enabled();
      tax_on_ = tracer_.tax_on();
      status_on_ = !opts_.status_file.empty();
      flight_poll_ = flight_on_ && !opts_.flight_dump.empty();
    }

    RunReport run() {
      detail::InitSummary init = detail::initialize_cells(*array_, dag_, app_);
      if (gov_) gov_->rebuild(*array_, dag_);
      target_ = static_cast<std::int64_t>(init.to_compute);
      require(target_ > 0, "SimEngine: nothing to compute (all cells pre-finished)");
      for (const FaultPlan& f : faults_) {
        fault_thresholds_.push_back(static_cast<std::int64_t>(
            f.at_fraction * static_cast<double>(target_)) + 1);
      }
      if (opts_.recovery == RecoveryPolicy::PeriodicSnapshot) {
        snapshot_step_ = static_cast<std::int64_t>(
            opts_.snapshot_interval * static_cast<double>(target_));
        if (snapshot_step_ < 1) snapshot_step_ = 1;
        next_snapshot_at_ = snapshot_step_;
      }
      if (!opts_.checkpoint_dir.empty()) {
        ckpt_step_ = static_cast<std::int64_t>(
            opts_.checkpoint_interval * static_cast<double>(target_));
        if (ckpt_step_ < 1) ckpt_step_ = 1;
        next_ckpt_at_ = ckpt_step_;
      }
      if (!opts_.resume_dir.empty()) {
        // Resume replays the write-side checkpoint barrier from the durable
        // bundle, so the resumed trajectory coincides exactly with the
        // uninterrupted one from the barrier point onward.
        resume_from_checkpoint();
      } else {
        detail::seed_ready(*array_, [&](std::int32_t place, std::int64_t idx) {
          queue_.push(0.0, kReady, place, idx);
        });
        if (detector_active_) arm_heartbeats(0.0);
      }

      if (flight_poll_ || status_on_) {
        try {
          event_loop();
        } catch (...) {
          // A failing run still leaves a diagnosable artifact: the flight
          // recorder's last events, as a loadable trace.
          dump_flight("failure");
          throw;
        }
      } else {
        event_loop();
      }

      RunReport report;
      report.app_name = std::string(app_.name());
      report.dag_name = std::string(dag_.name());
      report.vertices = static_cast<std::uint64_t>(dag_.domain().size());
      report.prefinished = init.prefinished;
      report.computed = computed_total_;
      report.elapsed_seconds = elapsed_;
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        // `+=`, not `=`: a resumed run folds the pre-kill portion (loaded
        // into stats from the bundle) into this run's slots/cache counters.
        PlaceStats s = places_[static_cast<std::size_t>(p)].stats;
        s.busy_seconds += places_[static_cast<std::size_t>(p)].slots.busy_seconds();
        s.cache_evictions += places_[static_cast<std::size_t>(p)].cache.evictions();
        if (gov_) {
          const mem::MemAccount a = gov_->account(p);
          s.retired_cells = a.retired_cells;
          s.spilled_cells = a.spilled_cells;
          s.spill_reads = a.spill_reads;
          s.live_cells_peak = a.live_cells_peak;
          s.live_bytes_peak = a.live_bytes_peak;
        }
        report.places.push_back(s);
      }
      report.recoveries = recoveries_;
      for (const RecoveryRecord& r : recoveries_) {
        report.recovery_seconds += r.recovery_seconds;
        report.detection_seconds += r.detected_after_s;
      }
      report.snapshots_taken = snapshots_taken_;
      report.snapshot_seconds = snapshot_seconds_;
      report.traffic = add_traffic(traffic_base_, book_.total());
      report.sim_events = sim_events_base_ + queue_.pushed();
      if (tracer_.active()) {
        obs::Tracer::Collected c = tracer_.collect(make_meta());
        if (opts_.record_trace) {
          report.trace.reserve(c.log.vertices.size());
          for (const obs::VertexSpan& v : c.log.vertices) {
            report.trace.push_back(TraceEvent{v.index, v.place, v.start, v.end});
          }
        }
        if (tracer_.spans_on()) {
          report.trace_log = std::make_shared<obs::TraceLog>(std::move(c.log));
        }
        if (tracer_.counters_on()) {
          report.metrics = std::make_shared<obs::MetricsReport>(std::move(c.metrics));
        }
        if (tracer_.tax_on()) {
          report.framework_tax = std::make_shared<obs::FrameworkTax>(c.tax);
        }
      }
      if (status_on_) publish_status();  // final snapshot: 100% progress

      app_.app_finished(make_result_view());
      return report;
    }

   private:
    void event_loop() {
      const bool sampling = tracer_.counters_on();
      while (!done_) {
        // Event-based faults (dpx10check's crash-point sweep) fire between
        // events: the place dies just before the at_event-th event is
        // processed, so every K is a distinct, reproducible crash point.
        // Draining a loop (not firing one per iteration) lets several plans
        // share an instant: with the detector they all crash silently now
        // and are declared together by one sweep; on the oracle path the
        // whole due batch enters a single §VI-D recovery pass, survivors
        // ordered by place id.
        if (detector_active_) {
          while (next_event_fault_ < event_faults_.size() &&
                 events_processed_ >= event_faults_[next_event_fault_].at_event) {
            const FaultPlan fault = event_faults_[next_event_fault_];
            ++next_event_fault_;
            if (pm_.is_alive(fault.place) && !crashed_[fault.place]) {
              crash_place(fault.place);
            }
          }
        } else if (next_event_fault_ < event_faults_.size() &&
                   events_processed_ >= event_faults_[next_event_fault_].at_event) {
          fault_batch_.clear();
          while (next_event_fault_ < event_faults_.size() &&
                 events_processed_ >= event_faults_[next_event_fault_].at_event) {
            const FaultPlan fault = event_faults_[next_event_fault_];
            ++next_event_fault_;
            if (pm_.is_alive(fault.place) && !crashed_[fault.place]) {
              fault_batch_.push_back(fault.place);
            }
          }
          if (!fault_batch_.empty()) {
            // Oracle recovery cleared the queue; anything popped now
            // would be stale, so restart the loop.
            perform_recovery(fault_batch_, 0.0);
            continue;
          }
        }
        check_internal(!queue_.empty(),
                       "SimEngine: event queue drained before completion — "
                       "the DAG is cyclic or a vertex was lost");
        // Live introspection rides the WALL clock (checked every 1024
        // events to keep the common case to one counter test): status/dump
        // files never feed back into virtual time, so results are
        // byte-identical with the export on or off.
        if ((status_on_ || flight_poll_) && (events_processed_ & 0x3FF) == 0) {
          if (status_on_ &&
              status_watch_.seconds() >= opts_.status_interval_s) {
            publish_status();
            status_watch_.reset();
          }
          if (flight_poll_ && obs::consume_dump_request()) {
            dump_flight("request");
          }
        }
        sim::Event ev = queue_.pop();
        ++events_processed_;
        now_ = ev.time;
        // Gauges are read between events, so sampling observes but never
        // perturbs the virtual timeline.
        if (sampling) {
          while (next_sample_ <= now_) {
            record_samples(next_sample_);
            next_sample_ += opts_.trace_sample_s;
          }
        }
        switch (ev.kind) {
          case kReady: on_ready(static_cast<std::int32_t>(ev.a), ev.b); break;
          case kDispatch:
            on_dispatch(static_cast<std::int32_t>(ev.a), static_cast<std::uint64_t>(ev.b));
            break;
          case kDone: on_done(static_cast<std::int32_t>(ev.a), ev.b); break;
          case kHeartbeat: on_heartbeat(static_cast<std::int32_t>(ev.a)); break;
          case kSweep: on_sweep(); break;
          default: check_internal(false, "SimEngine: unknown event kind");
        }
      }
    }

    PlaceSim& place(std::int32_t p) { return places_[static_cast<std::size_t>(p)]; }

    obs::TraceMeta make_meta() const {
      return obs::TraceMeta{std::string(app_.name()), std::string(dag_.name()),
                            "sim",   dag_.height(),   dag_.width(),
                            opts_.nplaces, opts_.nthreads, elapsed_,
                            opts_.tile_size};
    }

    /// A runtime-subsystem event: appended to the tracer's event stream at
    /// Full level and to the flight recorder ring whenever it is enabled.
    void rt_event(obs::RtEventKind k, std::int32_t place, std::int64_t a,
                  std::int64_t b, double t) {
      if (events_on_) tracer_.shard(0).events.push_back({t, a, b, place, k});
      // The sim loop is single-threaded, so its lone shard qualifies for
      // the single-writer fast path.
      if (flight_on_) flight_.record_fast(0, k, place, a, b, t);
    }

    /// Flight-ring-only note for per-vertex / per-message fates that the
    /// tracer already expresses as spans.
    void flight_note(obs::RtEventKind k, std::int32_t place, std::int64_t a,
                     std::int64_t b) {
      if (flight_on_) flight_.record_fast(0, k, place, a, b, now_);
    }

    void publish_status() {
      obs::StatusSnapshot s;
      s.seq = ++status_seq_;
      s.pid = obs::current_pid();
      s.app = std::string(app_.name());
      s.dag = std::string(dag_.name());
      s.engine = "sim";
      s.finished = finished_;
      s.target = target_;
      s.epoch = epoch_.current;
      s.recovering = false;  // sim recovery completes within one event
      s.elapsed_s = now_;
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        PlaceSim& pl = place(p);
        obs::PlaceStatus ps;
        ps.place = p;
        ps.ready = static_cast<std::int64_t>(pl.ready.size());
        ps.busy = pl.slots.busy_count(now_);
        ps.nic_backlog_s = std::max(0.0, pl.nic_free - now_);
        ps.computed = static_cast<std::int64_t>(pl.stats.computed);
        if (gov_) {
          const mem::MemAccount a = gov_->account(p);
          ps.live_cells = static_cast<std::int64_t>(a.live_cells);
          ps.live_bytes = static_cast<std::int64_t>(a.live_bytes);
          ps.spill_reads = static_cast<std::int64_t>(a.spill_reads);
        }
        ps.crashed = !pm_.is_alive(p) || crashed_[static_cast<std::size_t>(p)];
        s.places.push_back(ps);
      }
      obs::write_status_file(opts_.status_file, s);
    }

    void dump_flight(const char* why) {
      if (!flight_on_ || opts_.flight_dump.empty()) return;
      std::ofstream os(opts_.flight_dump, std::ios::trunc);
      if (!os) {
        DPX10_WARN << "sim: cannot write flight dump to " << opts_.flight_dump;
        return;
      }
      obs::TraceMeta meta = make_meta();
      meta.elapsed_s = now_;
      flight_.dump(os, meta);
      DPX10_INFO << "sim: flight recorder dumped to " << opts_.flight_dump
                 << " (" << why << ", " << flight_.recorded() << " recorded, "
                 << flight_.dropped() << " overwritten)";
    }

    /// The app_finished() view: spill-aware when the governor can serve
    /// retired values back from the spill stores.
    DagView<T> make_result_view() {
      if (!gov_spill_) return DagView<T>(*array_);
      DistArray<T>* array = array_.get();
      mem::MemoryGovernor<T>* gov = gov_.get();
      return DagView<T>(*array_, [array, gov](std::int64_t i, T& out) {
        const std::int32_t owner =
            array->owner_place(array->domain().delinearize(i));
        return gov->spill_read(owner, i, out);
      });
    }

    /// Dependency-value read: direct on the legacy and retire paths (a
    /// retire-mode cell cannot be retired before its last consumer reads
    /// it), through the governor when pressure spill may have displaced the
    /// payload to the spill file.
    void read_dep_value(DistArray<T>& array, VertexId d, T& out) {
      if (gov_spill_) {
        gov_->read(array, array.domain().linearize(d), out);
      } else {
        out = array.cell(d).value;
      }
    }

    void schedule_dispatch(std::int32_t p, double t) {
      PlaceSim& pl = place(p);
      if (pl.dispatch_pending && pl.dispatch_time <= t) return;
      pl.dispatch_pending = true;
      pl.dispatch_time = t;
      pl.armed_seq = ++arm_counter_;
      queue_.push(t, kDispatch, p, static_cast<std::int64_t>(pl.armed_seq));
    }

    void on_ready(std::int32_t p, std::int64_t idx) {
      // A message to a place that died (or silently crashed) in flight is
      // lost with it; the vertex stays Unfinished and is re-seeded by
      // recovery once the death is declared.
      if (!pm_.is_alive(p) || crashed_[p]) return;
      if (tracer_.active()) ready_time_[idx] = now_;
      place(p).ready.push_back(idx);
      schedule_dispatch(p, now_);
    }

    /// One gauge tick of every per-place time series (counters and up).
    void record_samples(double t) {
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        PlaceSim& pl = place(p);
        tracer_.sample("ready_depth", p, t, static_cast<double>(pl.ready.size()));
        tracer_.sample("slots_busy", p, t,
                       static_cast<double>(pl.slots.busy_count(t)));
        tracer_.sample("nic_backlog_s", p, t, std::max(0.0, pl.nic_free - t));
        if (gov_) {
          // The governor's live gauges double as the simulated-RSS model:
          // payload bytes resident in the DistArray, reproducible
          // seed-for-seed because sampling rides the virtual clock.
          const mem::MemAccount a = gov_->account(p);
          tracer_.sample("live_cells", p, t, static_cast<double>(a.live_cells));
          tracer_.sample("live_bytes", p, t, static_cast<double>(a.live_bytes));
          tracer_.sample("retired_cells", p, t,
                         static_cast<double>(a.retired_cells));
          tracer_.sample("spilled_cells", p, t,
                         static_cast<double>(a.spilled_cells));
          tracer_.sample("spill_reads", p, t,
                         static_cast<double>(a.spill_reads));
          tracer_.sample("cache_hits", p, t,
                         static_cast<double>(pl.stats.cache_hits));
          tracer_.sample("cache_evictions", p, t,
                         static_cast<double>(pl.cache.evictions()));
        }
      }
    }

    void on_dispatch(std::int32_t p, std::uint64_t seq) {
      PlaceSim& pl = place(p);
      if (!pl.dispatch_pending || seq != pl.armed_seq) return;  // stale event
      pl.dispatch_pending = false;
      if (!pm_.is_alive(p) || crashed_[p]) return;
      while (!pl.ready.empty() && pl.slots.available(now_)) {
        std::int64_t idx;
        // dpx10check schedule exploration: an installed hook may pick any
        // ready vertex, exploring alternative topological orders in
        // virtual time; -1 keeps the configured ReadyOrder. The DPOR
        // explorer needs the candidate identities, so the deque is
        // snapshotted into a scratch span when (and only when) a hook is
        // installed.
        std::int64_t pick = -1;
        if (check::hook_installed()) {
          pick_scratch_.assign(pl.ready.begin(), pl.ready.end());
          pick = check::pick_ready_ids(
              p, std::span<const std::int64_t>(pick_scratch_));
        }
        if (pick >= 0 && static_cast<std::size_t>(pick) < pl.ready.size()) {
          const auto it = pl.ready.begin() + static_cast<std::ptrdiff_t>(pick);
          idx = *it;
          pl.ready.erase(it);
        } else if (opts_.ready_order == ReadyOrder::Lifo) {
          idx = pl.ready.back();
          pl.ready.pop_back();
        } else {
          idx = pl.ready.front();
          pl.ready.pop_front();
        }
        start_vertex(p, idx);
      }
      if (!pl.ready.empty()) {
        schedule_dispatch(p, pl.slots.earliest_start(now_));
      } else if (opts_.scheduling == Scheduling::WorkStealing && pl.slots.available(now_)) {
        try_steal(p);
      }
    }

    /// Work-stealing in virtual time: an idle place raids the deepest
    /// backlog, paying one control-message hop for the transfer. One vertex
    /// per attempt — the next dispatch can steal again. Crashed or suspected
    /// places are never raided: their backlog is about to be re-seeded (or
    /// they are too slow to answer the steal request anyway).
    void try_steal(std::int32_t thief) {
      std::int32_t victim = -1;
      std::size_t deepest = 1;  // leave lone vertices local
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        if (p == thief || !pm_.is_alive(p) || crashed_[p]) continue;
        if (detector_active_ && suspected_.test(p)) continue;
        if (place(p).ready.size() > deepest) {
          deepest = place(p).ready.size();
          victim = p;
        }
      }
      if (victim < 0) return;
      PlaceSim& vp = place(victim);
      std::int64_t idx;
      if (opts_.ready_order == ReadyOrder::Lifo) {
        idx = vp.ready.front();  // steal the oldest end
        vp.ready.pop_front();
      } else {
        idx = vp.ready.back();
        vp.ready.pop_back();
      }
      book_.record(victim, thief, net::MessageKind::ReadyTransfer,
                   net::kControlPayloadBytes);
      ++place(thief).stats.steals;
      const double arrives =
          now_ + opts_.link.transfer_time(net::wire_bytes(net::kControlPayloadBytes));
      if (tracer_.spans_on()) {
        tracer_.shard(0).messages.push_back({net::MessageKind::ReadyTransfer,
                                             victim, thief, now_, arrives,
                                             obs::MessageFate::Delivered});
      }
      queue_.push(arrives, kReady, thief, idx);
    }

    /// Outcome of one modeled remote fetch.
    struct FetchTiming {
      double ready_at = 0.0;
      bool unreachable = false;  ///< retry budget exhausted, owner crashed
    };

    /// Models fetching one dependency value — or, under coalescing, one
    /// owner-grouped batch of values — from `owner`'s NIC, with the timeout
    /// + exponential backoff + retry-cap protocol when the network is
    /// unreliable. The request/reply kinds and payload sizes are the
    /// caller's: the legacy path passes FetchRequest/FetchReply with a
    /// control-sized request, the coalesced path passes the Batch* kinds
    /// with k-scaled payloads. A batch is ONE wire message either way: one
    /// injector draw per direction, one NIC slot, and a timeout retransmits
    /// the whole batch. Fetch attempts carry a sequence number: a
    /// duplicated or late reply for an already-satisfied fetch is
    /// idempotently ignored (it only burns wire bytes and owner NIC time).
    /// On a reliable network with a live owner this reduces exactly to the
    /// baseline request/NIC-queue/reply timing, with zero injector draws.
    FetchTiming model_remote_fetch(std::int32_t p, std::int32_t owner,
                                   net::MessageKind req_kind, net::MessageKind reply_kind,
                                   std::size_t req_payload, std::size_t reply_bytes) {
      PlaceSim& pl = place(p);
      PlaceSim& owner_pl = place(owner);
      const bool msgs = tracer_.spans_on();
      obs::Tracer::Shard& sh = tracer_.shard(0);
      const double req_wire =
          opts_.link.transfer_time(net::wire_bytes(req_payload));
      const double reply_wire = opts_.link.transfer_time(net::wire_bytes(reply_bytes));

      if (!injector_.enabled() && !crashed_[owner]) {
        book_.record(p, owner, req_kind, req_payload);
        book_.record(owner, p, reply_kind, reply_bytes);
        const double request_arrives = now_ + req_wire;
        const double nic_start = std::max(request_arrives, owner_pl.nic_free);
        const double nic_end = nic_start + opts_.link.nic_time(net::wire_bytes(reply_bytes));
        owner_pl.nic_free = nic_end;
        if (msgs) {
          sh.messages.push_back({req_kind, p, owner, now_,
                                 request_arrives, obs::MessageFate::Delivered});
          sh.messages.push_back({reply_kind, owner, p, nic_end,
                                 nic_end + reply_wire, obs::MessageFate::Delivered});
        }
        return {nic_end + reply_wire, false};
      }

      double t = now_;
      double timeout = opts_.retry.timeout_s;
      double earliest = -1.0;
      std::uint32_t attempts = 0;
      std::uint32_t timeouts = 0;
      while (true) {
        ++attempts;
        check_internal(attempts < 100000,
                       "SimEngine: remote fetch failed to terminate");
        book_.record(p, owner, req_kind, req_payload);
        const auto req = injector_.perturb(req_kind, p, owner, t);
        if (req.dropped) {
          ++pl.stats.net_drops;
          flight_note(obs::RtEventKind::MessageDrop, p,
                      static_cast<std::int64_t>(req_kind), owner);
          if (msgs) {
            sh.messages.push_back({req_kind, p, owner, t,
                                   -1.0, obs::MessageFate::Dropped});
          }
        } else if (!crashed_[owner]) {
          const double request_arrives = t + req_wire + req.extra_delay_s;
          pl.stats.net_duplicates += static_cast<std::uint64_t>(req.extra_copies);
          if (msgs) {
            sh.messages.push_back({req_kind, p, owner, t,
                                   request_arrives, obs::MessageFate::Delivered});
            for (std::int32_t c = 0; c < req.extra_copies; ++c) {
              sh.messages.push_back({req_kind, p, owner, t,
                                     request_arrives, obs::MessageFate::Duplicated});
            }
          }
          // Every arriving request copy is served — the owner cannot know
          // the fetcher already gave up or got another copy's reply; the
          // fetcher dedups by sequence number on its side.
          for (std::int32_t c = 0; c <= req.extra_copies; ++c) {
            const double nic_start = std::max(request_arrives, owner_pl.nic_free);
            const double nic_end =
                nic_start + opts_.link.nic_time(net::wire_bytes(reply_bytes));
            owner_pl.nic_free = nic_end;
            book_.record(owner, p, reply_kind, reply_bytes);
            const auto rep = injector_.perturb(reply_kind, owner, p, nic_end);
            if (rep.dropped) {
              ++pl.stats.net_drops;
              flight_note(obs::RtEventKind::MessageDrop, owner,
                          static_cast<std::int64_t>(reply_kind), p);
              if (msgs) {
                sh.messages.push_back({reply_kind, owner, p,
                                       nic_end, -1.0, obs::MessageFate::Dropped});
              }
              continue;
            }
            pl.stats.net_duplicates += static_cast<std::uint64_t>(rep.extra_copies);
            const double arrives = nic_end + reply_wire + rep.extra_delay_s;
            if (msgs) {
              sh.messages.push_back({reply_kind, owner, p,
                                     nic_end, arrives, obs::MessageFate::Delivered});
              for (std::int32_t c2 = 0; c2 < rep.extra_copies; ++c2) {
                sh.messages.push_back({reply_kind, owner, p,
                                       nic_end, arrives, obs::MessageFate::Duplicated});
              }
            }
            if (earliest < 0.0 || arrives < earliest) earliest = arrives;
          }
        } else if (msgs) {
          // Delivered into a silently-crashed owner: lost with the place.
          sh.messages.push_back({req_kind, p, owner, t,
                                 -1.0, obs::MessageFate::Dropped});
        }
        const double deadline = t + timeout;
        if (earliest >= 0.0 && earliest <= deadline) break;
        ++timeouts;
        if (attempts >= static_cast<std::uint32_t>(opts_.retry.max_attempts) &&
            crashed_[owner]) {
          // The owner is gone and the budget is spent: park until the
          // failure detector settles its fate (the vertex is re-seeded by
          // recovery). A merely-lossy link never abandons — eviction is the
          // detector's decision, so we keep retrying at the ceiling.
          pl.stats.fetch_retries += attempts - 1;
          pl.stats.fetch_timeouts += timeouts;
          if (tracer_.counters_on()) {
            sh.fetch_retries.record(static_cast<double>(attempts - 1));
          }
          return {0.0, true};
        }
        t = deadline;
        timeout = detail::next_backoff(opts_.retry, timeout, injector_.uniform01());
      }
      pl.stats.fetch_retries += attempts - 1;
      pl.stats.fetch_timeouts += timeouts;
      if (tracer_.counters_on()) {
        sh.fetch_retries.record(static_cast<double>(attempts - 1));
      }
      return {earliest, false};
    }

    /// Reserves a slot, models the dependency-gather + compute time, and —
    /// because values never change once finished — executes the real
    /// compute() eagerly. The cell is only *published* (state, indegree
    /// decrements) at the kDone event. If a dependency owner is crashed and
    /// unreachable past the retry budget, the vertex is abandoned (no slot,
    /// no trace, no kDone) and comes back via recovery's re-seed.
    void start_vertex(std::int32_t p, std::int64_t idx) {
      PlaceSim& pl = place(p);
      DistArray<T>& array = *array_;
      const VertexId id = array.domain().delinearize(idx);

      deps_scratch_.clear();
      dag_.dependencies(id, deps_scratch_);
      dep_values_.clear();

      double gather_cost = 0.0;      // sequential local/cached reads
      double data_ready = now_;      // parallel remote fetches finish here
      if (!opts_.coalescing) {
        for (VertexId d : deps_scratch_) {
          const std::int32_t owner = array.owner_place(d);
          T value;
          if (owner == p) {
            read_dep_value(array, d, value);
            gather_cost += opts_.cost.local_dep_ns * 1e-9;
            ++pl.stats.local_dep_reads;
          } else if (pl.cache.get(d, value)) {
            gather_cost += opts_.cost.local_dep_ns * 1e-9;
            ++pl.stats.cache_hits;
          } else {
            read_dep_value(array, d, value);
            ++pl.stats.remote_fetches;
            const FetchTiming fetch = model_remote_fetch(
                p, owner, net::MessageKind::FetchRequest, net::MessageKind::FetchReply,
                net::kControlPayloadBytes, value_wire_bytes(value));
            if (fetch.unreachable) return;
            if (tracer_.counters_on()) {
              tracer_.shard(0).fetch_latency_s.record(fetch.ready_at - now_);
            }
            data_ready = std::max(data_ready, fetch.ready_at);
            pl.cache.put(d, value);
          }
          dep_values_.push_back(Vertex<T>{d, value});
        }
      } else {
        // Coalesced gather: classify every dependency first, grouping cache
        // misses by owner place, then issue ONE batch round trip per owner.
        // Values are read eagerly either way (the sim publishes lazily but
        // computes eagerly), so only accounting and timing change.
        fetch_groups_.clear();
        for (VertexId d : deps_scratch_) {
          const std::int32_t owner = array.owner_place(d);
          T value;
          if (owner == p) {
            read_dep_value(array, d, value);
            gather_cost += opts_.cost.local_dep_ns * 1e-9;
            ++pl.stats.local_dep_reads;
          } else if (pl.cache.get(d, value)) {
            gather_cost += opts_.cost.local_dep_ns * 1e-9;
            ++pl.stats.cache_hits;
          } else {
            read_dep_value(array, d, value);
            ++pl.stats.remote_fetches;
            FetchGroup* group = nullptr;
            for (FetchGroup& g : fetch_groups_) {
              if (g.owner == owner) { group = &g; break; }
            }
            if (group == nullptr) {
              fetch_groups_.push_back(FetchGroup{owner, 0, {}});
              group = &fetch_groups_.back();
            }
            group->reply_payload += value_wire_bytes(value);
            group->entries.push_back(Vertex<T>{d, value});
          }
          dep_values_.push_back(Vertex<T>{d, value});
        }
        for (FetchGroup& g : fetch_groups_) {
          ++pl.stats.fetch_batches;
          rt_event(obs::RtEventKind::BatchFetchFlush, p, g.owner,
                   static_cast<std::int64_t>(g.entries.size()), now_);
          check::sync_event(check::SyncPoint::CoalesceFlush, p, g.owner,
                            static_cast<std::int64_t>(g.entries.size()));
          const FetchTiming fetch = model_remote_fetch(
              p, g.owner, net::MessageKind::BatchFetchRequest,
              net::MessageKind::BatchFetchReply,
              net::batch_fetch_request_payload(g.entries.size()), g.reply_payload);
          if (fetch.unreachable) return;  // nothing cached yet: clean abandon
          if (tracer_.counters_on()) {
            tracer_.shard(0).fetch_latency_s.record(fetch.ready_at - now_);
          }
          data_ready = std::max(data_ready, fetch.ready_at);
        }
        for (const FetchGroup& g : fetch_groups_) {
          for (const Vertex<T>& v : g.entries) pl.cache.put(v.id, v.value);
        }
      }

      T result = app_.compute(id.i, id.j, std::span<const Vertex<T>>(dep_values_));
      result = detail::publish_value(array.cell(idx), result, idx);

      const double compute_s =
          (opts_.cost.compute_ns * app_.compute_cost_units(id) + opts_.cost.framework_ns) *
              1e-9 +
          gather_cost;
      if (tax_on_) {
        // Modeled attribution: the sim's cost model already names the
        // buckets — framework bookkeeping, local/cached reads, compute.
        obs::FrameworkTax& tax = tracer_.shard(0).tax;
        tax.dispatch_s += opts_.cost.framework_ns * 1e-9;
        tax.cache_s += gather_cost;
        tax.compute_s += opts_.cost.compute_ns * app_.compute_cost_units(id) * 1e-9;
        ++tax.vertices;
        tax.units += app_.compute_cost_units(id);
      }
      const double end = std::max(now_, data_ready) + compute_s;
      const std::int32_t slot = pl.slots.reserve(now_, end);
      if (tracer_.active()) {
        obs::Tracer::Shard& sh = tracer_.shard(0);
        const auto it = ready_time_.find(idx);
        const double ready_at = it == ready_time_.end() ? now_ : it->second;
        if (tracer_.counters_on()) {
          sh.compute_s.record(compute_s);
          sh.queue_wait_s.record(now_ - ready_at);
        }
        if (tracer_.vertex_spans_on()) {
          // published flips to true at the kDone event; a crash in between
          // leaves the span marked as a discarded execution.
          open_span_[idx] = sh.vertices.size();
          sh.vertices.push_back(obs::VertexSpan{idx, p, slot, ready_at, now_,
                                                std::max(now_, data_ready), end,
                                                /*published=*/false});
        }
      }
      queue_.push(end, kDone, p, idx);
    }

    void on_done(std::int32_t p, std::int64_t idx) {
      // A crashed place's in-flight vertices die with it: the result was
      // computed but never published, so recovery recomputes the cell.
      if (!pm_.is_alive(p) || crashed_[p]) return;
      PlaceSim& pl = place(p);
      DistArray<T>& array = *array_;
      const VertexId id = array.domain().delinearize(idx);
      const bool spans = tracer_.spans_on();
      obs::Tracer::Shard& sh = tracer_.shard(0);
      if (tracer_.vertex_spans_on()) {
        const auto it = open_span_.find(idx);
        if (it != open_span_.end()) {
          sh.vertices[it->second].published = true;
          open_span_.erase(it);
        }
      }

      Cell<T>& cell = array.cell(idx);
      cell.store_state(CellState::Finished, std::memory_order_relaxed);
      ++pl.stats.computed;
      ++computed_total_;
      double pub_cost = 0.0;  // modeled wire seconds spent publishing
      const std::int32_t owner = array.owner_place(id);
      if (owner != p) {
        book_.record(p, owner, net::MessageKind::ResultWriteback, value_wire_bytes(cell.value));
        ++pl.stats.executed_nonlocal;
        pub_cost += opts_.link.transfer_time(
            net::wire_bytes(value_wire_bytes(cell.value)));
        if (spans) {
          sh.messages.push_back(
              {net::MessageKind::ResultWriteback, p, owner, now_,
               now_ + opts_.link.transfer_time(
                          net::wire_bytes(value_wire_bytes(cell.value))),
               obs::MessageFate::Delivered});
        }
      }

      anti_scratch_.clear();
      dag_.anti_dependencies(id, anti_scratch_);
      if (opts_.coalescing) {
        // Coalesced publish: ONE BatchIndegreeControl per destination place,
        // carrying every decrement bound there plus one copy of the finished
        // value, which seeds the destination's vertex cache — consumers there
        // will hit instead of fetching. The per-edge accounting loop below
        // then reuses each destination's NIC-handled time as its delay.
        ctrl_groups_.clear();
        for (VertexId a : anti_scratch_) {
          Cell<T>& ac = array.cell(a);
          if (ac.load_state(std::memory_order_relaxed) == CellState::Prefinished) continue;
          if (check::bug_drops_decrement(idx, array.domain().linearize(a))) continue;
          const std::int32_t a_owner = array.owner_place(a);
          if (a_owner == p) continue;
          CtrlGroup* group = nullptr;
          for (CtrlGroup& g : ctrl_groups_) {
            if (g.dest == a_owner) { group = &g; break; }
          }
          if (group == nullptr) {
            ctrl_groups_.push_back(CtrlGroup{a_owner, 0, 0.0});
            group = &ctrl_groups_.back();
          }
          ++group->edges;
        }
        for (CtrlGroup& g : ctrl_groups_) {
          const std::size_t payload =
              net::batch_control_payload(g.edges, value_wire_bytes(cell.value));
          book_.record(p, g.dest, net::MessageKind::BatchIndegreeControl, payload);
          pl.stats.control_msgs_out += g.edges;
          ++pl.stats.control_batches;
          rt_event(obs::RtEventKind::BatchControlFlush, p, g.dest,
                   static_cast<std::int64_t>(g.edges), now_);
          check::sync_event(check::SyncPoint::CoalesceFlush, p, g.dest,
                            static_cast<std::int64_t>(g.edges));
          const double arrives =
              now_ + opts_.link.transfer_time(net::wire_bytes(payload));
          pub_cost += arrives - now_;
          PlaceSim& dest = place(g.dest);
          g.handled = std::max(arrives, dest.nic_free) +
                      opts_.link.nic_time(net::wire_bytes(payload));
          dest.nic_free = g.handled;
          dest.cache.put(id, cell.value);
          if (spans) {
            sh.messages.push_back({net::MessageKind::BatchIndegreeControl, p,
                                   g.dest, now_, g.handled,
                                   obs::MessageFate::Delivered});
          }
        }
      }
      for (VertexId a : anti_scratch_) {
        Cell<T>& ac = array.cell(a);
        if (ac.load_state(std::memory_order_relaxed) == CellState::Prefinished) continue;
        // Planted DropDecrement bug (dpx10check self-test): the edge's
        // decrement vanishes; the consumer can never become ready.
        if (check::bug_drops_decrement(idx, array.domain().linearize(a))) continue;
        const std::int32_t a_owner = array.owner_place(a);
        double delay = 0.0;
        if (a_owner != p) {
          if (opts_.coalescing) {
            for (const CtrlGroup& g : ctrl_groups_) {
              if (g.dest == a_owner) { delay = g.handled - now_; break; }
            }
          } else {
            book_.record(p, a_owner, net::MessageKind::IndegreeControl,
                         net::kControlPayloadBytes);
            ++pl.stats.control_msgs_out;
            // The decrement is processed by the destination place's comm
            // thread: wire time plus serialized per-message handling.
            const double arrives =
                now_ + opts_.link.transfer_time(net::wire_bytes(net::kControlPayloadBytes));
            pub_cost += arrives - now_;
            PlaceSim& dest = place(a_owner);
            const double handled = std::max(arrives, dest.nic_free) +
                                   opts_.link.nic_time(net::wire_bytes(net::kControlPayloadBytes));
            dest.nic_free = handled;
            delay = handled - now_;
            if (spans) {
              sh.messages.push_back({net::MessageKind::IndegreeControl, p, a_owner,
                                     now_, handled, obs::MessageFate::Delivered});
            }
          }
        }
        if (ac.indegree.fetch_sub(1, std::memory_order_relaxed) - 1 == 0) {
          std::int32_t slot = choose_target_slot(
              opts_.scheduling, a, dag_, array.dist(), sizeof(T), rng_, sched_scratch_,
              detector_active_ ? &array.group() : nullptr,
              detector_active_ ? &suspected_ : nullptr);
          std::int32_t target = array.group()[slot];
          if (target != a_owner) {
            book_.record(a_owner, target, net::MessageKind::ReadyTransfer,
                         net::kControlPayloadBytes);
            delay += opts_.link.transfer_time(net::wire_bytes(net::kControlPayloadBytes));
            if (spans) {
              sh.messages.push_back({net::MessageKind::ReadyTransfer, a_owner,
                                     target, now_, now_ + delay,
                                     obs::MessageFate::Delivered});
            }
          }
          queue_.push(now_ + delay, kReady, target, array.domain().linearize(a));
        }
      }

      if (gov_) {
        // Publish accounting runs after the control loops above — they need
        // the cell's real value for payload sizes and cache seeding, and a
        // pressure spill may displace it. Then this vertex consumes its
        // dependencies: the last consumer's publish retires each one, and
        // every retired/displaced cell is dropped from all vertex caches
        // eagerly so its bytes are gone everywhere at once.
        evicted_scratch_.clear();
        gov_->on_publish(array, idx, &evicted_scratch_);
        deps_scratch_.clear();
        dag_.dependencies(id, deps_scratch_);
        for (VertexId d : deps_scratch_) {
          const std::int64_t dep_idx = array.domain().linearize(d);
          if (gov_->on_consumed(array, dep_idx)) {
            evicted_scratch_.push_back(dep_idx);
          }
        }
        for (std::int64_t e : evicted_scratch_) {
          const VertexId eid = array.domain().delinearize(e);
          for (std::int32_t q = 0; q < opts_.nplaces; ++q) {
            place(q).cache.erase(eid);
          }
          rt_event(gov_spill_ ? obs::RtEventKind::GovSpill
                              : obs::RtEventKind::GovRetire,
                   p, e, 0, now_);
          check::sync_event(gov_spill_ ? check::SyncPoint::GovernorSpill
                                       : check::SyncPoint::GovernorRetire,
                            p, e, 0);
        }
      }

      if (tax_on_) tracer_.shard(0).tax.publish_s += pub_cost;
      flight_note(obs::RtEventKind::VertexDone, p, idx, 0);

      ++finished_;
      elapsed_ = now_;

      if (snapshot_step_ > 0 && finished_ >= next_snapshot_at_ && finished_ < target_) {
        take_snapshot();
        next_snapshot_at_ += snapshot_step_;
      }

      if (ckpt_step_ > 0 && finished_ >= next_ckpt_at_ && finished_ < target_) {
        take_checkpoint();
        next_ckpt_at_ += ckpt_step_;
        // The barrier discarded every queued event; this place's follow-on
        // work was re-seeded along with everyone else's.
        return;
      }

      if (next_fault_ < faults_.size() && finished_ >= fault_thresholds_[next_fault_]) {
        if (detector_active_) {
          // No oracle: places crash silently and keep "running" from
          // everyone else's point of view until the detector declares them.
          // Plans sharing a threshold all crash at this instant and are
          // declared together by one sweep.
          while (next_fault_ < faults_.size() &&
                 finished_ >= fault_thresholds_[next_fault_]) {
            const FaultPlan fault = faults_[next_fault_];
            ++next_fault_;
            if (pm_.is_alive(fault.place) && !crashed_[fault.place]) {
              crash_place(fault.place);
            }
          }
          if (crashed_[p]) return;  // the finishing place crashed itself
        } else {
          fault_batch_.clear();
          while (next_fault_ < faults_.size() &&
                 finished_ >= fault_thresholds_[next_fault_]) {
            const FaultPlan fault = faults_[next_fault_];
            ++next_fault_;
            if (pm_.is_alive(fault.place) && !crashed_[fault.place]) {
              fault_batch_.push_back(fault.place);
            }
          }
          if (!fault_batch_.empty()) {
            perform_recovery(fault_batch_, 0.0);
            return;
          }
        }
      }

      if (finished_ >= target_) {
        done_ = true;
        return;
      }
      schedule_dispatch(p, now_);
    }

    // ---- failure detection ----

    /// Schedules the first beat of every live non-monitor place and the
    /// monitor's sweep.
    void arm_heartbeats(double start) {
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        if (p == monitor_) continue;
        if (pm_.is_alive(p) && !crashed_[p]) {
          queue_.push(start + opts_.heartbeat.interval_s, kHeartbeat, p, 0);
        }
      }
      queue_.push(start + opts_.heartbeat.interval_s, kSweep, 0, 0);
    }

    /// Place p emits its periodic beat to the current monitor. The beat is
    /// a real message: it pays wire time, queues on the monitor's NIC, and
    /// can be dropped or delayed by the injector — which is exactly how a
    /// straggling network manufactures false suspicion.
    void on_heartbeat(std::int32_t p) {
      if (!pm_.is_alive(p) || crashed_[p]) return;  // silence, forever
      if (p == monitor_) return;  // stale beat armed before a failover
      const std::int32_t mon = monitor_;
      const bool spans = tracer_.spans_on();
      obs::Tracer::Shard& sh = tracer_.shard(0);
      book_.record(p, mon, net::MessageKind::Heartbeat, net::kControlPayloadBytes);
      const auto pert = injector_.perturb(net::MessageKind::Heartbeat, p, mon, now_);
      if (pert.dropped) {
        ++place(p).stats.net_drops;
        if (spans) {
          sh.messages.push_back({net::MessageKind::Heartbeat, p, mon, now_, -1.0,
                                 obs::MessageFate::Dropped});
        }
      } else if (!crashed_[mon]) {
        place(p).stats.net_duplicates += static_cast<std::uint64_t>(pert.extra_copies);
        const double wire =
            opts_.link.transfer_time(net::wire_bytes(net::kControlPayloadBytes));
        const double nic =
            opts_.link.nic_time(net::wire_bytes(net::kControlPayloadBytes));
        PlaceSim& monitor = place(mon);
        const double handled =
            std::max(now_ + wire + pert.extra_delay_s, monitor.nic_free) + nic;
        monitor.nic_free = handled;
        // Stamped with NIC completion: a beat "in flight" at sweep time has
        // not been heard yet. Duplicates only burn extra monitor NIC time.
        detector_.beat(p, handled);
        for (std::int32_t c = 0; c < pert.extra_copies; ++c) monitor.nic_free += nic;
        if (spans) {
          sh.messages.push_back({net::MessageKind::Heartbeat, p, mon, now_, handled,
                                 obs::MessageFate::Delivered});
          for (std::int32_t c = 0; c < pert.extra_copies; ++c) {
            sh.messages.push_back({net::MessageKind::Heartbeat, p, mon, now_,
                                   handled, obs::MessageFate::Duplicated});
          }
        }
      } else if (spans) {
        // The monitor silently crashed: the beat is lost with it.
        sh.messages.push_back({net::MessageKind::Heartbeat, p, mon, now_, -1.0,
                               obs::MessageFate::Dropped});
      }
      queue_.push(now_ + opts_.heartbeat.interval_s, kHeartbeat, p, 0);
    }

    /// The monitor advances the detector: new suspicions bar a place from
    /// scheduling, declarations trigger §VI-D recovery. Every declaration
    /// of one sweep enters a single recovery batch, so simultaneous deaths
    /// are recovered together (ordered by place id — transitions iterate
    /// the ledger in place order). If the monitor itself crashed, its
    /// replicated ledger means the successor notices the silence after the
    /// same declaration window and recovers it like any other place.
    void on_sweep() {
      if (crashed_[monitor_]) {
        if (now_ - crash_time_[static_cast<std::size_t>(monitor_)] >=
            opts_.heartbeat.declare_delay()) {
          fault_batch_.clear();
          fault_batch_.push_back(monitor_);
          declare_dead_batch(fault_batch_);
        } else if (!done_) {
          queue_.push(now_ + opts_.heartbeat.interval_s, kSweep, 0, 0);
        }
        return;
      }
      transitions_.clear();
      detector_.sweep(now_, transitions_);
      fault_batch_.clear();
      for (const HealthTransition& tr : transitions_) {
        if (tracer_.spans_on()) {
          tracer_.detector_event(tr.place, static_cast<std::uint8_t>(tr.to), now_);
        }
        switch (tr.to) {
          case PlaceHealth::Alive:
            suspected_.clear(tr.place);
            DPX10_INFO << "sim: place " << tr.place << " cleared of suspicion at t="
                       << now_ << "s";
            break;
          case PlaceHealth::Suspected:
            suspected_.set(tr.place);
            ++place(tr.place).stats.suspicions;
            DPX10_INFO << "sim: place " << tr.place << " suspected at t=" << now_ << "s";
            break;
          case PlaceHealth::Dead:
            if (pm_.is_alive(tr.place)) fault_batch_.push_back(tr.place);
            break;
        }
      }
      const bool recovered = !fault_batch_.empty();
      if (recovered) declare_dead_batch(fault_batch_);
      // Recovery re-armed the beat/sweep cycle itself; otherwise keep it up.
      if (!recovered && !done_) {
        queue_.push(now_ + opts_.heartbeat.interval_s, kSweep, 0, 0);
      }
    }

    /// A fault fires: the place stops, silently. Its queued work is gone;
    /// everything already in flight *to* it will be dropped on arrival.
    /// Detection — and only then recovery — comes from the heartbeat path;
    /// when the *monitor* crashes, the next sweep runs against its
    /// replicated ledger on the successor, so nothing special happens here.
    void crash_place(std::int32_t p) {
      crashed_[static_cast<std::size_t>(p)] = 1;
      crash_time_[static_cast<std::size_t>(p)] = now_;
      place(p).ready.clear();
      rt_event(obs::RtEventKind::PlaceCrash, p, 0, 0, now_);
      DPX10_INFO << "sim: place " << p << " crashed at t=" << now_
                 << "s (not yet detected)";
    }

    /// The detector declared every place in `batch` dead: fence them out
    /// (even false positives — a place the group evicted must never
    /// rejoin) and run §VI-D recovery, carrying the trigger's measured
    /// detection latency.
    void declare_dead_batch(const std::vector<std::int32_t>& batch) {
      double detected_after = 0.0;
      for (std::int32_t d : batch) {
        const bool was_crashed = crashed_[static_cast<std::size_t>(d)] != 0;
        crashed_[static_cast<std::size_t>(d)] = 1;
        suspected_.clear(d);
        detector_.mark_dead(d);
        const double lat =
            was_crashed ? now_ - crash_time_[static_cast<std::size_t>(d)] : 0.0;
        detected_after = std::max(detected_after, lat);
        rt_event(obs::RtEventKind::PlaceDeclared, d, 0, 0, now_);
        DPX10_INFO << "sim: place " << d << " declared dead at t=" << now_
                   << "s (detection latency " << lat << "s)";
      }
      perform_recovery(batch, detected_after);
    }

    /// Periodic snapshot (RecoveryPolicy::PeriodicSnapshot): capture a
    /// consistent global state and pause every place for the modeled copy
    /// time. In-flight vertices keep running to completion — they are
    /// simply newer than the snapshot.
    void take_snapshot() {
      if (gov_spill_) {
        // Pin retired values out of the spill files: the vault must survive
        // the owner's death, the owner's spill file would not.
        DistArray<T>* array = array_.get();
        mem::MemoryGovernor<T>* gov = gov_.get();
        vault_.capture(*array_, [array, gov](std::int64_t i, T& out) {
          const std::int32_t owner =
              array->owner_place(array->domain().delinearize(i));
          return gov->spill_read(owner, i, out);
        });
      } else {
        vault_.capture(*array_);
      }
      const double duration =
          static_cast<double>(dag_.domain().size()) * opts_.cost.snapshot_copy_ns * 1e-9 /
              static_cast<double>(pm_.alive_count()) +
          opts_.link.latency_s;
      const double resume_at = now_ + duration;
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        place(p).slots.delay_all_until(resume_at);
        place(p).nic_free = std::max(place(p).nic_free, resume_at);
      }
      ++snapshots_taken_;
      snapshot_seconds_ += duration;
      rt_event(obs::RtEventKind::SnapshotTaken, -1,
               static_cast<std::int64_t>(snapshots_taken_), 0, now_);
    }

    // ---- durable checkpoint / resume ----

    static net::TrafficSnapshot add_traffic(const net::TrafficSnapshot& a,
                                            const net::TrafficSnapshot& b) {
      net::TrafficSnapshot out = a;
      for (std::size_t k = 0; k < net::kMessageKindCount; ++k) {
        out.messages_out[k] += b.messages_out[k];
        out.messages_in[k] += b.messages_in[k];
      }
      out.bytes_out += b.bytes_out;
      out.bytes_in += b.bytes_in;
      return out;
    }

    /// Folds the live slot/cache counters into a PlaceStats copy — the
    /// persisted form, so a resumed process can restart its own slots and
    /// caches at zero and simply add.
    PlaceStats folded_stats(std::int32_t p) {
      PlaceStats s = place(p).stats;
      s.busy_seconds += place(p).slots.busy_seconds();
      s.cache_evictions += place(p).cache.evictions();
      return s;
    }

    /// Durable checkpoint: persist an atomic on-disk bundle, then run the
    /// same barrier a resume replays. Because write side and resume side
    /// execute the identical barrier at the identical trigger, the two
    /// trajectories coincide from here on — which is what makes a resumed
    /// run's report byte-identical to the uninterrupted one.
    void take_checkpoint() {
      ++ckpt_seq_;
      const double duration =
          static_cast<double>(dag_.domain().size()) * opts_.cost.snapshot_copy_ns * 1e-9 /
              static_cast<double>(pm_.alive_count()) +
          opts_.link.latency_s;
      const double resume_at = now_ + duration;
      checkpoint::BundleWriter writer(opts_.checkpoint_dir, ckpt_seq_);
      checkpoint::Manifest& m = writer.manifest();
      m.set("run.app", std::string(app_.name()));
      m.set("run.dag", std::string(dag_.name()));
      m.set_i64("run.vertices", dag_.domain().size());
      m.set_i64("run.nplaces", opts_.nplaces);
      m.set_i64("run.nthreads", opts_.nthreads);
      m.set_u64("run.seed", opts_.seed);
      m.set_i64("progress.finished", finished_);
      m.set_u64("progress.computed", computed_total_);
      m.set_i64("progress.events", events_processed_);
      m.set_u64("progress.next_fault", next_fault_);
      m.set_u64("progress.next_event_fault", next_event_fault_);
      m.set_u64("progress.sim_events", sim_events_base_ + queue_.pushed());
      m.set_double("progress.resume_at", resume_at);
      m.set_double("progress.next_sample", next_sample_);
      m.set_i64("ckpt.next_at", next_ckpt_at_ + ckpt_step_);
      m.set_i64("monitor", monitor_);
      m.set_i64("epoch", epoch_.current);
      std::vector<std::uint64_t> dead;
      std::vector<std::uint64_t> crash_flags;
      std::vector<double> crash_times;
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        if (!pm_.is_alive(p)) dead.push_back(static_cast<std::uint64_t>(p));
        crash_flags.push_back(crashed_[static_cast<std::size_t>(p)]);
        crash_times.push_back(crash_time_[static_cast<std::size_t>(p)]);
      }
      m.set_u64s("places.dead", dead);
      m.set_u64s("places.crashed", crash_flags);
      m.set_doubles("places.crash_time", crash_times);
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        // Governor fields are structurally zero here: validate() forbids
        // retirement alongside checkpointing.
        const PlaceStats s = folded_stats(p);
        m.set_u64s("place." + std::to_string(p) + ".counters",
                   {s.computed, s.executed_nonlocal, s.local_dep_reads,
                    s.remote_fetches, s.cache_hits, s.control_msgs_out,
                    s.fetch_batches, s.control_batches, s.steals,
                    s.fetch_retries, s.fetch_timeouts, s.net_drops,
                    s.net_duplicates, s.suspicions, s.cache_evictions});
        m.set_double("place." + std::to_string(p) + ".busy", s.busy_seconds);
      }
      const net::TrafficSnapshot t = add_traffic(traffic_base_, book_.total());
      m.set_u64s("traffic.messages_out",
                 std::vector<std::uint64_t>(t.messages_out,
                                            t.messages_out + net::kMessageKindCount));
      m.set_u64s("traffic.messages_in",
                 std::vector<std::uint64_t>(t.messages_in,
                                            t.messages_in + net::kMessageKindCount));
      m.set_u64("traffic.bytes_out", t.bytes_out);
      m.set_u64("traffic.bytes_in", t.bytes_in);
      m.set_u64("recoveries.count", recoveries_.size());
      for (std::size_t i = 0; i < recoveries_.size(); ++i) {
        const RecoveryRecord& r = recoveries_[i];
        m.set_u64s("recovery." + std::to_string(i) + ".counters",
                   {static_cast<std::uint64_t>(r.dead_place),
                    static_cast<std::uint64_t>(r.epoch), r.nested ? 1u : 0u,
                    r.lost, r.restored, r.restored_remote, r.discarded,
                    r.restored_spilled, r.resurrected});
        m.set_doubles("recovery." + std::to_string(i) + ".times",
                      {r.started_at, r.recovery_seconds, r.detected_after_s});
        m.set_u64s("recovery." + std::to_string(i) + ".deaths",
                   std::vector<std::uint64_t>(r.dead_places.begin(),
                                              r.dead_places.end()));
      }
      writer.write_cells(checkpoint::encode_cells(*array_));
      writer.commit();
      rt_event(obs::RtEventKind::CheckpointWrite, -1,
               static_cast<std::int64_t>(ckpt_seq_), finished_, now_);
      DPX10_INFO << "sim: checkpoint bundle " << ckpt_seq_ << " committed at t="
                 << now_ << "s (finished " << finished_ << "/" << target_ << ")";
      checkpoint_barrier(resume_at);
    }

    /// The shared write/resume barrier: discard every in-flight event,
    /// reset each place to resume_at, re-derive the ready frontier from
    /// cell state, and re-key the scheduler RNG from (seed, bundle seq) —
    /// inputs both sides hold, which is why they agree.
    void checkpoint_barrier(double resume_at) {
      queue_.clear();
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        PlaceSim& pl = place(p);
        pl.ready.clear();
        pl.cache.clear();
        // Fold the slot pool's busy accumulator into the durable stats —
        // the exact addition folded_stats() just wrote to the manifest —
        // so the write side and a resume both continue from the manifest
        // value with a fresh accumulator and stay bit-identical.
        pl.stats.busy_seconds += pl.slots.take_busy_seconds();
        pl.slots.reset_all(resume_at);
        pl.nic_free = resume_at;
        pl.dispatch_pending = false;
      }
      rng_ = Xoshiro256(mix64(mix64(opts_.seed, 0x5157ULL), ckpt_seq_));
      ready_time_.clear();
      open_span_.clear();
      detail::seed_ready(*array_, [&](std::int32_t owner, std::int64_t idx) {
        queue_.push(resume_at, kReady, owner, idx);
      });
      elapsed_ = resume_at;
      if (detector_active_) {
        suspected_.clear_all();
        detector_.reset(resume_at);
        arm_heartbeats(resume_at);
      }
    }

    /// Rebuilds the engine from the latest consistent bundle under
    /// --resume and replays the write-side barrier, so the killed run's
    /// trajectory continues exactly where its last checkpoint cut it.
    void resume_from_checkpoint() {
      checkpoint::Bundle bundle = checkpoint::load_latest(opts_.resume_dir);
      const checkpoint::Manifest& m = bundle.manifest;
      require(m.get("run.app") == std::string(app_.name()) &&
                  m.get("run.dag") == std::string(dag_.name()) &&
                  m.get_i64("run.vertices") == dag_.domain().size() &&
                  m.get_i64("run.nplaces") == opts_.nplaces &&
                  m.get_i64("run.nthreads") == opts_.nthreads &&
                  m.get_u64("run.seed") == opts_.seed,
              "checkpoint: bundle was written by a different run "
              "configuration (app/dag/size/places/seed mismatch)");
      ckpt_seq_ = bundle.seq;
      const std::vector<std::uint64_t> dead = m.get_u64s("places.dead");
      for (std::uint64_t d : dead) pm_.kill(static_cast<std::int32_t>(d));
      const std::vector<std::uint64_t> crash_flags = m.get_u64s("places.crashed");
      const std::vector<double> crash_times = m.get_doubles("places.crash_time");
      require(crash_flags.size() == static_cast<std::size_t>(opts_.nplaces) &&
                  crash_times.size() == static_cast<std::size_t>(opts_.nplaces),
              "checkpoint: bundle place census does not match --nplaces");
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        crashed_[static_cast<std::size_t>(p)] =
            crash_flags[static_cast<std::size_t>(p)] != 0 ? 1 : 0;
        crash_time_[static_cast<std::size_t>(p)] =
            crash_times[static_cast<std::size_t>(p)];
      }
      monitor_ = static_cast<std::int32_t>(m.get_i64("monitor"));
      epoch_.current = static_cast<std::int32_t>(m.get_i64("epoch"));
      if (detector_active_) {
        for (std::uint64_t d : dead) {
          detector_.mark_dead(static_cast<std::int32_t>(d));
        }
        if (monitor_ != detector_.monitor()) detector_.fail_over(monitor_);
      }
      array_ = std::make_unique<DistArray<T>>(dag_.domain(), opts_.dist,
                                              pm_.alive_group());
      detail::initialize_cells(*array_, dag_, app_);
      checkpoint::apply_cells(bundle.cells, *array_, app_);
      detail::recompute_indegrees(*array_, dag_);
      finished_ = static_cast<std::int64_t>(detail::count_finished(*array_));
      require(finished_ == m.get_i64("progress.finished"),
              "checkpoint: cell payload disagrees with the manifest's "
              "finished count");
      computed_total_ = m.get_u64("progress.computed");
      events_processed_ = m.get_i64("progress.events");
      next_fault_ = static_cast<std::size_t>(m.get_u64("progress.next_fault"));
      next_event_fault_ =
          static_cast<std::size_t>(m.get_u64("progress.next_event_fault"));
      require(next_fault_ <= faults_.size() &&
                  next_event_fault_ <= event_faults_.size(),
              "checkpoint: bundle fault cursors do not match the configured "
              "plans");
      sim_events_base_ = m.get_u64("progress.sim_events");
      next_sample_ = m.get_double("progress.next_sample");
      next_ckpt_at_ = m.get_i64("ckpt.next_at");
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        const std::vector<std::uint64_t> c =
            m.get_u64s("place." + std::to_string(p) + ".counters");
        require(c.size() == 15, "checkpoint: malformed place counters");
        PlaceStats& s = place(p).stats;
        s.computed = c[0];
        s.executed_nonlocal = c[1];
        s.local_dep_reads = c[2];
        s.remote_fetches = c[3];
        s.cache_hits = c[4];
        s.control_msgs_out = c[5];
        s.fetch_batches = c[6];
        s.control_batches = c[7];
        s.steals = c[8];
        s.fetch_retries = c[9];
        s.fetch_timeouts = c[10];
        s.net_drops = c[11];
        s.net_duplicates = c[12];
        s.suspicions = c[13];
        s.cache_evictions = c[14];
        s.busy_seconds = m.get_double("place." + std::to_string(p) + ".busy");
      }
      const std::vector<std::uint64_t> mo = m.get_u64s("traffic.messages_out");
      const std::vector<std::uint64_t> mi = m.get_u64s("traffic.messages_in");
      require(mo.size() == net::kMessageKindCount &&
                  mi.size() == net::kMessageKindCount,
              "checkpoint: malformed traffic census");
      for (std::size_t k = 0; k < net::kMessageKindCount; ++k) {
        traffic_base_.messages_out[k] = mo[k];
        traffic_base_.messages_in[k] = mi[k];
      }
      traffic_base_.bytes_out = m.get_u64("traffic.bytes_out");
      traffic_base_.bytes_in = m.get_u64("traffic.bytes_in");
      const std::uint64_t nrec = m.get_u64("recoveries.count");
      for (std::uint64_t i = 0; i < nrec; ++i) {
        const std::vector<std::uint64_t> c =
            m.get_u64s("recovery." + std::to_string(i) + ".counters");
        const std::vector<double> times =
            m.get_doubles("recovery." + std::to_string(i) + ".times");
        require(c.size() == 9 && times.size() == 3,
                "checkpoint: malformed recovery record");
        RecoveryRecord r;
        r.dead_place = static_cast<std::int32_t>(c[0]);
        r.epoch = static_cast<std::int32_t>(c[1]);
        r.nested = c[2] != 0;
        r.lost = c[3];
        r.restored = c[4];
        r.restored_remote = c[5];
        r.discarded = c[6];
        r.restored_spilled = c[7];
        r.resurrected = c[8];
        r.started_at = times[0];
        r.recovery_seconds = times[1];
        r.detected_after_s = times[2];
        const std::string deaths_key = "recovery." + std::to_string(i) + ".deaths";
        if (m.has(deaths_key)) {
          for (std::uint64_t d : m.get_u64s(deaths_key)) {
            r.dead_places.push_back(static_cast<std::int32_t>(d));
          }
        } else {
          r.dead_places = {r.dead_place};  // pre-deaths-key bundle
        }
        recoveries_.push_back(r);
      }
      const double resume_at = m.get_double("progress.resume_at");
      now_ = resume_at;
      rt_event(obs::RtEventKind::CheckpointResume, -1,
               static_cast<std::int64_t>(ckpt_seq_), finished_, resume_at);
      DPX10_INFO << "sim: resumed from checkpoint bundle " << ckpt_seq_
                 << " (finished " << finished_ << "/" << target_ << ", t="
                 << resume_at << "s)";
      checkpoint_barrier(resume_at);
    }

    /// §VI-D recovery as an idempotent, epoch-numbered loop. The initial
    /// batch (one death, or several declared at the same instant) is
    /// rebuilt in one pass; each pass is itself an observable event, so
    /// fault plans keyed on the event counter — and fraction plans whose
    /// threshold the restored count satisfies — can land *during* the
    /// rebuild. Those deaths form the next, `nested`, batch and the loop
    /// restarts over the shrunk survivor set until a pass completes with
    /// nobody else dying. Monitor failover happens inside the pass.
    void perform_recovery(const std::vector<std::int32_t>& initial_batch,
                          double detected_after) {
      std::vector<std::int32_t> batch = initial_batch;
      bool nested = false;
      double at = now_;
      while (!batch.empty()) {
        at = recover_batch(batch, at, detected_after, nested);
        nested = true;
        detected_after = 0.0;
        // The rebuild/restore pass counts as one processed event: a crash
        // sweep's at_event can fall inside the recovery window, which is
        // exactly the kill-during-recovery case.
        ++events_processed_;
        batch.clear();
        if (done_) break;
        while (next_event_fault_ < event_faults_.size() &&
               events_processed_ >= event_faults_[next_event_fault_].at_event) {
          const FaultPlan fault = event_faults_[next_event_fault_];
          ++next_event_fault_;
          if (pm_.is_alive(fault.place) && !crashed_[fault.place]) {
            batch.push_back(fault.place);
          }
        }
        while (next_fault_ < faults_.size() &&
               finished_ >= fault_thresholds_[next_fault_]) {
          const FaultPlan fault = faults_[next_fault_];
          ++next_fault_;
          if (pm_.is_alive(fault.place) && !crashed_[fault.place]) {
            batch.push_back(fault.place);
          }
        }
        std::sort(batch.begin(), batch.end());  // place-id tie-break
      }
    }

    /// One rebuild/restore pass over a batch of simultaneous deaths, in
    /// virtual time. The rebuild runs "in parallel on all alive places":
    /// every survivor scans its share of the new array and copies the
    /// locally-restorable results, so the modeled duration is the per-cell
    /// work divided by the survivor count, plus the wire time of any
    /// cross-place restores. Returns the virtual time survivors resume at.
    double recover_batch(const std::vector<std::int32_t>& batch, double at,
                         double detected_after, bool nested) {
      const std::int64_t finished_before = finished_;
      rt_event(obs::RtEventKind::RecoveryBegin, batch.front(),
               static_cast<std::int64_t>(batch.size()), nested ? 1 : 0, at);
      check::sync_event(check::SyncPoint::RecoveryEpoch, batch.front(),
                        static_cast<std::int64_t>(batch.size()), 0);
      for (std::int32_t d : batch) {
        if (pm_.alive_count() <= 1) throw DeadPlaceException(d);
        pm_.kill(d);
      }
      // Coordinator failover: if the monitor died in this batch, the lowest
      // alive place that is not itself silently crashed adopts the
      // replicated ledger. Nobody left standing is the one hopeless case.
      if (std::find(batch.begin(), batch.end(), monitor_) != batch.end()) {
        std::int32_t successor = -1;
        for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
          if (pm_.is_alive(p) && !crashed_[p]) { successor = p; break; }
        }
        if (successor < 0) throw DeadPlaceException(monitor_);
        DPX10_INFO << "sim: monitor role fails over from place " << monitor_
                   << " to place " << successor;
        if (detector_active_) detector_.fail_over(successor);
        monitor_ = successor;
      }
      PlaceGroup survivors = pm_.alive_group();
      const double nsurv = static_cast<double>(survivors.size());
      const double scan_s =
          static_cast<double>(dag_.domain().size()) * opts_.cost.recovery_scan_ns * 1e-9;

      auto fresh = std::make_unique<DistArray<T>>(dag_.domain(), opts_.dist, survivors);
      RecoveryRecord record;
      double recovery_s;
      if (opts_.recovery == RecoveryPolicy::Rebuild) {
        record = detail::rebuild_after_deaths(*array_, batch, opts_.restore, dag_, app_,
                                              *fresh, book_, gov_.get());
        const double copy_s =
            static_cast<double>(record.restored) * opts_.cost.restore_copy_ns * 1e-9;
        const double wire_s = static_cast<double>(record.restored_remote) *
                              static_cast<double>(net::wire_bytes(sizeof(T))) /
                              opts_.link.bandwidth_bytes_s;
        recovery_s = (scan_s + copy_s + wire_s) / nsurv + opts_.link.latency_s;
      } else {
        // Periodic-snapshot rollback: every survivor reloads its share of
        // the last snapshot; everything newer than the snapshot recomputes.
        record.dead_place = batch.front();
        record.dead_places = batch;
        if (vault_.has_snapshot()) {
          vault_.restore(*fresh);
          if (gov_ && !gov_spill_) {
            // Retire-mode snapshots hold Retired cells statelessly; any
            // such cell an unfinished consumer needs must recompute.
            record.resurrected = detail::resurrect_retired(*fresh, dag_);
          }
          detail::recompute_indegrees(*fresh, dag_);
          record.restored = vault_.finished_in_snapshot();
        } else {
          // No snapshot yet: restart from scratch.
          detail::initialize_cells(*fresh, dag_, app_);
        }
        record.lost = static_cast<std::uint64_t>(finished_before) - record.restored;
        const double copy_s =
            static_cast<double>(record.restored) * opts_.cost.restore_copy_ns * 1e-9;
        recovery_s = (scan_s + copy_s) / nsurv + opts_.link.latency_s;
      }
      array_ = std::move(fresh);
      const double resume_at = at + recovery_s;

      record.epoch = epoch_.next();
      record.nested = nested;
      record.started_at = at;
      record.recovery_seconds = recovery_s;
      record.detected_after_s = detected_after;
      if (record.resurrected > 0) {
        rt_event(obs::RtEventKind::GovResurrect, -1,
                 static_cast<std::int64_t>(record.resurrected), record.epoch,
                 resume_at);
      }
      if (record.restored_spilled > 0) {
        rt_event(obs::RtEventKind::SpillRestore, -1,
                 static_cast<std::int64_t>(record.restored_spilled),
                 record.epoch, resume_at);
      }
      rt_event(obs::RtEventKind::RecoveryEnd, record.dead_place, record.epoch,
               static_cast<std::int64_t>(record.restored), resume_at);
      check::sync_event(check::SyncPoint::RecoveryEpoch, record.dead_place,
                        static_cast<std::int64_t>(record.epoch), 1);
      recoveries_.push_back(record);
      DPX10_INFO << "sim: " << batch.size() << " place(s) died (trigger "
                 << record.dead_place << ", epoch " << record.epoch
                 << (nested ? ", nested" : "") << ") at t=" << at
                 << "s; recovery took " << recovery_s << "s (restored " << record.restored
                 << ", lost " << record.lost << ", discarded " << record.discarded << ")";

      // Discard all in-flight work and restart the survivors at resume_at.
      queue_.clear();
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        PlaceSim& pl = place(p);
        pl.ready.clear();
        pl.cache.clear();
        pl.slots.reset_all(resume_at);
        pl.nic_free = resume_at;
        pl.dispatch_pending = false;
      }
      if (gov_) gov_->rebuild(*array_, dag_);
      detail::seed_ready(*array_, [&](std::int32_t owner, std::int64_t idx) {
        queue_.push(resume_at, kReady, owner, idx);
      });
      finished_ = static_cast<std::int64_t>(detail::count_finished(*array_));
      elapsed_ = resume_at;
      if (finished_ >= target_) done_ = true;
      if (detector_active_ && !done_) {
        // The pause is global: silence during recovery is not evidence.
        suspected_.clear_all();
        detector_.reset(resume_at);
        arm_heartbeats(resume_at);
      }
      return resume_at;
    }

    // ---- state ----

    const RuntimeOptions& opts_;
    const Dag& dag_;
    DPX10App<T>& app_;

    PlaceManager pm_;
    net::TrafficBook book_;
    Xoshiro256 rng_;
    net::FaultInjector injector_;
    obs::Tracer tracer_;
    obs::FlightRecorder flight_;
    // Hoisted observability flags: tested in hot paths, set once in the ctor.
    bool events_on_ = false;   ///< tracer shard collects runtime events
    bool flight_on_ = false;   ///< flight ring records
    bool tax_on_ = false;      ///< framework-tax attribution
    bool status_on_ = false;   ///< periodic status-file export
    bool flight_poll_ = false; ///< poll for on-demand flight dumps
    Stopwatch status_watch_;   ///< wall clock between status publishes
    std::uint64_t status_seq_ = 0;
    HeartbeatDetector detector_;
    SuspicionSet suspected_;
    bool detector_active_ = false;
    std::vector<std::uint8_t> crashed_;   ///< crashed but maybe undeclared
    std::vector<double> crash_time_;
    std::unique_ptr<DistArray<T>> array_;
    std::unique_ptr<mem::MemoryGovernor<T>> gov_;
    bool gov_spill_ = false;
    std::vector<PlaceSim> places_;
    sim::EventQueue queue_;

    std::vector<FaultPlan> faults_;
    std::vector<std::int64_t> fault_thresholds_;
    std::size_t next_fault_ = 0;
    std::vector<FaultPlan> event_faults_;
    std::size_t next_event_fault_ = 0;
    std::int64_t events_processed_ = 0;

    SnapshotVault<T> vault_;
    std::int64_t snapshot_step_ = 0;   // 0 = policy disabled
    std::int64_t next_snapshot_at_ = 0;
    std::uint64_t snapshots_taken_ = 0;
    double snapshot_seconds_ = 0.0;

    std::uint64_t arm_counter_ = 0;
    double now_ = 0.0;
    double elapsed_ = 0.0;
    std::int64_t target_ = 0;
    std::int64_t finished_ = 0;
    std::uint64_t computed_total_ = 0;
    bool done_ = false;

    std::vector<RecoveryRecord> recoveries_;
    std::vector<HealthTransition> transitions_;
    std::int32_t monitor_ = 0;  ///< current holder of the coordinator role
    detail::RecoveryEpoch epoch_;
    std::vector<std::int32_t> fault_batch_;  ///< scratch: deaths sharing an instant

    std::int64_t ckpt_step_ = 0;  // 0 = durable checkpoints disabled
    std::int64_t next_ckpt_at_ = 0;
    std::uint64_t ckpt_seq_ = 0;
    std::uint64_t sim_events_base_ = 0;  ///< events pushed before this process (resume)
    net::TrafficSnapshot traffic_base_;  ///< traffic before this process (resume)

    double next_sample_ = 0.0;
    std::unordered_map<std::int64_t, double> ready_time_;
    std::unordered_map<std::int64_t, std::size_t> open_span_;

    std::vector<VertexId> deps_scratch_;
    std::vector<VertexId> anti_scratch_;
    std::vector<VertexId> sched_scratch_;
    std::vector<Vertex<T>> dep_values_;
    std::vector<std::int64_t> evicted_scratch_;
    std::vector<std::int64_t> pick_scratch_;  ///< ready snapshot for hooks

    /// Scratch for the coalesced gather: one batch round trip per owner.
    struct FetchGroup {
      std::int32_t owner;
      std::size_t reply_payload;
      std::vector<Vertex<T>> entries;
    };
    std::vector<FetchGroup> fetch_groups_;

    /// Scratch for the coalesced publish: one control message per dest.
    struct CtrlGroup {
      std::int32_t dest;
      std::size_t edges;
      double handled;  ///< NIC completion at the destination
    };
    std::vector<CtrlGroup> ctrl_groups_;
  };

  RuntimeOptions opts_;
};

}  // namespace dpx10
