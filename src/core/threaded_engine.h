// ThreadedEngine<T> — real-thread execution of a DPX10 program.
//
// This is the faithful executable analogue of §VI-A/§VI-C: every place gets
// `nthreads` worker threads and a ready list; workers pop schedulable
// vertices, gather dependency values (remote reads go through the
// traffic-accounted net layer and the per-place FIFO cache), run the user's
// compute(), publish the result, and decrement anti-dependency indegrees,
// scheduling vertices whose indegree reaches zero. A FaultPlan kills a
// place mid-run; the engine then performs the paper's recovery (§VI-D)
// while all workers are parked at a pause gate, and resumes on the
// survivors.
//
// Failure detection: with the heartbeat detector active (the default when
// faults or network faults are configured), a FaultPlan only *crashes* the
// place — its workers stop, silently. A monitor thread samples per-place
// worker progress ("beats") on a wall-clock period, suspects a place after
// missed beats, and declares it dead after the confirmation window; only
// the declaration starts recovery, so reports carry a real detection
// latency. The monitor role floats: it lives at the lowest-id surviving
// place, so when the current holder crashes the next survivor adopts the
// (modeled-as-replicated) ledger and declares its predecessor dead like any
// other place — place 0's death is recoverable. The monitor also guards
// against its own starvation: if the monitor place's workers (its liveness
// reference) made no progress either, the sample proves nothing and the
// detector is re-baselined instead — a wall-clock detector must never evict
// a place because the whole process was asleep.
//
// Memory-ordering protocol (the correctness core):
//   writer: cell.value = r;  cell.state.store(Finished, release);
//           antidep.indegree.fetch_sub(1, acq_rel)
//   The final decrement of a vertex's indegree synchronizes with every
//   earlier decrement through the RMW release sequence, so all dependency
//   values happen-before the push that makes the vertex runnable; the
//   ready-deque mutex carries that edge to the consuming worker. Readers
//   therefore never need to spin on state.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apgas/dist_array.h"
#include "apgas/fault.h"
#include "apgas/heartbeat.h"
#include "apgas/place.h"
#include "apgas/snapshot.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/app.h"
#include "core/cache.h"
#include "core/dag.h"
#include "core/engine_common.h"
#include "core/metrics.h"
#include "core/runtime_options.h"
#include "core/scheduling.h"
#include "core/value_traits.h"
#include "mem/governor.h"
#include "net/fault_injector.h"
#include "net/traffic.h"
#include "obs/flight_recorder.h"
#include "obs/status.h"
#include "obs/tracer.h"
#include "obs/watchdog.h"

namespace dpx10 {

template <typename T>
class ThreadedEngine {
 public:
  explicit ThreadedEngine(RuntimeOptions opts) : opts_(std::move(opts)) {
    opts_.validate();
    require(opts_.checkpoint_dir.empty() && opts_.resume_dir.empty(),
            "ThreadedEngine: durable checkpoint/resume requires the "
            "deterministic engine (--engine=sim)");
  }

  /// Runs the application to completion and returns the run report.
  /// Throws DeadPlaceException only when every place has died — any single
  /// death, place 0's included, is recovered (§VI-D plus coordinator
  /// failover).
  RunReport run(const Dag& dag, DPX10App<T>& app) {
    State state(opts_, dag, app);
    return state.run();
  }

 private:
  /// One worker's share of a place's ready list (RuntimeOptions::
  /// queue_shards). A worker pushes and pops its own shard without
  /// contending with siblings; an empty worker scans sibling shards, then
  /// other places under WorkStealing. One shard per place reproduces the
  /// legacy single mutex+deque scheduler.
  struct ReadyShard {
    std::mutex mu;
    std::deque<std::int64_t> ready;
    /// Wall timestamps parallel to `ready` (same pushes/pops, under `mu`),
    /// maintained only while tracing is active — they feed the queue-wait
    /// histogram and the vertex spans' ready time.
    std::deque<double> ready_ts;
    /// Lock-free emptiness hint so shard scans skip idle shards without
    /// taking `mu`; written under `mu`, read without it.
    std::atomic<std::int64_t> size_hint{0};
  };

  struct PlaceRt {
    std::vector<ReadyShard> shards;
    std::atomic<std::uint32_t> push_cursor{0};  ///< round-robin for non-local pushes
    std::atomic<std::int64_t> ready_count{0};   ///< total across shards
    std::mutex cv_mu;
    std::condition_variable cv;
    /// Workers blocked in the idle wait. Pushes skip the notify entirely
    /// while this is zero — on the self-feeding LIFO fast path (a worker
    /// pushing work it will pop right back) the queue never goes through
    /// the condition variable at all.
    std::atomic<std::int32_t> idle_waiters{0};
    StripedVertexCache<T> cache;
    AtomicPlaceStats stats;
    /// Liveness counter bumped by every worker loop iteration; the monitor
    /// samples it — no progress across a detection window means silence.
    std::atomic<std::uint64_t> beats{0};
    /// Fail-stop flag, set by a FaultPlan crossing; workers exit on sight.
    /// Also the monitor's confirmation gate: a completed silence window
    /// only declares death if the place really fail-stopped.
    std::atomic<bool> crashed{false};
    double crash_wall = 0.0;  ///< written before crashed.store(release)

    PlaceRt(CachePolicy policy, std::size_t cache_capacity, std::size_t stripes,
            std::size_t nshards)
        : shards(nshards), cache(policy, cache_capacity, stripes) {}
  };

  class State {
   public:
    State(const RuntimeOptions& opts, const Dag& dag, DPX10App<T>& app)
        : opts_(opts),
          dag_(dag),
          app_(app),
          pm_(opts.nplaces),
          book_(opts.nplaces),
          injector_(opts.netfaults, mix64(opts.seed, 0x4e4654ULL)),
          tracer_(opts.trace_level,
                  static_cast<std::size_t>(opts.nplaces) *
                          static_cast<std::size_t>(opts.nthreads) +
                      1,
                  false, opts.framework_tax),
          flight_(static_cast<std::size_t>(opts.nplaces) *
                          static_cast<std::size_t>(opts.nthreads) +
                      1,
                  static_cast<std::size_t>(opts.flight_events)),
          suspected_(opts.nplaces),
          array_(std::make_unique<DistArray<T>>(dag.domain(), opts.dist,
                                                PlaceGroup::dense(opts.nplaces))) {
      // Resolve the sharding knobs: 0 means one shard/stripe per worker
      // thread; queue_shards beyond nthreads would leave shards no worker
      // ever owns, so it is clamped.
      nshards_ = opts.queue_shards == 0
                     ? static_cast<std::size_t>(opts.nthreads)
                     : static_cast<std::size_t>(std::min(opts.queue_shards, opts.nthreads));
      const std::size_t nstripes = opts.cache_stripes == 0
                                       ? static_cast<std::size_t>(opts.nthreads)
                                       : static_cast<std::size_t>(opts.cache_stripes);
      places_.reserve(static_cast<std::size_t>(opts_.nplaces));
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        places_.push_back(std::make_unique<PlaceRt>(opts_.cache_policy, opts_.cache_capacity,
                                                    nstripes, nshards_));
      }
      if (opts_.memory.retirement != mem::RetirementMode::Off) {
        gov_ = std::make_unique<mem::MemoryGovernor<T>>(opts_.memory,
                                                        opts_.nplaces);
        gov_spill_ = gov_->spill_on();
      }
      faults_ = opts_.faults;  // validate() already sorted by at_fraction
      detector_active_ =
          opts_.heartbeat.enabled && (!faults_.empty() || injector_.enabled());
      if (tracer_.counters_on() && injector_.enabled()) {
        injector_.set_observer(&tracer_);
      }
      events_on_ = tracer_.spans_on();
      flight_on_ = flight_.enabled();
      tax_on_ = tracer_.tax_on();
      status_on_ = !opts_.status_file.empty();
      flight_poll_ = flight_on_ && !opts_.flight_dump.empty();
      obs_shard_ = static_cast<std::size_t>(opts_.nplaces) *
                   static_cast<std::size_t>(opts_.nthreads);
    }

    RunReport run() {
      detail::InitSummary init = detail::initialize_cells(*array_, dag_, app_);
      if (gov_) gov_->rebuild(*array_, dag_);
      target_ = static_cast<std::int64_t>(init.to_compute);
      require(target_ > 0, "ThreadedEngine: nothing to compute (all cells pre-finished)");
      detail::seed_ready(*array_, [&](std::int32_t place, std::int64_t idx) {
        seed_push(place, idx, 0.0);
      });
      // Arm the fault thresholds on the finished counter. Fraction-based
      // plans scale with the target; event-based plans (dpx10check's crash
      // sweep) map the sim's "Nth event" to "N vertices finished" — the
      // closest deterministic progress point real threads have. The merged
      // list must be re-sorted: validate() ordered each kind internally,
      // but a fraction threshold can land between two event thresholds.
      std::vector<std::pair<std::int64_t, FaultPlan>> armed;
      armed.reserve(faults_.size());
      for (const FaultPlan& f : faults_) {
        const std::int64_t threshold =
            f.event_based()
                ? std::max<std::int64_t>(std::int64_t{1}, f.at_event)
                : static_cast<std::int64_t>(f.at_fraction *
                                            static_cast<double>(target_)) + 1;
        armed.emplace_back(threshold, f);
      }
      std::stable_sort(armed.begin(), armed.end(),
                       [](const auto& a, const auto& b) { return a.first < b.first; });
      faults_.clear();
      for (const auto& [threshold, fault] : armed) {
        fault_thresholds_.push_back(threshold);
        faults_.push_back(fault);
      }
      if (opts_.recovery == RecoveryPolicy::PeriodicSnapshot) {
        snapshot_step_ = static_cast<std::int64_t>(
            opts_.snapshot_interval * static_cast<double>(target_));
        if (snapshot_step_ < 1) snapshot_step_ = 1;
        next_snapshot_at_.store(snapshot_step_, std::memory_order_relaxed);
      }

      const std::int32_t nworkers = opts_.nplaces * opts_.nthreads;
      active_workers_.store(nworkers, std::memory_order_relaxed);
      stopwatch_.reset();

      std::vector<std::thread> workers;
      workers.reserve(static_cast<std::size_t>(nworkers));
      for (std::int32_t w = 0; w < nworkers; ++w) {
        workers.emplace_back([this, w] { worker_main(w); });
      }
      std::thread monitor;
      if (detector_active_) monitor = std::thread([this] { monitor_main(); });
      std::thread observer;
      if (tracer_.counters_on() || status_on_ || flight_poll_) {
        observer = std::thread([this] { obs_main(); });
      }
      for (std::thread& t : workers) t.join();
      if (monitor.joinable()) monitor.join();
      if (observer.joinable()) observer.join();

      // Post-mortem artifacts first: a failed run still leaves the flight
      // ring and a final status snapshot behind for the operator.
      if (flight_poll_ && failure_) dump_flight("failure");
      if (status_on_) publish_status(stopwatch_.seconds());
      if (failure_) std::rethrow_exception(failure_);

      RunReport report;
      report.app_name = std::string(app_.name());
      report.dag_name = std::string(dag_.name());
      report.vertices = static_cast<std::uint64_t>(dag_.domain().size());
      report.prefinished = init.prefinished;
      report.computed = computed_total_.load(std::memory_order_relaxed);
      report.elapsed_seconds = stopwatch_.seconds();
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        PlaceStats s = places_[static_cast<std::size_t>(p)]->stats.snapshot();
        s.cache_evictions = places_[static_cast<std::size_t>(p)]->cache.evictions();
        if (gov_) {
          const mem::MemAccount acct = gov_->account(p);
          s.retired_cells = acct.retired_cells;
          s.spilled_cells = acct.spilled_cells;
          s.spill_reads = acct.spill_reads;
          s.live_cells_peak = acct.live_cells_peak;
          s.live_bytes_peak = acct.live_bytes_peak;
        }
        report.places.push_back(s);
      }
      report.recoveries = recoveries_;
      for (const RecoveryRecord& r : recoveries_) {
        report.recovery_seconds += r.recovery_seconds;
        report.detection_seconds += r.detected_after_s;
      }
      report.snapshots_taken = snapshots_taken_;
      report.snapshot_seconds = snapshot_seconds_;
      report.traffic = book_.total();
      if (tracer_.active()) {
        obs::Tracer::Collected c = tracer_.collect(obs::TraceMeta{
            std::string(app_.name()), std::string(dag_.name()), "threaded",
            dag_.height(), dag_.width(), opts_.nplaces, opts_.nthreads,
            report.elapsed_seconds, opts_.tile_size});
        if (tracer_.spans_on()) {
          report.trace_log = std::make_shared<obs::TraceLog>(std::move(c.log));
        }
        if (tracer_.counters_on()) {
          report.metrics = std::make_shared<obs::MetricsReport>(std::move(c.metrics));
        }
        if (tracer_.tax_on()) {
          report.framework_tax = std::make_shared<obs::FrameworkTax>(c.tax);
        }
      }

      app_.app_finished(make_result_view());
      return report;
    }

    /// View handed to app_finished(): in spill mode retired payloads are
    /// served back out of the owner place's spill store.
    DagView<T> make_result_view() const {
      if (!gov_spill_) return DagView<T>(*array_);
      const DistArray<T>* array = array_.get();
      mem::MemoryGovernor<T>* gov = gov_.get();
      return DagView<T>(*array_, [array, gov](std::int64_t idx, T& out) {
        const std::int32_t owner = array->owner_place(array->domain().delinearize(idx));
        return gov->spill_read(owner, idx, out);
      });
    }

   private:
    // ---- worker loop -----------------------------------------------------

    void worker_main(std::int32_t worker) {
      const std::int32_t my_place = worker / opts_.nthreads;
      const std::size_t my_shard =
          static_cast<std::size_t>(worker % opts_.nthreads) % nshards_;
      set_log_place(my_place);
      PlaceRt& my_pr = *places_[static_cast<std::size_t>(my_place)];
      Xoshiro256 rng(mix64(opts_.seed, static_cast<std::uint64_t>(worker) + 1));
      std::vector<VertexId> deps_scratch;
      std::vector<VertexId> anti_scratch;
      std::vector<VertexId> sched_scratch;
      std::vector<Vertex<T>> dep_values;
      std::vector<FetchGroup> fetch_groups;
      std::vector<CtrlGroup> ctrl_groups;
      std::vector<std::int64_t> retired_scratch;
      // Wedge-detector state, worker-local: the finished count last seen
      // while globally quiescent and the wall time it was first seen.
      std::int64_t wedge_seen_finished = -1;
      double wedge_since = 0.0;

      while (true) {
        if (done_.load(std::memory_order_acquire)) break;
        if (pause_requests_.load(std::memory_order_acquire) > 0) {
          park();
          continue;
        }
        if (my_pr.crashed.load(std::memory_order_acquire)) break;  // fail-stop
        if (!pm_alive(my_place)) break;  // our place died during recovery
        my_pr.beats.fetch_add(1, std::memory_order_relaxed);

        // Own shard first (uncontended in the common case), then sibling
        // shards, then — under WorkStealing — other places. executing_ is
        // raised BEFORE the pop so the wedge detector can never observe
        // "no ready work and nothing executing" while a popped vertex is
        // in a worker's hand but not yet counted.
        executing_.fetch_add(1, std::memory_order_acq_rel);
        std::int64_t idx = -1;
        double ready_at = 0.0;
        for (std::size_t s = 0; s < nshards_ && idx < 0; ++s) {
          ReadyShard& shard = my_pr.shards[(my_shard + s) % nshards_];
          if (shard.size_hint.load(std::memory_order_relaxed) == 0) continue;
          // Sibling shards are popped from the end the owning worker is not
          // working — the same steal-the-oldest rule as cross-place steals.
          idx = pop_shard(my_pr, shard, /*owner_end=*/s == 0, ready_at);
        }
        if (idx < 0 && opts_.scheduling == Scheduling::WorkStealing) {
          idx = try_steal(my_place, rng, ready_at);
        }
        if (idx < 0) {
          executing_.fetch_sub(1, std::memory_order_acq_rel);
          {
            std::unique_lock<std::mutex> lk(my_pr.cv_mu);
            if (my_pr.ready_count.load(std::memory_order_acquire) == 0) {
              my_pr.idle_waiters.fetch_add(1, std::memory_order_seq_cst);
              // Re-check after announcing the wait: a push between the first
              // load and the increment would otherwise skip its notify and
              // strand us for the full timeout.
              if (my_pr.ready_count.load(std::memory_order_seq_cst) == 0) {
                my_pr.cv.wait_for(lk, std::chrono::milliseconds(1));
              }
              my_pr.idle_waiters.fetch_sub(1, std::memory_order_seq_cst);
            }
          }
          maybe_report_wedge(wedge_seen_finished, wedge_since);
          continue;
        }
        check::sync_point(check::SyncPoint::QueuePop, my_place);
        wedge_seen_finished = -1;
        execute(idx, my_place, worker, ready_at, rng, deps_scratch, anti_scratch,
                sched_scratch, dep_values, fetch_groups, ctrl_groups, retired_scratch);
        executing_.fetch_sub(1, std::memory_order_acq_rel);
      }

      std::lock_guard<std::mutex> lk(pause_mu_);
      active_workers_.fetch_sub(1, std::memory_order_acq_rel);
      pause_cv_.notify_all();
    }

    bool pm_alive(std::int32_t place) {
      std::lock_guard<std::mutex> lk(pm_mu_);
      return pm_.is_alive(place);
    }

    /// Wedge (quiescence) detector, run by idle workers: if NO vertex is
    /// ready anywhere, NO vertex is executing, no pause/recovery is in
    /// flight, no crashed-but-undeclared place exists (the monitor owns
    /// that case), and the finished count stays frozen for a full
    /// wedge_timeout_s window, the DAG can never finish — a decrement was
    /// lost (engine bug, broken custom pattern, or dpx10check's planted
    /// DropDecrement mutation). Fail loudly instead of hanging the run.
    /// Real progress (a finished-count move, a pause) resets the window.
    void maybe_report_wedge(std::int64_t& seen_finished, double& since) {
      if (opts_.wedge_timeout_s <= 0.0) return;
      if (done_.load(std::memory_order_acquire)) return;
      if (pause_requests_.load(std::memory_order_acquire) > 0 ||
          coordinating_.load(std::memory_order_acquire) > 0) {
        seen_finished = -1;
        return;
      }
      if (executing_.load(std::memory_order_acquire) != 0) {
        // In-flight work: quiescence cannot be witnessed THIS check, but do
        // not reset the window — idle siblings raise executing_ around every
        // (empty) pop probe, so with many workers a transient nonzero is
        // near-certain somewhere in any multi-second span and a reset here
        // would starve the detector forever. Skipping is safe: if the
        // in-flight work is real, its completion moves finished_, and the
        // acquire load above orders that move before our next fin read.
        return;
      }
      std::int64_t total_ready = 0;
      bool any_crashed = false;
      for (const auto& p : places_) {
        total_ready += p->ready_count.load(std::memory_order_acquire);
        if (p->crashed.load(std::memory_order_acquire)) any_crashed = true;
      }
      if (total_ready != 0 || any_crashed) {
        seen_finished = -1;
        return;
      }
      const std::int64_t fin = finished_.load(std::memory_order_acquire);
      const double now = stopwatch_.seconds();
      if (fin != seen_finished) {
        seen_finished = fin;
        since = now;
        return;
      }
      if (now - since < opts_.wedge_timeout_s) return;
      std::lock_guard<std::mutex> lk(recovery_mu_);
      if (!failure_) {
        failure_ = std::make_exception_ptr(InternalError(
            "ThreadedEngine: scheduler wedged — " + std::to_string(target_ - fin) +
            " vertices unfinished with no ready or executing work for " +
            std::to_string(opts_.wedge_timeout_s) +
            "s (an anti-dependency decrement was lost or the DAG is cyclic)"
            " [stall class: " +
            std::string(obs::stall_class_name(obs::StallClass::Wedged)) + "]"));
        rt_event_shared(obs::RtEventKind::WedgeFire, -1, target_ - fin, fin,
                        now, /*have_recovery_mu=*/true);
        if (flight_poll_) dump_flight("wedge");
      }
      announce_done();
    }

    /// Pops one vertex from `shard`. `owner_end` pops the end the shard's
    /// owning worker works (per ready_order); otherwise the opposite end —
    /// classic steal-the-oldest under LIFO execution, and vice versa.
    std::int64_t pop_shard(PlaceRt& pr, ReadyShard& shard, bool owner_end,
                           double& ready_at) {
      const bool track = tracer_.active();
      std::lock_guard<std::mutex> lk(shard.mu);
      if (shard.ready.empty()) return -1;
      std::int64_t idx;
      const bool from_back = (opts_.ready_order == ReadyOrder::Lifo) == owner_end;
      if (from_back) {
        idx = shard.ready.back();
        shard.ready.pop_back();
        if (track) {
          ready_at = shard.ready_ts.back();
          shard.ready_ts.pop_back();
        }
      } else {
        idx = shard.ready.front();
        shard.ready.pop_front();
        if (track) {
          ready_at = shard.ready_ts.front();
          shard.ready_ts.pop_front();
        }
      }
      shard.size_hint.fetch_sub(1, std::memory_order_relaxed);
      pr.ready_count.fetch_sub(1, std::memory_order_release);
      return idx;
    }

    std::int64_t try_steal(std::int32_t thief, Xoshiro256& rng, double& ready_at) {
      const std::int32_t n = opts_.nplaces;
      // One random probe plus a linear sweep: cheap when everyone is busy,
      // thorough when work is scarce.
      std::int32_t start = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(n)));
      for (std::int32_t step = 0; step < n; ++step) {
        std::int32_t victim = (start + step) % n;
        if (victim == thief || !pm_alive(victim)) continue;
        PlaceRt& vp = *places_[static_cast<std::size_t>(victim)];
        // A crashed place's backlog is about to be re-seeded by recovery; a
        // suspected place is too slow to answer the steal handshake.
        if (vp.crashed.load(std::memory_order_acquire)) continue;
        if (detector_active_ && suspected_.test(victim)) continue;
        if (vp.ready_count.load(std::memory_order_acquire) < 2) continue;  // leave lone
                                                                           // vertices local
        for (ReadyShard& shard : vp.shards) {
          if (shard.size_hint.load(std::memory_order_relaxed) == 0) continue;
          const std::int64_t idx = pop_shard(vp, shard, /*owner_end=*/false, ready_at);
          if (idx < 0) continue;
          book_.record(victim, thief, net::MessageKind::ReadyTransfer,
                       net::kControlPayloadBytes);
          places_[static_cast<std::size_t>(thief)]->stats.steals.fetch_add(
              1, std::memory_order_relaxed);
          return idx;
        }
      }
      return -1;
    }

    /// Routes a ready vertex to one of `place`'s shards: a worker of that
    /// place pushes its own shard (the local LIFO fast path); pushes from
    /// other places round-robin across shards to spread the load.
    void push_ready(std::int32_t place, std::int64_t idx, std::int32_t pusher_place,
                    std::int32_t pusher_local) {
      check::sync_point(check::SyncPoint::QueuePush, place);
      PlaceRt& pr = *places_[static_cast<std::size_t>(place)];
      const std::size_t s =
          (pusher_place == place && pusher_local >= 0)
              ? static_cast<std::size_t>(pusher_local) % nshards_
              : pr.push_cursor.fetch_add(1, std::memory_order_relaxed) % nshards_;
      ReadyShard& shard = pr.shards[s];
      const double ts = tracer_.active() ? stopwatch_.seconds() : 0.0;
      {
        std::lock_guard<std::mutex> lk(shard.mu);
        shard.ready.push_back(idx);
        if (tracer_.active()) shard.ready_ts.push_back(ts);
        shard.size_hint.fetch_add(1, std::memory_order_relaxed);
        pr.ready_count.fetch_add(1, std::memory_order_seq_cst);
      }
      if (pr.idle_waiters.load(std::memory_order_seq_cst) > 0) pr.cv.notify_one();
    }

    /// Seeding path (startup and recovery): no pushing worker, workers are
    /// not running — distribute round-robin with an explicit timestamp.
    void seed_push(std::int32_t place, std::int64_t idx, double ts) {
      PlaceRt& pr = *places_[static_cast<std::size_t>(place)];
      ReadyShard& shard =
          pr.shards[pr.push_cursor.fetch_add(1, std::memory_order_relaxed) % nshards_];
      std::lock_guard<std::mutex> lk(shard.mu);
      shard.ready.push_back(idx);
      if (tracer_.active()) shard.ready_ts.push_back(ts);
      shard.size_hint.fetch_add(1, std::memory_order_relaxed);
      pr.ready_count.fetch_add(1, std::memory_order_release);
    }

    // ---- vertex execution ------------------------------------------------

    /// Dependency read. Plain cell read, except in spill mode: there a
    /// pressure spill may retire a cell before all its consumers have read
    /// it, so every read goes through the governor (owner-place lock,
    /// transparent restore from the spill store).
    void read_dep_value(const DistArray<T>& array, VertexId d, T& out) {
      if (gov_spill_) {
        gov_->read(array, array.domain().linearize(d), out);
      } else {
        out = array.cell(d).value;
      }
    }

    /// Scratch for the coalesced gather: one batch round trip per owner.
    struct FetchGroup {
      std::int32_t owner;
      std::size_t count;
      std::size_t reply_payload;
    };
    /// Scratch for the coalesced publish: one control message per dest.
    struct CtrlGroup {
      std::int32_t dest;
      std::size_t edges;
    };

    void execute(std::int64_t idx, std::int32_t place, std::int32_t worker,
                 double ready_at, Xoshiro256& rng,
                 std::vector<VertexId>& deps_scratch, std::vector<VertexId>& anti_scratch,
                 std::vector<VertexId>& sched_scratch, std::vector<Vertex<T>>& dep_values,
                 std::vector<FetchGroup>& fetch_groups, std::vector<CtrlGroup>& ctrl_groups,
                 std::vector<std::int64_t>& retired_scratch) {
      DistArray<T>& array = *array_;
      const DagDomain& domain = array.domain();
      const VertexId id = domain.delinearize(idx);
      PlaceRt& pr = *places_[static_cast<std::size_t>(place)];
      const bool counters = tracer_.counters_on();
      const bool spans = tracer_.spans_on();
      const bool tax = tax_on_;
      obs::Tracer::Shard* sh =
          (counters || spans || tax)
              ? &tracer_.shard(static_cast<std::size_t>(worker))
              : nullptr;
      const double t_start = sh != nullptr ? stopwatch_.seconds() : 0.0;

      deps_scratch.clear();
      dag_.dependencies(id, deps_scratch);
      dep_values.clear();
      const double t_deps = tax ? stopwatch_.seconds() : 0.0;
      std::uint64_t local_reads = 0, hits = 0, fetches = 0, batches = 0;
      // Shared memory cannot actually lose a read, so the unreliable
      // network is accounted, not suffered: each miss (or, under
      // coalescing, each owner batch) replays the retry protocol against
      // the injector and records the retransmit traffic and counters a
      // lossy link would have cost — a timeout retransmits the whole
      // batch. Never blocks — a sleeping worker would stall the recovery
      // pause gate.
      const auto lossy_fetch = [&](std::int32_t owner, net::MessageKind req_kind,
                                   std::size_t req_payload) {
        if (!injector_.enabled()) return;
        const std::uint32_t retries =
            detail::count_fetch_retries(injector_, opts_.retry, place, owner);
        if (counters) sh->fetch_retries.record(static_cast<double>(retries));
        if (retries == 0) return;
        for (std::uint32_t r = 0; r < retries; ++r) {
          book_.record(place, owner, req_kind, req_payload);
        }
        pr.stats.fetch_retries.fetch_add(retries, std::memory_order_relaxed);
        pr.stats.fetch_timeouts.fetch_add(retries, std::memory_order_relaxed);
        pr.stats.net_drops.fetch_add(retries, std::memory_order_relaxed);
        if (flight_on_) {
          flight_.record_fast(static_cast<std::size_t>(worker),
                              obs::RtEventKind::MessageDrop, place, owner,
                              static_cast<std::int64_t>(retries),
                              stopwatch_.seconds());
        }
      };
      // The cache stripe lock guards only the get/put itself — the cell
      // value read and the traffic-book records happen outside it.
      std::vector<FetchGroup>* groups = opts_.coalescing ? &fetch_groups : nullptr;
      if (groups != nullptr) groups->clear();
      for (VertexId d : deps_scratch) {
        const std::int32_t owner = array.owner_place(d);
        T value;
        if (owner == place) {
          read_dep_value(array, d, value);
          ++local_reads;
        } else if (opts_.cache_capacity != 0 &&
                   (check::sync_point(check::SyncPoint::CacheGet, place),
                    pr.cache.get(d, value))) {
          ++hits;
        } else {
          read_dep_value(array, d, value);
          ++fetches;
          if (groups != nullptr) {
            // Coalesced: defer the wire accounting to one batch per owner.
            FetchGroup* g = nullptr;
            for (FetchGroup& fg : *groups) {
              if (fg.owner == owner) { g = &fg; break; }
            }
            if (g == nullptr) {
              groups->push_back(FetchGroup{owner, 0, 0});
              g = &groups->back();
            }
            ++g->count;
            g->reply_payload += value_wire_bytes(value);
          } else {
            book_.record(place, owner, net::MessageKind::FetchRequest,
                         net::kControlPayloadBytes);
            book_.record(owner, place, net::MessageKind::FetchReply,
                         value_wire_bytes(value));
            lossy_fetch(owner, net::MessageKind::FetchRequest, net::kControlPayloadBytes);
          }
          if (opts_.cache_capacity != 0) {
            check::sync_point(check::SyncPoint::CachePut, place);
            pr.cache.put(d, value);
          }
        }
        dep_values.push_back(Vertex<T>{d, value});
      }
      if (groups != nullptr) {
        for (const FetchGroup& g : *groups) {
          const std::size_t req_payload = net::batch_fetch_request_payload(g.count);
          book_.record(place, g.owner, net::MessageKind::BatchFetchRequest, req_payload);
          book_.record(g.owner, place, net::MessageKind::BatchFetchReply, g.reply_payload);
          lossy_fetch(g.owner, net::MessageKind::BatchFetchRequest, req_payload);
          ++batches;
          check::sync_event(check::SyncPoint::CoalesceFlush, place, g.owner,
                            static_cast<std::int64_t>(g.count));
          if (events_on_ || flight_on_) {
            rt_event_worker(sh, worker, obs::RtEventKind::BatchFetchFlush,
                            place, g.owner, static_cast<std::int64_t>(g.count),
                            stopwatch_.seconds());
          }
        }
      }
      pr.stats.local_dep_reads.fetch_add(local_reads, std::memory_order_relaxed);
      pr.stats.cache_hits.fetch_add(hits, std::memory_order_relaxed);
      pr.stats.remote_fetches.fetch_add(fetches, std::memory_order_relaxed);
      if (batches > 0) pr.stats.fetch_batches.fetch_add(batches, std::memory_order_relaxed);
      const double t_data = sh != nullptr ? stopwatch_.seconds() : 0.0;

      T result = app_.compute(id.i, id.j, std::span<const Vertex<T>>(dep_values));
      const double t_compute = tax ? stopwatch_.seconds() : 0.0;

      Cell<T>& cell = array.cell(idx);
      result = detail::publish_value(cell, result, idx);
      const std::int32_t owner = array.owner_place(id);
      if (owner != place) {
        book_.record(place, owner, net::MessageKind::ResultWriteback, value_wire_bytes(result));
        pr.stats.executed_nonlocal.fetch_add(1, std::memory_order_relaxed);
      }
      check::sync_point(check::SyncPoint::Publish, place);
      cell.store_state(CellState::Finished, std::memory_order_release);
      pr.stats.computed.fetch_add(1, std::memory_order_relaxed);
      computed_total_.fetch_add(1, std::memory_order_relaxed);

      // Memory governor. on_publish MUST precede the indegree decrements
      // below: once a consumer becomes runnable it may finish and call
      // on_consumed for this vertex from another worker, and the refcount
      // retirement would then release accounting this publish had not booked
      // yet. on_consumed for our own dependencies is ordered by the acq_rel
      // refcount chain itself, so it can ride along here. Retired payloads
      // must stop being served from the per-place caches.
      if (gov_) {
        retired_scratch.clear();
        gov_->on_publish(array, idx, &retired_scratch);
        for (const Vertex<T>& v : dep_values) {
          if (gov_->on_consumed(array, domain.linearize(v.id))) {
            retired_scratch.push_back(domain.linearize(v.id));
          }
        }
        for (std::int64_t r : retired_scratch) {
          const VertexId rid = domain.delinearize(r);
          for (auto& p : places_) p->cache.erase(rid);
          check::sync_event(gov_spill_ ? check::SyncPoint::GovernorSpill
                                       : check::SyncPoint::GovernorRetire,
                            place, r, 0);
        }
        if ((events_on_ || flight_on_) && !retired_scratch.empty()) {
          const double t = stopwatch_.seconds();
          const obs::RtEventKind k = gov_spill_ ? obs::RtEventKind::GovSpill
                                                : obs::RtEventKind::GovRetire;
          for (std::int64_t r : retired_scratch) {
            rt_event_worker(sh, worker, k, place, r, 0, t);
          }
        }
      }
      const double t_alloc = tax ? stopwatch_.seconds() : 0.0;

      anti_scratch.clear();
      dag_.anti_dependencies(id, anti_scratch);
      if (opts_.coalescing) {
        // Coalesced publish: ONE BatchIndegreeControl per destination place,
        // carrying every decrement bound there plus one copy of the finished
        // value — which seeds the destination's cache, so consumers there
        // hit instead of fetching this vertex back. The seed must land
        // before the decrements release the consumers.
        ctrl_groups.clear();
        for (VertexId a : anti_scratch) {
          Cell<T>& ac = array.cell(a);
          if (ac.load_state(std::memory_order_relaxed) == CellState::Prefinished) continue;
          if (check::bug_drops_decrement(idx, domain.linearize(a))) continue;
          const std::int32_t a_owner = array.owner_place(a);
          if (a_owner == place) continue;
          CtrlGroup* g = nullptr;
          for (CtrlGroup& cg : ctrl_groups) {
            if (cg.dest == a_owner) { g = &cg; break; }
          }
          if (g == nullptr) {
            ctrl_groups.push_back(CtrlGroup{a_owner, 0});
            g = &ctrl_groups.back();
          }
          ++g->edges;
        }
        std::uint64_t ctrl_edges = 0;
        for (const CtrlGroup& g : ctrl_groups) {
          book_.record(place, g.dest, net::MessageKind::BatchIndegreeControl,
                       net::batch_control_payload(g.edges, value_wire_bytes(result)));
          ctrl_edges += g.edges;
          if (opts_.cache_capacity != 0) {
            places_[static_cast<std::size_t>(g.dest)]->cache.put(id, result);
          }
        }
        if (!ctrl_groups.empty()) {
          pr.stats.control_msgs_out.fetch_add(ctrl_edges, std::memory_order_relaxed);
          pr.stats.control_batches.fetch_add(ctrl_groups.size(), std::memory_order_relaxed);
          for (const CtrlGroup& g : ctrl_groups) {
            check::sync_event(check::SyncPoint::CoalesceFlush, place, g.dest,
                              static_cast<std::int64_t>(g.edges));
          }
          if (events_on_ || flight_on_) {
            const double t = stopwatch_.seconds();
            for (const CtrlGroup& g : ctrl_groups) {
              rt_event_worker(sh, worker, obs::RtEventKind::BatchControlFlush,
                              place, g.dest, static_cast<std::int64_t>(g.edges),
                              t);
            }
          }
        }
      }
      for (VertexId a : anti_scratch) {
        Cell<T>& ac = array.cell(a);
        if (ac.load_state(std::memory_order_relaxed) == CellState::Prefinished) continue;
        // Planted DropDecrement bug (dpx10check self-test): the edge's
        // decrement vanishes; the wedge detector must convert the
        // resulting hang into a diagnosable InternalError.
        if (check::bug_drops_decrement(idx, domain.linearize(a))) continue;
        check::sync_point(check::SyncPoint::Decrement, place);
        const std::int32_t a_owner = array.owner_place(a);
        if (a_owner != place && !opts_.coalescing) {
          book_.record(place, a_owner, net::MessageKind::IndegreeControl,
                       net::kControlPayloadBytes);
          pr.stats.control_msgs_out.fetch_add(1, std::memory_order_relaxed);
        }
        if (ac.indegree.fetch_sub(1, std::memory_order_acq_rel) - 1 == 0) {
          std::int32_t slot = choose_target_slot(
              opts_.scheduling, a, dag_, array.dist(), sizeof(T), rng, sched_scratch,
              detector_active_ ? &array.group() : nullptr,
              detector_active_ ? &suspected_ : nullptr);
          std::int32_t target = array.group()[slot];
          if (target != a_owner) {
            book_.record(a_owner, target, net::MessageKind::ReadyTransfer,
                         net::kControlPayloadBytes);
          }
          push_ready(target, domain.linearize(a), place, worker % opts_.nthreads);
        }
      }

      if (sh != nullptr) {
        const double t_end = stopwatch_.seconds();
        if (counters) {
          if (fetches > 0) sh->fetch_latency_s.record(t_data - t_start);
          sh->compute_s.record(t_end - t_data);
          sh->queue_wait_s.record(std::max(0.0, t_start - ready_at));
        }
        if (spans) {
          // slot = the worker's local id within its place; a run always
          // publishes in the threaded engine (crashes stop workers between
          // vertices, never mid-execute).
          sh->vertices.push_back(obs::VertexSpan{
              idx, place, worker % opts_.nthreads, ready_at, t_start, t_data,
              t_end, /*published=*/true});
        }
        if (tax) {
          sh->tax.dispatch_s += t_deps - t_start;
          sh->tax.cache_s += t_data - t_deps;
          sh->tax.compute_s += t_compute - t_data;
          sh->tax.alloc_s += t_alloc - t_compute;
          sh->tax.publish_s += t_end - t_alloc;
          ++sh->tax.vertices;
          sh->tax.units += app_.compute_cost_units(id);
        }
        if (flight_on_) {
          flight_.record_fast(static_cast<std::size_t>(worker),
                              obs::RtEventKind::VertexDone, place, idx, 0,
                              t_end);
        }
      } else if (flight_on_) {
        // Default (no tracer) path: the only per-vertex observability cost.
        // record_fast is lock-free and tick_time amortizes the clock read
        // over kClockStride vertices — see flight_recorder.h's cost budget.
        const std::size_t shard = static_cast<std::size_t>(worker);
        flight_.record_fast(shard, obs::RtEventKind::VertexDone, place, idx, 0,
                            flight_.tick_time(shard, [this] {
                              return stopwatch_.seconds();
                            }));
      }
      finish_one();
    }

    void finish_one() {
      const std::int64_t fc = finished_.fetch_add(1, std::memory_order_acq_rel) + 1;

      // Fault injection. Oracle mode: the worker that crosses an armed
      // threshold becomes the recovery coordinator, instantly. Detector
      // mode: the place merely crashes — silently — and the monitor thread
      // has to notice before anyone recovers. The CAS loop drains EVERY
      // threshold this step crossed, so a plan with tied thresholds (two
      // places dying at the same instant) yields one batched recovery
      // instead of dropping the tie.
      std::vector<std::int32_t> batch;
      std::size_t f = next_fault_.load(std::memory_order_relaxed);
      while (f < faults_.size() && fc >= fault_thresholds_[f]) {
        if (next_fault_.compare_exchange_strong(f, f + 1, std::memory_order_acq_rel)) {
          if (detector_active_) {
            crash_place(faults_[f].place);
          } else {
            batch.push_back(faults_[f].place);
          }
          f = next_fault_.load(std::memory_order_relaxed);
        }
        // CAS failure reloaded f: another worker claimed that fault.
      }
      if (!batch.empty()) {
        std::sort(batch.begin(), batch.end());  // place-id tie-break
        coordinate_recovery(batch, /*detected_after=*/0.0);
        return;
      }

      // Periodic snapshots: the worker that crosses the next snapshot
      // threshold coordinates the global capture.
      if (snapshot_step_ > 0) {
        std::int64_t at = next_snapshot_at_.load(std::memory_order_relaxed);
        if (fc >= at && fc < target_ &&
            next_snapshot_at_.compare_exchange_strong(at, at + snapshot_step_,
                                                      std::memory_order_acq_rel)) {
          coordinate_snapshot();
          return;
        }
      }

      if (fc >= target_) {
        // finished_ can only reach target_ when every cell is Finished —
        // recovery resets it below target_ whenever work was lost.
        announce_done();
      }
    }

    void announce_done() {
      done_.store(true, std::memory_order_release);
      for (auto& p : places_) p->cv.notify_all();
      pause_cv_.notify_all();
    }

    // ---- pause gate and recovery ------------------------------------------

    void park() {
      std::unique_lock<std::mutex> lk(pause_mu_);
      ++parked_;
      pause_cv_.notify_all();
      pause_cv_.wait(lk, [this] {
        return pause_requests_.load(std::memory_order_acquire) == 0 ||
               done_.load(std::memory_order_acquire);
      });
      --parked_;
    }

    // A coordinator is a worker that crossed a fault threshold (oracle
    // mode), or the monitor thread declaring a death (detector mode).
    // Should two thresholds be crossed near-simultaneously, both workers
    // coordinate: neither parks (hence the gate below waits for all workers
    // *except* the worker coordinators), pause_requests_ stays positive
    // until the last one finishes, and recovery_mu_ serializes the actual
    // rebuilds. The monitor is NOT a worker, so it must not count itself in
    // coordinating_ — doing so would leave the gate waiting for one worker
    // that does not exist.
    void coordinate_recovery(const std::vector<std::int32_t>& batch,
                             double detected_after,
                             bool worker_coordinator = true) {
      const double started_at = stopwatch_.seconds();

      // Fired BEFORE the pause gate engages: a barrier hook that blocks
      // workers until it sees this event must be released before we start
      // waiting for those workers to park, or the pause never completes.
      check::sync_event(check::SyncPoint::RecoveryEpoch, batch.front(),
                        static_cast<std::int64_t>(batch.size()), 0);

      // Nested-recovery bookkeeping: if another coordinator is already in
      // flight when this one arrives (tied thresholds claimed by different
      // workers, or a death declared while a rebuild holds recovery_mu_),
      // whichever rebuild runs second is recorded as nested — it restarts
      // recovery over an already-shrunk survivor set.
      const bool nested = recovering_.fetch_add(1, std::memory_order_acq_rel) > 0;

      if (worker_coordinator) coordinating_.fetch_add(1, std::memory_order_acq_rel);
      pause_requests_.fetch_add(1, std::memory_order_acq_rel);
      for (auto& p : places_) p->cv.notify_all();
      {
        std::unique_lock<std::mutex> lk(pause_mu_);
        pause_cv_.wait(lk, [this] {
          return parked_ >= active_workers_.load(std::memory_order_acquire) -
                                coordinating_.load(std::memory_order_acquire) ||
                 done_.load(std::memory_order_acquire);
        });
      }

      {
        std::lock_guard<std::mutex> recovery_lock(recovery_mu_);
        Stopwatch recovery_watch;
        DPX10_INFO << "place " << batch.front()
                   << (batch.size() > 1 ? " (and others)" : "") << " died after "
                   << finished_.load(std::memory_order_relaxed) << " vertices; recovering";

        if (!done_.load(std::memory_order_acquire)) {
          perform_recovery(batch, started_at, detected_after, recovery_watch,
                           nested);
        }
      }

      recovering_.fetch_sub(1, std::memory_order_acq_rel);
      pause_requests_.fetch_sub(1, std::memory_order_acq_rel);
      if (worker_coordinator) coordinating_.fetch_sub(1, std::memory_order_acq_rel);
      {
        std::lock_guard<std::mutex> lk(pause_mu_);
        pause_cv_.notify_all();
      }
      for (auto& p : places_) p->cv.notify_all();
      check::sync_event(check::SyncPoint::RecoveryEpoch, batch.front(),
                        static_cast<std::int64_t>(batch.size()), 1);
    }

    /// Pauses the world and captures a snapshot (coordinator context: the
    /// same pause gate as recovery).
    void coordinate_snapshot() {
      coordinating_.fetch_add(1, std::memory_order_acq_rel);
      pause_requests_.fetch_add(1, std::memory_order_acq_rel);
      for (auto& p : places_) p->cv.notify_all();
      {
        std::unique_lock<std::mutex> lk(pause_mu_);
        pause_cv_.wait(lk, [this] {
          return parked_ >= active_workers_.load(std::memory_order_acquire) -
                                coordinating_.load(std::memory_order_acquire) ||
                 done_.load(std::memory_order_acquire);
        });
      }
      {
        std::lock_guard<std::mutex> recovery_lock(recovery_mu_);
        if (!done_.load(std::memory_order_acquire)) {
          Stopwatch watch;
          if (gov_spill_) {
            // Pin retired payloads into the snapshot from the spill store
            // (the world is paused — single-threaded access is safe).
            const DistArray<T>* array = array_.get();
            mem::MemoryGovernor<T>* gov = gov_.get();
            vault_.capture(*array_, [array, gov](std::int64_t i, T& out) {
              const std::int32_t owner =
                  array->owner_place(array->domain().delinearize(i));
              return gov->spill_read(owner, i, out);
            });
          } else {
            vault_.capture(*array_);
          }
          ++snapshots_taken_;
          snapshot_seconds_ += watch.seconds();
          rt_event_shared(obs::RtEventKind::SnapshotTaken, -1,
                          static_cast<std::int64_t>(snapshots_taken_), 0,
                          stopwatch_.seconds(), /*have_recovery_mu=*/true);
        }
      }
      pause_requests_.fetch_sub(1, std::memory_order_acq_rel);
      coordinating_.fetch_sub(1, std::memory_order_acq_rel);
      {
        std::lock_guard<std::mutex> lk(pause_mu_);
        pause_cv_.notify_all();
      }
      for (auto& p : places_) p->cv.notify_all();
    }

    void perform_recovery(const std::vector<std::int32_t>& batch,
                          double started_at, double detected_after,
                          const Stopwatch& recovery_watch, bool nested) {
      const std::int64_t finished_before = finished_.load(std::memory_order_acquire);
      rt_event_shared(obs::RtEventKind::RecoveryBegin, batch.front(),
                      static_cast<std::int64_t>(batch.size()), nested ? 1 : 0,
                      stopwatch_.seconds(), /*have_recovery_mu=*/true);
      std::vector<std::int32_t> dead;
      {
        std::lock_guard<std::mutex> lk(pm_mu_);
        for (std::int32_t d : batch) {
          if (!pm_.is_alive(d)) continue;  // an earlier pass already took it
          if (pm_.alive_count() <= 1) {
            // This death empties the world: the only fatal case left.
            failure_ = std::make_exception_ptr(DeadPlaceException(d));
            announce_done();
            return;
          }
          pm_.kill(d);
          dead.push_back(d);
        }
      }
      if (dead.empty()) return;
      PlaceGroup survivors = [&] {
        std::lock_guard<std::mutex> lk(pm_mu_);
        return pm_.alive_group();
      }();

      auto fresh = std::make_unique<DistArray<T>>(dag_.domain(), opts_.dist, survivors);
      RecoveryRecord record;
      if (opts_.recovery == RecoveryPolicy::Rebuild) {
        record = detail::rebuild_after_deaths(*array_, dead, opts_.restore, dag_, app_,
                                              *fresh, book_, gov_.get());
      } else {
        // Periodic-snapshot rollback (§VI-D's rejected baseline).
        record.dead_place = dead.front();
        record.dead_places = dead;
        if (vault_.has_snapshot()) {
          vault_.restore(*fresh);
          if (gov_ && !gov_spill_) {
            // Retire-mode snapshots store retired cells state-only; any the
            // remaining work still needs must be recomputed.
            record.resurrected = detail::resurrect_retired(*fresh, dag_);
          }
          detail::recompute_indegrees(*fresh, dag_);
          record.restored = vault_.finished_in_snapshot();
        } else {
          detail::initialize_cells(*fresh, dag_, app_);
        }
        record.lost = static_cast<std::uint64_t>(finished_before) - record.restored;
      }
      array_ = std::move(fresh);

      for (auto& p : places_) {
        for (ReadyShard& shard : p->shards) {
          std::lock_guard<std::mutex> lk(shard.mu);
          shard.ready.clear();
          shard.ready_ts.clear();
          shard.size_hint.store(0, std::memory_order_relaxed);
        }
        p->ready_count.store(0, std::memory_order_release);
        p->cache.clear();
      }
      if (gov_) gov_->rebuild(*array_, dag_);
      const double reseed_ts = tracer_.active() ? stopwatch_.seconds() : 0.0;
      detail::seed_ready(*array_, [&](std::int32_t place, std::int64_t idx) {
        seed_push(place, idx, reseed_ts);
      });
      const std::int64_t now_finished =
          static_cast<std::int64_t>(detail::count_finished(*array_));
      finished_.store(now_finished, std::memory_order_release);

      record.epoch = epoch_.next();  // serialized: caller holds recovery_mu_
      epoch_now_.store(record.epoch, std::memory_order_relaxed);
      record.nested = nested;
      record.started_at = started_at;
      record.recovery_seconds = recovery_watch.seconds();
      record.detected_after_s = detected_after;
      {
        const double t = stopwatch_.seconds();
        if (record.resurrected > 0) {
          rt_event_shared(obs::RtEventKind::GovResurrect, record.dead_place,
                          static_cast<std::int64_t>(record.resurrected), 0, t,
                          /*have_recovery_mu=*/true);
        }
        if (record.restored_spilled > 0) {
          rt_event_shared(obs::RtEventKind::SpillRestore, record.dead_place,
                          static_cast<std::int64_t>(record.restored_spilled), 0,
                          t, /*have_recovery_mu=*/true);
        }
        rt_event_shared(obs::RtEventKind::RecoveryEnd, record.dead_place,
                        record.epoch,
                        static_cast<std::int64_t>(record.restored), t,
                        /*have_recovery_mu=*/true);
      }
      recoveries_.push_back(record);

      // Degenerate but possible: the dead place owned no computed work and
      // the run was already complete — nobody will call finish_one again.
      if (now_finished >= target_) announce_done();
    }

    // ---- failure detection (detector mode) ---------------------------------

    /// Fail-stops a place without telling anyone. Its workers exit on the
    /// next loop iteration; from here on only the monitor's silence
    /// detection can trigger recovery.
    void crash_place(std::int32_t p) {
      PlaceRt& pr = *places_[static_cast<std::size_t>(p)];
      pr.crash_wall = stopwatch_.seconds();
      pr.crashed.store(true, std::memory_order_release);
      pr.cv.notify_all();
      rt_event_shared(obs::RtEventKind::PlaceCrash, p, 0, 0, pr.crash_wall,
                      /*have_recovery_mu=*/false);
    }

    /// Monitor thread: samples every place's beat counter on a wall-clock
    /// period, suspects a place after `suspect_after` consecutive silent
    /// samples, declares it dead `confirm_after` samples later, and only
    /// then coordinates §VI-D recovery — so reports carry a real detection
    /// latency instead of oracle knowledge.
    ///
    /// The monitor role is not pinned to place 0. Its ledger (`seen` /
    /// `silent`) models state replicated along the deterministic successor
    /// chain, so every sample simply re-resolves the role holder: the
    /// lowest-id place that is alive and has not fail-stopped. When the
    /// current holder crashes, the next survivor adopts the ledger
    /// seamlessly and the deposed monitor is swept — suspected, declared,
    /// recovered — exactly like any other place. Only "every place crashed"
    /// remains fatal, and even that waits out the declaration window so the
    /// abort carries honest detection latency.
    ///
    /// Two situations make a sample meaningless, and both re-baseline the
    /// counters instead of advancing them: a pause is in flight (workers
    /// are parked on purpose), or the monitor place's own workers made no
    /// progress (the whole process was starved — a wall-clock detector must
    /// never evict a place because the machine was asleep).
    void monitor_main() {
      const double interval_s = std::max(opts_.heartbeat.interval_s, kMinMonitorInterval);
      const auto interval = std::chrono::duration<double>(interval_s);
      const std::size_t n = places_.size();
      const std::int32_t suspect_after = opts_.heartbeat.suspect_after;
      const std::int32_t declare_after =
          opts_.heartbeat.suspect_after + opts_.heartbeat.confirm_after;
      std::vector<std::uint64_t> seen(n, 0);
      std::vector<std::int32_t> silent(n, 0);
      std::int32_t monitor = 0;
      std::int32_t hopeless = 0;  // samples with no live monitor candidate
      set_log_place(monitor);
      rebaseline(seen, silent);

      while (!done_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(interval);
        if (done_.load(std::memory_order_acquire)) break;

        // Resolve the monitor role: lowest-id alive place that has not
        // fail-stopped. A crashed monitor keeps accruing silence below and
        // is declared by its successor like any other corpse.
        std::int32_t ref = -1;
        for (std::size_t p = 0; p < n; ++p) {
          const auto place = static_cast<std::int32_t>(p);
          if (!pm_alive(place)) continue;
          if (places_[p]->crashed.load(std::memory_order_acquire)) continue;
          ref = place;
          break;
        }
        if (ref < 0) {
          // Every remaining place has crashed: nobody is left to adopt the
          // monitor ledger. Wait out the declaration window, then abort.
          if (++hopeless >= declare_after) {
            std::lock_guard<std::mutex> lk(recovery_mu_);
            if (!failure_) {
              std::int32_t lowest = 0;
              std::lock_guard<std::mutex> pm_lk(pm_mu_);
              for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
                if (pm_.is_alive(p)) { lowest = p; break; }
              }
              failure_ = std::make_exception_ptr(DeadPlaceException(lowest));
            }
            announce_done();
            break;
          }
          continue;
        }
        hopeless = 0;
        if (ref != monitor) {
          monitor = ref;
          set_log_place(monitor);  // failover: the successor now logs
        }

        if (pause_requests_.load(std::memory_order_acquire) > 0) {
          rebaseline(seen, silent);
          continue;
        }
        const std::uint64_t mon_now =
            places_[static_cast<std::size_t>(monitor)]->beats.load(std::memory_order_relaxed);
        if (mon_now == seen[static_cast<std::size_t>(monitor)]) {
          rebaseline(seen, silent);  // starvation guard: the sample proves nothing
          continue;
        }
        seen[static_cast<std::size_t>(monitor)] = mon_now;

        std::vector<std::int32_t> to_declare;
        for (std::size_t p = 0; p < n; ++p) {
          const auto place = static_cast<std::int32_t>(p);
          if (place == monitor) continue;
          if (!pm_alive(place)) continue;
          const std::uint64_t now = places_[p]->beats.load(std::memory_order_relaxed);
          if (now != seen[p]) {
            // The beat reached the monitor: one control message of modeled
            // heartbeat traffic per observed sample.
            book_.record(place, monitor, net::MessageKind::Heartbeat,
                         net::kControlPayloadBytes);
            seen[p] = now;
            if (silent[p] >= suspect_after) {
              suspected_.clear(place);
              if (tracer_.spans_on()) {
                detector_transition(place, PlaceHealth::Alive);
              }
            }
            silent[p] = 0;
            continue;
          }
          ++silent[p];
          if (silent[p] == suspect_after) {
            suspected_.set(place);
            places_[static_cast<std::size_t>(monitor)]->stats.suspicions.fetch_add(
                1, std::memory_order_relaxed);
            if (tracer_.spans_on()) {
              detector_transition(place, PlaceHealth::Suspected);
            }
          } else if (silent[p] >= declare_after) {
            // Confirmation gate: a silence window alone is not proof on a
            // shared machine — an oversubscribed scheduler can park both of
            // a live place's workers for longer than the window. Eviction of
            // a live place would be permanent (fencing), so the declaration
            // additionally requires the place to have actually fail-stopped;
            // a completed window without a crash is a false alarm and
            // re-baselines. The latency stays honest — the declaration still
            // waits out the full missed-beat window past the real crash.
            // (The SimEngine's detector has no such gate: virtual time has
            // no scheduler noise, so there silence alone declares, and stall
            // windows can genuinely evict a live place.)
            if (places_[p]->crashed.load(std::memory_order_acquire)) {
              to_declare.push_back(place);  // batch every corpse this sweep
              continue;
            }
            suspected_.clear(place);
            if (tracer_.spans_on()) detector_transition(place, PlaceHealth::Alive);
            silent[p] = 0;
            seen[p] = now;
          }
        }
        if (to_declare.empty()) continue;

        // Simultaneous deaths whose windows expire in the same sweep are
        // declared as one batch (place-id order — to_declare is scanned in
        // ascending p). Detection latency is the worst case over the batch.
        double latency = 0.0;
        for (std::int32_t d : to_declare) {
          PlaceRt& dp = *places_[static_cast<std::size_t>(d)];
          dp.cv.notify_all();
          if (tracer_.spans_on()) detector_transition(d, PlaceHealth::Dead);
          rt_event_shared(obs::RtEventKind::PlaceDeclared, d, 0, 0,
                          stopwatch_.seconds(), /*have_recovery_mu=*/false);
          latency = std::max(latency, stopwatch_.seconds() - dp.crash_wall);
        }
        coordinate_recovery(to_declare, latency, /*worker_coordinator=*/false);
        suspected_.clear_all();
        rebaseline(seen, silent);
      }
    }

    /// Monitor-thread only (detector events are single-writer).
    void detector_transition(std::int32_t place, PlaceHealth to) {
      tracer_.detector_event(place, static_cast<std::uint8_t>(to),
                             stopwatch_.seconds());
    }

    /// Combined observability thread (spawned when counters, status export,
    /// or on-demand flight dumps are configured): per-place gauges on the
    /// trace sample period, status snapshots + the stall watchdog on the
    /// status interval, and SIGUSR1/SIGQUIT flight-dump polling. Purely
    /// observational — relaxed atomic loads, no engine locks on the default
    /// path (the governor gauges take its accounting lock, as before).
    void obs_main() {
      const bool counters = tracer_.counters_on();
      const double sample_s = std::max(opts_.trace_sample_s, 1.0e-3);
      double tick_s = 0.25;
      if (counters) tick_s = std::min(tick_s, sample_s);
      if (status_on_) tick_s = std::min(tick_s, opts_.status_interval_s);
      if (flight_poll_) tick_s = std::min(tick_s, 0.05);
      const auto tick = std::chrono::duration<double>(tick_s);
      obs::StallWatchdog watchdog(opts_.wedge_timeout_s);
      double next_sample = 0.0;
      double next_status = 0.0;
      while (!done_.load(std::memory_order_acquire)) {
        const double t = stopwatch_.seconds();
        if (counters && t >= next_sample) {
          sample_gauges(t);
          next_sample = t + sample_s;
        }
        if (status_on_ && t >= next_status) {
          const obs::StatusSnapshot s = make_status(t);
          obs::write_status_file(opts_.status_file, s);
          if (const auto stall = watchdog.observe(s)) {
            DPX10_WARN << "stall watchdog: no progress for "
                       << stall->stalled_for_s << "s at " << s.finished << "/"
                       << s.target << " vertices — classified "
                       << obs::stall_class_name(stall->cls);
            rt_event_shared(obs::RtEventKind::WedgeFire, -1,
                            static_cast<std::int64_t>(stall->cls), s.finished,
                            t, /*have_recovery_mu=*/false);
            if (flight_poll_) dump_flight("stall");
          }
          next_status = t + opts_.status_interval_s;
        }
        if (flight_poll_ && obs::consume_dump_request()) dump_flight("request");
        std::this_thread::sleep_for(tick);
      }
    }

    /// Per-place gauge samples (Counters and up). One relaxed atomic load
    /// per gauge; single-writer into the tracer's series (the obs thread).
    void sample_gauges(double t) {
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        PlaceRt& pr = *places_[static_cast<std::size_t>(p)];
        const std::int64_t depth = pr.ready_count.load(std::memory_order_relaxed);
        tracer_.sample("ready_depth", p, t, static_cast<double>(depth));
        tracer_.sample("computed", p, t,
                       static_cast<double>(pr.stats.computed.load(
                           std::memory_order_relaxed)));
        if (gov_) {
          // Governor gauges take the per-place accounting lock — only with
          // the (opt-in) governor active does the sampler pay for locks.
          const mem::MemAccount a = gov_->account(p);
          tracer_.sample("live_cells", p, t, static_cast<double>(a.live_cells));
          tracer_.sample("live_bytes", p, t, static_cast<double>(a.live_bytes));
          tracer_.sample("retired_cells", p, t,
                         static_cast<double>(a.retired_cells));
          tracer_.sample("spilled_cells", p, t,
                         static_cast<double>(a.spilled_cells));
          tracer_.sample("spill_reads", p, t, static_cast<double>(a.spill_reads));
          tracer_.sample("cache_hits", p, t,
                         static_cast<double>(pr.stats.cache_hits.load(
                             std::memory_order_relaxed)));
          tracer_.sample("cache_evictions", p, t,
                         static_cast<double>(pr.cache.evictions()));
        }
      }
    }

    /// Assembles the live status snapshot (obs thread, plus one final call
    /// after the joins). Every field is a relaxed read of engine state —
    /// the snapshot is advisory, not a barrier.
    obs::StatusSnapshot make_status(double t) {
      obs::StatusSnapshot s;
      s.seq = ++status_seq_;
      s.pid = obs::current_pid();
      s.app = std::string(app_.name());
      s.dag = std::string(dag_.name());
      s.engine = "threaded";
      s.finished = finished_.load(std::memory_order_relaxed);
      s.target = target_;
      s.epoch = epoch_now_.load(std::memory_order_relaxed);
      s.recovering = pause_requests_.load(std::memory_order_acquire) > 0 ||
                     recovering_.load(std::memory_order_acquire) > 0;
      s.elapsed_s = t;
      for (std::int32_t p = 0; p < opts_.nplaces; ++p) {
        PlaceRt& pr = *places_[static_cast<std::size_t>(p)];
        obs::PlaceStatus ps;
        ps.place = p;
        ps.crashed = pr.crashed.load(std::memory_order_acquire) || !pm_alive(p);
        ps.ready = pr.ready_count.load(std::memory_order_relaxed);
        const std::int32_t idle = pr.idle_waiters.load(std::memory_order_relaxed);
        ps.busy = ps.crashed ? 0
                             : std::clamp(opts_.nthreads - idle, std::int32_t{0},
                                          opts_.nthreads);
        ps.computed = static_cast<std::int64_t>(
            pr.stats.computed.load(std::memory_order_relaxed));
        if (gov_) {
          const mem::MemAccount a = gov_->account(p);
          ps.live_cells = static_cast<std::int64_t>(a.live_cells);
          ps.live_bytes = static_cast<std::int64_t>(a.live_bytes);
          ps.spill_reads = static_cast<std::int64_t>(a.spill_reads);
        }
        s.places.push_back(ps);
      }
      return s;
    }

    void publish_status(double t) {
      obs::write_status_file(opts_.status_file, make_status(t));
    }

    obs::TraceMeta make_meta(double elapsed) const {
      return obs::TraceMeta{std::string(app_.name()), std::string(dag_.name()),
                            "threaded", dag_.height(),  dag_.width(),
                            opts_.nplaces,              opts_.nthreads, elapsed,
                            opts_.tile_size};
    }

    /// Serializes the flight ring to opts_.flight_dump (trace_io native
    /// format, loadable by dpx10trace). Callable from any thread — the ring
    /// locks itself, dump_mu_ keeps two dumpers off the file.
    void dump_flight(const char* why) {
      std::lock_guard<std::mutex> lk(dump_mu_);
      std::ofstream os(opts_.flight_dump, std::ios::trunc);
      if (!os) {
        DPX10_WARN << "flight dump (" << why << "): cannot open "
                   << opts_.flight_dump;
        return;
      }
      flight_.dump(os, make_meta(stopwatch_.seconds()));
      DPX10_INFO << "flight dump (" << why << "): " << flight_.recorded()
                 << " events recorded (" << flight_.dropped()
                 << " overwritten) -> " << opts_.flight_dump;
    }

    /// Records a runtime event from a shared (non-worker) context: the
    /// monitor, the obs thread, or a recovery/snapshot coordinator. They
    /// all write the last tracer shard, so the push synchronizes on
    /// recovery_mu_ unless the caller already holds it; the flight ring
    /// takes its own per-ring lock.
    void rt_event_shared(obs::RtEventKind k, std::int32_t place, std::int64_t a,
                         std::int64_t b, double t, bool have_recovery_mu) {
      if (events_on_) {
        if (have_recovery_mu) {
          tracer_.shard(obs_shard_).events.push_back({t, a, b, place, k});
        } else {
          std::lock_guard<std::mutex> lk(recovery_mu_);
          tracer_.shard(obs_shard_).events.push_back({t, a, b, place, k});
        }
      }
      if (flight_on_) flight_.record(obs_shard_, k, place, a, b, t);
    }

    /// Records a runtime event from a worker context: the worker's own
    /// tracer shard (single-writer, no lock) plus its flight ring.
    void rt_event_worker(obs::Tracer::Shard* sh, std::int32_t worker,
                         obs::RtEventKind k, std::int32_t place,
                         std::int64_t a, std::int64_t b, double t) {
      if (events_on_ && sh != nullptr) sh->events.push_back({t, a, b, place, k});
      if (flight_on_) {
        flight_.record_fast(static_cast<std::size_t>(worker), k, place, a, b, t);
      }
    }

    void rebaseline(std::vector<std::uint64_t>& seen, std::vector<std::int32_t>& silent) {
      for (std::size_t p = 0; p < places_.size(); ++p) {
        seen[p] = places_[p]->beats.load(std::memory_order_relaxed);
        if (!places_[p]->crashed.load(std::memory_order_acquire)) silent[p] = 0;
      }
    }

    // ---- state -------------------------------------------------------------

    const RuntimeOptions& opts_;
    const Dag& dag_;
    DPX10App<T>& app_;

    std::mutex pm_mu_;
    PlaceManager pm_;
    net::TrafficBook book_;
    net::FaultInjector injector_;
    obs::Tracer tracer_;
    obs::FlightRecorder flight_;
    /// Last tracer/flight shard index — shared by the monitor, the obs
    /// thread, and recovery coordinators (see rt_event_shared).
    std::size_t obs_shard_ = 0;
    // Hoisted observability flags: tested in hot paths, set once in the ctor.
    bool events_on_ = false;   ///< tracer shards collect runtime events
    bool flight_on_ = false;   ///< flight ring records
    bool tax_on_ = false;      ///< framework-tax attribution
    bool status_on_ = false;   ///< periodic status-file export
    bool flight_poll_ = false; ///< poll for on-demand flight dumps
    std::mutex dump_mu_;       ///< one flight dump writes the file at a time
    std::uint64_t status_seq_ = 0;  ///< obs thread + post-join only
    /// Published copy of the recovery epoch for lock-free status snapshots
    /// (epoch_ itself is guarded by recovery_mu_).
    std::atomic<std::int64_t> epoch_now_{0};
    SuspicionSet suspected_;
    bool detector_active_ = false;
    std::size_t nshards_ = 1;  ///< ready-deque shards per place (resolved)
    std::unique_ptr<DistArray<T>> array_;
    std::vector<std::unique_ptr<PlaceRt>> places_;
    std::unique_ptr<mem::MemoryGovernor<T>> gov_;
    bool gov_spill_ = false;

    std::vector<FaultPlan> faults_;
    std::vector<std::int64_t> fault_thresholds_;
    std::atomic<std::size_t> next_fault_{0};

    SnapshotVault<T> vault_;  // mutated only under the pause gate
    std::int64_t snapshot_step_ = 0;
    std::atomic<std::int64_t> next_snapshot_at_{0};
    std::uint64_t snapshots_taken_ = 0;    // coordinator-only (recovery_mu_)
    double snapshot_seconds_ = 0.0;        // coordinator-only (recovery_mu_)

    std::int64_t target_ = 0;
    std::atomic<std::int64_t> finished_{0};
    std::atomic<std::uint64_t> computed_total_{0};
    /// Vertices currently in a worker's hand (raised before the pop
    /// attempt) — the wedge detector's "nothing in flight" witness.
    std::atomic<std::int64_t> executing_{0};
    std::atomic<bool> done_{false};

    std::mutex pause_mu_;
    std::condition_variable pause_cv_;
    std::atomic<std::int32_t> pause_requests_{0};
    std::atomic<std::int32_t> coordinating_{0};
    std::mutex recovery_mu_;
    int parked_ = 0;
    std::atomic<std::int32_t> active_workers_{0};
    /// Coordinators currently in flight — a second one arriving while the
    /// first holds (or queues for) recovery_mu_ records its pass as nested.
    std::atomic<std::int32_t> recovering_{0};
    detail::RecoveryEpoch epoch_;  // mutated only under recovery_mu_

    std::vector<RecoveryRecord> recoveries_;
    std::exception_ptr failure_;
    Stopwatch stopwatch_;

    /// Floor for the monitor's sampling period: the configured (simulated)
    /// heartbeat interval is microseconds, but real scheduler jitter makes
    /// sub-millisecond wall-clock detection windows fire spuriously.
    static constexpr double kMinMonitorInterval = 0.025;
  };

  RuntimeOptions opts_;
};

}  // namespace dpx10
