#include "core/dag.h"

#include "common/error.h"

namespace dpx10 {

Dag::Dag(std::int32_t height, std::int32_t width, DagDomain domain)
    : height_(height), width_(width), domain_(domain) {
  require(height > 0 && width > 0, "Dag: height and width must be positive");
  require(domain.height() == height && domain.width() == width,
          "Dag: domain extent does not match DAG size");
}

}  // namespace dpx10
