// Umbrella header: everything a DPX10 application needs.
//
//   #include "core/dpx10.h"
//
//   class MyApp : public dpx10::DPX10App<int> { ... };
//   auto dag = dpx10::patterns::make_pattern("left-top-diag", n, m);
//   dpx10::ThreadedEngine<int> engine(options);
//   dpx10::RunReport report = engine.run(*dag, app);
#pragma once

#include "apgas/dist.h"
#include "apgas/dist_array.h"
#include "apgas/domain.h"
#include "apgas/fault.h"
#include "apgas/place.h"
#include "common/vertex_id.h"
#include "core/app.h"
#include "core/cache.h"
#include "core/dag.h"
#include "core/dag_view.h"
#include "core/metrics.h"
#include "core/patterns/registry.h"
#include "core/runtime_options.h"
#include "core/sim_engine.h"
#include "core/threaded_engine.h"
#include "core/vertex.h"
