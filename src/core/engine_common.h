// Engine-shared logic: DAG initialization and post-failure rebuild.
//
// Both engines (threaded and simulated) perform the same two structural
// phases — §VI-A step 1 (distribute and initialize all vertices, compute
// indegrees, find the zero-indegree seeds) and §VI-D recovery (rebuild the
// distributed array over the survivors, restore what the restore mode
// allows, re-initialize the rest). Keeping them here guarantees the two
// engines cannot drift apart semantically.
#pragma once

#include <cstdint>
#include <vector>

#include <algorithm>

#include "apgas/dist_array.h"
#include "check/hooks.h"
#include "core/app.h"
#include "core/dag.h"
#include "core/metrics.h"
#include "core/runtime_options.h"
#include "core/value_traits.h"
#include "mem/governor.h"
#include "net/fault_injector.h"
#include "net/traffic.h"

namespace dpx10::detail {

/// Publish-site value write shared by both engines. This is where a
/// dpx10check planted MutateValue bug corrupts its hash-selected victims —
/// one shared site so the mutation-testing self-test exercises the same
/// code path on both engines. Returns the value actually stored so callers
/// that reuse the result afterwards (cache seeding, wire sizing) stay
/// consistent with the cell.
template <typename T>
inline T publish_value(Cell<T>& cell, T value, std::int64_t idx) {
  check::maybe_mutate_value(value, idx);
  cell.value = value;
  return value;
}

/// Next retransmit timeout after one expires: exponential up to the cap,
/// with +/- backoff_jitter applied from a deterministic [0,1) draw so
/// concurrent fetchers don't retry in lockstep.
inline double next_backoff(const RetryConfig& cfg, double current_timeout,
                           double jitter01) {
  const double doubled = std::min(current_timeout * 2.0, cfg.max_timeout_s);
  return doubled * (1.0 + cfg.backoff_jitter * (2.0 * jitter01 - 1.0));
}

/// Replays the retry protocol for one fetch over the lossy link and returns
/// the number of retransmissions it needed. The ThreadedEngine uses this for
/// accounting only — real memory reads cannot be "dropped", but the counters
/// and extra wire traffic a lossy network would cost are still recorded.
/// Never blocks (a sleeping worker would stall the recovery pause gate).
inline std::uint32_t count_fetch_retries(net::FaultInjector& injector,
                                         const RetryConfig& cfg,
                                         std::int32_t src, std::int32_t dst) {
  std::uint32_t retries = 0;
  while (retries + 1 < static_cast<std::uint32_t>(cfg.max_attempts)) {
    const auto req =
        injector.perturb(net::MessageKind::FetchRequest, src, dst, 0.0);
    if (req.dropped) {
      ++retries;
      continue;
    }
    const auto rep =
        injector.perturb(net::MessageKind::FetchReply, dst, src, 0.0);
    if (rep.dropped) {
      ++retries;
      continue;
    }
    break;
  }
  return retries;
}

struct InitSummary {
  std::uint64_t prefinished = 0;  ///< cells set by initial_value()
  std::uint64_t to_compute = 0;   ///< cells the engines must schedule
};

/// Monotonic counter for the engines' re-entrant recovery loops. Every
/// rebuild/restore pass over the (shrinking) survivor set draws a fresh
/// epoch; a pass triggered while a previous one was still in flight is
/// additionally flagged `nested` in its RecoveryRecord. The counter itself
/// never resets — idempotence of the loop comes from epochs being strictly
/// ordered: replaying or extending a recovery can only move the survivor
/// set forward, never resurrect a fenced place.
struct RecoveryEpoch {
  std::int32_t current = 0;
  std::int32_t next() { return ++current; }
};

/// Applies DPX10App::initial_value() and computes every cell's indegree
/// (number of dependencies that are not pre-finished). Single-threaded; the
/// paper initializes in parallel across places, but this is a one-time
/// O(edges) pass whose cost both engines exclude from measured time, as the
/// paper excludes graph-generation time (§VIII).
template <typename T>
InitSummary initialize_cells(DistArray<T>& array, const Dag& dag, const DPX10App<T>& app) {
  const DagDomain& domain = array.domain();
  InitSummary summary;
  for (std::int64_t idx = 0; idx < domain.size(); ++idx) {
    VertexId id = domain.delinearize(idx);
    Cell<T>& cell = array.cell(idx);
    if (auto init = app.initial_value(id)) {
      cell.value = *init;
      cell.store_state(CellState::Prefinished, std::memory_order_relaxed);
      ++summary.prefinished;
    }
  }
  std::vector<VertexId> deps;
  for (std::int64_t idx = 0; idx < domain.size(); ++idx) {
    Cell<T>& cell = array.cell(idx);
    if (cell.load_state(std::memory_order_relaxed) == CellState::Prefinished) continue;
    deps.clear();
    dag.dependencies(domain.delinearize(idx), deps);
    std::int32_t indegree = 0;
    for (VertexId d : deps) {
      if (array.cell(d).load_state(std::memory_order_relaxed) != CellState::Prefinished) {
        ++indegree;
      }
    }
    cell.indegree.store(indegree, std::memory_order_relaxed);
    ++summary.to_compute;
  }
  return summary;
}

/// Invokes `push(owner_place, index)` for every schedulable seed vertex
/// (unfinished, indegree zero). Used both at startup and after recovery.
template <typename T, typename Push>
void seed_ready(const DistArray<T>& array, Push&& push) {
  for (std::int64_t idx = 0; idx < array.size(); ++idx) {
    const Cell<T>& cell = array.cell(idx);
    if (cell.load_state(std::memory_order_relaxed) != CellState::Unfinished) continue;
    if (cell.indegree.load(std::memory_order_relaxed) != 0) continue;
    push(array.owner_place(array.domain().delinearize(idx)), idx);
  }
}

/// Re-derives every unfinished cell's indegree from the current finished
/// set — the final step of both recovery policies (rebuild and
/// snapshot-rollback re-initialize "all unfinished vertices in the new
/// array ... reset the indegree", §VI-D).
template <typename T>
void recompute_indegrees(DistArray<T>& array, const Dag& dag) {
  const DagDomain& domain = array.domain();
  std::vector<VertexId> deps;
  for (std::int64_t idx = 0; idx < domain.size(); ++idx) {
    Cell<T>& cell = array.cell(idx);
    if (cell.load_state(std::memory_order_relaxed) != CellState::Unfinished) continue;
    deps.clear();
    dag.dependencies(domain.delinearize(idx), deps);
    std::int32_t indegree = 0;
    for (VertexId d : deps) {
      if (array.cell(d).load_state(std::memory_order_relaxed) == CellState::Unfinished) {
        ++indegree;
      }
    }
    cell.indegree.store(indegree, std::memory_order_relaxed);
  }
}

/// Makes retire-mode recovery sound: a Retired cell's value exists nowhere,
/// so if any Unfinished cell depends on it, the retired cell must be flipped
/// back to Unfinished and recomputed — and its own retired dependencies with
/// it, transitively. Must run BEFORE recompute_indegrees (the flips change
/// which dependencies count). Returns the number of cells resurrected. A
/// no-op in spill mode, where retired values are still readable.
template <typename T>
std::uint64_t resurrect_retired(DistArray<T>& array, const Dag& dag) {
  const DagDomain& domain = array.domain();
  std::vector<std::int64_t> work;
  for (std::int64_t idx = 0; idx < domain.size(); ++idx) {
    if (array.cell(idx).load_state(std::memory_order_relaxed) ==
        CellState::Unfinished) {
      work.push_back(idx);
    }
  }
  std::vector<VertexId> deps;
  std::uint64_t flipped = 0;
  while (!work.empty()) {
    const std::int64_t idx = work.back();
    work.pop_back();
    deps.clear();
    dag.dependencies(domain.delinearize(idx), deps);
    for (VertexId d : deps) {
      Cell<T>& dep = array.cell(d);
      if (dep.load_state(std::memory_order_relaxed) == CellState::Retired) {
        dep.store_state(CellState::Unfinished, std::memory_order_relaxed);
        ++flipped;
        work.push_back(domain.linearize(d));
      }
    }
  }
  return flipped;
}

/// Rebuilds `fresh` (already constructed over the survivor group) from
/// `old_array` after every place in `dead_places` died — one batch for
/// simultaneous deaths, killed in place-id order by the caller — per §VI-D:
///   * pre-finished cells are re-derived from the app's initializer — they
///     are pure functions of the input, never data to recover;
///   * finished cells whose data lived on the dead place are lost;
///   * finished cells that stay with their old owner are restored in place;
///   * finished cells whose owner changed are restored over the network
///     only under RestoreMode::RestoreRemote (the §VI-E "restore manner"),
///     otherwise discarded for recomputation — the paper's default, chosen
///     because recomputing is usually cheaper than copying;
///   * every unfinished cell gets its indegree recomputed from the new
///     finished set.
/// Retired cells (memory governor, `gov` non-null) extend the matrix: in
/// spill mode the value is in the owner's SpillStore — kept if the owner
/// survived in place, lost with the owner's disk if it died, and moved (or
/// discarded) like a finished value if ownership changed; in retire mode
/// the value exists nowhere, so Retired survives as "done" and any retired
/// cell an unfinished consumer needs is resurrected for recomputation.
/// Returns the recovery census (summed over the whole batch, with
/// dead_place = the batch's trigger); timing fields are filled by the
/// caller.
template <typename T>
RecoveryRecord rebuild_after_deaths(const DistArray<T>& old_array,
                                    const std::vector<std::int32_t>& dead_places,
                                    RestoreMode mode, const Dag& dag,
                                    const DPX10App<T>& app, DistArray<T>& fresh,
                                    net::TrafficBook& book,
                                    mem::MemoryGovernor<T>* gov = nullptr) {
  const DagDomain& domain = old_array.domain();
  RecoveryRecord record;
  check_internal(!dead_places.empty(), "rebuild_after_deaths: empty batch");
  record.dead_place = dead_places.front();
  record.dead_places = dead_places;
  const auto died = [&dead_places](std::int32_t p) {
    return std::find(dead_places.begin(), dead_places.end(), p) !=
           dead_places.end();
  };

  for (std::int64_t idx = 0; idx < domain.size(); ++idx) {
    VertexId id = domain.delinearize(idx);
    const Cell<T>& old_cell = old_array.cell(idx);
    Cell<T>& new_cell = fresh.cell(idx);
    switch (old_cell.load_state(std::memory_order_relaxed)) {
      case CellState::Prefinished: {
        auto init = app.initial_value(id);
        check_internal(init.has_value(),
                       "rebuild_after_deaths: initial_value() is not stable");
        new_cell.value = *init;
        new_cell.store_state(CellState::Prefinished, std::memory_order_relaxed);
        break;
      }
      case CellState::Finished: {
        const std::int32_t old_owner = old_array.owner_place(id);
        if (died(old_owner)) {
          ++record.lost;  // wiped with the place; stays Unfinished
          break;
        }
        const std::int32_t new_owner = fresh.owner_place(id);
        if (new_owner != old_owner) {
          if (mode == RestoreMode::DiscardRemote) {
            ++record.discarded;  // cheaper to recompute than to copy
            break;
          }
          book.record(old_owner, new_owner, net::MessageKind::RecoveryTransfer,
                      value_wire_bytes(old_cell.value));
          ++record.restored_remote;
        }
        new_cell.value = old_cell.value;
        new_cell.store_state(CellState::Finished, std::memory_order_relaxed);
        ++record.restored;
        break;
      }
      case CellState::Retired: {
        if (gov == nullptr || !gov->spill_on()) {
          // Retire mode: no value anywhere, on any place — death cannot
          // lose what was already released. Kept as "done"; resurrection
          // below recomputes the ones an unfinished consumer needs.
          new_cell.store_state(CellState::Retired, std::memory_order_relaxed);
          break;
        }
        const std::int32_t old_owner = old_array.owner_place(id);
        if (died(old_owner)) {
          ++record.lost;  // spill file died with the place; stays Unfinished
          break;
        }
        const std::int32_t new_owner = fresh.owner_place(id);
        if (new_owner != old_owner) {
          if (mode == RestoreMode::DiscardRemote) {
            ++record.discarded;
            break;
          }
          T spilled{};
          const bool ok = gov->spill_read(old_owner, idx, spilled);
          check_internal(ok, "rebuild_after_deaths: retired cell missing "
                             "from the old owner's spill store");
          book.record(old_owner, new_owner, net::MessageKind::RecoveryTransfer,
                      value_wire_bytes(spilled));
          gov->spill_write(new_owner, idx, spilled);
          ++record.restored_remote;
        }
        new_cell.store_state(CellState::Retired, std::memory_order_relaxed);
        ++record.restored_spilled;
        break;
      }
      case CellState::Unfinished:
        break;
    }
  }

  if (gov == nullptr || !gov->spill_on()) {
    record.resurrected = resurrect_retired(fresh, dag);
  }
  recompute_indegrees(fresh, dag);
  return record;
}

/// Single-death convenience wrapper (tests, one-at-a-time declarations).
template <typename T>
RecoveryRecord rebuild_after_death(const DistArray<T>& old_array, std::int32_t dead_place,
                                   RestoreMode mode, const Dag& dag,
                                   const DPX10App<T>& app, DistArray<T>& fresh,
                                   net::TrafficBook& book,
                                   mem::MemoryGovernor<T>* gov = nullptr) {
  const std::vector<std::int32_t> batch{dead_place};
  return rebuild_after_deaths(old_array, batch, mode, dag, app, fresh, book, gov);
}

/// Number of computed-and-done cells (Finished, plus Retired — a retired
/// cell finished before its payload was released) — the engines' finished
/// counter is reset to this after recovery.
template <typename T>
std::uint64_t count_finished(const DistArray<T>& array) {
  std::uint64_t n = 0;
  for (std::int64_t idx = 0; idx < array.size(); ++idx) {
    const CellState s = array.cell(idx).load_state(std::memory_order_relaxed);
    if (s == CellState::Finished || s == CellState::Retired) ++n;
  }
  return n;
}

}  // namespace dpx10::detail
