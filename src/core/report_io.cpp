#include "core/report_io.h"

#include <ostream>

#include "common/strings.h"

namespace dpx10 {

void print_report(std::ostream& os, const RunReport& report) {
  const PlaceStats totals = report.totals();
  os << report.app_name << " on '" << report.dag_name << "' ("
     << with_commas(report.vertices) << " vertices";
  if (report.prefinished > 0) os << ", " << with_commas(report.prefinished) << " pre-set";
  os << ")\n";
  os << "  time:          " << human_seconds(report.elapsed_seconds) << "\n";
  os << "  computed:      " << with_commas(report.computed) << " vertices\n";
  os << "  remote deps:   " << with_commas(totals.remote_fetches) << " fetched, "
     << with_commas(totals.cache_hits) << " cache hits";
  const std::uint64_t lookups = totals.remote_fetches + totals.cache_hits;
  if (lookups > 0) {
    os << strformat(" (%.1f%% hit rate)",
                    100.0 * static_cast<double>(totals.cache_hits) /
                        static_cast<double>(lookups));
  }
  os << "\n";
  os << "  traffic:       " << with_commas(report.traffic.total_messages_out())
     << " messages, " << human_bytes(static_cast<double>(report.traffic.bytes_out)) << "\n";
  if (totals.steals > 0) {
    os << "  steals:        " << with_commas(totals.steals) << "\n";
  }
  for (const RecoveryRecord& r : report.recoveries) {
    os << "  recovery:      place " << r.dead_place << " died at "
       << human_seconds(r.started_at) << "; recovered in "
       << human_seconds(r.recovery_seconds) << " (lost " << with_commas(r.lost)
       << ", restored " << with_commas(r.restored) << ", discarded "
       << with_commas(r.discarded) << ")\n";
  }
}

void print_csv_header(std::ostream& os) {
  os << "label,app,dag,vertices,computed,elapsed_s,recovery_s,snapshot_s,"
        "snapshots,remote_fetches,cache_hits,control_msgs,executed_nonlocal,"
        "steals,messages,bytes_out\n";
}

void print_csv_row(std::ostream& os, const std::string& label, const RunReport& report) {
  const PlaceStats t = report.totals();
  os << label << ',' << report.app_name << ',' << report.dag_name << ','
     << report.vertices << ',' << report.computed << ','
     << strformat("%.9g", report.elapsed_seconds) << ','
     << strformat("%.9g", report.recovery_seconds) << ','
     << strformat("%.9g", report.snapshot_seconds) << ',' << report.snapshots_taken << ','
     << t.remote_fetches << ',' << t.cache_hits << ',' << t.control_msgs_out << ','
     << t.executed_nonlocal << ',' << t.steals << ','
     << report.traffic.total_messages_out() << ',' << report.traffic.bytes_out << '\n';
}

void print_place_table(std::ostream& os, const RunReport& report) {
  os << "  place |  computed | non-local |   fetches | cache hit |    steals | busy\n";
  for (std::size_t p = 0; p < report.places.size(); ++p) {
    const PlaceStats& s = report.places[p];
    os << strformat("  %5zu | %9llu | %9llu | %9llu | %9llu | %9llu | %s\n", p,
                    static_cast<unsigned long long>(s.computed),
                    static_cast<unsigned long long>(s.executed_nonlocal),
                    static_cast<unsigned long long>(s.remote_fetches),
                    static_cast<unsigned long long>(s.cache_hits),
                    static_cast<unsigned long long>(s.steals),
                    human_seconds(s.busy_seconds).c_str());
  }
}

}  // namespace dpx10
