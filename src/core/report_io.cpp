#include "core/report_io.h"

#include <algorithm>
#include <ostream>

#include "common/strings.h"

namespace dpx10 {

void print_report(std::ostream& os, const RunReport& report) {
  const PlaceStats totals = report.totals();
  os << report.app_name << " on '" << report.dag_name << "' ("
     << with_commas(report.vertices) << " vertices";
  if (report.prefinished > 0) os << ", " << with_commas(report.prefinished) << " pre-set";
  os << ")\n";
  os << "  time:          " << human_seconds(report.elapsed_seconds) << "\n";
  os << "  computed:      " << with_commas(report.computed) << " vertices\n";
  os << "  remote deps:   " << with_commas(totals.remote_fetches) << " fetched, "
     << with_commas(totals.cache_hits) << " cache hits";
  const std::uint64_t lookups = totals.remote_fetches + totals.cache_hits;
  if (lookups > 0) {
    os << strformat(" (%.1f%% hit rate)",
                    100.0 * static_cast<double>(totals.cache_hits) /
                        static_cast<double>(lookups));
  }
  if (totals.cache_evictions > 0) {
    os << ", " << with_commas(totals.cache_evictions) << " evicted";
  }
  os << "\n";
  // live_cells_peak is zero exactly when the memory governor was off.
  if (totals.live_cells_peak > 0) {
    os << "  memory:        peak " << with_commas(totals.live_cells_peak)
       << " live cells (" << human_bytes(static_cast<double>(totals.live_bytes_peak))
       << "), " << with_commas(totals.retired_cells) << " retired, "
       << with_commas(totals.spilled_cells) << " spilled, "
       << with_commas(totals.spill_reads) << " spill reads\n";
  }
  os << "  traffic:       " << with_commas(report.traffic.total_messages_out())
     << " messages, " << human_bytes(static_cast<double>(report.traffic.bytes_out)) << "\n";
  if (totals.fetch_batches + totals.control_batches > 0) {
    os << "  coalescing:    " << with_commas(totals.fetch_batches)
       << " fetch batches, " << with_commas(totals.control_batches)
       << " control batches\n";
  }
  if (totals.steals > 0) {
    os << "  steals:        " << with_commas(totals.steals) << "\n";
  }
  if (totals.net_drops + totals.net_duplicates + totals.fetch_retries > 0) {
    os << "  net faults:    " << with_commas(totals.net_drops) << " drops, "
       << with_commas(totals.net_duplicates) << " duplicates, "
       << with_commas(totals.fetch_retries) << " retries ("
       << with_commas(totals.fetch_timeouts) << " timeouts)\n";
  }
  if (totals.suspicions > 0) {
    os << "  suspicions:    " << with_commas(totals.suspicions) << "\n";
  }
  for (const RecoveryRecord& r : report.recoveries) {
    os << "  recovery:      ";
    if (r.epoch > 0) os << "epoch " << r.epoch << ": ";
    if (r.nested) os << "[nested] ";
    os << "place " << r.dead_place << " died at "
       << human_seconds(r.started_at) << "; ";
    if (r.detected_after_s > 0.0) {
      os << "detected in " << human_seconds(r.detected_after_s) << "; ";
    }
    os << "recovered in "
       << human_seconds(r.recovery_seconds) << " (lost " << with_commas(r.lost)
       << ", restored " << with_commas(r.restored) << ", discarded "
       << with_commas(r.discarded);
    if (r.restored_spilled > 0) {
      os << ", spill-kept " << with_commas(r.restored_spilled);
    }
    if (r.resurrected > 0) {
      os << ", resurrected " << with_commas(r.resurrected);
    }
    os << ")\n";
  }
}

namespace {

/// Sum of the per-recovery loss/restore counters — the CSV needs flat
/// columns and the JSON mirrors them so the two field sets stay in sync
/// (asserted by tests/report_io_test.cpp).
struct RecoveryTotals {
  std::uint64_t lost = 0;
  std::uint64_t restored = 0;
  std::uint64_t restored_remote = 0;
  std::uint64_t discarded = 0;
  std::uint64_t restored_spilled = 0;
  std::uint64_t resurrected = 0;
  std::int32_t recovery_epochs = 0;       ///< highest epoch reached
  std::uint64_t nested_recoveries = 0;    ///< passes that extended a recovery
};

RecoveryTotals recovery_totals(const RunReport& report) {
  RecoveryTotals t;
  for (const RecoveryRecord& r : report.recoveries) {
    t.lost += r.lost;
    t.restored += r.restored;
    t.restored_remote += r.restored_remote;
    t.discarded += r.discarded;
    t.restored_spilled += r.restored_spilled;
    t.resurrected += r.resurrected;
    t.recovery_epochs = std::max(t.recovery_epochs, r.epoch);
    if (r.nested) ++t.nested_recoveries;
  }
  return t;
}

}  // namespace

// Every column after label/app/dag must appear as a key of the same name in
// print_json (tests/report_io_test.cpp enforces the parity).
void print_csv_header(std::ostream& os) {
  os << "label,app,dag,vertices,prefinished,computed,elapsed_s,recovery_s,"
        "detection_s,snapshot_s,snapshots,sim_events,remote_fetches,"
        "cache_hits,local_dep_reads,control_msgs_out,fetch_batches,"
        "control_batches,executed_nonlocal,"
        "steals,messages_out,bytes_out,net_drops,net_duplicates,"
        "fetch_retries,fetch_timeouts,suspicions,recoveries,recovery_epochs,"
        "nested_recoveries,lost,restored,"
        "restored_remote,discarded,restored_spilled,resurrected,"
        "cache_evictions,retired_cells,spilled_cells,spill_reads,"
        "live_cells_peak,live_bytes_peak\n";
}

void print_csv_row(std::ostream& os, const std::string& label, const RunReport& report) {
  const PlaceStats t = report.totals();
  const RecoveryTotals rt = recovery_totals(report);
  os << label << ',' << report.app_name << ',' << report.dag_name << ','
     << report.vertices << ',' << report.prefinished << ','
     << report.computed << ','
     << strformat("%.9g", report.elapsed_seconds) << ','
     << strformat("%.9g", report.recovery_seconds) << ','
     << strformat("%.9g", report.detection_seconds) << ','
     << strformat("%.9g", report.snapshot_seconds) << ','
     << report.snapshots_taken << ',' << report.sim_events << ','
     << t.remote_fetches << ',' << t.cache_hits << ',' << t.local_dep_reads << ','
     << t.control_msgs_out << ',' << t.fetch_batches << ',' << t.control_batches << ','
     << t.executed_nonlocal << ',' << t.steals << ','
     << report.traffic.total_messages_out() << ',' << report.traffic.bytes_out << ','
     << t.net_drops << ',' << t.net_duplicates << ',' << t.fetch_retries << ','
     << t.fetch_timeouts << ',' << t.suspicions << ','
     << report.recoveries.size() << ',' << rt.recovery_epochs << ','
     << rt.nested_recoveries << ',' << rt.lost << ',' << rt.restored << ','
     << rt.restored_remote << ',' << rt.discarded << ','
     << rt.restored_spilled << ',' << rt.resurrected << ','
     << t.cache_evictions << ',' << t.retired_cells << ',' << t.spilled_cells << ','
     << t.spill_reads << ',' << t.live_cells_peak << ',' << t.live_bytes_peak << '\n';
}

namespace {

// JSON string escaping for the few fields that carry free text (app and dag
// names). Control characters beyond the common escapes are \u-encoded.
void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << strformat("\\u%04x", static_cast<unsigned>(c));
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_double(std::ostream& os, double v) { os << strformat("%.17g", v); }

void json_place(std::ostream& os, const PlaceStats& s) {
  os << "{\"computed\":" << s.computed
     << ",\"executed_nonlocal\":" << s.executed_nonlocal
     << ",\"local_dep_reads\":" << s.local_dep_reads
     << ",\"remote_fetches\":" << s.remote_fetches
     << ",\"cache_hits\":" << s.cache_hits
     << ",\"control_msgs_out\":" << s.control_msgs_out
     << ",\"fetch_batches\":" << s.fetch_batches
     << ",\"control_batches\":" << s.control_batches
     << ",\"steals\":" << s.steals
     << ",\"fetch_retries\":" << s.fetch_retries
     << ",\"fetch_timeouts\":" << s.fetch_timeouts
     << ",\"net_drops\":" << s.net_drops
     << ",\"net_duplicates\":" << s.net_duplicates
     << ",\"suspicions\":" << s.suspicions
     << ",\"cache_evictions\":" << s.cache_evictions
     << ",\"retired_cells\":" << s.retired_cells
     << ",\"spilled_cells\":" << s.spilled_cells
     << ",\"spill_reads\":" << s.spill_reads
     << ",\"live_cells_peak\":" << s.live_cells_peak
     << ",\"live_bytes_peak\":" << s.live_bytes_peak
     << ",\"busy_seconds\":";
  json_double(os, s.busy_seconds);
  os << '}';
}

}  // namespace

void print_json(std::ostream& os, const RunReport& report) {
  const PlaceStats t = report.totals();
  os << "{\"app\":";
  json_string(os, report.app_name);
  os << ",\"dag\":";
  json_string(os, report.dag_name);
  os << ",\"vertices\":" << report.vertices
     << ",\"prefinished\":" << report.prefinished
     << ",\"computed\":" << report.computed << ",\"elapsed_s\":";
  json_double(os, report.elapsed_seconds);
  os << ",\"recovery_s\":";
  json_double(os, report.recovery_seconds);
  os << ",\"detection_s\":";
  json_double(os, report.detection_seconds);
  os << ",\"snapshots\":" << report.snapshots_taken << ",\"snapshot_s\":";
  json_double(os, report.snapshot_seconds);
  const RecoveryTotals rt = recovery_totals(report);
  os << ",\"sim_events\":" << report.sim_events
     << ",\"remote_fetches\":" << t.remote_fetches
     << ",\"cache_hits\":" << t.cache_hits
     << ",\"local_dep_reads\":" << t.local_dep_reads
     << ",\"control_msgs_out\":" << t.control_msgs_out
     << ",\"fetch_batches\":" << t.fetch_batches
     << ",\"control_batches\":" << t.control_batches
     << ",\"executed_nonlocal\":" << t.executed_nonlocal
     << ",\"steals\":" << t.steals
     << ",\"net_drops\":" << t.net_drops
     << ",\"net_duplicates\":" << t.net_duplicates
     << ",\"fetch_retries\":" << t.fetch_retries
     << ",\"fetch_timeouts\":" << t.fetch_timeouts
     << ",\"suspicions\":" << t.suspicions
     << ",\"recovery_epochs\":" << rt.recovery_epochs
     << ",\"nested_recoveries\":" << rt.nested_recoveries
     << ",\"lost\":" << rt.lost
     << ",\"restored\":" << rt.restored
     << ",\"restored_remote\":" << rt.restored_remote
     << ",\"discarded\":" << rt.discarded
     << ",\"restored_spilled\":" << rt.restored_spilled
     << ",\"resurrected\":" << rt.resurrected
     << ",\"cache_evictions\":" << t.cache_evictions
     << ",\"retired_cells\":" << t.retired_cells
     << ",\"spilled_cells\":" << t.spilled_cells
     << ",\"spill_reads\":" << t.spill_reads
     << ",\"live_cells_peak\":" << t.live_cells_peak
     << ",\"live_bytes_peak\":" << t.live_bytes_peak
     << ",\"traffic\":{\"messages_out\":" << report.traffic.total_messages_out()
     << ",\"bytes_out\":" << report.traffic.bytes_out << '}';
  os << ",\"recoveries\":[";
  for (std::size_t i = 0; i < report.recoveries.size(); ++i) {
    const RecoveryRecord& r = report.recoveries[i];
    if (i) os << ',';
    os << "{\"dead_place\":" << r.dead_place << ",\"dead_places\":[";
    for (std::size_t d = 0; d < r.dead_places.size(); ++d) {
      if (d) os << ',';
      os << r.dead_places[d];
    }
    os << "],\"epoch\":" << r.epoch
       << ",\"nested\":" << (r.nested ? "true" : "false") << ",\"started_at\":";
    json_double(os, r.started_at);
    os << ",\"recovery_s\":";
    json_double(os, r.recovery_seconds);
    os << ",\"detected_after_s\":";
    json_double(os, r.detected_after_s);
    os << ",\"lost\":" << r.lost << ",\"restored\":" << r.restored
       << ",\"restored_remote\":" << r.restored_remote
       << ",\"discarded\":" << r.discarded
       << ",\"restored_spilled\":" << r.restored_spilled
       << ",\"resurrected\":" << r.resurrected << '}';
  }
  os << "],\"places\":[";
  for (std::size_t p = 0; p < report.places.size(); ++p) {
    if (p) os << ',';
    json_place(os, report.places[p]);
  }
  os << "]}\n";
}

void print_place_table(std::ostream& os, const RunReport& report) {
  os << "  place |  computed | non-local |   fetches | cache hit |    steals | busy\n";
  for (std::size_t p = 0; p < report.places.size(); ++p) {
    const PlaceStats& s = report.places[p];
    os << strformat("  %5zu | %9llu | %9llu | %9llu | %9llu | %9llu | %s\n", p,
                    static_cast<unsigned long long>(s.computed),
                    static_cast<unsigned long long>(s.executed_nonlocal),
                    static_cast<unsigned long long>(s.remote_fetches),
                    static_cast<unsigned long long>(s.cache_hits),
                    static_cast<unsigned long long>(s.steals),
                    human_seconds(s.busy_seconds).c_str());
  }
}

}  // namespace dpx10
