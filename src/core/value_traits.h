// ValueTraits<T> — how the engines measure a vertex value on the wire.
//
// Scalar cell values (int, SwlagCell, ...) are sizeof(T); composite values
// such as tile boundaries own heap storage, so they specialize this trait
// to report their true payload size for traffic accounting and the
// simulator's transfer-time model.
#pragma once

#include <cstddef>

namespace dpx10 {

template <typename T>
struct ValueTraits {
  static std::size_t wire_bytes(const T&) { return sizeof(T); }
  /// Releases any storage the value owns (memory-governor retire hook);
  /// heap-owning specializations shrink to an empty footprint here.
  static void release(T& value) { value = T{}; }
};

template <typename T>
std::size_t value_wire_bytes(const T& value) {
  return ValueTraits<T>::wire_bytes(value);
}

template <typename T>
void value_release(T& value) {
  ValueTraits<T>::release(value);
}

}  // namespace dpx10
