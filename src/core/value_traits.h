// ValueTraits<T> — how the engines measure a vertex value on the wire.
//
// Scalar cell values (int, SwlagCell, ...) are sizeof(T); composite values
// such as tile boundaries own heap storage, so they specialize this trait
// to report their true payload size for traffic accounting and the
// simulator's transfer-time model.
#pragma once

#include <cstddef>

namespace dpx10 {

template <typename T>
struct ValueTraits {
  static std::size_t wire_bytes(const T&) { return sizeof(T); }
};

template <typename T>
std::size_t value_wire_bytes(const T& value) {
  return ValueTraits<T>::wire_bytes(value);
}

}  // namespace dpx10
