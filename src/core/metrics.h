// Run metrics: per-place counters, recovery records and the RunReport both
// engines return.
//
// Counters are the quantities the paper reasons about: computed vertices,
// local vs remote dependency reads, cache effectiveness, control messages,
// and for the simulator, per-place busy time (utilization). Tests assert
// conservation laws over these (see DESIGN.md §6).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/traffic.h"
#include "obs/framework_tax.h"
#include "obs/metrics.h"
#include "obs/trace_log.h"

namespace dpx10 {

struct PlaceStats {
  std::uint64_t computed = 0;           ///< compute() invocations on this place
  std::uint64_t executed_nonlocal = 0;  ///< of which the vertex's owner was elsewhere
  std::uint64_t local_dep_reads = 0;
  std::uint64_t remote_fetches = 0;  ///< cache misses that went to the network
  std::uint64_t cache_hits = 0;
  std::uint64_t control_msgs_out = 0;  ///< remote indegree decrements sent
  std::uint64_t fetch_batches = 0;     ///< coalesced fetch round trips issued
  std::uint64_t control_batches = 0;   ///< coalesced control messages sent
  std::uint64_t steals = 0;            ///< vertices stolen by this place
  std::uint64_t fetch_retries = 0;     ///< fetch attempts beyond the first
  std::uint64_t fetch_timeouts = 0;    ///< fetch attempts that hit a timeout
  std::uint64_t net_drops = 0;         ///< messages this place saw vanish
  std::uint64_t net_duplicates = 0;    ///< duplicate deliveries (idempotently
                                       ///< discarded via fetch seq numbers)
  std::uint64_t suspicions = 0;        ///< times the detector suspected this place
  // Memory governor (src/mem). Zero when --retirement=off, except
  // cache_evictions, which counts capacity evictions in any mode.
  std::uint64_t retired_cells = 0;     ///< payloads released from the array
  std::uint64_t spilled_cells = 0;     ///< payloads written to the spill file
  std::uint64_t spill_reads = 0;       ///< demand reads served from the file
  std::uint64_t cache_evictions = 0;   ///< vertex-cache capacity evictions
  std::uint64_t live_cells_peak = 0;   ///< high-water mark of resident cells
  std::uint64_t live_bytes_peak = 0;   ///< high-water mark of resident bytes
  double busy_seconds = 0.0;           ///< SimEngine: slot-occupied time

  PlaceStats& operator+=(const PlaceStats& o) {
    computed += o.computed;
    executed_nonlocal += o.executed_nonlocal;
    local_dep_reads += o.local_dep_reads;
    remote_fetches += o.remote_fetches;
    cache_hits += o.cache_hits;
    control_msgs_out += o.control_msgs_out;
    fetch_batches += o.fetch_batches;
    control_batches += o.control_batches;
    steals += o.steals;
    fetch_retries += o.fetch_retries;
    fetch_timeouts += o.fetch_timeouts;
    net_drops += o.net_drops;
    net_duplicates += o.net_duplicates;
    suspicions += o.suspicions;
    retired_cells += o.retired_cells;
    spilled_cells += o.spilled_cells;
    spill_reads += o.spill_reads;
    cache_evictions += o.cache_evictions;
    live_cells_peak += o.live_cells_peak;
    live_bytes_peak += o.live_bytes_peak;
    busy_seconds += o.busy_seconds;
    return *this;
  }
};

/// Same counters as atomics, for the threaded engine's concurrent updates.
struct AtomicPlaceStats {
  std::atomic<std::uint64_t> computed{0};
  std::atomic<std::uint64_t> executed_nonlocal{0};
  std::atomic<std::uint64_t> local_dep_reads{0};
  std::atomic<std::uint64_t> remote_fetches{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> control_msgs_out{0};
  std::atomic<std::uint64_t> fetch_batches{0};
  std::atomic<std::uint64_t> control_batches{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> fetch_retries{0};
  std::atomic<std::uint64_t> fetch_timeouts{0};
  std::atomic<std::uint64_t> net_drops{0};
  std::atomic<std::uint64_t> net_duplicates{0};
  std::atomic<std::uint64_t> suspicions{0};

  PlaceStats snapshot() const {
    PlaceStats s;
    s.computed = computed.load(std::memory_order_relaxed);
    s.executed_nonlocal = executed_nonlocal.load(std::memory_order_relaxed);
    s.local_dep_reads = local_dep_reads.load(std::memory_order_relaxed);
    s.remote_fetches = remote_fetches.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits.load(std::memory_order_relaxed);
    s.control_msgs_out = control_msgs_out.load(std::memory_order_relaxed);
    s.fetch_batches = fetch_batches.load(std::memory_order_relaxed);
    s.control_batches = control_batches.load(std::memory_order_relaxed);
    s.steals = steals.load(std::memory_order_relaxed);
    s.fetch_retries = fetch_retries.load(std::memory_order_relaxed);
    s.fetch_timeouts = fetch_timeouts.load(std::memory_order_relaxed);
    s.net_drops = net_drops.load(std::memory_order_relaxed);
    s.net_duplicates = net_duplicates.load(std::memory_order_relaxed);
    s.suspicions = suspicions.load(std::memory_order_relaxed);
    return s;
  }
};

/// One vertex execution in the simulator (RuntimeOptions::record_trace):
/// the slot was occupied on `place` for [start, end). Executions discarded
/// by a fault appear too — they occupied real (virtual) slot time.
struct TraceEvent {
  std::int64_t index = 0;   ///< domain linear index of the vertex
  std::int32_t place = -1;
  double start = 0.0;
  double end = 0.0;
};

struct RecoveryRecord {
  std::int32_t dead_place = -1;    ///< trigger place (first of the batch)
  /// Every place this pass declared dead, in place-id order. A single death
  /// is a one-element batch; the threaded detector may legally merge deaths
  /// whose silence windows complete in the same monitor sweep, so tests pin
  /// the batch CONTENTS (the concatenation across recoveries is exactly the
  /// fault plan's places, in order) rather than the batch count.
  std::vector<std::int32_t> dead_places;
  std::int32_t epoch = 0;          ///< 1-based, monotonic across the run —
                                   ///< each rebuild pass gets its own epoch
  bool nested = false;             ///< this death landed while a previous
                                   ///< rebuild/restore was still in flight
  double started_at = 0.0;         ///< seconds into the run (virtual or wall)
  double recovery_seconds = 0.0;   ///< duration of the recovery phase
  double detected_after_s = 0.0;   ///< crash -> declared-dead latency (0 with
                                   ///< the oracle detector, or if the place
                                   ///< was falsely evicted while alive)
  std::uint64_t lost = 0;          ///< finished vertices wiped with the place
  std::uint64_t restored = 0;        ///< finished vertices whose value survived
  std::uint64_t restored_remote = 0; ///< of which crossed the network
                                     ///< (RestoreMode::RestoreRemote only)
  std::uint64_t discarded = 0;       ///< finished-on-survivor values dropped
                                     ///< by the discard-remote restore mode
  std::uint64_t restored_spilled = 0;  ///< retired cells whose value survived
                                       ///< in a SpillStore (spill mode)
  std::uint64_t resurrected = 0;     ///< retired cells flipped back to
                                     ///< Unfinished because a consumer must
                                     ///< re-run and the value is gone
                                     ///< (retire mode)
};

struct RunReport {
  std::string app_name;
  std::string dag_name;
  std::uint64_t vertices = 0;        ///< |domain|
  std::uint64_t prefinished = 0;     ///< cells set by initial_value()
  std::uint64_t computed = 0;        ///< total compute() calls (> vertices
                                     ///< - prefinished when faults recompute)
  double elapsed_seconds = 0.0;      ///< wall (threaded) or virtual (sim)
  double recovery_seconds = 0.0;     ///< total time spent in recovery
  double detection_seconds = 0.0;    ///< total crash -> declaration latency
  std::uint64_t snapshots_taken = 0; ///< PeriodicSnapshot policy only
  double snapshot_seconds = 0.0;     ///< total time paused for snapshots
  std::vector<PlaceStats> places;
  std::vector<RecoveryRecord> recoveries;
  net::TrafficSnapshot traffic;      ///< whole-run totals
  std::uint64_t sim_events = 0;      ///< SimEngine: events processed
  std::vector<TraceEvent> trace;     ///< SimEngine, record_trace only —
                                     ///< derived from trace_log's vertex
                                     ///< spans (legacy view)
  /// Full span/message/detector history (RuntimeOptions::trace_level ==
  /// Full); null otherwise. Shared so RunReport stays cheap to copy.
  std::shared_ptr<obs::TraceLog> trace_log;
  /// Histograms + time-series samplers (trace_level >= Counters); null
  /// otherwise.
  std::shared_ptr<obs::MetricsReport> metrics;
  /// Per-vertex dispatch/cache/alloc/publish/compute attribution
  /// (RuntimeOptions::framework_tax); null otherwise. Deliberately kept out
  /// of the JSON/CSV emitters so profiled runs export byte-identically.
  std::shared_ptr<obs::FrameworkTax> framework_tax;

  PlaceStats totals() const {
    PlaceStats t;
    for (const PlaceStats& p : places) t += p;
    return t;
  }
};

}  // namespace dpx10
