// Dag — the paper's central abstraction (§IV, §V-A).
//
// A Dag describes a family of DP problems that share one dependency
// structure and differ only in size. Subclasses implement the two methods
// the paper requires of a custom pattern:
//
//   dependencies(v)      — vertices that must finish before v can run
//   anti_dependencies(v) — vertices whose indegree drops when v finishes
//
// Unlike the X10 original, Dag is not templated on the vertex value type:
// the structure of the graph is independent of what the cells store, which
// lets one pattern instance serve any application and keeps the pattern
// library out of template code.
//
// Contract for both methods: every returned id must lie inside domain()
// (use emit_if) and the two must be duals of each other
// (u ∈ deps(v) ⇔ v ∈ antideps(u)); tests/patterns_property_test.cpp
// enforces this for every shipped pattern.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "apgas/domain.h"
#include "common/vertex_id.h"

namespace dpx10 {

class Dag {
 public:
  Dag(std::int32_t height, std::int32_t width, DagDomain domain);
  virtual ~Dag() = default;

  Dag(const Dag&) = delete;
  Dag& operator=(const Dag&) = delete;

  /// Appends the predecessors of `v` to `out` (does not clear `out`).
  virtual void dependencies(VertexId v, std::vector<VertexId>& out) const = 0;

  /// Appends the successors of `v` to `out` (does not clear `out`).
  virtual void anti_dependencies(VertexId v, std::vector<VertexId>& out) const = 0;

  virtual std::string_view name() const = 0;

  std::int32_t height() const { return height_; }
  std::int32_t width() const { return width_; }
  const DagDomain& domain() const { return domain_; }

 protected:
  /// Appends {i, j} to `out` iff it is a valid cell of the domain — the
  /// standard way for patterns to express edges without boundary case
  /// analysis.
  void emit_if(std::int32_t i, std::int32_t j, std::vector<VertexId>& out) const {
    VertexId id{i, j};
    if (domain_.contains(id)) out.push_back(id);
  }

 private:
  std::int32_t height_;
  std::int32_t width_;
  DagDomain domain_;
};

}  // namespace dpx10
