// Scheduling strategies (§VI-C): deciding which place executes a
// newly-ready vertex.
//
// The decision is structural (it needs owners and the dependency list, not
// vertex values), so it is shared verbatim by both engines — the threaded
// engine calls it from many workers with per-thread RNGs, the simulator
// from its single deterministic stream.
#pragma once

#include <cstddef>
#include <vector>

#include "apgas/dist.h"
#include "apgas/heartbeat.h"
#include "apgas/place.h"
#include "common/rng.h"
#include "common/vertex_id.h"
#include "core/dag.h"
#include "core/runtime_options.h"

namespace dpx10 {

/// Picks the distribution slot that should execute `v` once it becomes
/// ready.
///
///  - Local / WorkStealing: the owner slot (stealing redistributes later,
///    at pop time, not at push time).
///  - Random: a uniform slot from `rng`.
///  - MinCommunication: the slot minimizing bytes moved — each dependency
///    owned elsewhere costs one value transfer, and executing away from the
///    owner costs one result writeback (§VI-C notes the strategy "calculates
///    the total cost of communication for executing them in each place and
///    chooses the minimum"). Only the owner slot and the dependencies'
///    owner slots can be optimal, so those are the candidates. Ties prefer
///    the owner (no writeback, better locality).
///
/// When the failure detector suspects places (`group` + `suspected` both
/// non-null and at least one bit set), Random draws only among healthy
/// slots and MinCommunication drops suspected candidates — routing work to
/// a place that is about to be declared dead just manufactures lost
/// vertices. With no suspicion the legacy code path (and hence the RNG
/// stream) is preserved exactly.
///
/// `scratch` avoids per-call allocation on the hot path.
std::int32_t choose_target_slot(Scheduling strategy, VertexId v, const Dag& dag,
                                const Dist& dist, std::size_t value_bytes,
                                Xoshiro256& rng, std::vector<VertexId>& scratch,
                                const PlaceGroup* group = nullptr,
                                const SuspicionSet* suspected = nullptr);

}  // namespace dpx10
