// RuntimeOptions — everything configurable about a DPX10 run.
//
// Mirrors the paper's launch knobs: X10_NPLACES/X10_NTHREADS (places and
// worker threads per place), the Dist structure, the scheduling strategy,
// the cache size, the restore manner, and fault injection. The cost/link
// models parameterize the SimEngine's virtual cluster; the ThreadedEngine
// ignores them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <algorithm>

#include "apgas/dist.h"
#include "apgas/fault.h"
#include "apgas/heartbeat.h"
#include "common/error.h"
#include "core/cache.h"
#include "mem/options.h"
#include "net/fault_injector.h"
#include "net/link_model.h"
#include "obs/trace_level.h"

namespace dpx10 {

/// §VI-C/§VI-E scheduling strategies, plus the work-stealing strategy the
/// paper lists as future work ("more scheduling methods will be developed").
enum class Scheduling : std::uint8_t {
  Local = 0,         ///< run each vertex on its owner place (default)
  Random,            ///< run on a uniformly random alive place
  MinCommunication,  ///< run where the dependency transfer cost is minimal
  WorkStealing,      ///< local + idle places steal ready vertices
};

std::string_view scheduling_name(Scheduling s);

/// How the engines survive a place death.
enum class RecoveryPolicy : std::uint8_t {
  /// The paper's contribution (§VI-D): rebuild the distributed array over
  /// the survivors, keep their finished results, recompute only what died
  /// (or moved, under RestoreMode::DiscardRemote).
  Rebuild = 0,
  /// Resilient X10's ResilientDistArray baseline: periodic global
  /// snapshots; a failure rolls the whole computation back to the last one.
  PeriodicSnapshot,
};

std::string_view recovery_policy_name(RecoveryPolicy p);

/// §VI-E "Restore manner": what happens to finished vertices whose data
/// would have to cross the network during recovery.
enum class RestoreMode : std::uint8_t {
  DiscardRemote = 0,  ///< recompute them (paper default)
  RestoreRemote,      ///< copy them to the new owner
};

std::string_view restore_mode_name(RestoreMode m);

/// Order in which a place's worker pulls vertices from its ready list.
/// FIFO (the default — the paper's worker "repeatedly pulls the vertices
/// from the list") advances a broad breadth-first frontier; LIFO mimics a
/// Cilk-style newest-first activity stack, descending depth-first with a
/// narrow frontier. The tradeoff is measured by bench/ablate_scheduling.
enum class ReadyOrder : std::uint8_t {
  Fifo = 0,
  Lifo,
};

std::string_view ready_order_name(ReadyOrder r);

/// Virtual-time cost model for the SimEngine. Values are per-operation
/// nanoseconds; defaults approximate the paper's per-vertex costs (tiny
/// arithmetic recurrences dominated by runtime bookkeeping — see
/// EXPERIMENTS.md for the calibration notes).
struct CostModel {
  // Calibration (see EXPERIMENTS.md): the paper's Fig. 10/11 throughputs
  // imply roughly 8 us of work per vertex-core — X10 spawns one activity
  // per vertex, so activity spawn/dispatch dominates the arithmetic of the
  // recurrences. We split it ~90/10 between "user activity" and DPX10
  // bookkeeping, matching the measured 1.02-1.12x DPX10/X10 overhead of
  // Fig. 12.
  double compute_ns = 7000.0;       ///< per-vertex activity (spawn + compute)
  double framework_ns = 700.0;      ///< DPX10 bookkeeping per vertex
  double local_dep_ns = 60.0;       ///< reading one local/cached dependency
  // Recovery constants are calibrated against Fig. 13a: 13-65 s to rebuild
  // 100-500 M vertices over 7 survivors implies ~1 us of rebuild work per
  // finished cell (allocation, rehash, indegree re-initialization).
  double recovery_scan_ns = 300.0;   ///< per-cell scan while rebuilding
  double restore_copy_ns = 1200.0;   ///< per-cell local restore copy
  /// Per-cell cost of writing one periodic snapshot (copy + redundant
  /// placement), parallel across places. Matches restore_copy_ns: a
  /// snapshot writes what a restore reads.
  double snapshot_copy_ns = 1200.0;
};

/// Timeout/backoff protocol for remote dependency fetches on an unreliable
/// network. A fetch that has not seen a reply by the deadline retransmits
/// the request and doubles the timeout (with jitter, to avoid retry storms
/// from lockstep timers); a reply for an already-satisfied fetch is matched
/// by its sequence number and idempotently discarded. After `max_attempts`
/// the fetch either parks until the failure detector resolves the owner's
/// fate (owner crashed) or keeps retrying at the backoff ceiling (owner
/// alive but the link is foul — eviction is the detector's call, not the
/// fetch path's).
struct RetryConfig {
  double timeout_s = 250.0e-6;   ///< initial retransmit deadline
  double max_timeout_s = 4.0e-3; ///< exponential backoff ceiling
  double backoff_jitter = 0.25;  ///< +/- fraction applied to each backoff
  std::int32_t max_attempts = 12;

  void validate() const {
    require(timeout_s > 0.0, "RetryConfig: timeout_s must be positive");
    require(max_timeout_s >= timeout_s,
            "RetryConfig: max_timeout_s must be >= timeout_s");
    require(backoff_jitter >= 0.0 && backoff_jitter < 1.0,
            "RetryConfig: backoff_jitter must be in [0, 1)");
    require(max_attempts > 0, "RetryConfig: max_attempts must be positive");
  }
};

struct RuntimeOptions {
  std::int32_t nplaces = 4;
  std::int32_t nthreads = 2;
  DistKind dist = DistKind::BlockRow;
  Scheduling scheduling = Scheduling::Local;
  ReadyOrder ready_order = ReadyOrder::Fifo;
  std::size_t cache_capacity = 1024;
  CachePolicy cache_policy = CachePolicy::Fifo;  ///< paper default: FIFO (per §VI-C)
  /// SimEngine: record one TraceEvent per vertex dispatch (tests/tools).
  /// Subsumed by trace_level == Full; kept as the cheap legacy knob.
  bool record_trace = false;
  /// Observability depth for both engines: Off (default, near-zero cost),
  /// Counters (histograms + time-series samplers), Full (adds lifecycle
  /// spans for vertices/messages and detector transitions).
  obs::TraceLevel trace_level = obs::TraceLevel::Off;
  /// Sampler period for the Counters/Full time series: virtual seconds in
  /// the SimEngine, wall seconds (floored at 1 ms) in the ThreadedEngine.
  double trace_sample_s = 1.0e-3;
  /// Communication coalescing (both engines). When on, a vertex's remote
  /// dependencies are grouped by owner place and fetched with ONE
  /// BatchFetchRequest/BatchFetchReply pair per owner, and a publish flushes
  /// ONE BatchIndegreeControl per destination place (carrying the finished
  /// value, which seeds the destination's vertex cache) instead of one
  /// IndegreeControl per edge. Off by default: the legacy per-edge wire
  /// protocol is what the paper's traffic discussion (§VI-C) and the
  /// calibrated Fig. 10 curves describe, so measurements against the paper
  /// should leave this off.
  bool coalescing = false;
  /// ThreadedEngine: number of per-worker ready-deque shards per place.
  /// 0 = one shard per worker thread (the sharded scheduler); 1 = the
  /// legacy single mutex+deque per place. Values > nthreads are clamped.
  std::int32_t queue_shards = 0;
  /// ThreadedEngine: number of lock stripes for the per-place vertex cache.
  /// 0 = one stripe per worker thread; 1 = the legacy single cache lock.
  std::int32_t cache_stripes = 0;
  RestoreMode restore = RestoreMode::DiscardRemote;
  RecoveryPolicy recovery = RecoveryPolicy::Rebuild;
  /// PeriodicSnapshot only: take a snapshot each time this fraction of the
  /// computable vertices finishes (0.1 = ten snapshots over a full run).
  double snapshot_interval = 0.1;
  std::vector<FaultPlan> faults;  ///< applied in (at, place-id) order
  std::uint64_t seed = 42;
  /// SimEngine durable checkpointing: when non-empty, the engine commits a
  /// versioned on-disk checkpoint bundle (manifest + cell extents, atomic
  /// rename) under this directory each time `checkpoint_interval` of the
  /// computable vertices finishes. See docs/FAULTS.md §resume.
  std::string checkpoint_dir;
  /// Fraction of computable vertices between checkpoint bundles (0.25 =
  /// three mid-run bundles over a full run).
  double checkpoint_interval = 0.25;
  /// SimEngine: reload the latest consistent bundle from this directory
  /// before running and finish bit-identically to the uninterrupted
  /// seed-matched run. Implies checkpoint_dir (the resumed run keeps
  /// checkpointing into the same directory so later barriers line up).
  std::string resume_dir;
  /// ThreadedEngine wedge (quiescence) detector: if every worker is idle,
  /// nothing is executing, no recovery pause is in flight, and the finished
  /// count has not moved for this many wall seconds, the run is declared
  /// wedged and fails with an InternalError instead of hanging forever — a
  /// dropped indegree decrement (DAG bug, engine bug, or dpx10check's
  /// planted mutation) surfaces as a diagnosable failure. 0 disables.
  double wedge_timeout_s = 10.0;
  /// Flight recorder: events retained per worker ring (always on by
  /// default; near-zero cost — one branch + uncontended lock + store per
  /// event). 0 disables the recorder entirely. See docs/OBSERVABILITY.md.
  std::int32_t flight_events = 4096;
  /// When non-empty, the flight recorder's merged rings are dumped to this
  /// path (a loadable native trace) on run failure, on wedge-detector fire,
  /// and whenever a dump is requested (SIGUSR1/SIGQUIT via dpx10run, or
  /// obs::request_flight_dump()).
  std::string flight_dump;
  /// When non-empty, both engines periodically publish a versioned
  /// StatusSnapshot to this file (atomic tmp+rename) for dpx10top and the
  /// stall watchdog. The publish cadence is status_interval_s WALL seconds
  /// in both engines — file I/O never enters the SimEngine's virtual time,
  /// so results stay byte-identical with the export on or off.
  std::string status_file;
  double status_interval_s = 0.05;
  /// Attribute per-vertex cost to dispatch/cache/alloc/publish/compute
  /// buckets (dpx10run --profile=framework-tax). Adds ~6 clock reads per
  /// vertex on the ThreadedEngine; the SimEngine attributes modeled costs.
  bool framework_tax = false;
  /// Macro-DAG tiling (--tile, both engines): regroup the app's cell DAG
  /// into B × B tiles whose interiors run as raw serial loops, so the
  /// scheduler, caches, coalescer, recovery, and memory governor operate on
  /// inter-tile boundary edges only (core/tiling.h). 0 or 1 = off (the
  /// legacy per-cell path). The engines themselves are granularity-blind:
  /// launchers (dp/runners, dpx10check) consume this knob to construct the
  /// tiled DAG/app pair before instantiating an engine.
  std::int32_t tile_size = 0;

  net::LinkModel link;            ///< SimEngine interconnect
  CostModel cost;                 ///< SimEngine per-operation costs
  net::NetFaultConfig netfaults;  ///< message drop/dup/jitter/stall injection
  HeartbeatConfig heartbeat;      ///< failure detector parameters
  RetryConfig retry;              ///< remote-fetch timeout/backoff protocol
  mem::MemoryOptions memory;      ///< cell retirement / accounting / spill

  /// Validates every knob and normalizes the fault plan: faults are sorted
  /// by (kind, at, place id), so several distinct places may legally die at
  /// the same instant — the place-id tie-break fixes the kill order and
  /// keeps the recovery sequence deterministic. Only true duplicates (the
  /// same place dying twice) and killing every place are rejected.
  void validate() {
    require(nplaces > 0, "RuntimeOptions: nplaces must be positive");
    require(nthreads > 0, "RuntimeOptions: nthreads must be positive");
    require(static_cast<std::int64_t>(faults.size()) < nplaces,
            "RuntimeOptions: cannot kill every place");
    require(snapshot_interval > 0.0 && snapshot_interval <= 1.0,
            "RuntimeOptions: snapshot_interval must be in (0, 1]");
    require(trace_sample_s > 0.0,
            "RuntimeOptions: trace_sample_s must be positive");
    require(queue_shards >= 0,
            "RuntimeOptions: queue_shards must be >= 0 (0 = per-worker)");
    require(cache_stripes >= 0,
            "RuntimeOptions: cache_stripes must be >= 0 (0 = per-worker)");
    require(wedge_timeout_s >= 0.0,
            "RuntimeOptions: wedge_timeout_s must be >= 0 (0 = disabled)");
    require(flight_events >= 0,
            "RuntimeOptions: flight_events must be >= 0 (0 = disabled)");
    require(status_interval_s > 0.0,
            "RuntimeOptions: status_interval_s must be positive");
    require(tile_size >= 0,
            "RuntimeOptions: tile_size must be >= 0 (0/1 = untiled)");
    for (std::size_t a = 0; a < faults.size(); ++a) {
      faults[a].validate(nplaces);
      for (std::size_t b = a + 1; b < faults.size(); ++b) {
        require(faults[a].place != faults[b].place,
                "RuntimeOptions: a place can only die once");
      }
    }
    // Fraction-based faults fire in at_fraction order, event-based faults in
    // at_event order. Exact ties are legal — several places dying at the
    // same instant is precisely the correlated-failure case — and break
    // deterministically by place id, lowest first.
    std::stable_sort(faults.begin(), faults.end(),
                     [](const FaultPlan& a, const FaultPlan& b) {
                       if (a.event_based() != b.event_based()) return !a.event_based();
                       if (a.event_based()) {
                         if (a.at_event != b.at_event) return a.at_event < b.at_event;
                       } else if (a.at_fraction != b.at_fraction) {
                         return a.at_fraction < b.at_fraction;
                       }
                       return a.place < b.place;
                     });
    require(resume_dir.empty() || checkpoint_dir.empty() ||
                checkpoint_dir == resume_dir,
            "RuntimeOptions: --resume and --checkpoint-dir must name the "
            "same directory (the resumed run keeps checkpointing there)");
    if (!resume_dir.empty() && checkpoint_dir.empty()) checkpoint_dir = resume_dir;
    if (!checkpoint_dir.empty()) {
      require(checkpoint_interval > 0.0 && checkpoint_interval <= 1.0,
              "RuntimeOptions: checkpoint_interval must be in (0, 1]");
      require(recovery == RecoveryPolicy::Rebuild,
              "RuntimeOptions: checkpointing requires the rebuild recovery "
              "policy (the snapshot vault is not persisted)");
      require(memory.retirement == mem::RetirementMode::Off,
              "RuntimeOptions: checkpointing requires --retirement=off "
              "(retired payloads live in process-local spill files)");
      require(!netfaults.any(),
              "RuntimeOptions: checkpointing requires a reliable network "
              "(the injector's RNG cursor is not persisted)");
    }
    netfaults.validate(nplaces);
    heartbeat.validate();
    retry.validate();
    memory.validate();
  }
};

inline std::string_view scheduling_name(Scheduling s) {
  switch (s) {
    case Scheduling::Local: return "local";
    case Scheduling::Random: return "random";
    case Scheduling::MinCommunication: return "min-comm";
    case Scheduling::WorkStealing: return "work-stealing";
  }
  return "?";
}

inline std::string_view restore_mode_name(RestoreMode m) {
  switch (m) {
    case RestoreMode::DiscardRemote: return "discard-remote";
    case RestoreMode::RestoreRemote: return "restore-remote";
  }
  return "?";
}

inline std::string_view recovery_policy_name(RecoveryPolicy p) {
  switch (p) {
    case RecoveryPolicy::Rebuild: return "rebuild";
    case RecoveryPolicy::PeriodicSnapshot: return "periodic-snapshot";
  }
  return "?";
}

inline std::string_view ready_order_name(ReadyOrder r) {
  switch (r) {
    case ReadyOrder::Fifo: return "fifo";
    case ReadyOrder::Lifo: return "lifo";
  }
  return "?";
}

}  // namespace dpx10
