// Vertex<T> — the dependency view handed to compute() (paper Fig. 2).
//
// The X10 API passes a Rail[Vertex[T]] of *finished* dependency vertices;
// user code matches on (i, j) and reads getResult(). We keep the exact
// shape: an id plus the computed value, passed by span. The engines own the
// authoritative cell state (apgas/dist_array.h); Vertex is a value snapshot,
// so compute() can never race with the store.
#pragma once

#include <cstdint>

#include "common/vertex_id.h"

namespace dpx10 {

template <typename T>
struct Vertex {
  VertexId id;
  T value{};

  std::int32_t i() const { return id.i; }
  std::int32_t j() const { return id.j; }

  /// X10-API name preserved: the vertex's computed result.
  const T& result() const { return value; }
};

}  // namespace dpx10
