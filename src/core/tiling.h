// Tiled wavefront execution — the paper's future-work "sophisticated
// scheduling and cache techniques" (§X), realized as macro-vertices.
//
// Per-vertex scheduling pays the framework's constant on every cell; for
// fine recurrences that constant dominates (the paper's Fig. 12 measures
// it). Tiling groups the matrix into B × B blocks: each DAG vertex computes
// a whole tile with tight loops and exchanges only the tile's boundary
// (its bottom row and right column), so scheduling cost and communication
// volume drop by ~B× while the wavefront structure — and therefore the
// framework's scheduling, distribution, and fault tolerance — is unchanged.
// bench/ablate_tiling sweeps B and exposes the classic granularity
// tradeoff: too-small tiles pay overhead, too-large tiles starve the
// wavefront of parallelism.
//
// Works for the left-top-diag kernel family (LCS/SW/SWLAG/MTP — any
// recurrence expressible as a dp/kernels.h cell kernel).
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/error.h"
#include "core/app.h"
#include "core/patterns/left_top_diag.h"
#include "core/value_traits.h"
#include "mem/spill_codec.h"

namespace dpx10 {

/// The boundary a tile exposes to its right/bottom/diagonal consumers:
/// its last row and last column (the shared corner appears in both).
template <typename C>
struct TileEdge {
  std::vector<C> bottom;  ///< values of the tile's last row, left to right
  std::vector<C> right;   ///< values of the tile's last column, top to bottom

  friend bool operator==(const TileEdge&, const TileEdge&) = default;
};

template <typename C>
struct ValueTraits<TileEdge<C>> {
  static std::size_t wire_bytes(const TileEdge<C>& edge) {
    return (edge.bottom.size() + edge.right.size()) * sizeof(C);
  }
  static void release(TileEdge<C>& edge) {
    edge = TileEdge<C>{};  // drops the heap buffers, not just the elements
  }
};

/// Spill encoding of a tile boundary: the two extents as u64, then the raw
/// cell arrays. Makes tiled apps eligible for --retirement=spill.
template <typename C>
struct mem::SpillCodec<TileEdge<C>> {
  static_assert(std::is_trivially_copyable_v<C>,
                "TileEdge spill codec needs trivially copyable cells");
  static constexpr bool available = true;

  static void encode(const TileEdge<C>& edge, std::vector<std::byte>& out) {
    const std::uint64_t nb = edge.bottom.size();
    const std::uint64_t nr = edge.right.size();
    out.resize(2 * sizeof(std::uint64_t) + (nb + nr) * sizeof(C));
    std::byte* p = out.data();
    std::memcpy(p, &nb, sizeof(nb));
    p += sizeof(nb);
    std::memcpy(p, &nr, sizeof(nr));
    p += sizeof(nr);
    if (nb) std::memcpy(p, edge.bottom.data(), nb * sizeof(C));
    p += nb * sizeof(C);
    if (nr) std::memcpy(p, edge.right.data(), nr * sizeof(C));
  }

  static bool decode(const std::byte* data, std::size_t size, TileEdge<C>& out) {
    if (size < 2 * sizeof(std::uint64_t)) return false;
    std::uint64_t nb = 0;
    std::uint64_t nr = 0;
    std::memcpy(&nb, data, sizeof(nb));
    std::memcpy(&nr, data + sizeof(nb), sizeof(nr));
    if (size != 2 * sizeof(std::uint64_t) + (nb + nr) * sizeof(C)) return false;
    const std::byte* p = data + 2 * sizeof(std::uint64_t);
    out.bottom.resize(static_cast<std::size_t>(nb));
    out.right.resize(static_cast<std::size_t>(nr));
    if (nb) std::memcpy(out.bottom.data(), p, nb * sizeof(C));
    if (nr) std::memcpy(out.right.data(), p + nb * sizeof(C), nr * sizeof(C));
    return true;
  }
};

/// Integer geometry of a tiled matrix.
class TileGeometry {
 public:
  TileGeometry(std::int32_t rows, std::int32_t cols, std::int32_t tile)
      : rows_(rows), cols_(cols), tile_(tile) {
    require(rows > 0 && cols > 0, "TileGeometry: matrix extents must be positive");
    require(tile > 0, "TileGeometry: tile size must be positive");
  }

  std::int32_t rows() const { return rows_; }
  std::int32_t cols() const { return cols_; }
  std::int32_t tile() const { return tile_; }

  std::int32_t tiles_i() const { return (rows_ + tile_ - 1) / tile_; }
  std::int32_t tiles_j() const { return (cols_ + tile_ - 1) / tile_; }

  std::int32_t row_begin(std::int32_t bi) const { return bi * tile_; }
  std::int32_t row_end(std::int32_t bi) const {
    std::int32_t end = (bi + 1) * tile_;
    return end < rows_ ? end : rows_;
  }
  std::int32_t col_begin(std::int32_t bj) const { return bj * tile_; }
  std::int32_t col_end(std::int32_t bj) const {
    std::int32_t end = (bj + 1) * tile_;
    return end < cols_ ? end : cols_;
  }

 private:
  std::int32_t rows_;
  std::int32_t cols_;
  std::int32_t tile_;
};

/// DPX10 application computing `Kernel`'s recurrence tile-by-tile over the
/// built-in left-top-diag pattern instantiated at tile granularity
/// (patterns::LeftTopDiagDag(tiles_i, tiles_j)).
template <typename Kernel>
class TiledWavefrontApp : public DPX10App<TileEdge<typename Kernel::Value>> {
 public:
  using C = typename Kernel::Value;
  using Edge = TileEdge<C>;

  TiledWavefrontApp(Kernel kernel, TileGeometry geometry)
      : kernel_(std::move(kernel)), geo_(geometry) {}

  /// The matching DAG for this app.
  std::unique_ptr<Dag> make_dag() const {
    return std::make_unique<patterns::LeftTopDiagDag>(geo_.tiles_i(), geo_.tiles_j());
  }

  const TileGeometry& geometry() const { return geo_; }

  Edge compute(std::int32_t bi, std::int32_t bj,
               std::span<const Vertex<Edge>> deps) override {
    const Edge* left = nullptr;
    const Edge* top = nullptr;
    const Edge* diag = nullptr;
    for (const Vertex<Edge>& v : deps) {
      if (v.i() == bi && v.j() == bj - 1) left = &v.result();
      if (v.i() == bi - 1 && v.j() == bj) top = &v.result();
      if (v.i() == bi - 1 && v.j() == bj - 1) diag = &v.result();
    }

    const std::int32_t r0 = geo_.row_begin(bi), r1 = geo_.row_end(bi);
    const std::int32_t c0 = geo_.col_begin(bj), c1 = geo_.col_end(bj);
    const std::int32_t h = r1 - r0, w = c1 - c0;

    // Scratch holds one halo row/column plus the tile: (h+1) x (w+1),
    // local to this call so the threaded engine can run tiles concurrently.
    std::vector<C> scratch(static_cast<std::size_t>(h + 1) * (w + 1));
    auto at = [&](std::int32_t li, std::int32_t lj) -> C& {
      return scratch[static_cast<std::size_t>(li + 1) * (w + 1) + (lj + 1)];
    };

    // Halo row (global row r0-1): diag corner + top tile's bottom row. The
    // diag tile exists exactly when both bi > 0 and bj > 0; otherwise the
    // corner is a virtual boundary cell.
    at(-1, -1) = diag ? diag->bottom.back() : kernel_.boundary(r0 - 1, c0 - 1);
    for (std::int32_t lj = 0; lj < w; ++lj) {
      at(-1, lj) = top ? top->bottom[static_cast<std::size_t>(lj)]
                       : kernel_.boundary(r0 - 1, c0 + lj);
    }
    // Halo column (global column c0-1): left tile's right column.
    for (std::int32_t li = 0; li < h; ++li) {
      at(li, -1) = left ? left->right[static_cast<std::size_t>(li)]
                        : kernel_.boundary(r0 + li, c0 - 1);
    }

    for (std::int32_t li = 0; li < h; ++li) {
      for (std::int32_t lj = 0; lj < w; ++lj) {
        at(li, lj) = kernel_.cell(r0 + li, c0 + lj, at(li - 1, lj - 1), at(li - 1, lj),
                                  at(li, lj - 1));
      }
    }

    Edge out;
    out.bottom.resize(static_cast<std::size_t>(w));
    out.right.resize(static_cast<std::size_t>(h));
    for (std::int32_t lj = 0; lj < w; ++lj) {
      out.bottom[static_cast<std::size_t>(lj)] = at(h - 1, lj);
    }
    for (std::int32_t li = 0; li < h; ++li) {
      out.right[static_cast<std::size_t>(li)] = at(li, c1 - c0 - 1);
    }
    return out;
  }

  /// One tile costs as many compute units as it has cells, keeping virtual
  /// time comparable with per-vertex execution.
  double compute_cost_units(VertexId id) const override {
    return static_cast<double>(geo_.row_end(id.i) - geo_.row_begin(id.i)) *
           static_cast<double>(geo_.col_end(id.j) - geo_.col_begin(id.j));
  }

  std::string_view name() const override { return "tiled-wavefront"; }

 private:
  Kernel kernel_;
  TileGeometry geo_;
};

}  // namespace dpx10
