// Tiled wavefront execution — the paper's future-work "sophisticated
// scheduling and cache techniques" (§X), realized as macro-vertices.
//
// Per-vertex scheduling pays the framework's constant on every cell; for
// fine recurrences that constant dominates (the paper's Fig. 12 measures
// it). Tiling groups the matrix into B × B blocks: each DAG vertex computes
// a whole tile with tight loops and exchanges only the tile's boundary
// (its bottom row and right column), so scheduling cost and communication
// volume drop by ~B× while the wavefront structure — and therefore the
// framework's scheduling, distribution, and fault tolerance — is unchanged.
// bench/ablate_tiling sweeps B and exposes the classic granularity
// tradeoff: too-small tiles pay overhead, too-large tiles starve the
// wavefront of parallelism.
//
// Two execution tiers share this file (--tile=B / RuntimeOptions::tile_size):
//
//   * TiledWavefrontApp<Kernel> — the fast path for the left-top-diag kernel
//     family (LCS/SW/SWLAG/MTP — any recurrence expressible as a
//     dp/kernels.h cell kernel). Tile interiors are raw serial loops and a
//     tile publishes only its TileEdge boundary, so payloads stay O(B).
//
//   * TiledDag + TiledApp<T> — the generic path for ANY app/DAG pair,
//     including Nussinov-class interval recurrences with long-range edges.
//     The cell DAG is regrouped into a macro-DAG over the tile-level
//     domain (rect → rect, upper-triangular → upper-triangular, banded →
//     banded with ⌈band/B⌉), tile interiors run a local Kahn order calling
//     the wrapped app's compute(), and a tile publishes a TileBlock holding
//     exactly the cells some other tile (or the final result) still needs.
//
// Either way the engines schedule, cache, coalesce, recover, and govern
// memory at tile granularity — the framework constant is paid once per
// tile, not once per cell.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "apgas/dist_array.h"
#include "common/error.h"
#include "core/app.h"
#include "core/dag.h"
#include "core/patterns/left_top_diag.h"
#include "core/value_traits.h"
#include "mem/spill_codec.h"

namespace dpx10 {

/// The boundary a tile exposes to its right/bottom/diagonal consumers:
/// its last row and last column (the shared corner appears in both).
template <typename C>
struct TileEdge {
  std::vector<C> bottom;  ///< values of the tile's last row, left to right
  std::vector<C> right;   ///< values of the tile's last column, top to bottom

  friend bool operator==(const TileEdge&, const TileEdge&) = default;
};

template <typename C>
struct ValueTraits<TileEdge<C>> {
  static std::size_t wire_bytes(const TileEdge<C>& edge) {
    return (edge.bottom.size() + edge.right.size()) * sizeof(C);
  }
  static void release(TileEdge<C>& edge) {
    edge = TileEdge<C>{};  // drops the heap buffers, not just the elements
  }
};

/// Spill encoding of a tile boundary: the two extents as u64, then the raw
/// cell arrays. Makes tiled apps eligible for --retirement=spill.
template <typename C>
struct mem::SpillCodec<TileEdge<C>> {
  static_assert(std::is_trivially_copyable_v<C>,
                "TileEdge spill codec needs trivially copyable cells");
  static constexpr bool available = true;

  static void encode(const TileEdge<C>& edge, std::vector<std::byte>& out) {
    const std::uint64_t nb = edge.bottom.size();
    const std::uint64_t nr = edge.right.size();
    out.resize(2 * sizeof(std::uint64_t) + (nb + nr) * sizeof(C));
    std::byte* p = out.data();
    std::memcpy(p, &nb, sizeof(nb));
    p += sizeof(nb);
    std::memcpy(p, &nr, sizeof(nr));
    p += sizeof(nr);
    if (nb) std::memcpy(p, edge.bottom.data(), nb * sizeof(C));
    p += nb * sizeof(C);
    if (nr) std::memcpy(p, edge.right.data(), nr * sizeof(C));
  }

  static bool decode(const std::byte* data, std::size_t size, TileEdge<C>& out) {
    if (size < 2 * sizeof(std::uint64_t)) return false;
    std::uint64_t nb = 0;
    std::uint64_t nr = 0;
    std::memcpy(&nb, data, sizeof(nb));
    std::memcpy(&nr, data + sizeof(nb), sizeof(nr));
    if (size != 2 * sizeof(std::uint64_t) + (nb + nr) * sizeof(C)) return false;
    const std::byte* p = data + 2 * sizeof(std::uint64_t);
    out.bottom.resize(static_cast<std::size_t>(nb));
    out.right.resize(static_cast<std::size_t>(nr));
    if (nb) std::memcpy(out.bottom.data(), p, nb * sizeof(C));
    if (nr) std::memcpy(out.right.data(), p + nb * sizeof(C), nr * sizeof(C));
    return true;
  }
};

/// Integer geometry of a tiled matrix.
class TileGeometry {
 public:
  TileGeometry(std::int32_t rows, std::int32_t cols, std::int32_t tile)
      : rows_(rows), cols_(cols), tile_(tile) {
    require(rows > 0 && cols > 0, "TileGeometry: matrix extents must be positive");
    require(tile > 0, "TileGeometry: tile size must be positive");
  }

  std::int32_t rows() const { return rows_; }
  std::int32_t cols() const { return cols_; }
  std::int32_t tile() const { return tile_; }

  std::int32_t tiles_i() const { return (rows_ + tile_ - 1) / tile_; }
  std::int32_t tiles_j() const { return (cols_ + tile_ - 1) / tile_; }

  std::int32_t row_begin(std::int32_t bi) const { return bi * tile_; }
  std::int32_t row_end(std::int32_t bi) const {
    std::int32_t end = (bi + 1) * tile_;
    return end < rows_ ? end : rows_;
  }
  std::int32_t col_begin(std::int32_t bj) const { return bj * tile_; }
  std::int32_t col_end(std::int32_t bj) const {
    std::int32_t end = (bj + 1) * tile_;
    return end < cols_ ? end : cols_;
  }

 private:
  std::int32_t rows_;
  std::int32_t cols_;
  std::int32_t tile_;
};

/// DPX10 application computing `Kernel`'s recurrence tile-by-tile over the
/// built-in left-top-diag pattern instantiated at tile granularity
/// (patterns::LeftTopDiagDag(tiles_i, tiles_j)).
template <typename Kernel>
class TiledWavefrontApp : public DPX10App<TileEdge<typename Kernel::Value>> {
 public:
  using C = typename Kernel::Value;
  using Edge = TileEdge<C>;

  TiledWavefrontApp(Kernel kernel, TileGeometry geometry)
      : kernel_(std::move(kernel)), geo_(geometry) {}

  /// The matching DAG for this app.
  std::unique_ptr<Dag> make_dag() const {
    return std::make_unique<patterns::LeftTopDiagDag>(geo_.tiles_i(), geo_.tiles_j());
  }

  const TileGeometry& geometry() const { return geo_; }

  Edge compute(std::int32_t bi, std::int32_t bj,
               std::span<const Vertex<Edge>> deps) override {
    const Edge* left = nullptr;
    const Edge* top = nullptr;
    const Edge* diag = nullptr;
    for (const Vertex<Edge>& v : deps) {
      if (v.i() == bi && v.j() == bj - 1) left = &v.result();
      if (v.i() == bi - 1 && v.j() == bj) top = &v.result();
      if (v.i() == bi - 1 && v.j() == bj - 1) diag = &v.result();
    }

    const std::int32_t r0 = geo_.row_begin(bi), r1 = geo_.row_end(bi);
    const std::int32_t c0 = geo_.col_begin(bj), c1 = geo_.col_end(bj);
    const std::int32_t h = r1 - r0, w = c1 - c0;

    // Scratch holds one halo row/column plus the tile: (h+1) x (w+1),
    // local to this call so the threaded engine can run tiles concurrently.
    std::vector<C> scratch(static_cast<std::size_t>(h + 1) * (w + 1));
    auto at = [&](std::int32_t li, std::int32_t lj) -> C& {
      return scratch[static_cast<std::size_t>(li + 1) * (w + 1) + (lj + 1)];
    };

    // Halo row (global row r0-1): diag corner + top tile's bottom row. The
    // diag tile exists exactly when both bi > 0 and bj > 0; otherwise the
    // corner is a virtual boundary cell.
    at(-1, -1) = diag ? diag->bottom.back() : kernel_.boundary(r0 - 1, c0 - 1);
    for (std::int32_t lj = 0; lj < w; ++lj) {
      at(-1, lj) = top ? top->bottom[static_cast<std::size_t>(lj)]
                       : kernel_.boundary(r0 - 1, c0 + lj);
    }
    // Halo column (global column c0-1): left tile's right column.
    for (std::int32_t li = 0; li < h; ++li) {
      at(li, -1) = left ? left->right[static_cast<std::size_t>(li)]
                        : kernel_.boundary(r0 + li, c0 - 1);
    }

    for (std::int32_t li = 0; li < h; ++li) {
      for (std::int32_t lj = 0; lj < w; ++lj) {
        at(li, lj) = kernel_.cell(r0 + li, c0 + lj, at(li - 1, lj - 1), at(li - 1, lj),
                                  at(li, lj - 1));
      }
    }

    Edge out;
    out.bottom.resize(static_cast<std::size_t>(w));
    out.right.resize(static_cast<std::size_t>(h));
    for (std::int32_t lj = 0; lj < w; ++lj) {
      out.bottom[static_cast<std::size_t>(lj)] = at(h - 1, lj);
    }
    for (std::int32_t li = 0; li < h; ++li) {
      out.right[static_cast<std::size_t>(li)] = at(li, c1 - c0 - 1);
    }
    return out;
  }

  /// One tile costs as many compute units as it has cells, keeping virtual
  /// time comparable with per-vertex execution.
  double compute_cost_units(VertexId id) const override {
    return static_cast<double>(geo_.row_end(id.i) - geo_.row_begin(id.i)) *
           static_cast<double>(geo_.col_end(id.j) - geo_.col_begin(id.j));
  }

  std::string_view name() const override { return "tiled-wavefront"; }

 private:
  Kernel kernel_;
  TileGeometry geo_;
};

// ---------------------------------------------------------------------------
// Generic macro-DAG tiling: any app / DAG pair, any supported domain kind.
// ---------------------------------------------------------------------------

/// Tile-level macro domain of a cell domain under B × B tiling. The mapping
/// cell (i, j) → tile (⌊i/B⌋, ⌊j/B⌋) stays inside the macro domain for every
/// valid cell: rectangles tile to rectangles, the upper triangle to the
/// upper triangle (i ≤ j ⇒ ⌊i/B⌋ ≤ ⌊j/B⌋), and a band of width `band` to a
/// band of width ⌈band/B⌉ (|i−j| ≤ band ⇒ |⌊i/B⌋−⌊j/B⌋| ≤ ⌈band/B⌉).
/// Banded macro domains may contain tiles with no valid cell (ragged band
/// edges); those run as ordinary vertices computing an empty payload.
inline DagDomain tile_domain(const DagDomain& cells, std::int32_t tile) {
  require(tile > 0, "tile_domain: tile size must be positive");
  const auto cdiv = [tile](std::int32_t x) { return (x + tile - 1) / tile; };
  switch (cells.kind()) {
    case DagDomain::Kind::Rect:
      return DagDomain::rect(cdiv(cells.height()), cdiv(cells.width()));
    case DagDomain::Kind::UpperTriangular:
      return DagDomain::upper_triangular(cdiv(cells.height()));
    case DagDomain::Kind::Banded:
      return DagDomain::banded(cdiv(cells.height()), cdiv(cells.width()),
                               cdiv(cells.band()));
  }
  throw ConfigError("tile_domain: unknown domain kind");
}

/// Macro-DAG over B × B tiles of an arbitrary cell DAG. A tile depends on
/// every distinct tile that owns a dependency of one of its cells; in-tile
/// edges vanish (they are resolved by the tile interior). Duality is
/// inherited: u ∈ deps(v) at cell level ⇔ v ∈ antideps(u), and the same
/// tile-mapping is applied to both sides.
class TiledDag final : public Dag {
 public:
  TiledDag(const Dag& cells, std::int32_t tile)
      : Dag(tile_domain(cells.domain(), tile).height(),
            tile_domain(cells.domain(), tile).width(),
            tile_domain(cells.domain(), tile)),
        cells_(&cells),
        tile_(tile),
        name_("tiled-" + std::string(cells.name())) {}

  /// Owning variant for callers that build the cell DAG and the macro-DAG
  /// in one expression (dp::make_dp_dag, dpx10run --validate-dag).
  TiledDag(std::shared_ptr<const Dag> cells, std::int32_t tile)
      : TiledDag(*cells, tile) {
    owned_ = std::move(cells);
  }

  const Dag& cells() const { return *cells_; }
  std::int32_t tile() const { return tile_; }

  /// Tile owning cell `id`.
  VertexId tile_of(VertexId id) const { return {id.i / tile_, id.j / tile_}; }

  /// Appends the valid cells of tile `t` in row-major (= ascending linear)
  /// order. May append nothing: ragged banded edges produce empty tiles.
  void cells_of(VertexId t, std::vector<VertexId>& out) const {
    const DagDomain& cd = cells_->domain();
    const std::int32_t r1 = std::min((t.i + 1) * tile_, cd.height());
    const std::int32_t c0 = t.j * tile_;
    const std::int32_t c1 = std::min((t.j + 1) * tile_, cd.width());
    for (std::int32_t r = t.i * tile_; r < r1; ++r) {
      const std::int32_t lo = std::max(c0, cd.row_begin(r));
      const std::int32_t hi = std::min(c1, cd.row_end(r));
      for (std::int32_t c = lo; c < hi; ++c) out.push_back({r, c});
    }
  }

  void dependencies(VertexId v, std::vector<VertexId>& out) const override {
    tile_edges(v, /*anti=*/false, out);
  }

  void anti_dependencies(VertexId v, std::vector<VertexId>& out) const override {
    tile_edges(v, /*anti=*/true, out);
  }

  std::string_view name() const override { return name_; }

 private:
  void tile_edges(VertexId t, bool anti, std::vector<VertexId>& out) const {
    std::vector<VertexId> local;
    cells_of(t, local);
    std::vector<VertexId> scratch;
    std::vector<VertexId> acc;
    for (const VertexId id : local) {
      scratch.clear();
      if (anti) {
        cells_->anti_dependencies(id, scratch);
      } else {
        cells_->dependencies(id, scratch);
      }
      for (const VertexId d : scratch) {
        const VertexId td = tile_of(d);
        if (td.i != t.i || td.j != t.j) acc.push_back(td);
      }
    }
    std::sort(acc.begin(), acc.end(), [](VertexId a, VertexId b) {
      return a.i != b.i ? a.i < b.i : a.j < b.j;
    });
    acc.erase(std::unique(acc.begin(), acc.end(),
                          [](VertexId a, VertexId b) {
                            return a.i == b.i && a.j == b.j;
                          }),
              acc.end());
    out.insert(out.end(), acc.begin(), acc.end());
  }

  const Dag* cells_;
  std::int32_t tile_;
  std::string name_;
  std::shared_ptr<const Dag> owned_;
};

/// The payload a generic tile publishes: the subset of its cells some other
/// tile still depends on, plus the DAG's sinks (cells with no consumer at
/// all — the final results). `cells` holds cell-domain linear indices in
/// ascending order, `values` is parallel to it.
template <typename T>
struct TileBlock {
  std::vector<std::int64_t> cells;
  std::vector<T> values;

  const T* find(std::int64_t index) const {
    const auto it = std::lower_bound(cells.begin(), cells.end(), index);
    if (it == cells.end() || *it != index) return nullptr;
    return &values[static_cast<std::size_t>(it - cells.begin())];
  }

  friend bool operator==(const TileBlock&, const TileBlock&) = default;
};

template <typename T>
struct ValueTraits<TileBlock<T>> {
  static std::size_t wire_bytes(const TileBlock<T>& block) {
    std::size_t bytes = block.cells.size() * sizeof(std::int64_t);
    for (const T& v : block.values) bytes += value_wire_bytes(v);
    return bytes;
  }
  static void release(TileBlock<T>& block) { block = TileBlock<T>{}; }
};

/// Spill encoding of a tile block (cell count, index array, raw values) —
/// available exactly when the cell payload itself is raw-copyable, which
/// covers every bundled app. Non-trivially-copyable cell types fall back to
/// the primary template's available = false and the governor rejects spill.
template <typename T>
struct mem::SpillCodec<TileBlock<T>, std::enable_if_t<std::is_trivially_copyable_v<T>>> {
  static constexpr bool available = true;

  static void encode(const TileBlock<T>& block, std::vector<std::byte>& out) {
    const std::uint64_t n = block.cells.size();
    out.resize(sizeof(n) + n * (sizeof(std::int64_t) + sizeof(T)));
    std::byte* p = out.data();
    std::memcpy(p, &n, sizeof(n));
    p += sizeof(n);
    if (n) {
      std::memcpy(p, block.cells.data(), n * sizeof(std::int64_t));
      p += n * sizeof(std::int64_t);
      std::memcpy(p, block.values.data(), n * sizeof(T));
    }
  }

  static bool decode(const std::byte* data, std::size_t size, TileBlock<T>& out) {
    if (size < sizeof(std::uint64_t)) return false;
    std::uint64_t n = 0;
    std::memcpy(&n, data, sizeof(n));
    if (size != sizeof(n) + n * (sizeof(std::int64_t) + sizeof(T))) return false;
    const std::byte* p = data + sizeof(n);
    out.cells.resize(static_cast<std::size_t>(n));
    out.values.resize(static_cast<std::size_t>(n));
    if (n) {
      std::memcpy(out.cells.data(), p, n * sizeof(std::int64_t));
      std::memcpy(out.values.data(), p + n * sizeof(std::int64_t), n * sizeof(T));
    }
    return true;
  }
};

/// Marks each cell (by cell-domain linear index) that survives into its
/// tile's published TileBlock: cells with at least one out-of-tile consumer,
/// plus sinks (no consumer at all). Everything else is interior scratch the
/// tiled executor discards — the analogue of what the memory governor's
/// retirement does per-cell, applied eagerly at publish time.
inline std::vector<char> tiled_retained_mask(const Dag& cells, std::int32_t tile) {
  const DagDomain& domain = cells.domain();
  std::vector<char> mask(static_cast<std::size_t>(domain.size()), 0);
  std::vector<VertexId> anti;
  for (std::int64_t index = 0; index < domain.size(); ++index) {
    const VertexId id = domain.delinearize(index);
    anti.clear();
    cells.anti_dependencies(id, anti);
    bool keep = anti.empty();  // sink: a final result nobody consumes
    for (const VertexId a : anti) {
      if (a.i / tile != id.i / tile || a.j / tile != id.j / tile) {
        keep = true;
        break;
      }
    }
    mask[static_cast<std::size_t>(index)] = keep ? 1 : 0;
  }
  return mask;
}

/// Adapter running any DPX10App<T> tile-by-tile over the matching TiledDag.
/// One macro-vertex executes the whole tile interior in local Kahn order
/// with direct inner.compute() calls — no scheduler, cache, or governor
/// traffic per cell — and publishes the retained cells as a TileBlock.
///
/// Prefinish semantics: a tile is prefinished (skipped entirely) only when
/// it is non-empty and EVERY cell has an inner initial_value; individually
/// prefinished cells inside computed tiles use their initial value during
/// interior execution. app_finished() re-materializes a cell-level view
/// from the tile payloads (including spilled ones, via the engine's
/// retired reader) so the wrapped app's result processing runs unchanged —
/// cells that were not retained are simply absent, exactly as they would be
/// after per-cell retirement.
template <typename T>
class TiledApp : public DPX10App<TileBlock<T>> {
 public:
  using Block = TileBlock<T>;

  TiledApp(DPX10App<T>& inner, const Dag& cells, std::int32_t tile)
      : inner_(&inner),
        cells_(&cells),
        tile_(tile),
        name_("tiled-" + std::string(inner.name())) {}

  Block compute(std::int32_t bi, std::int32_t bj,
                std::span<const Vertex<Block>> deps) override {
    const VertexId t{bi, bj};
    std::vector<VertexId> local;
    tile_cells(t, local);
    Block out;
    if (local.empty()) return out;  // ragged banded edge: empty tile

    // Cell values published by dependency tiles, keyed by linear index.
    std::unordered_map<std::int64_t, const T*> halo;
    for (const Vertex<Block>& v : deps) {
      const Block& block = v.result();
      for (std::size_t k = 0; k < block.cells.size(); ++k) {
        halo.emplace(block.cells[k], &block.values[k]);
      }
    }

    const DagDomain& domain = cells_->domain();
    std::unordered_map<std::int64_t, std::int32_t> slot_of;
    slot_of.reserve(local.size());
    for (std::size_t k = 0; k < local.size(); ++k) {
      slot_of.emplace(domain.linearize(local[k]), static_cast<std::int32_t>(k));
    }

    // In-tile indegrees, counting only edges between cells of this tile.
    const std::size_t n = local.size();
    std::vector<std::int32_t> indegree(n, 0);
    std::vector<VertexId> scratch;
    for (std::size_t k = 0; k < n; ++k) {
      scratch.clear();
      cells_->dependencies(local[k], scratch);
      for (const VertexId d : scratch) {
        if (slot_of.count(domain.linearize(d))) ++indegree[k];
      }
    }

    std::vector<T> value(n);
    std::vector<char> have(n, 0);
    std::vector<std::int32_t> ready;
    for (std::size_t k = 0; k < n; ++k) {
      if (indegree[k] == 0) ready.push_back(static_cast<std::int32_t>(k));
    }

    std::vector<Vertex<T>> cell_deps;
    std::vector<VertexId> anti;
    std::size_t done = 0;
    while (!ready.empty()) {
      const auto k = static_cast<std::size_t>(ready.back());
      ready.pop_back();
      const VertexId id = local[k];
      if (const std::optional<T> init = inner_->initial_value(id)) {
        value[k] = *init;
      } else {
        scratch.clear();
        cells_->dependencies(id, scratch);
        cell_deps.clear();
        for (const VertexId d : scratch) {
          const std::int64_t idx = domain.linearize(d);
          const auto it = slot_of.find(idx);
          if (it != slot_of.end()) {
            check_internal(have[static_cast<std::size_t>(it->second)] != 0,
                           "TiledApp: in-tile dependency not yet computed");
            cell_deps.push_back(Vertex<T>{d, value[static_cast<std::size_t>(it->second)]});
            continue;
          }
          const auto ht = halo.find(idx);
          if (ht != halo.end()) {
            cell_deps.push_back(Vertex<T>{d, *ht->second});
            continue;
          }
          // A cross-tile dependency missing from every payload must be a
          // prefinished cell of a computed tile… which IS retained (it has
          // this out-of-tile consumer). Reaching here means the retained-set
          // invariant broke.
          const std::optional<T> dep_init = inner_->initial_value(d);
          check_internal(dep_init.has_value(),
                         "TiledApp: cross-tile dependency missing from "
                         "published tile payloads");
          cell_deps.push_back(Vertex<T>{d, *dep_init});
        }
        value[k] = inner_->compute(id.i, id.j,
                                   std::span<const Vertex<T>>(cell_deps));
      }
      have[k] = 1;
      ++done;
      // Decrement in-tile consumers.
      anti.clear();
      cells_->anti_dependencies(id, anti);
      for (const VertexId a : anti) {
        const auto it = slot_of.find(domain.linearize(a));
        if (it == slot_of.end()) continue;
        if (--indegree[static_cast<std::size_t>(it->second)] == 0) {
          ready.push_back(it->second);
        }
      }
    }
    check_internal(done == n, "TiledApp: tile interior has a dependency cycle");

    // Publish the retained set: out-of-tile consumers or sinks. `local` is
    // row-major, so linear indices come out ascending as TileBlock requires.
    for (std::size_t k = 0; k < n; ++k) {
      anti.clear();
      cells_->anti_dependencies(local[k], anti);
      bool keep = anti.empty();
      for (const VertexId a : anti) {
        if (a.i / tile_ != bi || a.j / tile_ != bj) {
          keep = true;
          break;
        }
      }
      if (!keep) continue;
      out.cells.push_back(domain.linearize(local[k]));
      out.values.push_back(value[k]);
    }
    return out;
  }

  std::optional<Block> initial_value(VertexId t) const override {
    std::vector<VertexId> local;
    tile_cells(t, local);
    if (local.empty()) return std::nullopt;  // empty tiles run (cheaply)
    Block block;
    std::vector<VertexId> anti;
    for (const VertexId id : local) {
      const std::optional<T> init = inner_->initial_value(id);
      if (!init.has_value()) return std::nullopt;
      anti.clear();
      cells_->anti_dependencies(id, anti);
      bool keep = anti.empty();
      for (const VertexId a : anti) {
        if (a.i / tile_ != t.i || a.j / tile_ != t.j) {
          keep = true;
          break;
        }
      }
      if (!keep) continue;
      block.cells.push_back(cells_->domain().linearize(id));
      block.values.push_back(*init);
    }
    return block;
  }

  /// Virtual-time cost of a tile = the summed cost of its cells, so the
  /// SimEngine's clock stays comparable across granularities.
  double compute_cost_units(VertexId t) const override {
    std::vector<VertexId> local;
    tile_cells(t, local);
    double units = 0.0;
    for (const VertexId id : local) units += inner_->compute_cost_units(id);
    return units;
  }

  /// Rebuilds a single-place cell-level array from the tile payloads and
  /// hands it to the wrapped app. Retained cells arrive Finished, cells
  /// with an initial value Prefinished; interior (non-retained) cells stay
  /// absent — value_or() sees the fallback, at() fails loudly, matching the
  /// per-cell governor's retire-mode contract.
  void app_finished(const DagView<Block>& tiles) override {
    const DagDomain& cd = cells_->domain();
    DistArray<T> array(cd, DistKind::BlockRow, PlaceGroup::dense(1));
    const DagDomain& td = tiles.domain();
    Block scratch;
    for (std::int64_t index = 0; index < td.size(); ++index) {
      const VertexId t = td.delinearize(index);
      const Block block = tiles.value_or(t.i, t.j, scratch);
      for (std::size_t k = 0; k < block.cells.size(); ++k) {
        Cell<T>& cell = array.cell(block.cells[k]);
        cell.value = block.values[k];
        cell.store_state(CellState::Finished);
      }
    }
    for (std::int64_t index = 0; index < cd.size(); ++index) {
      Cell<T>& cell = array.cell(index);
      if (cell.is_done()) continue;
      if (const std::optional<T> init = inner_->initial_value(cd.delinearize(index))) {
        cell.value = *init;
        cell.store_state(CellState::Prefinished);
      }
    }
    inner_->app_finished(DagView<T>(array));
  }

  std::string_view name() const override { return name_; }

 private:
  void tile_cells(VertexId t, std::vector<VertexId>& out) const {
    const DagDomain& cd = cells_->domain();
    const std::int32_t r1 = std::min((t.i + 1) * tile_, cd.height());
    const std::int32_t c0 = t.j * tile_;
    const std::int32_t c1 = std::min((t.j + 1) * tile_, cd.width());
    for (std::int32_t r = t.i * tile_; r < r1; ++r) {
      const std::int32_t lo = std::max(c0, cd.row_begin(r));
      const std::int32_t hi = std::min(c1, cd.row_end(r));
      for (std::int32_t c = lo; c < hi; ++c) out.push_back({r, c});
    }
  }

  DPX10App<T>* inner_;
  const Dag* cells_;
  std::int32_t tile_;
  std::string name_;
};

}  // namespace dpx10
