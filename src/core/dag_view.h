// DagView<T> — read-only access to the finished computation.
//
// Passed to DPX10App::app_finished() (paper Fig. 2: "the argument dag can
// be used to access the result of each vertex") and used by result
// processing such as traceback. Only finished cells may be read.
#pragma once

#include "apgas/dist_array.h"
#include "common/error.h"

namespace dpx10 {

template <typename T>
class DagView {
 public:
  explicit DagView(const DistArray<T>& array) : array_(&array) {}

  const DagDomain& domain() const { return array_->domain(); }

  bool contains(std::int32_t i, std::int32_t j) const {
    return domain().contains(VertexId{i, j});
  }

  bool finished(std::int32_t i, std::int32_t j) const {
    return array_->cell(VertexId{i, j}).is_done();
  }

  /// Result of cell (i, j). Requires the cell to be in the domain and
  /// finished (always true in app_finished()).
  const T& at(std::int32_t i, std::int32_t j) const {
    const Cell<T>& cell = array_->cell(VertexId{i, j});
    check_internal(cell.is_done(), "DagView::at: reading an unfinished vertex");
    return cell.value;
  }

  /// at(i, j) when the cell exists and is finished, `fallback` otherwise —
  /// convenient for boundary-free traceback loops.
  T value_or(std::int32_t i, std::int32_t j, T fallback) const {
    VertexId id{i, j};
    if (!domain().contains(id)) return fallback;
    const Cell<T>& cell = array_->cell(id);
    if (!cell.is_done()) return fallback;
    return cell.value;
  }

 private:
  const DistArray<T>* array_;
};

}  // namespace dpx10
