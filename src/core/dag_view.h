// DagView<T> — read-only access to the finished computation.
//
// Passed to DPX10App::app_finished() (paper Fig. 2: "the argument dag can
// be used to access the result of each vertex") and used by result
// processing such as traceback. Only finished cells may be read.
//
// With the memory governor in spill mode, a cell's payload may have been
// retired to the owner place's SpillStore; the engines then construct the
// view with a `retired_reader` so traceback still sees every done value.
// In retire mode retired values are gone by design — at() fails loudly and
// value_or() falls back, which is why apps whose app_finished() walks the
// matrix should be run with spill, not retire (docs/MEMORY.md).
#pragma once

#include <functional>

#include "apgas/dist_array.h"
#include "common/error.h"

namespace dpx10 {

template <typename T>
class DagView {
 public:
  explicit DagView(const DistArray<T>& array) : array_(&array) {}

  DagView(const DistArray<T>& array,
          std::function<bool(std::int64_t, T&)> retired_reader)
      : array_(&array), retired_reader_(std::move(retired_reader)) {}

  const DagDomain& domain() const { return array_->domain(); }

  bool contains(std::int32_t i, std::int32_t j) const {
    return domain().contains(VertexId{i, j});
  }

  bool finished(std::int32_t i, std::int32_t j) const {
    return array_->cell(VertexId{i, j}).is_done();
  }

  /// Result of cell (i, j). Requires the cell to be in the domain and
  /// finished (always true in app_finished()). Retired cells are served
  /// from the spill store when a reader is installed; without one, reading
  /// a retired cell is an internal error (the value no longer exists).
  const T& at(std::int32_t i, std::int32_t j) const {
    const Cell<T>& cell = array_->cell(VertexId{i, j});
    check_internal(cell.is_done(), "DagView::at: reading an unfinished vertex");
    if (cell.load_state() == CellState::Retired) {
      check_internal(static_cast<bool>(retired_reader_),
                     "DagView::at: reading a retired vertex with no spill "
                     "store (use --retirement=spill for traceback apps)");
      const std::int64_t idx = domain().linearize(VertexId{i, j});
      const bool ok = retired_reader_(idx, spill_scratch_);
      check_internal(ok, "DagView::at: retired vertex missing from spill");
      return spill_scratch_;
    }
    return cell.value;
  }

  /// at(i, j) when the cell exists and is finished, `fallback` otherwise —
  /// convenient for boundary-free traceback loops. A retired cell with no
  /// reader (retire mode) yields the fallback.
  T value_or(std::int32_t i, std::int32_t j, T fallback) const {
    VertexId id{i, j};
    if (!domain().contains(id)) return fallback;
    const Cell<T>& cell = array_->cell(id);
    if (!cell.is_done()) return fallback;
    if (cell.load_state() == CellState::Retired) {
      T out{};
      if (retired_reader_ && retired_reader_(domain().linearize(id), out)) {
        return out;
      }
      return fallback;
    }
    return cell.value;
  }

 private:
  const DistArray<T>* array_;
  std::function<bool(std::int64_t, T&)> retired_reader_;
  /// at() returns a reference; spill reads land here. Single-threaded use
  /// only (app_finished runs after the engines quiesce).
  mutable T spill_scratch_{};
};

}  // namespace dpx10
