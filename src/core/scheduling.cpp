#include "core/scheduling.h"

#include <algorithm>

namespace dpx10 {

std::int32_t choose_target_slot(Scheduling strategy, VertexId v, const Dag& dag,
                                const Dist& dist, std::size_t value_bytes,
                                Xoshiro256& rng, std::vector<VertexId>& scratch) {
  const std::int32_t owner = dist.slot_of(v);
  switch (strategy) {
    case Scheduling::Local:
    case Scheduling::WorkStealing:
      return owner;
    case Scheduling::Random:
      return static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(dist.nslots())));
    case Scheduling::MinCommunication:
      break;
  }

  scratch.clear();
  dag.dependencies(v, scratch);
  if (scratch.empty()) return owner;

  // Cost of running at slot p: one value transfer per dependency owned
  // elsewhere, plus one writeback if p is not the owner. Candidates: the
  // owner and each dependency's owner.
  auto cost_at = [&](std::int32_t p) {
    std::size_t cost = (p == owner) ? 0 : value_bytes;
    for (VertexId d : scratch) {
      if (dist.slot_of(d) != p) cost += value_bytes;
    }
    return cost;
  };

  std::int32_t best = owner;
  std::size_t best_cost = cost_at(owner);
  for (VertexId d : scratch) {
    std::int32_t p = dist.slot_of(d);
    if (p == best) continue;
    std::size_t c = cost_at(p);
    // Strictly better only: ties keep the owner / earlier candidate, which
    // preserves locality and keeps the choice deterministic.
    if (c < best_cost) {
      best = p;
      best_cost = c;
    }
  }
  return best;
}

}  // namespace dpx10
