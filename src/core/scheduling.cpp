#include "core/scheduling.h"

#include <algorithm>

namespace dpx10 {

std::int32_t choose_target_slot(Scheduling strategy, VertexId v, const Dag& dag,
                                const Dist& dist, std::size_t value_bytes,
                                Xoshiro256& rng, std::vector<VertexId>& scratch,
                                const PlaceGroup* group,
                                const SuspicionSet* suspected) {
  const std::int32_t owner = dist.slot_of(v);
  // Suspicion-avoidance is only engaged while somebody is actually
  // suspected; otherwise every strategy takes its exact legacy path so the
  // RNG stream (and with it, simulator determinism across configurations)
  // is untouched.
  const bool avoid =
      group != nullptr && suspected != nullptr && suspected->any();
  const auto slot_suspected = [&](std::int32_t slot) {
    return avoid && suspected->test((*group)[slot]);
  };

  switch (strategy) {
    case Scheduling::Local:
    case Scheduling::WorkStealing:
      return owner;
    case Scheduling::Random: {
      const auto nslots = static_cast<std::int32_t>(dist.nslots());
      if (!avoid) {
        return static_cast<std::int32_t>(
            rng.below(static_cast<std::uint64_t>(nslots)));
      }
      std::int32_t healthy = 0;
      for (std::int32_t s = 0; s < nslots; ++s) {
        if (!slot_suspected(s)) ++healthy;
      }
      if (healthy == 0) return owner;  // everyone suspect: keep locality
      auto k = static_cast<std::int32_t>(
          rng.below(static_cast<std::uint64_t>(healthy)));
      for (std::int32_t s = 0; s < nslots; ++s) {
        if (slot_suspected(s)) continue;
        if (k-- == 0) return s;
      }
      return owner;  // unreachable
    }
    case Scheduling::MinCommunication:
      break;
  }

  scratch.clear();
  dag.dependencies(v, scratch);
  if (scratch.empty() && !slot_suspected(owner)) return owner;

  // Cost of running at slot p: one value transfer per dependency owned
  // elsewhere, plus one writeback if p is not the owner. Candidates: the
  // owner and each dependency's owner — minus anyone under suspicion.
  auto cost_at = [&](std::int32_t p) {
    std::size_t cost = (p == owner) ? 0 : value_bytes;
    for (VertexId d : scratch) {
      if (dist.slot_of(d) != p) cost += value_bytes;
    }
    return cost;
  };

  std::int32_t best = -1;
  std::size_t best_cost = 0;
  if (!slot_suspected(owner)) {
    best = owner;
    best_cost = cost_at(owner);
  }
  for (VertexId d : scratch) {
    std::int32_t p = dist.slot_of(d);
    if (p == best) continue;
    if (slot_suspected(p)) continue;
    std::size_t c = cost_at(p);
    // Strictly better only: ties keep the owner / earlier candidate, which
    // preserves locality and keeps the choice deterministic.
    if (best < 0 || c < best_cost) {
      best = p;
      best_cost = c;
    }
  }
  if (best >= 0) return best;
  // Owner and every candidate are suspected: fall back to the first healthy
  // slot, or the owner if the whole world is suspect.
  for (std::int32_t s = 0; s < static_cast<std::int32_t>(dist.nslots()); ++s) {
    if (!slot_suspected(s)) return s;
  }
  return owner;
}

}  // namespace dpx10
