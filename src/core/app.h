// DPX10App<T> — the user-facing application interface (paper Fig. 2).
//
// Writing a DPX10 application is exactly the paper's three steps:
//   1. choose a built-in DAG pattern or subclass Dag,
//   2. subclass DPX10App<T> and implement compute() / app_finished(),
//   3. launch through an engine (ThreadedEngine or SimEngine).
//
// T is the value type associated with every vertex; limiting framework-
// managed state to one value per vertex is what keeps distribution and
// fault tolerance simple (§V).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "core/dag_view.h"
#include "core/vertex.h"

namespace dpx10 {

template <typename T>
class DPX10App {
 public:
  virtual ~DPX10App() = default;

  /// The DP recurrence for cell (i, j). `deps` holds every dependency
  /// vertex declared by the DAG pattern, already computed; order is
  /// unspecified (match on i()/j() as the paper's examples do). Must be
  /// thread-safe: the threaded engine invokes it concurrently from many
  /// places.
  virtual T compute(std::int32_t i, std::int32_t j, std::span<const Vertex<T>> deps) = 0;

  /// Invoked once, after every vertex has finished — process the final
  /// result here (traceback, reductions, ...).
  virtual void app_finished(const DagView<T>& dag) { (void)dag; }

  /// Relative cost of computing vertex `id`, in units of one "typical"
  /// vertex. The SimEngine multiplies its per-vertex compute cost by this;
  /// coarse-grained apps (e.g. tiled execution, where one vertex covers a
  /// whole block of cells) override it so virtual time stays comparable
  /// across granularities.
  virtual double compute_cost_units(VertexId id) const {
    (void)id;
    return 1.0;
  }

  /// "Initialization of DAG" refinement (§VI-E): return a value to mark a
  /// cell finished before execution starts (it is never scheduled and never
  /// appears as an unfinished dependency). Default: no cell is pre-set.
  virtual std::optional<T> initial_value(VertexId id) const {
    (void)id;
    return std::nullopt;
  }

  virtual std::string_view name() const { return "app"; }
};

}  // namespace dpx10
