// 0/1 Knapsack — the paper's custom-DAG-pattern tutorial (§VII-B, Figs. 8-9)
// and one of its four evaluated applications:
//
//   m(i,j) = m(i-1,j)                                   if w_i > j
//          = max(m(i-1,j), m(i-1, j-w_i) + v_i)         otherwise
//
// Unlike the eight built-in patterns, the edges here are data-dependent
// (they jump by item weights), so KnapsackDag subclasses Dag directly —
// exactly the paper's "write a custom pattern" path. The matrix is
// (items+1) × (capacity+1); row 0 and column 0 are zero boundaries with no
// dependencies.
#pragma once

#include <cstdint>
#include <memory>

#include "core/app.h"
#include "core/dag.h"
#include "dp/inputs.h"
#include "dp/matrix.h"

namespace dpx10::dp {

class KnapsackDag final : public Dag {
 public:
  /// Holds a shared reference to the instance: the DAG's edge structure is
  /// a function of the item weights.
  explicit KnapsackDag(std::shared_ptr<const KnapsackInstance> instance);

  void dependencies(VertexId v, std::vector<VertexId>& out) const override;
  void anti_dependencies(VertexId v, std::vector<VertexId>& out) const override;

  std::string_view name() const override { return "knapsack"; }

 private:
  std::int32_t weight(std::int32_t item_row) const {
    return instance_->weights[static_cast<std::size_t>(item_row - 1)];
  }

  std::shared_ptr<const KnapsackInstance> instance_;
};

class KnapsackApp : public DPX10App<std::int64_t> {
 public:
  explicit KnapsackApp(std::shared_ptr<const KnapsackInstance> instance)
      : instance_(std::move(instance)) {}

  std::int64_t compute(std::int32_t i, std::int32_t j,
                       std::span<const Vertex<std::int64_t>> deps) override;

  std::string_view name() const override { return "knapsack-01"; }

 private:
  std::shared_ptr<const KnapsackInstance> instance_;
};

/// Serial reference: the full (items+1) × (capacity+1) value table.
Matrix<std::int64_t> serial_knapsack(const KnapsackInstance& instance);

}  // namespace dpx10::dp
