// Nussinov RNA secondary-structure prediction — a full 2D/1D application
// on the library side of the §III expressibility claim:
//
//   N(i,j) = 0                                          if j - i <= loop
//   N(i,j) = max( N(i+1,j-1) + pair(x_i, x_j),
//                 max_{i <= k < j} N(i,k) + N(k+1,j) )
//
// pair() scores canonical base pairs (AU, GC, GU) and `loop` enforces the
// minimum hairpin size. The dependency structure is interval-prefix plus
// the inner diagonal, so NussinovDag is a custom pattern (the paper's
// custom-pattern path) with O(n) fan-in — the "performance is less than
// satisfactory" regime, exercised for real by tests and the runner.
#pragma once

#include <cstdint>
#include <string>

#include "core/app.h"
#include "core/dag.h"
#include "dp/matrix.h"

namespace dpx10::dp {

inline constexpr std::int32_t kNussinovMinLoop = 3;

/// 1 when (a, b) is a canonical RNA pair (AU, GC, GU in either order).
std::int32_t nussinov_pair(char a, char b);

class NussinovDag final : public Dag {
 public:
  explicit NussinovDag(std::int32_t n) : Dag(n, n, DagDomain::upper_triangular(n)) {}

  void dependencies(VertexId v, std::vector<VertexId>& out) const override {
    for (std::int32_t k = v.i; k < v.j; ++k) out.push_back({v.i, k});
    for (std::int32_t k = v.i + 1; k <= v.j; ++k) out.push_back({k, v.j});
    emit_if(v.i + 1, v.j - 1, out);  // the pairing term's inner diagonal
  }

  void anti_dependencies(VertexId v, std::vector<VertexId>& out) const override {
    for (std::int32_t k = v.j + 1; k < width(); ++k) out.push_back({v.i, k});
    for (std::int32_t k = 0; k < v.i; ++k) out.push_back({k, v.j});
    emit_if(v.i - 1, v.j + 1, out);
  }

  std::string_view name() const override { return "nussinov"; }
};

class NussinovApp : public DPX10App<std::int32_t> {
 public:
  /// `x` is an RNA sequence over ACGU; the DAG must be NussinovDag(x.size()).
  explicit NussinovApp(std::string x) : x_(std::move(x)) {}

  std::int32_t compute(std::int32_t i, std::int32_t j,
                       std::span<const Vertex<std::int32_t>> deps) override;

  std::string_view name() const override { return "nussinov"; }

  const std::string& x() const { return x_; }

 private:
  std::string x_;
};

/// Serial O(n^3) reference; only cells with i <= j are meaningful.
Matrix<std::int32_t> serial_nussinov(const std::string& x);

}  // namespace dpx10::dp
