// Cell kernels — the wavefront recurrences factored as pure step functions.
//
// A kernel computes one cell from its diagonal/top/left neighbours. The
// per-vertex apps (dp/lcs.h etc.) and the tiled executor (core/tiling.h)
// share these, so tiled and per-vertex runs are bit-identical by
// construction. A kernel must also provide the boundary value for virtual
// cells outside the matrix (row/column 0 of the classic string DPs).
//
// Kernel concept:
//   using Value = ...;
//   Value boundary(i, j) const;                 // value of a virtual cell
//   Value cell(i, j, diag, top, left) const;    // i >= 1 && j >= 1
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "dp/inputs.h"
#include "dp/lcs.h"
#include "dp/smith_waterman.h"
#include "dp/swlag.h"

namespace dpx10::dp {

class LcsKernel {
 public:
  using Value = std::int32_t;

  LcsKernel(const std::string& a, const std::string& b) : a_(&a), b_(&b) {}

  Value boundary(std::int32_t, std::int32_t) const { return 0; }

  Value cell(std::int32_t i, std::int32_t j, Value diag, Value top, Value left) const {
    if (i == 0 || j == 0) return 0;
    if ((*a_)[static_cast<std::size_t>(i - 1)] == (*b_)[static_cast<std::size_t>(j - 1)]) {
      return diag + 1;
    }
    return std::max(top, left);
  }

 private:
  const std::string* a_;
  const std::string* b_;
};

class SwKernel {
 public:
  using Value = std::int32_t;

  SwKernel(const std::string& a, const std::string& b) : a_(&a), b_(&b) {}

  Value boundary(std::int32_t, std::int32_t) const { return 0; }

  Value cell(std::int32_t i, std::int32_t j, Value diag, Value top, Value left) const {
    if (i == 0 || j == 0) return 0;
    const bool match =
        (*a_)[static_cast<std::size_t>(i - 1)] == (*b_)[static_cast<std::size_t>(j - 1)];
    const Value sub = diag + (match ? kSwMatchScore : kSwMismatchScore);
    return std::max({0, sub, top + kSwGapPenalty, left + kSwGapPenalty});
  }

 private:
  const std::string* a_;
  const std::string* b_;
};

class SwlagKernel {
 public:
  using Value = SwlagCell;

  SwlagKernel(const std::string& a, const std::string& b) : a_(&a), b_(&b) {}

  Value boundary(std::int32_t, std::int32_t) const { return SwlagCell{}; }

  Value cell(std::int32_t i, std::int32_t j, const Value& diag, const Value& top,
             const Value& left) const {
    if (i == 0 || j == 0) return SwlagCell{};
    return swlag_step(i, j, diag, top, left, *a_, *b_);
  }

 private:
  const std::string* a_;
  const std::string* b_;
};

/// Manhattan-Tourists as a kernel (left-top pattern: the diagonal input is
/// ignored). Cell (0,0) is the boundary-derived origin.
class MtpKernel {
 public:
  using Value = std::int64_t;

  explicit MtpKernel(std::uint64_t seed) : seed_(seed) {}

  Value boundary(std::int32_t, std::int32_t) const { return INT64_MIN / 4; }

  Value cell(std::int32_t i, std::int32_t j, const Value&, Value top, Value left) const {
    if (i == 0 && j == 0) return 0;
    Value best = INT64_MIN;
    if (i > 0) best = std::max(best, top + mtp_weight(i - 1, j, i, j, seed_));
    if (j > 0) best = std::max(best, left + mtp_weight(i, j - 1, i, j, seed_));
    return best;
  }

 private:
  std::uint64_t seed_;
};

}  // namespace dpx10::dp
