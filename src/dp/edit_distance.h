// Levenshtein edit distance — a min-recurrence with non-zero boundaries:
//
//   D[i,0] = i,  D[0,j] = j
//   D[i,j] = min(D[i-1,j] + 1, D[i,j-1] + 1, D[i-1,j-1] + (a_i != b_j))
//
// DAG pattern: left-top-diag. Unlike the alignment apps, the boundary rows
// carry non-trivial values, exercising result-dependent boundaries inside
// compute(); the test suite also runs it with initial_value() pre-finishing
// the boundaries (§VI-E "Initialization of DAG").
#pragma once

#include <cstdint>
#include <string>

#include "core/app.h"
#include "dp/matrix.h"

namespace dpx10::dp {

class EditDistanceApp : public DPX10App<std::int32_t> {
 public:
  EditDistanceApp(std::string a, std::string b) : a_(std::move(a)), b_(std::move(b)) {}

  std::int32_t compute(std::int32_t i, std::int32_t j,
                       std::span<const Vertex<std::int32_t>> deps) override;

  std::string_view name() const override { return "edit-distance"; }

  const std::string& a() const { return a_; }
  const std::string& b() const { return b_; }

 private:
  std::string a_;
  std::string b_;
};

/// Variant that pre-finishes row 0 and column 0 through initial_value(), so
/// the engines never schedule the boundary cells.
class EditDistancePrefinishedApp : public EditDistanceApp {
 public:
  using EditDistanceApp::EditDistanceApp;

  std::optional<std::int32_t> initial_value(VertexId id) const override {
    if (id.i == 0) return id.j;
    if (id.j == 0) return id.i;
    return std::nullopt;
  }
};

Matrix<std::int32_t> serial_edit_distance(const std::string& a, const std::string& b);

}  // namespace dpx10::dp
