#include "dp/inputs.h"

#include "common/error.h"

namespace dpx10::dp {

std::string random_sequence(std::size_t length, std::uint64_t seed,
                            std::string_view alphabet) {
  require(!alphabet.empty(), "random_sequence: empty alphabet");
  require(length > 0, "random_sequence: length must be positive");
  Xoshiro256 rng(mix64(seed, 0x5e90e1ceULL));
  std::string out(length, '\0');
  for (char& c : out) {
    c = alphabet[static_cast<std::size_t>(rng.below(alphabet.size()))];
  }
  return out;
}

KnapsackInstance random_knapsack(std::int32_t items, std::int32_t capacity,
                                 std::int32_t max_weight, std::uint64_t seed) {
  require(items > 0, "random_knapsack: need at least one item");
  require(capacity > 0, "random_knapsack: capacity must be positive");
  require(max_weight >= 1, "random_knapsack: max_weight must be >= 1");
  Xoshiro256 rng(mix64(seed, 0x6a95acULL));
  KnapsackInstance inst;
  inst.capacity = capacity;
  inst.weights.reserve(static_cast<std::size_t>(items));
  inst.values.reserve(static_cast<std::size_t>(items));
  for (std::int32_t k = 0; k < items; ++k) {
    inst.weights.push_back(1 + static_cast<std::int32_t>(
                                   rng.below(static_cast<std::uint64_t>(max_weight))));
    inst.values.push_back(1 + static_cast<std::int64_t>(rng.below(1000)));
  }
  return inst;
}

}  // namespace dpx10::dp
