#include "dp/lps.h"

#include <algorithm>

namespace dpx10::dp {

std::int32_t LpsApp::compute(std::int32_t i, std::int32_t j,
                             std::span<const Vertex<std::int32_t>> deps) {
  if (i == j) return 1;
  std::int32_t inner = 0, down = 0, left = 0;
  for (const Vertex<std::int32_t>& v : deps) {
    if (v.i() == i + 1 && v.j() == j - 1) inner = v.result();
    if (v.i() == i + 1 && v.j() == j) down = v.result();
    if (v.i() == i && v.j() == j - 1) left = v.result();
  }
  if (x_[static_cast<std::size_t>(i)] == x_[static_cast<std::size_t>(j)]) {
    if (j == i + 1) return 2;
    return inner + 2;
  }
  return std::max(down, left);
}

Matrix<std::int32_t> serial_lps(const std::string& x) {
  const std::int32_t n = static_cast<std::int32_t>(x.size());
  Matrix<std::int32_t> d(n, n, 0);
  for (std::int32_t i = 0; i < n; ++i) d.at(i, i) = 1;
  for (std::int32_t len = 2; len <= n; ++len) {
    for (std::int32_t i = 0; i + len - 1 < n; ++i) {
      const std::int32_t j = i + len - 1;
      if (x[static_cast<std::size_t>(i)] == x[static_cast<std::size_t>(j)]) {
        d.at(i, j) = (len == 2) ? 2 : d.at(i + 1, j - 1) + 2;
      } else {
        d.at(i, j) = std::max(d.at(i + 1, j), d.at(i, j - 1));
      }
    }
  }
  return d;
}

}  // namespace dpx10::dp
