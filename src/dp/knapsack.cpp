#include "dp/knapsack.h"

#include <algorithm>

namespace dpx10::dp {

KnapsackDag::KnapsackDag(std::shared_ptr<const KnapsackInstance> instance)
    : Dag(instance->items() + 1, instance->capacity + 1,
          DagDomain::rect(instance->items() + 1, instance->capacity + 1)),
      instance_(std::move(instance)) {}

void KnapsackDag::dependencies(VertexId v, std::vector<VertexId>& out) const {
  // Row 0 (no items) and column 0 (no capacity) are zero boundaries the
  // compute() method fills without inputs — the paper's Fig. 9 returns an
  // empty Rail for them.
  if (v.i == 0 || v.j == 0) return;
  out.push_back(VertexId{v.i - 1, v.j});
  const std::int32_t w = weight(v.i);
  if (w <= v.j) out.push_back(VertexId{v.i - 1, v.j - w});
}

void KnapsackDag::anti_dependencies(VertexId v, std::vector<VertexId>& out) const {
  if (v.i >= height() - 1) return;  // last item row feeds nothing
  // (i+1, j) depends on us through its "skip item i+1" edge — but only if
  // it has dependencies at all (j > 0).
  if (v.j > 0) out.push_back(VertexId{v.i + 1, v.j});
  // (i+1, j + w_{i+1}) depends on us through its "take item i+1" edge.
  const std::int32_t w = weight(v.i + 1);
  const std::int64_t j_take = static_cast<std::int64_t>(v.j) + w;
  if (j_take <= width() - 1) {
    out.push_back(VertexId{v.i + 1, static_cast<std::int32_t>(j_take)});
  }
}

std::int64_t KnapsackApp::compute(std::int32_t i, std::int32_t j,
                                  std::span<const Vertex<std::int64_t>> deps) {
  if (i == 0 || j == 0) return 0;
  const std::int32_t w = instance_->weights[static_cast<std::size_t>(i - 1)];
  std::int64_t skip = 0, take_base = 0;
  bool can_take = false;
  for (const Vertex<std::int64_t>& v : deps) {
    if (v.i() == i - 1 && v.j() == j) skip = v.result();
    if (w <= j && v.i() == i - 1 && v.j() == j - w) {
      take_base = v.result();
      can_take = true;
    }
  }
  // w == j makes the two dependency ids coincide ((i-1, j) == (i-1, j-w) is
  // impossible since w >= 1, but (i-1, 0) exists); can_take only when the
  // take edge was actually present.
  if (!can_take) return skip;
  return std::max(skip, take_base + instance_->values[static_cast<std::size_t>(i - 1)]);
}

Matrix<std::int64_t> serial_knapsack(const KnapsackInstance& instance) {
  const std::int32_t n = instance.items();
  const std::int32_t cap = instance.capacity;
  Matrix<std::int64_t> m(n + 1, cap + 1, 0);
  for (std::int32_t i = 1; i <= n; ++i) {
    const std::int32_t w = instance.weights[static_cast<std::size_t>(i - 1)];
    const std::int64_t v = instance.values[static_cast<std::size_t>(i - 1)];
    for (std::int32_t j = 1; j <= cap; ++j) {
      if (w > j) {
        m.at(i, j) = m.at(i - 1, j);
      } else {
        m.at(i, j) = std::max(m.at(i - 1, j), m.at(i - 1, j - w) + v);
      }
    }
  }
  return m;
}

}  // namespace dpx10::dp
