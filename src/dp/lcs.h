// Longest Common Subsequence — the paper's running example (§IV, Fig. 1).
//
//   F[i,j] = F[i-1,j-1] + 1                 if x_i == y_j
//          = max(F[i-1,j], F[i,j-1])        otherwise
//
// DAG pattern: left-top-diag (Fig. 5b) over an (m+1) × (n+1) matrix whose
// row/column 0 are zero boundaries computed in place (no dependencies).
#pragma once

#include <cstdint>
#include <string>

#include "core/app.h"
#include "dp/matrix.h"

namespace dpx10::dp {

class LcsApp : public DPX10App<std::int32_t> {
 public:
  /// The DAG for (a, b) must be "left-top-diag" of size
  /// (a.size()+1) × (b.size()+1).
  LcsApp(std::string a, std::string b) : a_(std::move(a)), b_(std::move(b)) {}

  std::int32_t compute(std::int32_t i, std::int32_t j,
                       std::span<const Vertex<std::int32_t>> deps) override;

  std::string_view name() const override { return "lcs"; }

  const std::string& a() const { return a_; }
  const std::string& b() const { return b_; }

  /// Reconstructs one LCS from the finished matrix by traceback.
  std::string traceback(const DagView<std::int32_t>& dag) const;

 private:
  std::string a_;
  std::string b_;
};

/// Serial reference: the full (m+1) × (n+1) score matrix.
Matrix<std::int32_t> serial_lcs(const std::string& a, const std::string& b);

}  // namespace dpx10::dp
