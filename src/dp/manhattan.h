// Manhattan Tourists Problem — one of the paper's four evaluated
// applications (§VIII):
//
//   D[i,j] = max(D[i-1,j] + w(i-1,j, i,j),  D[i,j-1] + w(i,j-1, i,j))
//
// Edge weights come from the stateless mtp_weight() generator, so the grid
// never needs to be materialized. DAG pattern: left-top (Fig. 5a).
#pragma once

#include <cstdint>

#include "core/app.h"
#include "dp/inputs.h"
#include "dp/matrix.h"

namespace dpx10::dp {

class ManhattanApp : public DPX10App<std::int64_t> {
 public:
  /// `seed` selects the weight field; the DAG must be "left-top" of
  /// exactly (rows × cols).
  explicit ManhattanApp(std::uint64_t seed) : seed_(seed) {}

  std::int64_t compute(std::int32_t i, std::int32_t j,
                       std::span<const Vertex<std::int64_t>> deps) override;

  std::string_view name() const override { return "manhattan-tourists"; }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

Matrix<std::int64_t> serial_manhattan(std::int32_t rows, std::int32_t cols,
                                      std::uint64_t seed);

}  // namespace dpx10::dp
