#include "dp/smith_waterman.h"

#include <algorithm>

namespace dpx10::dp {

std::int32_t SmithWatermanApp::compute(std::int32_t i, std::int32_t j,
                                       std::span<const Vertex<std::int32_t>> deps) {
  if (i == 0 || j == 0) return 0;
  std::int32_t diag = 0, top = 0, left = 0;
  for (const Vertex<std::int32_t>& v : deps) {
    if (v.i() == i - 1 && v.j() == j - 1) diag = v.result();
    if (v.i() == i - 1 && v.j() == j) top = v.result();
    if (v.i() == i && v.j() == j - 1) left = v.result();
  }
  const bool match =
      a_[static_cast<std::size_t>(i - 1)] == b_[static_cast<std::size_t>(j - 1)];
  const std::int32_t sub = diag + (match ? kSwMatchScore : kSwMismatchScore);
  return std::max({0, sub, top + kSwGapPenalty, left + kSwGapPenalty});
}

Matrix<std::int32_t> serial_smith_waterman(const std::string& a, const std::string& b) {
  const std::int32_t m = static_cast<std::int32_t>(a.size());
  const std::int32_t n = static_cast<std::int32_t>(b.size());
  Matrix<std::int32_t> h(m + 1, n + 1, 0);
  for (std::int32_t i = 1; i <= m; ++i) {
    for (std::int32_t j = 1; j <= n; ++j) {
      const bool match =
          a[static_cast<std::size_t>(i - 1)] == b[static_cast<std::size_t>(j - 1)];
      const std::int32_t sub = h.at(i - 1, j - 1) + (match ? kSwMatchScore : kSwMismatchScore);
      h.at(i, j) = std::max(
          {0, sub, h.at(i - 1, j) + kSwGapPenalty, h.at(i, j - 1) + kSwGapPenalty});
    }
  }
  return h;
}

std::int32_t matrix_max(const Matrix<std::int32_t>& m) {
  std::int32_t best = m.at(0, 0);
  for (std::int32_t i = 0; i < m.rows(); ++i) {
    for (std::int32_t j = 0; j < m.cols(); ++j) best = std::max(best, m.at(i, j));
  }
  return best;
}

}  // namespace dpx10::dp
