// Banded Smith-Waterman — alignment restricted to |i - j| <= band.
//
// Classic sequence-alignment optimization: when the two sequences are known
// to be similar, cells far off the diagonal cannot contribute, so the DP
// only fills a diagonal band. For DPX10 this exercises the Banded DagDomain
// end to end: the pattern emits only in-band edges and the engines store
// exactly band-many cells per row. Out-of-band neighbours are treated as
// score 0, the standard banded-SW convention (local alignment can always
// restart at 0 anyway).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/dag.h"
#include "dp/matrix.h"
#include "dp/smith_waterman.h"

namespace dpx10::dp {

/// Left-top-diag wavefront over a banded domain. Not one of the paper's
/// eight built-ins — an extension pattern showing that custom patterns can
/// also introduce custom domains.
class BandedWavefrontDag final : public Dag {
 public:
  BandedWavefrontDag(std::int32_t height, std::int32_t width, std::int32_t band)
      : Dag(height, width, DagDomain::banded(height, width, band)) {}

  void dependencies(VertexId v, std::vector<VertexId>& out) const override {
    emit_if(v.i - 1, v.j - 1, out);
    emit_if(v.i - 1, v.j, out);
    emit_if(v.i, v.j - 1, out);
  }

  void anti_dependencies(VertexId v, std::vector<VertexId>& out) const override {
    emit_if(v.i + 1, v.j + 1, out);
    emit_if(v.i + 1, v.j, out);
    emit_if(v.i, v.j + 1, out);
  }

  std::string_view name() const override { return "banded-wavefront"; }
};

/// Smith-Waterman over the band. Dependencies outside the band simply do
/// not exist in the DAG; their score contribution is 0.
class BandedSwApp : public DPX10App<std::int32_t> {
 public:
  BandedSwApp(std::string a, std::string b) : a_(std::move(a)), b_(std::move(b)) {}

  std::int32_t compute(std::int32_t i, std::int32_t j,
                       std::span<const Vertex<std::int32_t>> deps) override;

  std::string_view name() const override { return "banded-sw"; }

 private:
  std::string a_;
  std::string b_;
};

/// Serial banded SW; cells outside the band hold 0 in the returned matrix.
Matrix<std::int32_t> serial_banded_sw(const std::string& a, const std::string& b,
                                      std::int32_t band);

}  // namespace dpx10::dp
