// Longest Palindromic Subsequence — interval DP on the upper triangle,
// one of the paper's four evaluated applications (§VIII):
//
//   D(i,i)   = 1
//   D(i,j)   = 2                      if x_i == x_j and j == i+1
//            = D(i+1,j-1) + 2         if x_i == x_j
//            = max(D(i+1,j), D(i,j-1)) otherwise
//
// DAG pattern: interval (Fig. 5d) over an n × n upper-triangular domain.
#pragma once

#include <cstdint>
#include <string>

#include "core/app.h"
#include "dp/matrix.h"

namespace dpx10::dp {

class LpsApp : public DPX10App<std::int32_t> {
 public:
  explicit LpsApp(std::string x) : x_(std::move(x)) {}

  std::int32_t compute(std::int32_t i, std::int32_t j,
                       std::span<const Vertex<std::int32_t>> deps) override;

  std::string_view name() const override { return "lps"; }

  const std::string& x() const { return x_; }

 private:
  std::string x_;
};

/// Serial reference; only cells with i <= j are meaningful.
Matrix<std::int32_t> serial_lps(const std::string& x);

}  // namespace dpx10::dp
