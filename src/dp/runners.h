// Uniform launcher for the DP applications.
//
// The benches sweep {application} × {engine} × {size} × {places}; this
// module hides the per-application wiring (input generation, DAG pattern
// choice, value type) behind one string-keyed entry point, sizing each
// problem so its DAG has approximately `target_vertices` cells — the axis
// the paper's Figs. 10-13 vary.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dag.h"
#include "core/metrics.h"
#include "core/runtime_options.h"

namespace dpx10::dp {

enum class EngineKind { Threaded, Sim };

/// Application keys accepted by run_dp_app: the paper's four evaluated
/// applications ("swlag", "mtp", "lps", "knapsack") plus the two demo
/// applications ("lcs", "sw").
const std::vector<std::string>& runnable_apps();

/// Chosen matrix shape for an application at a target vertex count.
struct ProblemShape {
  std::int32_t height = 0;
  std::int32_t width = 0;
  std::int64_t vertices = 0;  ///< actual |domain| after rounding
};

ProblemShape shape_for(const std::string& app, std::int64_t target_vertices);

/// Builds exactly the DAG pattern run_dp_app would execute for `app` at
/// `target_vertices`, without running anything — so callers (dpx10run
/// --validate-dag) can validate_dag() a configuration before paying for the
/// run. Irregular DAGs that depend on the generated input (knapsack) seed
/// their instance from `input_seed`, matching run_dp_app. `tile` > 1
/// returns the macro-DAG run_dp_app schedules under
/// RuntimeOptions::tile_size — the tiled left-top-diag pattern for the
/// kernel family, a TiledDag wrapper elsewhere.
std::unique_ptr<Dag> make_dp_dag(const std::string& app, std::int64_t target_vertices,
                                 std::uint64_t input_seed = 1234, std::int32_t tile = 0);

/// Generates inputs (seeded by `input_seed`), builds the app and its DAG
/// pattern, runs it on the chosen engine and returns the report. When
/// `options.tile_size` > 1 the app executes as a macro-DAG of tiles
/// (core/tiling.h): the kernel fast path for swlag/sw/lcs/mtp, the generic
/// TiledApp adapter for lps/nussinov/knapsack.
RunReport run_dp_app(const std::string& app, EngineKind engine,
                     std::int64_t target_vertices, const RuntimeOptions& options,
                     std::uint64_t input_seed = 1234);

}  // namespace dpx10::dp
