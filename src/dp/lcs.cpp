#include "dp/lcs.h"

#include <algorithm>

namespace dpx10::dp {

std::int32_t LcsApp::compute(std::int32_t i, std::int32_t j,
                             std::span<const Vertex<std::int32_t>> deps) {
  if (i == 0 || j == 0) return 0;
  std::int32_t diag = 0, top = 0, left = 0;
  for (const Vertex<std::int32_t>& v : deps) {
    if (v.i() == i - 1 && v.j() == j - 1) diag = v.result();
    if (v.i() == i - 1 && v.j() == j) top = v.result();
    if (v.i() == i && v.j() == j - 1) left = v.result();
  }
  if (a_[static_cast<std::size_t>(i - 1)] == b_[static_cast<std::size_t>(j - 1)]) {
    return diag + 1;
  }
  return std::max(top, left);
}

std::string LcsApp::traceback(const DagView<std::int32_t>& dag) const {
  std::string out;
  std::int32_t i = static_cast<std::int32_t>(a_.size());
  std::int32_t j = static_cast<std::int32_t>(b_.size());
  while (i > 0 && j > 0) {
    if (a_[static_cast<std::size_t>(i - 1)] == b_[static_cast<std::size_t>(j - 1)]) {
      out.push_back(a_[static_cast<std::size_t>(i - 1)]);
      --i;
      --j;
    } else if (dag.at(i - 1, j) >= dag.at(i, j - 1)) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

Matrix<std::int32_t> serial_lcs(const std::string& a, const std::string& b) {
  const std::int32_t m = static_cast<std::int32_t>(a.size());
  const std::int32_t n = static_cast<std::int32_t>(b.size());
  Matrix<std::int32_t> f(m + 1, n + 1, 0);
  for (std::int32_t i = 1; i <= m; ++i) {
    for (std::int32_t j = 1; j <= n; ++j) {
      if (a[static_cast<std::size_t>(i - 1)] == b[static_cast<std::size_t>(j - 1)]) {
        f.at(i, j) = f.at(i - 1, j - 1) + 1;
      } else {
        f.at(i, j) = std::max(f.at(i - 1, j), f.at(i, j - 1));
      }
    }
  }
  return f;
}

}  // namespace dpx10::dp
