// Matrix<T> — a dense row-major 2D array used by the serial reference
// implementations and by tests comparing engine output against them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"

namespace dpx10::dp {

template <typename T>
class Matrix {
 public:
  Matrix(std::int32_t rows, std::int32_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols, fill) {
    require(rows > 0 && cols > 0, "Matrix: dimensions must be positive");
  }

  std::int32_t rows() const { return rows_; }
  std::int32_t cols() const { return cols_; }

  T& at(std::int32_t r, std::int32_t c) {
    check_internal(r >= 0 && r < rows_ && c >= 0 && c < cols_, "Matrix::at out of range");
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  const T& at(std::int32_t r, std::int32_t c) const {
    check_internal(r >= 0 && r < rows_ && c >= 0 && c < cols_, "Matrix::at out of range");
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

 private:
  std::int32_t rows_;
  std::int32_t cols_;
  std::vector<T> data_;
};

}  // namespace dpx10::dp
