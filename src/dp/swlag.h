// SWLAG — Smith-Waterman with Linear And affine Gap penalty, the workhorse
// of the paper's evaluation (all of Figs. 10-13 use it).
//
// Affine gaps use Gotoh's three-matrix recurrence; DPX10 stores the (H, E,
// F) triple as the single per-vertex value, exercising the framework with a
// non-scalar value type:
//
//   E[i,j] = max(E[i,j-1] + g_ext, H[i,j-1] + g_open)     (gap in a)
//   F[i,j] = max(F[i-1,j] + g_ext, H[i-1,j] + g_open)     (gap in b)
//   H[i,j] = max(0, H[i-1,j-1] + s(a_i,b_j), E[i,j], F[i,j])
//
// DAG pattern: left-top-diag (Fig. 5b), identical to plain SW.
#pragma once

#include <cstdint>
#include <string>

#include "core/app.h"
#include "dp/matrix.h"

namespace dpx10::dp {

inline constexpr std::int32_t kSwlagMatch = 2;
inline constexpr std::int32_t kSwlagMismatch = -1;
inline constexpr std::int32_t kSwlagGapOpen = -3;
inline constexpr std::int32_t kSwlagGapExtend = -1;
/// "Minus infinity" for E/F boundaries; large enough to never win a max,
/// small enough in magnitude to never overflow when extended.
inline constexpr std::int32_t kSwlagNegInf = -(1 << 29);

struct SwlagCell {
  std::int32_t h = 0;
  std::int32_t e = kSwlagNegInf;
  std::int32_t f = kSwlagNegInf;

  friend bool operator==(const SwlagCell&, const SwlagCell&) = default;
};

class SwlagApp : public DPX10App<SwlagCell> {
 public:
  SwlagApp(std::string a, std::string b) : a_(std::move(a)), b_(std::move(b)) {}

  SwlagCell compute(std::int32_t i, std::int32_t j,
                    std::span<const Vertex<SwlagCell>> deps) override;

  std::string_view name() const override { return "swlag"; }

  const std::string& a() const { return a_; }
  const std::string& b() const { return b_; }

 private:
  std::string a_;
  std::string b_;
};

/// One cell of the Gotoh recurrence, shared by the app, the serial
/// reference, and the hand-coded native baseline so all three compute
/// byte-identical values.
SwlagCell swlag_step(std::int32_t i, std::int32_t j, const SwlagCell& diag,
                     const SwlagCell& top, const SwlagCell& left, const std::string& a,
                     const std::string& b);

Matrix<SwlagCell> serial_swlag(const std::string& a, const std::string& b);

/// Maximum H over the matrix — the alignment score.
std::int32_t swlag_best_score(const Matrix<SwlagCell>& m);

}  // namespace dpx10::dp
