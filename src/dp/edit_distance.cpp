#include "dp/edit_distance.h"

#include <algorithm>

namespace dpx10::dp {

std::int32_t EditDistanceApp::compute(std::int32_t i, std::int32_t j,
                                      std::span<const Vertex<std::int32_t>> deps) {
  if (i == 0) return j;
  if (j == 0) return i;
  std::int32_t diag = 0, top = 0, left = 0;
  for (const Vertex<std::int32_t>& v : deps) {
    if (v.i() == i - 1 && v.j() == j - 1) diag = v.result();
    if (v.i() == i - 1 && v.j() == j) top = v.result();
    if (v.i() == i && v.j() == j - 1) left = v.result();
  }
  const std::int32_t substitute =
      diag + (a_[static_cast<std::size_t>(i - 1)] != b_[static_cast<std::size_t>(j - 1)]);
  return std::min({top + 1, left + 1, substitute});
}

Matrix<std::int32_t> serial_edit_distance(const std::string& a, const std::string& b) {
  const std::int32_t m = static_cast<std::int32_t>(a.size());
  const std::int32_t n = static_cast<std::int32_t>(b.size());
  Matrix<std::int32_t> d(m + 1, n + 1, 0);
  for (std::int32_t i = 0; i <= m; ++i) d.at(i, 0) = i;
  for (std::int32_t j = 0; j <= n; ++j) d.at(0, j) = j;
  for (std::int32_t i = 1; i <= m; ++i) {
    for (std::int32_t j = 1; j <= n; ++j) {
      const std::int32_t substitute =
          d.at(i - 1, j - 1) +
          (a[static_cast<std::size_t>(i - 1)] != b[static_cast<std::size_t>(j - 1)]);
      d.at(i, j) = std::min({d.at(i - 1, j) + 1, d.at(i, j - 1) + 1, substitute});
    }
  }
  return d;
}

}  // namespace dpx10::dp
