// Deterministic workload generators for the DP applications.
//
// The paper generates its test graphs before measuring ("the time for ...
// generating test graphs ... was not included"); we do the same, and make
// every generator a pure function of a seed so experiments are reproducible
// and engine-vs-serial comparisons see identical inputs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace dpx10::dp {

/// Uniform random string over `alphabet` (default: DNA).
std::string random_sequence(std::size_t length, std::uint64_t seed,
                            std::string_view alphabet = "ACGT");

/// Edge weight of the Manhattan Tourists grid, derived statelessly from the
/// endpoint coordinates — a billion-vertex grid needs no stored weights.
/// Range [0, 100).
inline std::int64_t mtp_weight(std::int32_t i1, std::int32_t j1, std::int32_t i2,
                               std::int32_t j2, std::uint64_t seed) {
  std::uint64_t a = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i1)) << 32) |
                    static_cast<std::uint32_t>(j1);
  std::uint64_t b = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i2)) << 32) |
                    static_cast<std::uint32_t>(j2);
  return static_cast<std::int64_t>(splitmix64(mix64(seed, mix64(a, b))) % 100);
}

/// A 0/1 knapsack instance. weights[k]/values[k] describe item k+1 in the
/// paper's 1-based item numbering.
struct KnapsackInstance {
  std::vector<std::int32_t> weights;
  std::vector<std::int64_t> values;
  std::int32_t capacity = 0;

  std::int32_t items() const { return static_cast<std::int32_t>(weights.size()); }
};

/// Random instance: `items` items with weights in [1, max_weight] and
/// values in [1, 1000].
KnapsackInstance random_knapsack(std::int32_t items, std::int32_t capacity,
                                 std::int32_t max_weight, std::uint64_t seed);

}  // namespace dpx10::dp
