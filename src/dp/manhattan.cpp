#include "dp/manhattan.h"

#include <algorithm>

namespace dpx10::dp {

std::int64_t ManhattanApp::compute(std::int32_t i, std::int32_t j,
                                   std::span<const Vertex<std::int64_t>> deps) {
  if (i == 0 && j == 0) return 0;
  std::int64_t best = INT64_MIN;
  for (const Vertex<std::int64_t>& v : deps) {
    best = std::max(best, v.result() + mtp_weight(v.i(), v.j(), i, j, seed_));
  }
  return best;
}

Matrix<std::int64_t> serial_manhattan(std::int32_t rows, std::int32_t cols,
                                      std::uint64_t seed) {
  Matrix<std::int64_t> d(rows, cols, 0);
  for (std::int32_t i = 0; i < rows; ++i) {
    for (std::int32_t j = 0; j < cols; ++j) {
      if (i == 0 && j == 0) continue;
      std::int64_t best = INT64_MIN;
      if (i > 0) best = std::max(best, d.at(i - 1, j) + mtp_weight(i - 1, j, i, j, seed));
      if (j > 0) best = std::max(best, d.at(i, j - 1) + mtp_weight(i, j - 1, i, j, seed));
      d.at(i, j) = best;
    }
  }
  return d;
}

}  // namespace dpx10::dp
