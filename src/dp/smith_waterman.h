// Smith-Waterman local alignment with linear gap penalty — the paper's
// first demo application (§VII-A, Fig. 7).
//
//   H[i,0] = H[0,j] = 0
//   H[i,j] = max(0, H[i-1,j-1] + s(a_i, b_j), H[i-1,j] + p, H[i,j-1] + p)
//   s = +2 match / -1 mismatch, p = -1
//
// DAG pattern: left-top-diag (Fig. 5b).
#pragma once

#include <cstdint>
#include <string>

#include "core/app.h"
#include "dp/matrix.h"

namespace dpx10::dp {

inline constexpr std::int32_t kSwMatchScore = 2;
inline constexpr std::int32_t kSwMismatchScore = -1;
inline constexpr std::int32_t kSwGapPenalty = -1;

class SmithWatermanApp : public DPX10App<std::int32_t> {
 public:
  SmithWatermanApp(std::string a, std::string b) : a_(std::move(a)), b_(std::move(b)) {}

  std::int32_t compute(std::int32_t i, std::int32_t j,
                       std::span<const Vertex<std::int32_t>> deps) override;

  std::string_view name() const override { return "smith-waterman"; }

  const std::string& a() const { return a_; }
  const std::string& b() const { return b_; }

 private:
  std::string a_;
  std::string b_;
};

Matrix<std::int32_t> serial_smith_waterman(const std::string& a, const std::string& b);

/// Maximum cell of a score matrix — the local-alignment score.
std::int32_t matrix_max(const Matrix<std::int32_t>& m);

}  // namespace dpx10::dp
