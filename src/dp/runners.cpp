#include "dp/runners.h"

#include <cmath>
#include <memory>

#include "common/error.h"
#include "core/dpx10.h"
#include "core/tiling.h"
#include "dp/inputs.h"
#include "dp/kernels.h"
#include "dp/knapsack.h"
#include "dp/lcs.h"
#include "dp/lps.h"
#include "dp/manhattan.h"
#include "dp/nussinov.h"
#include "dp/smith_waterman.h"
#include "dp/swlag.h"

namespace dpx10::dp {

namespace {

std::int32_t square_side(std::int64_t target) {
  auto side = static_cast<std::int32_t>(std::llround(std::sqrt(static_cast<double>(target))));
  return side < 2 ? 2 : side;
}

template <typename T>
RunReport run_engine(EngineKind engine, const RuntimeOptions& options, const Dag& dag,
                     DPX10App<T>& app) {
  if (engine == EngineKind::Threaded) {
    ThreadedEngine<T> e(options);
    return e.run(dag, app);
  }
  SimEngine<T> e(options);
  return e.run(dag, app);
}

/// Kernel fast path (--tile): macro-DAG of B × B tiles whose interiors are
/// raw serial kernel loops exchanging TileEdge boundaries.
template <typename Kernel>
RunReport run_tiled_kernel(Kernel kernel, const ProblemShape& shape, EngineKind engine,
                           const RuntimeOptions& options) {
  TiledWavefrontApp<Kernel> app(std::move(kernel),
                                TileGeometry(shape.height, shape.width, options.tile_size));
  const std::unique_ptr<Dag> dag = app.make_dag();
  return run_engine(engine, options, *dag, app);
}

/// Generic tiled path (--tile): wrap any cell app/DAG pair in the
/// TiledDag + TiledApp adapter; interiors run a local Kahn order and
/// publish retained-cell TileBlocks.
template <typename T>
RunReport run_tiled_app(DPX10App<T>& inner, const Dag& cells, EngineKind engine,
                        const RuntimeOptions& options) {
  TiledDag dag(cells, options.tile_size);
  TiledApp<T> app(inner, cells, options.tile_size);
  return run_engine(engine, options, dag, app);
}

}  // namespace

const std::vector<std::string>& runnable_apps() {
  static const std::vector<std::string> apps = {"swlag", "mtp",      "lps", "knapsack",
                                                "lcs",   "sw",       "nussinov"};
  return apps;
}

ProblemShape shape_for(const std::string& app, std::int64_t target_vertices) {
  require(target_vertices >= 4, "shape_for: target_vertices too small");
  ProblemShape shape;
  if (app == "lps" || app == "nussinov") {
    // Upper triangle: n(n+1)/2 cells.
    auto n = static_cast<std::int32_t>(
        std::llround((std::sqrt(8.0 * static_cast<double>(target_vertices) + 1.0) - 1.0) / 2.0));
    if (n < 2) n = 2;
    shape.height = shape.width = n;
    shape.vertices = static_cast<std::int64_t>(n) * (n + 1) / 2;
  } else if (app == "knapsack") {
    // Keep the item axis shorter than the capacity axis, as real instances
    // are; 1:4 keeps rows long without collapsing the place pipeline.
    auto items = static_cast<std::int32_t>(
        std::llround(std::sqrt(static_cast<double>(target_vertices) / 4.0)));
    if (items < 2) items = 2;
    auto capacity = static_cast<std::int32_t>(target_vertices / (items + 1)) - 1;
    if (capacity < 2) capacity = 2;
    shape.height = items + 1;
    shape.width = capacity + 1;
    shape.vertices = static_cast<std::int64_t>(shape.height) * shape.width;
  } else {
    const std::int32_t side = square_side(target_vertices);
    shape.height = shape.width = side;
    shape.vertices = static_cast<std::int64_t>(side) * side;
  }
  return shape;
}

std::unique_ptr<Dag> make_dp_dag(const std::string& app, std::int64_t target_vertices,
                                 std::uint64_t input_seed, std::int32_t tile) {
  const ProblemShape shape = shape_for(app, target_vertices);
  std::unique_ptr<Dag> cells;
  if (app == "swlag" || app == "sw" || app == "lcs") {
    if (tile > 1) {
      // The kernel fast path schedules the built-in left-top-diag pattern
      // at tile granularity directly (no cell DAG is ever materialized).
      const TileGeometry geo(shape.height, shape.width, tile);
      return patterns::make_pattern("left-top-diag", geo.tiles_i(), geo.tiles_j());
    }
    cells = patterns::make_pattern("left-top-diag", shape.height, shape.width);
  } else if (app == "mtp") {
    if (tile > 1) {
      const TileGeometry geo(shape.height, shape.width, tile);
      return patterns::make_pattern("left-top-diag", geo.tiles_i(), geo.tiles_j());
    }
    cells = patterns::make_pattern("left-top", shape.height, shape.width);
  } else if (app == "lps") {
    cells = patterns::make_pattern("interval", shape.height, shape.width);
  } else if (app == "nussinov") {
    cells = std::make_unique<NussinovDag>(shape.height);
  } else if (app == "knapsack") {
    const std::int32_t capacity = shape.width - 1;
    const std::int32_t max_weight = capacity < 50 ? capacity : 50;
    auto instance = std::make_shared<const KnapsackInstance>(
        random_knapsack(shape.height - 1, capacity, max_weight, input_seed));
    cells = std::make_unique<KnapsackDag>(instance);
  } else {
    throw ConfigError("make_dp_dag: unknown application '" + app + "'");
  }
  if (tile > 1) {
    return std::make_unique<TiledDag>(std::shared_ptr<const Dag>(std::move(cells)), tile);
  }
  return cells;
}

RunReport run_dp_app(const std::string& app, EngineKind engine,
                     std::int64_t target_vertices, const RuntimeOptions& options,
                     std::uint64_t input_seed) {
  const ProblemShape shape = shape_for(app, target_vertices);
  const bool tiled = options.tile_size > 1;

  if (app == "swlag") {
    std::string a = random_sequence(static_cast<std::size_t>(shape.height - 1), input_seed);
    std::string b = random_sequence(static_cast<std::size_t>(shape.width - 1), input_seed + 1);
    if (tiled) return run_tiled_kernel(SwlagKernel(a, b), shape, engine, options);
    SwlagApp application(std::move(a), std::move(b));
    auto dag = patterns::make_pattern("left-top-diag", shape.height, shape.width);
    return run_engine(engine, options, *dag, application);
  }
  if (app == "sw") {
    std::string a = random_sequence(static_cast<std::size_t>(shape.height - 1), input_seed);
    std::string b = random_sequence(static_cast<std::size_t>(shape.width - 1), input_seed + 1);
    if (tiled) return run_tiled_kernel(SwKernel(a, b), shape, engine, options);
    SmithWatermanApp application(std::move(a), std::move(b));
    auto dag = patterns::make_pattern("left-top-diag", shape.height, shape.width);
    return run_engine(engine, options, *dag, application);
  }
  if (app == "lcs") {
    std::string a = random_sequence(static_cast<std::size_t>(shape.height - 1), input_seed);
    std::string b = random_sequence(static_cast<std::size_t>(shape.width - 1), input_seed + 1);
    if (tiled) return run_tiled_kernel(LcsKernel(a, b), shape, engine, options);
    LcsApp application(std::move(a), std::move(b));
    auto dag = patterns::make_pattern("left-top-diag", shape.height, shape.width);
    return run_engine(engine, options, *dag, application);
  }
  if (app == "mtp") {
    // Tiled MTP rides the kernel fast path over the left-top-diag macro
    // pattern; MtpKernel ignores its diagonal input, so values match the
    // untiled left-top run exactly.
    if (tiled) return run_tiled_kernel(MtpKernel(input_seed), shape, engine, options);
    ManhattanApp application(input_seed);
    auto dag = patterns::make_pattern("left-top", shape.height, shape.width);
    return run_engine(engine, options, *dag, application);
  }
  if (app == "lps") {
    std::string x = random_sequence(static_cast<std::size_t>(shape.height), input_seed);
    LpsApp application(std::move(x));
    auto dag = patterns::make_pattern("interval", shape.height, shape.width);
    if (tiled) return run_tiled_app(application, *dag, engine, options);
    return run_engine(engine, options, *dag, application);
  }
  if (app == "nussinov") {
    std::string x = random_sequence(static_cast<std::size_t>(shape.height), input_seed, "ACGU");
    NussinovApp application(std::move(x));
    NussinovDag dag(shape.height);
    if (tiled) return run_tiled_app(application, dag, engine, options);
    return run_engine(engine, options, dag, application);
  }
  if (app == "knapsack") {
    const std::int32_t capacity = shape.width - 1;
    const std::int32_t max_weight = capacity < 50 ? capacity : 50;
    auto instance = std::make_shared<const KnapsackInstance>(
        random_knapsack(shape.height - 1, capacity, max_weight, input_seed));
    KnapsackApp application(instance);
    KnapsackDag dag(instance);
    if (tiled) return run_tiled_app(application, dag, engine, options);
    return run_engine(engine, options, dag, application);
  }
  throw ConfigError("run_dp_app: unknown application '" + app + "'");
}

}  // namespace dpx10::dp
