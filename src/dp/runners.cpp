#include "dp/runners.h"

#include <cmath>
#include <memory>

#include "common/error.h"
#include "core/dpx10.h"
#include "dp/inputs.h"
#include "dp/knapsack.h"
#include "dp/lcs.h"
#include "dp/lps.h"
#include "dp/manhattan.h"
#include "dp/nussinov.h"
#include "dp/smith_waterman.h"
#include "dp/swlag.h"

namespace dpx10::dp {

namespace {

std::int32_t square_side(std::int64_t target) {
  auto side = static_cast<std::int32_t>(std::llround(std::sqrt(static_cast<double>(target))));
  return side < 2 ? 2 : side;
}

template <typename T>
RunReport run_engine(EngineKind engine, const RuntimeOptions& options, const Dag& dag,
                     DPX10App<T>& app) {
  if (engine == EngineKind::Threaded) {
    ThreadedEngine<T> e(options);
    return e.run(dag, app);
  }
  SimEngine<T> e(options);
  return e.run(dag, app);
}

}  // namespace

const std::vector<std::string>& runnable_apps() {
  static const std::vector<std::string> apps = {"swlag", "mtp",      "lps", "knapsack",
                                                "lcs",   "sw",       "nussinov"};
  return apps;
}

ProblemShape shape_for(const std::string& app, std::int64_t target_vertices) {
  require(target_vertices >= 4, "shape_for: target_vertices too small");
  ProblemShape shape;
  if (app == "lps" || app == "nussinov") {
    // Upper triangle: n(n+1)/2 cells.
    auto n = static_cast<std::int32_t>(
        std::llround((std::sqrt(8.0 * static_cast<double>(target_vertices) + 1.0) - 1.0) / 2.0));
    if (n < 2) n = 2;
    shape.height = shape.width = n;
    shape.vertices = static_cast<std::int64_t>(n) * (n + 1) / 2;
  } else if (app == "knapsack") {
    // Keep the item axis shorter than the capacity axis, as real instances
    // are; 1:4 keeps rows long without collapsing the place pipeline.
    auto items = static_cast<std::int32_t>(
        std::llround(std::sqrt(static_cast<double>(target_vertices) / 4.0)));
    if (items < 2) items = 2;
    auto capacity = static_cast<std::int32_t>(target_vertices / (items + 1)) - 1;
    if (capacity < 2) capacity = 2;
    shape.height = items + 1;
    shape.width = capacity + 1;
    shape.vertices = static_cast<std::int64_t>(shape.height) * shape.width;
  } else {
    const std::int32_t side = square_side(target_vertices);
    shape.height = shape.width = side;
    shape.vertices = static_cast<std::int64_t>(side) * side;
  }
  return shape;
}

std::unique_ptr<Dag> make_dp_dag(const std::string& app, std::int64_t target_vertices,
                                 std::uint64_t input_seed) {
  const ProblemShape shape = shape_for(app, target_vertices);
  if (app == "swlag" || app == "sw" || app == "lcs") {
    return patterns::make_pattern("left-top-diag", shape.height, shape.width);
  }
  if (app == "mtp") {
    return patterns::make_pattern("left-top", shape.height, shape.width);
  }
  if (app == "lps") {
    return patterns::make_pattern("interval", shape.height, shape.width);
  }
  if (app == "nussinov") {
    return std::make_unique<NussinovDag>(shape.height);
  }
  if (app == "knapsack") {
    const std::int32_t capacity = shape.width - 1;
    const std::int32_t max_weight = capacity < 50 ? capacity : 50;
    auto instance = std::make_shared<const KnapsackInstance>(
        random_knapsack(shape.height - 1, capacity, max_weight, input_seed));
    return std::make_unique<KnapsackDag>(instance);
  }
  throw ConfigError("make_dp_dag: unknown application '" + app + "'");
}

RunReport run_dp_app(const std::string& app, EngineKind engine,
                     std::int64_t target_vertices, const RuntimeOptions& options,
                     std::uint64_t input_seed) {
  const ProblemShape shape = shape_for(app, target_vertices);

  if (app == "swlag") {
    std::string a = random_sequence(static_cast<std::size_t>(shape.height - 1), input_seed);
    std::string b = random_sequence(static_cast<std::size_t>(shape.width - 1), input_seed + 1);
    SwlagApp application(std::move(a), std::move(b));
    auto dag = patterns::make_pattern("left-top-diag", shape.height, shape.width);
    return run_engine(engine, options, *dag, application);
  }
  if (app == "sw") {
    std::string a = random_sequence(static_cast<std::size_t>(shape.height - 1), input_seed);
    std::string b = random_sequence(static_cast<std::size_t>(shape.width - 1), input_seed + 1);
    SmithWatermanApp application(std::move(a), std::move(b));
    auto dag = patterns::make_pattern("left-top-diag", shape.height, shape.width);
    return run_engine(engine, options, *dag, application);
  }
  if (app == "lcs") {
    std::string a = random_sequence(static_cast<std::size_t>(shape.height - 1), input_seed);
    std::string b = random_sequence(static_cast<std::size_t>(shape.width - 1), input_seed + 1);
    LcsApp application(std::move(a), std::move(b));
    auto dag = patterns::make_pattern("left-top-diag", shape.height, shape.width);
    return run_engine(engine, options, *dag, application);
  }
  if (app == "mtp") {
    ManhattanApp application(input_seed);
    auto dag = patterns::make_pattern("left-top", shape.height, shape.width);
    return run_engine(engine, options, *dag, application);
  }
  if (app == "lps") {
    std::string x = random_sequence(static_cast<std::size_t>(shape.height), input_seed);
    LpsApp application(std::move(x));
    auto dag = patterns::make_pattern("interval", shape.height, shape.width);
    return run_engine(engine, options, *dag, application);
  }
  if (app == "nussinov") {
    std::string x = random_sequence(static_cast<std::size_t>(shape.height), input_seed, "ACGU");
    NussinovApp application(std::move(x));
    NussinovDag dag(shape.height);
    return run_engine(engine, options, dag, application);
  }
  if (app == "knapsack") {
    const std::int32_t capacity = shape.width - 1;
    const std::int32_t max_weight = capacity < 50 ? capacity : 50;
    auto instance = std::make_shared<const KnapsackInstance>(
        random_knapsack(shape.height - 1, capacity, max_weight, input_seed));
    KnapsackApp application(instance);
    KnapsackDag dag(instance);
    return run_engine(engine, options, dag, application);
  }
  throw ConfigError("run_dp_app: unknown application '" + app + "'");
}

}  // namespace dpx10::dp
