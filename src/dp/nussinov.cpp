#include "dp/nussinov.h"

#include <algorithm>
#include <vector>

namespace dpx10::dp {

std::int32_t nussinov_pair(char a, char b) {
  auto is = [&](char x, char y) { return (a == x && b == y) || (a == y && b == x); };
  if (is('A', 'U') || is('G', 'C') || is('G', 'U')) return 1;
  return 0;
}

std::int32_t NussinovApp::compute(std::int32_t i, std::int32_t j,
                                  std::span<const Vertex<std::int32_t>> deps) {
  if (j - i <= kNussinovMinLoop) return 0;
  // Index the O(n) dependencies by coordinate. Local buffers keep compute()
  // thread-safe under the threaded engine.
  std::vector<std::int32_t> row(static_cast<std::size_t>(j - i), 0);       // N(i, k)
  std::vector<std::int32_t> col(static_cast<std::size_t>(j - i), 0);       // N(k+1, j)
  std::int32_t inner = 0;                                                  // N(i+1, j-1)
  for (const Vertex<std::int32_t>& v : deps) {
    if (v.i() == i + 1 && v.j() == j - 1) inner = v.result();
    if (v.i() == i && v.j() < j) row[static_cast<std::size_t>(v.j() - i)] = v.result();
    if (v.j() == j && v.i() > i) col[static_cast<std::size_t>(v.i() - i - 1)] = v.result();
  }
  std::int32_t best =
      inner + nussinov_pair(x_[static_cast<std::size_t>(i)], x_[static_cast<std::size_t>(j)]);
  for (std::int32_t k = i; k < j; ++k) {
    best = std::max(best, row[static_cast<std::size_t>(k - i)] +
                              col[static_cast<std::size_t>(k - i)]);
  }
  return best;
}

Matrix<std::int32_t> serial_nussinov(const std::string& x) {
  const std::int32_t n = static_cast<std::int32_t>(x.size());
  Matrix<std::int32_t> m(n, n, 0);
  for (std::int32_t len = kNussinovMinLoop + 2; len <= n; ++len) {
    for (std::int32_t i = 0; i + len - 1 < n; ++i) {
      const std::int32_t j = i + len - 1;
      std::int32_t best =
          m.at(i + 1, j - 1) +
          nussinov_pair(x[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(j)]);
      for (std::int32_t k = i; k < j; ++k) {
        best = std::max(best, m.at(i, k) + m.at(k + 1, j));
      }
      m.at(i, j) = best;
    }
  }
  return m;
}

}  // namespace dpx10::dp
