#include "dp/swlag.h"

#include <algorithm>

namespace dpx10::dp {

SwlagCell swlag_step(std::int32_t i, std::int32_t j, const SwlagCell& diag,
                     const SwlagCell& top, const SwlagCell& left, const std::string& a,
                     const std::string& b) {
  if (i == 0 || j == 0) return SwlagCell{};  // h=0, e=f=-inf boundaries
  SwlagCell out;
  out.e = std::max(left.e + kSwlagGapExtend, left.h + kSwlagGapOpen);
  out.f = std::max(top.f + kSwlagGapExtend, top.h + kSwlagGapOpen);
  const bool match =
      a[static_cast<std::size_t>(i - 1)] == b[static_cast<std::size_t>(j - 1)];
  const std::int32_t sub = diag.h + (match ? kSwlagMatch : kSwlagMismatch);
  out.h = std::max({0, sub, out.e, out.f});
  return out;
}

SwlagCell SwlagApp::compute(std::int32_t i, std::int32_t j,
                            std::span<const Vertex<SwlagCell>> deps) {
  if (i == 0 || j == 0) return SwlagCell{};
  SwlagCell diag, top, left;
  for (const Vertex<SwlagCell>& v : deps) {
    if (v.i() == i - 1 && v.j() == j - 1) diag = v.result();
    if (v.i() == i - 1 && v.j() == j) top = v.result();
    if (v.i() == i && v.j() == j - 1) left = v.result();
  }
  return swlag_step(i, j, diag, top, left, a_, b_);
}

Matrix<SwlagCell> serial_swlag(const std::string& a, const std::string& b) {
  const std::int32_t m = static_cast<std::int32_t>(a.size());
  const std::int32_t n = static_cast<std::int32_t>(b.size());
  Matrix<SwlagCell> mat(m + 1, n + 1, SwlagCell{});
  for (std::int32_t i = 1; i <= m; ++i) {
    for (std::int32_t j = 1; j <= n; ++j) {
      mat.at(i, j) = swlag_step(i, j, mat.at(i - 1, j - 1), mat.at(i - 1, j),
                                   mat.at(i, j - 1), a, b);
    }
  }
  return mat;
}

std::int32_t swlag_best_score(const Matrix<SwlagCell>& m) {
  std::int32_t best = 0;
  for (std::int32_t i = 0; i < m.rows(); ++i) {
    for (std::int32_t j = 0; j < m.cols(); ++j) best = std::max(best, m.at(i, j).h);
  }
  return best;
}

}  // namespace dpx10::dp
