// Hand-coded "native" SWLAG — the Fig. 12 comparison baseline.
//
// The paper measures DPX10's overhead by implementing SWLAG directly in
// native X10 "for the sake of simplicity and fairness: the cache list was
// not used and other configurations were set to the same". We reproduce
// that: the same place/worker topology (nplaces × nthreads threads, row
// blocks per place, per-place ready deques) and the same per-vertex task
// granularity, but with every framework layer stripped out — raw flat
// arrays instead of DistArray, inlined neighbour reads instead of pattern
// dispatch + dependency gathering, plain atomic counters instead of
// metrics/traffic accounting, and no cache or fault-tolerance machinery.
// The DPX10-vs-native wall-clock ratio on identical hardware is the
// quantity Fig. 12 reports.
#pragma once

#include <cstdint>
#include <string>

namespace dpx10::baseline {

struct NativeRunResult {
  double elapsed_seconds = 0.0;
  std::int32_t best_score = 0;     ///< max H over the matrix (sanity check)
  std::uint64_t computed = 0;      ///< vertices executed
};

/// Runs SWLAG over (a.size()+1) × (b.size()+1) cells on
/// nplaces × nthreads worker threads. The caller compares elapsed_seconds
/// against a ThreadedEngine run of SwlagApp with the cache disabled.
///
/// `work_ns` adds a busy-wait of that many nanoseconds per vertex on both
/// sides of the Fig. 12 comparison. X10 spawns one activity per vertex, so
/// its per-vertex floor is on the order of microseconds; the busy-wait
/// reproduces that floor so the overhead *ratio* is measured at the
/// granularity the paper measured it (see EXPERIMENTS.md).
NativeRunResult native_swlag_threaded(const std::string& a, const std::string& b,
                                      std::int32_t nplaces, std::int32_t nthreads,
                                      double work_ns = 0.0);

/// Busy-waits approximately `ns` nanoseconds (steady-clock bounded).
void spin_for_ns(double ns);

}  // namespace dpx10::baseline
