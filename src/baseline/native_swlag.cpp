#include "baseline/native_swlag.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/stopwatch.h"
#include "dp/swlag.h"

namespace dpx10::baseline {

using dp::SwlagCell;

void spin_for_ns(double ns) {
  if (ns <= 0.0) return;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(static_cast<long>(ns));
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

namespace {

/// Per-place ready deque with its own lock, exactly like the framework's,
/// so queue mechanics are not part of the measured difference.
struct NativePlace {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::int64_t> ready;
};

struct NativeState {
  const std::string& a;
  const std::string& b;
  std::int32_t rows;
  std::int32_t cols;
  std::int32_t nplaces;
  double work_ns = 0.0;
  std::vector<SwlagCell> cells;
  std::vector<std::atomic<std::int8_t>> indegree;
  std::vector<NativePlace> places;
  std::atomic<std::int64_t> finished{0};
  std::int64_t total;
  std::atomic<bool> done{false};

  NativeState(const std::string& a_, const std::string& b_, std::int32_t nplaces_)
      : a(a_),
        b(b_),
        rows(static_cast<std::int32_t>(a_.size()) + 1),
        cols(static_cast<std::int32_t>(b_.size()) + 1),
        nplaces(nplaces_),
        cells(static_cast<std::size_t>(rows) * cols),
        indegree(static_cast<std::size_t>(rows) * cols),
        places(static_cast<std::size_t>(nplaces_)),
        total(static_cast<std::int64_t>(rows) * cols) {}

  std::int64_t index(std::int32_t i, std::int32_t j) const {
    return static_cast<std::int64_t>(i) * cols + j;
  }

  // Same balanced row-block ownership as the framework's BlockRow dist.
  std::int32_t owner(std::int32_t i) const {
    std::int64_t p = (static_cast<std::int64_t>(i) * nplaces) / rows;
    return p >= nplaces ? nplaces - 1 : static_cast<std::int32_t>(p);
  }

  void push_ready(std::int32_t place, std::int64_t idx) {
    NativePlace& pl = places[static_cast<std::size_t>(place)];
    {
      std::lock_guard<std::mutex> lk(pl.mu);
      pl.ready.push_back(idx);
    }
    pl.cv.notify_one();
  }

  void execute(std::int64_t idx) {
    const std::int32_t i = static_cast<std::int32_t>(idx / cols);
    const std::int32_t j = static_cast<std::int32_t>(idx % cols);
    static const SwlagCell kBoundary{};
    const SwlagCell& diag = (i > 0 && j > 0) ? cells[static_cast<std::size_t>(idx - cols - 1)]
                                             : kBoundary;
    const SwlagCell& top = i > 0 ? cells[static_cast<std::size_t>(idx - cols)] : kBoundary;
    const SwlagCell& left = j > 0 ? cells[static_cast<std::size_t>(idx - 1)] : kBoundary;
    cells[static_cast<std::size_t>(idx)] = dp::swlag_step(i, j, diag, top, left, a, b);
    spin_for_ns(work_ns);

    // Release successors: (i+1,j), (i,j+1), (i+1,j+1).
    release(i + 1, j);
    release(i, j + 1);
    release(i + 1, j + 1);

    if (finished.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
      done.store(true, std::memory_order_release);
      for (NativePlace& pl : places) pl.cv.notify_all();
    }
  }

  void release(std::int32_t i, std::int32_t j) {
    if (i >= rows || j >= cols) return;
    const std::int64_t idx = index(i, j);
    if (indegree[static_cast<std::size_t>(idx)].fetch_sub(1, std::memory_order_acq_rel) -
            1 ==
        0) {
      push_ready(owner(i), idx);
    }
  }

  void worker(std::int32_t place) {
    NativePlace& pl = places[static_cast<std::size_t>(place)];
    while (!done.load(std::memory_order_acquire)) {
      std::int64_t idx = -1;
      {
        std::unique_lock<std::mutex> lk(pl.mu);
        if (pl.ready.empty()) {
          pl.cv.wait_for(lk, std::chrono::milliseconds(1));
          continue;
        }
        idx = pl.ready.front();
        pl.ready.pop_front();
      }
      execute(idx);
    }
  }
};

}  // namespace

NativeRunResult native_swlag_threaded(const std::string& a, const std::string& b,
                                      std::int32_t nplaces, std::int32_t nthreads,
                                      double work_ns) {
  require(nplaces > 0 && nthreads > 0, "native_swlag_threaded: bad topology");
  NativeState st(a, b, nplaces);
  st.work_ns = work_ns;

  // Indegree = number of in-matrix predecessors among {top, left, diag}.
  for (std::int32_t i = 0; i < st.rows; ++i) {
    for (std::int32_t j = 0; j < st.cols; ++j) {
      std::int8_t d = 0;
      if (i > 0) ++d;
      if (j > 0) ++d;
      if (i > 0 && j > 0) ++d;
      st.indegree[static_cast<std::size_t>(st.index(i, j))].store(
          d, std::memory_order_relaxed);
    }
  }
  st.push_ready(st.owner(0), st.index(0, 0));

  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nplaces) * nthreads);
  for (std::int32_t p = 0; p < nplaces; ++p) {
    for (std::int32_t t = 0; t < nthreads; ++t) {
      threads.emplace_back([&st, p] { st.worker(p); });
    }
  }
  for (std::thread& t : threads) t.join();

  NativeRunResult result;
  result.elapsed_seconds = watch.seconds();
  result.computed = static_cast<std::uint64_t>(st.total);
  for (const SwlagCell& c : st.cells) {
    if (c.h > result.best_score) result.best_score = c.h;
  }
  return result;
}

}  // namespace dpx10::baseline
