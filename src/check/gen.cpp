#include "check/gen.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/error.h"
#include "common/strings.h"
#include "core/patterns/registry.h"

namespace dpx10::check {
namespace {

// Distinct hash streams derived from the case seed, so the recurrence, the
// prefinish selection and the prefinish values never collide.
constexpr std::uint64_t kPrefinSelect = 0xf1de5e1ec7ed5a17ULL;
constexpr std::uint64_t kPrefinValue = 0xabba9e3779b97f4aULL;

std::int64_t parse_i64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(value, &used, 10);
    require(used == value.size(), "dpx10check: malformed number for '" + key +
                                      "': " + value);
    return v;
  } catch (const std::logic_error&) {
    throw ConfigError("dpx10check: malformed number for '" + key + "': " + value);
  }
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(value, &used, 10);
    require(used == value.size(), "dpx10check: malformed number for '" + key +
                                      "': " + value);
    return v;
  } catch (const std::logic_error&) {
    throw ConfigError("dpx10check: malformed number for '" + key + "': " + value);
  }
}

// Parses an enum by scanning its name table — every enum here is tiny and
// this keeps the harness decoupled from per-enum parser functions the
// production headers mostly don't provide.
template <typename E, typename NameFn>
bool parse_enum(const std::string& name, int count, NameFn name_of, E& out) {
  for (int v = 0; v < count; ++v) {
    const E candidate = static_cast<E>(v);
    if (name == name_of(candidate)) {
      out = candidate;
      return true;
    }
  }
  return false;
}

std::string_view planted_bug_name(PlantedBug b) {
  switch (b) {
    case PlantedBug::None: return "none";
    case PlantedBug::MutateValue: return "mutate-value";
    case PlantedBug::DropDecrement: return "drop-decrement";
  }
  return "?";
}

bool is_random_pattern(const std::string& pattern) {
  return pattern == "random" || pattern == "random-banded" ||
         pattern == "random-upper";
}

bool is_square_only(const std::string& pattern) {
  return pattern == "interval" || pattern == "interval-prefix" ||
         pattern == "random-upper";
}

}  // namespace

std::string_view engine_kind_name(EngineKind e) {
  switch (e) {
    case EngineKind::Sim: return "sim";
    case EngineKind::Threaded: return "threaded";
  }
  return "?";
}

bool parse_engine_kind(const std::string& name, EngineKind& out) {
  return parse_enum(name, 2, engine_kind_name, out);
}

std::string_view case_mode_name(CaseMode m) {
  switch (m) {
    case CaseMode::Single: return "single";
    case CaseMode::Matrix: return "matrix";
    case CaseMode::Schedules: return "schedules";
    case CaseMode::Crashes: return "crashes";
    case CaseMode::Explore: return "explore";
  }
  return "?";
}

bool parse_case_mode(const std::string& name, CaseMode& out) {
  return parse_enum(name, 5, case_mode_name, out);
}

void CaseSpec::normalize() {
  height = std::clamp<std::int32_t>(height, 1, 1 << 14);
  width = std::clamp<std::int32_t>(width, 1, 1 << 14);
  if (is_square_only(pattern)) width = height;
  if (pattern == "random-banded") {
    // Keep every row non-empty (DagDomain::banded's precondition).
    const std::int32_t min_band = std::max(1, height - width);
    band = std::clamp(band, min_band, std::max(min_band, width));
  }
  max_preds = std::clamp<std::int32_t>(max_preds, 1, 8);
  prefin = std::clamp<std::int32_t>(prefin, 0, 500);
  tile = std::clamp<std::int32_t>(tile, 0, 8);
  if (tile == 1) tile = 0;  // B=1 is the identity regrouping: run per-cell
  // Pyramid's (i-1, j+1) edge breaks the tile-able contract (docs/
  // PATTERNS.md): adjacent tile columns in one tile row would depend on
  // each other both ways, a macro-cycle. Random patterns stay tile-able
  // because build_case draws them monotone when tile > 1.
  if (pattern == "pyramid") tile = 0;
  // MutateValue flips a bit of the published payload, but only for
  // trivially-copyable value types — a TileBlock is immune, so the
  // self-test bug must keep the run per-cell to stay detectable.
  if (bug == PlantedBug::MutateValue) tile = 0;
  nplaces = std::clamp<std::int32_t>(nplaces, 1, 16);
  nthreads = std::clamp<std::int32_t>(nthreads, 1, 8);
  cache = std::max<std::int64_t>(cache, 0);
  shards = std::clamp<std::int32_t>(shards, 0, 16);
  stripes = std::clamp<std::int32_t>(stripes, 0, 16);
  wedge_ms = std::max<std::int32_t>(wedge_ms, 0);
  // Witness canonicalization: indices are ready-list positions (>= 0);
  // trailing zeros replay identically to an absent suffix (beyond the
  // prefix the replay hook picks index 0), so the empty-suffix form is the
  // canonical spelling. A witness only means anything on the sim engine —
  // threaded dispatch order is not a pure function of pick decisions.
  for (std::int32_t& w : witness) w = std::max<std::int32_t>(w, 0);
  while (!witness.empty() && witness.back() == 0) witness.pop_back();
  if (!witness.empty() || mode == CaseMode::Explore) engine = EngineKind::Sim;
  if (retirement != mem::RetirementMode::Spill) memory_limit = 0;
  if (crash_place >= 0) {
    const std::int32_t kills = 1 + (crash_place2 >= 0 ? 1 : 0) +
                               (crash_place3 >= 0 ? 1 : 0);
    // The survivor set must stay non-empty however many kills are planned.
    nplaces = std::max<std::int32_t>(nplaces, kills + 1);
    crash_place = std::min(crash_place, nplaces - 1);
    crash_event = std::max<std::int64_t>(crash_event, 1);
    // Kills target distinct places: a duplicate advances to the next free
    // id (deterministic, so mutated/shrunk specs stay reproducible).
    auto next_free = [&](std::int32_t p, std::int32_t a, std::int32_t b) {
      p = std::clamp<std::int32_t>(p, 0, nplaces - 1);
      for (std::int32_t step = 0; step < nplaces; ++step) {
        const std::int32_t cand = (p + step) % nplaces;
        if (cand != a && cand != b) return cand;
      }
      return p;
    };
    if (crash_place2 >= 0) {
      crash_place2 = next_free(crash_place2, crash_place, -1);
      if (crash_event2 < 0) crash_event2 = crash_event;  // tie: same instant
      crash_event2 = std::max(crash_event2, crash_event);
    } else {
      crash_event2 = -1;
    }
    if (crash_place3 >= 0) {
      crash_place3 = next_free(crash_place3, crash_place, crash_place2);
      const std::int64_t floor3 = crash_event2 >= 0 ? crash_event2 : crash_event;
      if (crash_event3 < 0) crash_event3 = floor3;  // tie with the 2nd kill
      crash_event3 = std::max(crash_event3, floor3);
    } else {
      crash_event3 = -1;
    }
  } else {
    crash_place = -1;
    crash_event = -1;
    crash_place2 = -1;
    crash_event2 = -1;
    crash_place3 = -1;
    crash_event3 = -1;
  }
}

DagDomain CaseSpec::make_domain() const {
  if (pattern == "random") return DagDomain::rect(height, width);
  if (pattern == "random-banded") return DagDomain::banded(height, width, band);
  if (pattern == "random-upper") return DagDomain::upper_triangular(height);
  return patterns::make_pattern(pattern, height, width)->domain();
}

std::int64_t CaseSpec::vertex_count() const { return make_domain().size(); }

RuntimeOptions CaseSpec::runtime_options() const {
  RuntimeOptions opts;
  opts.nplaces = nplaces;
  opts.nthreads = nthreads;
  opts.dist = dist;
  opts.scheduling = scheduling;
  opts.ready_order = order;
  opts.cache_capacity = static_cast<std::size_t>(cache);
  opts.cache_policy = cache_policy;
  opts.coalescing = coalescing;
  opts.queue_shards = shards;
  opts.cache_stripes = stripes;
  opts.restore = restore;
  opts.recovery = recovery;
  opts.memory.retirement = retirement;
  opts.memory.memory_limit_bytes = memory_limit;
  opts.seed = mix64(seed, 0x5eedULL);
  opts.tile_size = tile;  // engines only stamp it into traces; the harness
                          // does the actual regrouping, like the launchers
  opts.wedge_timeout_s = wedge_ms / 1000.0;
  // Oracle failure detection: recovery starts the instant the fault fires,
  // which keeps crash-sweep runs deterministic and their accounting exact.
  opts.heartbeat.enabled = false;
  auto add_kill = [&opts](std::int32_t place, std::int64_t event) {
    if (place < 0) return;
    FaultPlan fault;
    fault.place = place;
    fault.at_event = event;
    opts.faults.push_back(fault);
  };
  add_kill(crash_place, crash_event);
  add_kill(crash_place2, crash_event2);
  add_kill(crash_place3, crash_event3);
  return opts;
}

std::string CaseSpec::encode() const {
  const CaseSpec d;  // defaults — only deltas are emitted
  std::ostringstream out;
  const char* sep = "";
  auto emit = [&](const char* key, const auto& value) {
    out << sep << key << '=' << value;
    sep = ",";
  };
  if (mode != d.mode) emit("mode", case_mode_name(mode));
  if (engine != d.engine) emit("engine", engine_kind_name(engine));
  if (seed != d.seed) emit("seed", seed);
  if (pattern != d.pattern) emit("pattern", pattern);
  if (height != d.height) emit("h", height);
  if (width != d.width) emit("w", width);
  if (band != d.band) emit("band", band);
  if (max_preds != d.max_preds) emit("preds", max_preds);
  if (prefin != d.prefin) emit("prefin", prefin);
  if (tile != d.tile) emit("tile", tile);
  if (nplaces != d.nplaces) emit("nplaces", nplaces);
  if (nthreads != d.nthreads) emit("nthreads", nthreads);
  if (dist != d.dist) emit("dist", dist_kind_name(dist));
  if (scheduling != d.scheduling) emit("sched", scheduling_name(scheduling));
  if (order != d.order) emit("order", ready_order_name(order));
  if (cache_policy != d.cache_policy)
    emit("cpolicy", cache_policy_name(cache_policy));
  if (cache != d.cache) emit("cache", cache);
  if (coalescing != d.coalescing) emit("coal", coalescing ? 1 : 0);
  if (shards != d.shards) emit("shards", shards);
  if (stripes != d.stripes) emit("stripes", stripes);
  if (retirement != d.retirement)
    emit("ret", mem::retirement_mode_name(retirement));
  if (memory_limit != d.memory_limit) emit("memlim", memory_limit);
  if (recovery != d.recovery) emit("recovery", recovery_policy_name(recovery));
  if (restore != d.restore) emit("restore", restore_mode_name(restore));
  if (crash_place != d.crash_place) emit("cplace", crash_place);
  if (crash_event != d.crash_event) emit("cevent", crash_event);
  if (crash_place2 != d.crash_place2) emit("cplace2", crash_place2);
  if (crash_event2 != d.crash_event2) emit("cevent2", crash_event2);
  if (crash_place3 != d.crash_place3) emit("cplace3", crash_place3);
  if (crash_event3 != d.crash_event3) emit("cevent3", crash_event3);
  if (hook_seed != d.hook_seed) emit("hook", hook_seed);
  if (!witness.empty()) {
    std::ostringstream token;
    const char* dot = "";
    for (std::int32_t w : witness) {
      token << dot << w;
      dot = ".";
    }
    emit("witness", token.str());
  }
  if (wedge_ms != d.wedge_ms) emit("wedge_ms", wedge_ms);
  if (bug != d.bug) emit("bug", planted_bug_name(bug));
  if (bug_salt != d.bug_salt) emit("bugsalt", bug_salt);
  return out.str();
}

CaseSpec CaseSpec::decode(const std::string& text) {
  CaseSpec spec;
  for (const std::string& field : split(text, ',')) {
    const std::string pair = trim(field);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    require(eq != std::string::npos && eq > 0,
            "dpx10check: malformed spec field '" + pair + "' (expected key=value)");
    const std::string key = trim(pair.substr(0, eq));
    const std::string value = trim(pair.substr(eq + 1));
    bool ok = true;
    if (key == "mode") ok = parse_case_mode(value, spec.mode);
    else if (key == "engine") ok = parse_engine_kind(value, spec.engine);
    else if (key == "seed") spec.seed = parse_u64(key, value);
    else if (key == "pattern") spec.pattern = value;
    else if (key == "h") spec.height = static_cast<std::int32_t>(parse_i64(key, value));
    else if (key == "w") spec.width = static_cast<std::int32_t>(parse_i64(key, value));
    else if (key == "band") spec.band = static_cast<std::int32_t>(parse_i64(key, value));
    else if (key == "preds") spec.max_preds = static_cast<std::int32_t>(parse_i64(key, value));
    else if (key == "prefin") spec.prefin = static_cast<std::int32_t>(parse_i64(key, value));
    else if (key == "tile") spec.tile = static_cast<std::int32_t>(parse_i64(key, value));
    else if (key == "nplaces") spec.nplaces = static_cast<std::int32_t>(parse_i64(key, value));
    else if (key == "nthreads") spec.nthreads = static_cast<std::int32_t>(parse_i64(key, value));
    else if (key == "dist") ok = parse_enum(value, 4, dist_kind_name, spec.dist);
    else if (key == "sched") ok = parse_enum(value, 4, scheduling_name, spec.scheduling);
    else if (key == "order") ok = parse_enum(value, 2, ready_order_name, spec.order);
    else if (key == "cpolicy") ok = parse_enum(value, 2, cache_policy_name, spec.cache_policy);
    else if (key == "cache") spec.cache = parse_i64(key, value);
    else if (key == "coal") spec.coalescing = parse_i64(key, value) != 0;
    else if (key == "shards") spec.shards = static_cast<std::int32_t>(parse_i64(key, value));
    else if (key == "stripes") spec.stripes = static_cast<std::int32_t>(parse_i64(key, value));
    else if (key == "ret") ok = mem::parse_retirement_mode(value, spec.retirement);
    else if (key == "memlim") spec.memory_limit = parse_u64(key, value);
    else if (key == "recovery") ok = parse_enum(value, 2, recovery_policy_name, spec.recovery);
    else if (key == "restore") ok = parse_enum(value, 2, restore_mode_name, spec.restore);
    else if (key == "cplace") spec.crash_place = static_cast<std::int32_t>(parse_i64(key, value));
    else if (key == "cevent") spec.crash_event = parse_i64(key, value);
    else if (key == "cplace2") spec.crash_place2 = static_cast<std::int32_t>(parse_i64(key, value));
    else if (key == "cevent2") spec.crash_event2 = parse_i64(key, value);
    else if (key == "cplace3") spec.crash_place3 = static_cast<std::int32_t>(parse_i64(key, value));
    else if (key == "cevent3") spec.crash_event3 = parse_i64(key, value);
    else if (key == "hook") spec.hook_seed = parse_u64(key, value);
    else if (key == "witness") {
      spec.witness.clear();
      for (const std::string& idx : split(value, '.')) {
        const std::string t = trim(idx);
        require(!t.empty(), "dpx10check: malformed witness token '" + value + "'");
        spec.witness.push_back(static_cast<std::int32_t>(parse_i64(key, t)));
      }
    }
    else if (key == "wedge_ms") spec.wedge_ms = static_cast<std::int32_t>(parse_i64(key, value));
    else if (key == "bug") ok = parse_enum(value, 3, planted_bug_name, spec.bug);
    else if (key == "bugsalt") spec.bug_salt = parse_u64(key, value);
    else throw ConfigError("dpx10check: unknown spec key '" + key + "'");
    require(ok, "dpx10check: bad value '" + value + "' for spec key '" + key + "'");
  }
  return spec;
}

CaseSpec CaseSpec::draw(Xoshiro256& rng) {
  CaseSpec spec;
  spec.seed = rng();
  spec.engine = rng.below(2) == 0 ? EngineKind::Sim : EngineKind::Threaded;
  const std::uint64_t roll = rng.below(100);
  if (roll < 40) {
    spec.pattern = "random";
  } else if (roll < 55) {
    spec.pattern = "random-banded";
  } else if (roll < 70) {
    spec.pattern = "random-upper";
  } else {
    std::vector<std::string> names = patterns::builtin_pattern_names();
    for (const std::string& n : patterns::extended_pattern_names()) names.push_back(n);
    spec.pattern = names[rng.below(names.size())];
  }
  spec.height = 2 + static_cast<std::int32_t>(rng.below(11));
  spec.width = 2 + static_cast<std::int32_t>(rng.below(11));
  spec.band = 1 + static_cast<std::int32_t>(rng.below(4));
  spec.max_preds = 1 + static_cast<std::int32_t>(rng.below(5));
  spec.prefin = rng.below(4) == 0 ? 50 + static_cast<std::int32_t>(rng.below(250)) : 0;
  // Tiled macro-DAG runs on ~1/5 of cases; small B keeps multiple tiles
  // (and therefore real boundary edges) even at the harness's tiny dims.
  spec.tile = rng.below(5) == 0 ? 2 + static_cast<std::int32_t>(rng.below(3)) : 0;
  spec.nplaces = 1 + static_cast<std::int32_t>(rng.below(5));
  spec.nthreads = 1 + static_cast<std::int32_t>(rng.below(3));
  spec.dist = static_cast<DistKind>(rng.below(4));
  spec.scheduling = static_cast<Scheduling>(rng.below(4));
  spec.order = static_cast<ReadyOrder>(rng.below(2));
  spec.cache_policy = static_cast<CachePolicy>(rng.below(2));
  static constexpr std::int64_t kCacheSizes[] = {0, 1, 4, 64};
  spec.cache = kCacheSizes[rng.below(4)];
  spec.coalescing = rng.below(2) == 1;
  spec.shards = static_cast<std::int32_t>(rng.below(3));
  spec.stripes = static_cast<std::int32_t>(rng.below(3));
  spec.retirement = static_cast<mem::RetirementMode>(rng.below(3));
  if (spec.retirement == mem::RetirementMode::Spill && rng.below(2) == 0) {
    spec.memory_limit = 256;  // 32 live uint64 cells — forces pressure spill
  }
  spec.recovery = rng.below(4) == 0 ? RecoveryPolicy::PeriodicSnapshot
                                    : RecoveryPolicy::Rebuild;
  spec.restore = static_cast<RestoreMode>(rng.below(2));
  spec.normalize();
  return spec;
}

CheckApp::CheckApp(DagDomain domain, std::uint64_t salt,
                   std::int32_t prefin_permille)
    : domain_(domain), salt_(salt), prefin_(prefin_permille) {}

std::uint64_t CheckApp::vertex_hash(std::uint64_t salt, VertexId id) {
  return splitmix64(mix64(salt, id.key()));
}

bool CheckApp::is_prefinished(const DagDomain& domain, std::uint64_t salt,
                              std::int32_t prefin_permille, VertexId id) {
  if (prefin_permille <= 0) return false;
  // The last linear index is always computable: the engines reject a DAG
  // with nothing to do, and the oracle relies on a non-empty schedule too.
  if (domain.linearize(id) == domain.size() - 1) return false;
  return splitmix64(mix64(mix64(salt, kPrefinSelect), id.key())) % 1000 <
         static_cast<std::uint64_t>(prefin_permille);
}

std::uint64_t CheckApp::prefinish_value(std::uint64_t salt, VertexId id) {
  return splitmix64(mix64(mix64(salt, kPrefinValue), id.key()));
}

std::uint64_t CheckApp::compute(std::int32_t i, std::int32_t j,
                                std::span<const Vertex<std::uint64_t>> deps) {
  // Commutative fold: addition mod 2^64 is order-insensitive, so any
  // schedule / dep-span ordering must reproduce the oracle exactly.
  std::uint64_t value = vertex_hash(salt_, VertexId{i, j});
  for (const Vertex<std::uint64_t>& dep : deps) value += dep.value;
  return value;
}

std::optional<std::uint64_t> CheckApp::initial_value(VertexId id) const {
  if (!is_prefinished(domain_, salt_, prefin_, id)) return std::nullopt;
  return prefinish_value(salt_, id);
}

void CheckApp::app_finished(const DagView<std::uint64_t>& dag) {
  const std::int64_t n = domain_.size();
  values_.assign(static_cast<std::size_t>(n), 0);
  present_.assign(static_cast<std::size_t>(n), 0);
  for (std::int64_t idx = 0; idx < n; ++idx) {
    const VertexId id = domain_.delinearize(idx);
    // value_or() with two distinct fallbacks distinguishes "the cell still
    // holds v" (both calls agree) from "the payload is gone" (retired in
    // retire mode, where each call returns its own fallback).
    const std::uint64_t v0 = dag.value_or(id.i, id.j, 0);
    const std::uint64_t v1 = dag.value_or(id.i, id.j, 1);
    if (v0 == v1) {
      values_[static_cast<std::size_t>(idx)] = v0;
      present_[static_cast<std::size_t>(idx)] = 1;
    }
  }
}

RandomCheckDag::RandomCheckDag(DagDomain domain, std::uint64_t seed,
                               std::int32_t max_preds, bool monotone)
    : Dag(domain.height(), domain.width(), domain) {
  const DagDomain& dom = this->domain();
  const std::int64_t n = dom.size();
  deps_.resize(static_cast<std::size_t>(n));
  antideps_.resize(static_cast<std::size_t>(n));
  Xoshiro256 rng(mix64(seed, 0xdac5ULL));
  for (std::int64_t idx = 1; idx < n; ++idx) {
    const VertexId cell = dom.delinearize(idx);
    const std::uint64_t k = rng.below(static_cast<std::uint64_t>(max_preds) + 1);
    auto& dep_list = deps_[static_cast<std::size_t>(idx)];
    for (std::uint64_t e = 0; e < k; ++e) {
      // Predecessors come from strictly earlier linear indices, so the
      // structure is acyclic by construction whatever the domain shape.
      // Monotone mode additionally rejects candidates outside the
      // upper-left quadrant (a bounded, deterministic retry loop — an edge
      // that keeps missing the quadrant is simply dropped).
      std::int64_t pred = -1;
      for (int attempt = 0; attempt < 6; ++attempt) {
        const auto cand = static_cast<std::int64_t>(
            rng.below(static_cast<std::uint64_t>(idx)));
        if (monotone) {
          const VertexId p = dom.delinearize(cand);
          if (p.i > cell.i || p.j > cell.j) continue;
        }
        pred = cand;
        break;
      }
      if (pred < 0) continue;
      if (std::find(dep_list.begin(), dep_list.end(), pred) != dep_list.end())
        continue;
      dep_list.push_back(pred);
      antideps_[static_cast<std::size_t>(pred)].push_back(idx);
    }
  }
}

void RandomCheckDag::dependencies(VertexId v, std::vector<VertexId>& out) const {
  for (std::int64_t d : deps_[static_cast<std::size_t>(domain().linearize(v))]) {
    out.push_back(domain().delinearize(d));
  }
}

void RandomCheckDag::anti_dependencies(VertexId v,
                                       std::vector<VertexId>& out) const {
  for (std::int64_t a : antideps_[static_cast<std::size_t>(domain().linearize(v))]) {
    out.push_back(domain().delinearize(a));
  }
}

GeneratedCase build_case(const CaseSpec& spec) {
  GeneratedCase built;
  if (is_random_pattern(spec.pattern)) {
    built.dag = std::make_unique<RandomCheckDag>(spec.make_domain(), spec.seed,
                                                 spec.max_preds,
                                                 /*monotone=*/spec.tile > 1);
  } else {
    built.dag = patterns::make_pattern(spec.pattern, spec.height, spec.width);
  }
  const DagDomain& domain = built.dag->domain();
  const std::int64_t n = domain.size();
  built.vertices = n;
  built.oracle.assign(static_cast<std::size_t>(n), 0);

  // Serial Kahn evaluation. Linear order is not topological for the
  // interval family (cell (i,j) depends on (i,k) with k < j AND (k,j) with
  // k > i in linear order), so readiness must be indegree-driven.
  std::vector<std::vector<std::int64_t>> deps(static_cast<std::size_t>(n));
  std::vector<std::vector<std::int64_t>> succs(static_cast<std::size_t>(n));
  std::vector<char> prefin(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> remaining(static_cast<std::size_t>(n), 0);
  std::vector<VertexId> scratch;
  for (std::int64_t idx = 0; idx < n; ++idx) {
    const VertexId id = domain.delinearize(idx);
    if (CheckApp::is_prefinished(domain, spec.seed, spec.prefin, id)) {
      prefin[static_cast<std::size_t>(idx)] = 1;
      built.oracle[static_cast<std::size_t>(idx)] =
          CheckApp::prefinish_value(spec.seed, id);
      ++built.prefinished;
    }
    scratch.clear();
    built.dag->dependencies(id, scratch);
    for (VertexId dep : scratch) {
      const std::int64_t d = domain.linearize(dep);
      deps[static_cast<std::size_t>(idx)].push_back(d);
      succs[static_cast<std::size_t>(d)].push_back(idx);
    }
  }
  std::vector<std::int64_t> ready;
  for (std::int64_t idx = 0; idx < n; ++idx) {
    if (prefin[static_cast<std::size_t>(idx)]) continue;
    std::int64_t waiting = 0;
    for (std::int64_t d : deps[static_cast<std::size_t>(idx)]) {
      if (!prefin[static_cast<std::size_t>(d)]) ++waiting;
    }
    remaining[static_cast<std::size_t>(idx)] = waiting;
    if (waiting == 0) ready.push_back(idx);
  }
  std::int64_t processed = 0;
  while (!ready.empty()) {
    const std::int64_t idx = ready.back();
    ready.pop_back();
    const VertexId id = domain.delinearize(idx);
    std::uint64_t value = CheckApp::vertex_hash(spec.seed, id);
    for (std::int64_t d : deps[static_cast<std::size_t>(idx)]) {
      value += built.oracle[static_cast<std::size_t>(d)];
    }
    built.oracle[static_cast<std::size_t>(idx)] = value;
    ++processed;
    for (std::int64_t s : succs[static_cast<std::size_t>(idx)]) {
      if (prefin[static_cast<std::size_t>(s)]) continue;
      if (--remaining[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  }
  check_internal(processed == n - built.prefinished,
                 "dpx10check: oracle worklist stalled — generated structure "
                 "is cyclic or dependencies() is inconsistent");
  return built;
}

}  // namespace dpx10::check
