#include "check/explore.h"

#include <utility>

#include "common/error.h"
#include "common/rng.h"

namespace dpx10::check {
namespace {

/// One dispatch decision of an explored run.
struct StepRec {
  std::int32_t place = 0;
  std::int64_t chosen = 0;          ///< linear index dispatched
  std::int32_t branch = -1;         ///< branch ordinal; -1 = forced
  std::vector<std::int64_t> ready;  ///< candidates (branch steps only)
};

/// Drives one DFS run: consumes the node's choice prefix at branch points
/// (index 0 beyond it), records every dispatch for the race analysis, and
/// flags the sync events that demote the run to conservative expansion.
class ExploreHook final : public ScheduleHook {
 public:
  explicit ExploreHook(const std::vector<std::int32_t>& prefix)
      : prefix_(prefix) {}

  void sync_point(SyncPoint, std::int32_t) noexcept override {}

  std::int64_t pick_ready_ids(
      std::int32_t place, std::span<const std::int64_t> ready) noexcept override {
    StepRec rec;
    rec.place = place;
    std::int64_t pick = 0;
    if (ready.size() >= 2) {
      const std::size_t b = choices_.size();
      rec.branch = static_cast<std::int32_t>(b);
      if (b < prefix_.size() && prefix_[b] > 0) {
        pick = std::min<std::int64_t>(
            prefix_[b], static_cast<std::int64_t>(ready.size()) - 1);
      }
      choices_.push_back(static_cast<std::int32_t>(pick));
      rec.ready.assign(ready.begin(), ready.end());
    }
    rec.chosen = ready[static_cast<std::size_t>(pick)];
    steps_.push_back(std::move(rec));
    return pick;
  }

  void sync_event(SyncPoint point, std::int32_t, std::int64_t,
                  std::int64_t) noexcept override {
    switch (point) {
      case SyncPoint::RecoveryEpoch: saw_recovery_ = true; break;
      case SyncPoint::CoalesceFlush: saw_flush_ = true; break;
      case SyncPoint::GovernorRetire:
      case SyncPoint::GovernorSpill: saw_evict_ = true; break;
      default: break;
    }
  }

  const std::vector<StepRec>& steps() const { return steps_; }
  const std::vector<std::int32_t>& choices() const { return choices_; }

  /// True when the run exercised machinery the cell-footprint relation
  /// cannot see (batched traffic, recovery, cache-coupled eviction) — no
  /// pruning may be derived from such a run.
  bool conservative(bool cache_on) const {
    return saw_recovery_ || saw_flush_ || (saw_evict_ && cache_on);
  }

 private:
  std::vector<std::int32_t> prefix_;
  std::vector<std::int32_t> choices_;
  std::vector<StepRec> steps_;
  bool saw_recovery_ = false;
  bool saw_flush_ = false;
  bool saw_evict_ = false;
};

/// A DFS tree node: the choice prefix reaching it, plus the sleep set —
/// vertices whose subtrees an earlier-explored sibling already covers.
struct Pending {
  std::vector<std::int32_t> prefix;
  std::vector<std::int64_t> sleep;  ///< sorted linear indices
};

bool cells_intersect(const std::vector<std::int64_t>& a,
                     const std::vector<std::int64_t>& b) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) ++i;
    else ++j;
  }
  return false;
}

void insert_sorted(std::vector<std::int64_t>& v, std::int64_t x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) v.insert(it, x);
}

}  // namespace

CaseSpec explore_base(const CaseSpec& spec) {
  CaseSpec base = spec;
  base.mode = CaseMode::Single;
  base.engine = EngineKind::Sim;
  base.hook_seed = 0;
  base.witness.clear();
  base.tile = 0;
  // Crash decorations stay legal in explore_case (sim faults are
  // deterministic) but every recovery demotes its run to conservative
  // expansion — the fuzz diet spends its budget on prunable models.
  base.crash_place = -1;
  base.height = std::min<std::int32_t>(base.height, 3);
  base.width = std::min<std::int32_t>(base.width, 3);
  base.normalize();
  return base;
}

ExploreResult explore_case(CaseSpec spec, const ExploreOptions& options,
                           std::int64_t* runs) {
  ExploreResult result;
  spec.mode = CaseMode::Single;
  spec.engine = EngineKind::Sim;
  spec.hook_seed = 0;
  spec.witness.clear();
  spec.tile = 0;  // footprints are per-cell; macro-DAG ids would not match
  spec.normalize();

  // Cell footprints for the independence relation: two dispatches commute
  // unless footprint({v} ∪ deps ∪ antideps) intersects — the cells whose
  // values, indegrees or payload lifetimes the dispatch touches.
  std::vector<std::vector<std::int64_t>> cells;
  try {
    const GeneratedCase built = build_case(spec);
    const DagDomain& dom = built.dag->domain();
    cells.resize(static_cast<std::size_t>(built.vertices));
    std::vector<VertexId> scratch;
    for (std::int64_t idx = 0; idx < built.vertices; ++idx) {
      const VertexId id = dom.delinearize(idx);
      auto& foot = cells[static_cast<std::size_t>(idx)];
      foot.push_back(idx);
      scratch.clear();
      built.dag->dependencies(id, scratch);
      for (VertexId d : scratch) foot.push_back(dom.linearize(d));
      scratch.clear();
      built.dag->anti_dependencies(id, scratch);
      for (VertexId a : scratch) foot.push_back(dom.linearize(a));
      std::sort(foot.begin(), foot.end());
      foot.erase(std::unique(foot.begin(), foot.end()), foot.end());
    }
  } catch (const Error& ex) {
    result.failure = Failure{spec, ex.what()};
    return result;
  }
  const bool cache_on = spec.cache > 0;
  const auto foot = [&cells](std::int64_t v) -> const std::vector<std::int64_t>& {
    return cells[static_cast<std::size_t>(v)];
  };
  // Dependence with the cache term: a live per-place cache couples the
  // order of same-place dispatches (eviction state), whatever their cells.
  const auto dependent = [&](std::int64_t u, std::int32_t up, std::int64_t v,
                             std::int32_t vp) {
    if (cache_on && up == vp) return true;
    return cells_intersect(foot(u), foot(v));
  };

  const std::int64_t max_runs = std::max<std::int64_t>(options.max_runs, 1);
  const std::int32_t depth = std::max<std::int32_t>(options.depth, 0);
  std::vector<std::int64_t> step_of(cells.size(), -1);

  std::vector<Pending> stack;
  stack.emplace_back();
  while (!stack.empty()) {
    if (result.explored >= max_runs) {
      // Every pending node is an unexplored subtree.
      result.frontier += static_cast<std::int64_t>(stack.size());
      break;
    }
    Pending node = std::move(stack.back());
    stack.pop_back();

    ExploreHook hook(node.prefix);
    if (runs != nullptr) ++*runs;
    ++result.explored;
    const RunOutcome outcome = run_single(spec, &hook);
    if (!outcome.ok) {
      CaseSpec witness_spec = spec;
      witness_spec.witness = hook.choices();
      witness_spec.normalize();
      result.failure = Failure{witness_spec, outcome.reason};
      return result;
    }

    const std::vector<StepRec>& steps = hook.steps();
    const std::vector<std::int32_t>& choices = hook.choices();
    result.max_branch_points = std::max<std::int64_t>(
        result.max_branch_points, static_cast<std::int64_t>(choices.size()));
    const bool prune_ok = options.dpor && !hook.conservative(cache_on);

    std::fill(step_of.begin(), step_of.end(), -1);
    for (std::size_t si = 0; si < steps.size(); ++si) {
      step_of[static_cast<std::size_t>(steps[si].chosen)] =
          static_cast<std::int64_t>(si);
    }

    // Walk the run once: seed children at every branch beyond the prefix
    // (branches inside it belong to this node's ancestors), waking
    // sleepers as each executed transition passes. Starting the walk at
    // step 0 rather than the prefix edge can only wake sleepers EARLIER —
    // less pruning, never unsound pruning.
    const std::size_t k = node.prefix.size();
    std::vector<std::int64_t> sleep = node.sleep;
    for (std::size_t si = 0; si < steps.size(); ++si) {
      const StepRec& st = steps[si];
      if (st.branch >= 0 && static_cast<std::size_t>(st.branch) >= k) {
        const auto j = static_cast<std::size_t>(st.branch);
        // Surviving alternatives, in ready order (their (index, vertex)).
        std::vector<std::pair<std::int32_t, std::int64_t>> alts;
        for (std::size_t a = 1; a < st.ready.size(); ++a) {
          const std::int64_t v = st.ready[a];
          if (static_cast<std::int32_t>(j) >= depth) {
            ++result.frontier;
            continue;
          }
          if (prune_ok && std::binary_search(sleep.begin(), sleep.end(), v)) {
            ++result.pruned;
            continue;
          }
          if (prune_ok) {
            // Race rule: if v commutes with everything executed between
            // this branch and its own dispatch, running it first reaches a
            // Mazurkiewicz-equivalent state — skip the alternative.
            const std::int64_t t = step_of[static_cast<std::size_t>(v)];
            bool race = t < 0;  // never dispatched: assume the worst
            for (std::int64_t w = static_cast<std::int64_t>(si);
                 !race && w < t; ++w) {
              const StepRec& mid = steps[static_cast<std::size_t>(w)];
              race = dependent(mid.chosen, mid.place, v,
                               steps[static_cast<std::size_t>(t)].place);
            }
            if (!race) {
              ++result.pruned;
              continue;
            }
          }
          alts.emplace_back(static_cast<std::int32_t>(a), v);
        }
        // LIFO stack: alternatives pushed later pop first, so alternative
        // x sleeps on every sibling pushed after it — plus the vertex this
        // run dispatched, whose subtree the run's own continuation covers.
        for (std::size_t x = 0; x < alts.size(); ++x) {
          Pending kid;
          kid.prefix.assign(choices.begin(),
                            choices.begin() + static_cast<std::ptrdiff_t>(j));
          kid.prefix.push_back(alts[x].first);
          kid.sleep = sleep;
          insert_sorted(kid.sleep, st.chosen);
          for (std::size_t y = x + 1; y < alts.size(); ++y) {
            insert_sorted(kid.sleep, alts[y].second);
          }
          stack.push_back(std::move(kid));
        }
      }
      if (!sleep.empty()) {
        // Executing st.chosen wakes every dependent sleeper (a sleeper
        // carries no dispatch place, so a live cache wakes them all).
        sleep.erase(std::remove_if(sleep.begin(), sleep.end(),
                                   [&](std::int64_t z) {
                                     return cache_on ||
                                            cells_intersect(foot(st.chosen),
                                                            foot(z));
                                   }),
                    sleep.end());
      }
    }
  }

  result.exhausted = result.frontier == 0;
  if (!result.exhausted && options.fallback_samples > 0) {
    // Principled fallback beyond the bound: the existing seeded sampler
    // (SimShuffler via hook_seed) sweeps the unexplored remainder.
    for (std::int32_t i = 0; i < options.fallback_samples; ++i) {
      CaseSpec s = spec;
      s.hook_seed = mix64(spec.seed, 0xfa11ULL + static_cast<std::uint64_t>(i)) | 1;
      if (runs != nullptr) ++*runs;
      ++result.fallback_runs;
      const RunOutcome o = run_single(s);
      if (!o.ok) {
        result.failure = Failure{s, o.reason};
        return result;
      }
    }
  }
  return result;
}

}  // namespace dpx10::check
