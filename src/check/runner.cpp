#include "check/runner.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <sstream>

#include "apgas/fault.h"
#include "check/explore.h"
#include "check/perturb.h"
#include "common/error.h"
#include "core/tiling.h"

namespace dpx10::check {
namespace {

template <typename Engine, typename App>
RunReport run_engine(const RuntimeOptions& opts, const Dag& dag, App& app) {
  Engine engine(opts);
  return engine.run(dag, app);
}

std::string describe(const CaseSpec& spec) {
  std::string text = spec.encode();
  return text.empty() ? std::string("<defaults>") : text;
}

RunOutcome fail(std::string reason) {
  RunOutcome out;
  out.ok = false;
  out.reason = std::move(reason);
  return out;
}

}  // namespace

RunOutcome run_single(const CaseSpec& spec, ScheduleHook* override_hook) {
  RunOutcome out;
  try {
    const GeneratedCase built = build_case(spec);
    CheckApp app(built.dag->domain(), spec.seed, spec.prefin);
    const RuntimeOptions opts = spec.runtime_options();

    std::unique_ptr<ScheduleHook> hook;
    if (override_hook == nullptr) {
      if (!spec.witness.empty()) {
        hook = std::make_unique<WitnessReplayHook>(
            std::span<const std::int32_t>(spec.witness));
      } else if (spec.hook_seed != 0) {
        if (spec.engine == EngineKind::Sim) {
          hook = std::make_unique<SimShuffler>(spec.hook_seed);
        } else {
          hook = std::make_unique<PctPerturber>(spec.hook_seed);
        }
      }
    }
    const HookGuard hook_guard(override_hook != nullptr ? override_hook
                                                        : hook.get());
    std::optional<PlantedBugGuard> bug_guard;
    if (spec.bug != PlantedBug::None) {
      bug_guard.emplace(spec.bug,
                        spec.bug_salt != 0 ? spec.bug_salt : spec.seed);
    }

    // Tiled cases run the engines over the macro-DAG exactly as the
    // launchers do for --tile; the report then counts TILES, and the diff
    // below works off the cell view TiledApp::app_finished re-materializes.
    const bool tiled = spec.tile > 1;
    std::vector<char> retained;
    std::int64_t expect_vertices = built.vertices;
    std::int64_t expect_prefinished = built.prefinished;
    std::optional<TiledDag> tdag;
    std::optional<TiledApp<std::uint64_t>> tapp;
    if (tiled) {
      tdag.emplace(*built.dag, spec.tile);
      tapp.emplace(app, *built.dag, spec.tile);
      retained = tiled_retained_mask(*built.dag, spec.tile);
      const DagDomain& td = tdag->domain();
      expect_vertices = td.size();
      expect_prefinished = 0;
      for (std::int64_t k = 0; k < td.size(); ++k) {
        // A tile is prefinished iff TiledApp says so (non-empty and every
        // cell carries an initial value) — same predicate the engines see.
        if (tapp->initial_value(td.delinearize(k)).has_value()) {
          ++expect_prefinished;
        }
      }
    }

    RunReport report;
    try {
      if (tiled) {
        report =
            spec.engine == EngineKind::Sim
                ? run_engine<SimEngine<TileBlock<std::uint64_t>>>(opts, *tdag,
                                                                  *tapp)
                : run_engine<ThreadedEngine<TileBlock<std::uint64_t>>>(
                      opts, *tdag, *tapp);
      } else {
        report = spec.engine == EngineKind::Sim
                     ? run_engine<SimEngine<std::uint64_t>>(opts, *built.dag, app)
                     : run_engine<ThreadedEngine<std::uint64_t>>(opts, *built.dag,
                                                                 app);
      }
    } catch (const DeadPlaceException& ex) {
      // Every planned kill leaves at least one survivor (normalize()
      // guarantees it), and since coordinator failover any survivable
      // death — place 0's included — must be survived.
      return fail(std::string("unexpected DeadPlaceException: ") + ex.what());
    }
    out.sim_events = report.sim_events;
    out.computed = report.computed;

    // Differential check against the serial oracle.
    const auto n = static_cast<std::size_t>(built.vertices);
    if (app.present().size() != n) {
      return fail("app_finished was never invoked");
    }
    const DagDomain& domain = built.dag->domain();
    std::int64_t absent = 0;
    for (std::size_t idx = 0; idx < n; ++idx) {
      if (!app.present()[idx]) {
        // Tiled runs only publish boundary cells (an out-of-tile consumer
        // or a DAG sink) plus prefinished cells; interior absences are the
        // design, not a loss, whatever the retirement mode.
        const bool interior =
            tiled && !retained[idx] &&
            !CheckApp::is_prefinished(
                domain, spec.seed, spec.prefin,
                domain.delinearize(static_cast<std::int64_t>(idx)));
        if (!interior) ++absent;
        continue;
      }
      if (app.values()[idx] != built.oracle[idx]) {
        std::ostringstream why;
        why << "value mismatch at linear index " << idx << ": engine "
            << app.values()[idx] << " != oracle " << built.oracle[idx];
        return fail(why.str());
      }
    }
    if (absent != 0 && spec.retirement != mem::RetirementMode::Retire) {
      std::ostringstream why;
      why << absent << " cells unreadable outside retire mode";
      return fail(why.str());
    }

    // Report bookkeeping and the replay law — at TILE granularity for
    // tiled runs (the engines never see individual cells there).
    if (static_cast<std::int64_t>(report.vertices) != expect_vertices) {
      return fail("report.vertices disagrees with the domain size");
    }
    if (static_cast<std::int64_t>(report.prefinished) != expect_prefinished) {
      return fail("report.prefinished disagrees with the generator");
    }
    const std::uint64_t to_compute =
        report.vertices - report.prefinished;
    std::uint64_t replayed = 0;
    for (const RecoveryRecord& rec : report.recoveries) {
      replayed += rec.lost + rec.discarded + rec.resurrected;
      if (spec.restore == RestoreMode::DiscardRemote && rec.restored_remote != 0) {
        return fail("restored_remote counted under RestoreMode::DiscardRemote");
      }
      if (spec.retirement != mem::RetirementMode::Retire && rec.resurrected != 0) {
        return fail("resurrected counted outside retire mode");
      }
      if (spec.retirement != mem::RetirementMode::Spill &&
          rec.restored_spilled != 0) {
        return fail("restored_spilled counted outside spill mode");
      }
    }
    const bool exact_law = report.recoveries.empty() || spec.prefin == 0;
    if (exact_law) {
      if (report.computed != to_compute + replayed) {
        std::ostringstream why;
        why << "replay law violated: computed " << report.computed
            << " != to_compute " << to_compute << " + replayed " << replayed;
        return fail(why.str());
      }
    } else if (report.computed < to_compute) {
      return fail("computed fewer vertices than the computable set");
    }
    return out;
  } catch (const Error& ex) {
    return fail(ex.what());
  } catch (const std::exception& ex) {
    return fail(std::string("unexpected exception: ") + ex.what());
  }
}

std::vector<CaseSpec> expand_case(const CaseSpec& spec) {
  std::vector<CaseSpec> out;
  switch (spec.mode) {
    case CaseMode::Single: {
      out.push_back(spec);
      out.back().mode = CaseMode::Single;
      break;
    }
    case CaseMode::Matrix: {
      CaseSpec base = spec;
      base.mode = CaseMode::Single;
      base.crash_place = -1;  // the matrix is the fault-free sweep
      base.hook_seed = 0;
      base.normalize();
      // SimEngine: the full scheduling x coalescing x retirement cross,
      // each knob point both per-cell and as a B=3 macro-DAG (tiling must
      // compose with every retirement/coalescing combination).
      for (int sched = 0; sched < 4; ++sched) {
        for (int coal = 0; coal < 2; ++coal) {
          for (int ret = 0; ret < 3; ++ret) {
            for (const std::int32_t tile : {0, 3}) {
              CaseSpec s = base;
              s.engine = EngineKind::Sim;
              s.scheduling = static_cast<Scheduling>(sched);
              s.coalescing = coal == 1;
              s.retirement = static_cast<mem::RetirementMode>(ret);
              s.tile = tile;
              s.normalize();
              out.push_back(s);
            }
          }
        }
      }
      // ThreadedEngine: real threads make each run ~1000x costlier than a
      // sim run, so take a rotating six-combo slice of the same cross
      // (x sharded/legacy queues x tiled) — successive cases cover the
      // full set.
      std::vector<CaseSpec> threaded;
      for (int sched = 0; sched < 4; ++sched) {
        for (int coal = 0; coal < 2; ++coal) {
          for (int shards = 0; shards < 2; ++shards) {
            for (int ret = 0; ret < 3; ++ret) {
              for (const std::int32_t tile : {0, 3}) {
                CaseSpec s = base;
                s.engine = EngineKind::Threaded;
                s.scheduling = static_cast<Scheduling>(sched);
                s.coalescing = coal == 1;
                s.shards = shards;  // 0 = per-worker shards, 1 = legacy queue
                s.retirement = static_cast<mem::RetirementMode>(ret);
                s.tile = tile;
                s.normalize();
                threaded.push_back(s);
              }
            }
          }
        }
      }
      const std::size_t offset =
          static_cast<std::size_t>(spec.seed % threaded.size());
      for (std::size_t k = 0; k < 6; ++k) {
        out.push_back(threaded[(offset + k) % threaded.size()]);
      }
      break;
    }
    case CaseMode::Schedules: {
      CaseSpec base = spec;
      base.mode = CaseMode::Single;
      base.crash_place = -1;
      base.normalize();
      for (std::uint64_t r = 0; r < 3; ++r) {
        for (int e = 0; e < 2; ++e) {
          CaseSpec s = base;
          s.engine = static_cast<EngineKind>(e);
          s.hook_seed = mix64(spec.seed, 0xa0ULL + r) | 1;  // never 0
          out.push_back(s);
        }
      }
      break;
    }
    case CaseMode::Crashes:
      // Needs a baseline run to learn the event count; run_case handles it.
      break;
    case CaseMode::Explore:
      // The DFS chooses its own runs; run_case drives explore_case.
      break;
  }
  return out;
}

namespace {

std::optional<Failure> run_crash_sweep(const CaseSpec& spec,
                                       std::optional<EngineKind> only_engine,
                                       std::int64_t* runs) {
  CaseSpec base = spec;
  base.mode = CaseMode::Single;
  base.crash_place = -1;
  base.hook_seed = 0;
  base.prefin = 0;  // keeps the replay law exact across the sweep
  base.nplaces = std::max<std::int32_t>(base.nplaces, 2);
  base.normalize();
  if (only_engine && base.engine != *only_engine) base.engine = *only_engine;

  if (runs != nullptr) ++*runs;
  const RunOutcome baseline = run_single(base);
  if (!baseline.ok) return Failure{base, baseline.reason};

  // Crash points: every K-th event of the baseline (sim: discrete events;
  // threaded: finished-vertex thresholds), K chosen to cap the sweep.
  const std::int64_t total = base.engine == EngineKind::Sim
                                 ? static_cast<std::int64_t>(baseline.sim_events)
                                 : base.vertex_count();
  const std::int64_t points = std::min<std::int64_t>(total, 12);
  if (points <= 0) return std::nullopt;
  const std::int64_t stride = std::max<std::int64_t>(1, total / (points + 1));
  for (std::int64_t event = stride; event <= total; event += stride) {
    CaseSpec s = base;
    s.crash_event = event;
    s.crash_place = static_cast<std::int32_t>(
        splitmix64(mix64(spec.seed, static_cast<std::uint64_t>(event))) %
        static_cast<std::uint64_t>(s.nplaces));
    s.normalize();
    if (runs != nullptr) ++*runs;
    const RunOutcome outcome = run_single(s);
    if (!outcome.ok) return Failure{s, outcome.reason};
  }

  // Cascading-failure points (PR 6): coordinator death, a simultaneous
  // pair, and a pair plus a third kill landing during the resulting
  // recovery. normalize() raises nplaces so a survivor always remains.
  const std::int64_t mid = std::max<std::int64_t>(1, total / 2);
  std::vector<CaseSpec> cascades;
  {
    CaseSpec s = base;  // the old "unrecoverable" case: place 0 must survive
    s.crash_place = 0;
    s.crash_event = mid;
    cascades.push_back(s);
  }
  {
    CaseSpec s = base;  // two places die at the same instant (id tie-break)
    s.crash_place = static_cast<std::int32_t>(
        splitmix64(mix64(spec.seed, 0x2b1ULL)) %
        static_cast<std::uint64_t>(std::max(s.nplaces, 2)));
    s.crash_event = mid;
    s.crash_place2 = s.crash_place + 1;
    s.crash_event2 = -1;  // normalize(): tie with the first kill
    cascades.push_back(s);
  }
  {
    CaseSpec s = base;  // tie + a third death during the §VI-D rebuild
    s.crash_place = 0;  // ...taking the coordinator with it
    s.crash_event = mid;
    s.crash_place2 = 1;
    s.crash_event2 = -1;
    s.crash_place3 = 2;
    s.crash_event3 = mid + 1;  // the rebuild pass itself is event mid+1
    cascades.push_back(s);
  }
  for (CaseSpec& s : cascades) {
    s.normalize();
    if (runs != nullptr) ++*runs;
    const RunOutcome outcome = run_single(s);
    if (!outcome.ok) return Failure{s, outcome.reason};
  }

  // Tiled mini-sweep (PR 8): the fault machinery must also replay losses
  // at tile granularity — a killed place there loses whole TileBlock
  // payloads, and recovery recomputes entire tiles. A reduced point set
  // (4 strided kills + one simultaneous pair) keeps the sweep affordable.
  // Skipped when the case is already tiled: the main sweep covered it.
  if (base.tile <= 1) {
    CaseSpec tiled = base;
    tiled.tile = 3;
    tiled.normalize();
    if (tiled.tile > 1) {  // normalize() may veto (planted MutateValue)
      if (runs != nullptr) ++*runs;
      const RunOutcome tiled_baseline = run_single(tiled);
      if (!tiled_baseline.ok) return Failure{tiled, tiled_baseline.reason};
      const std::int64_t tiled_total =
          tiled.engine == EngineKind::Sim
              ? static_cast<std::int64_t>(tiled_baseline.sim_events)
              : tile_domain(tiled.make_domain(), tiled.tile).size();
      const std::int64_t tiled_points = std::min<std::int64_t>(tiled_total, 4);
      if (tiled_points > 0) {
        const std::int64_t tiled_stride =
            std::max<std::int64_t>(1, tiled_total / (tiled_points + 1));
        for (std::int64_t event = tiled_stride; event <= tiled_total;
             event += tiled_stride) {
          CaseSpec s = tiled;
          s.crash_event = event;
          s.crash_place = static_cast<std::int32_t>(
              splitmix64(mix64(spec.seed, static_cast<std::uint64_t>(~event))) %
              static_cast<std::uint64_t>(s.nplaces));
          s.normalize();
          if (runs != nullptr) ++*runs;
          const RunOutcome outcome = run_single(s);
          if (!outcome.ok) return Failure{s, outcome.reason};
        }
        CaseSpec pair = tiled;  // coordinator + neighbor at the same instant
        pair.crash_place = 0;
        pair.crash_event = std::max<std::int64_t>(1, tiled_total / 2);
        pair.crash_place2 = 1;
        pair.crash_event2 = -1;
        pair.normalize();
        if (runs != nullptr) ++*runs;
        const RunOutcome outcome = run_single(pair);
        if (!outcome.ok) return Failure{pair, outcome.reason};
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Failure> run_case(const CaseSpec& spec,
                                std::optional<EngineKind> only_engine,
                                std::int64_t* runs) {
  if (spec.mode == CaseMode::Crashes) {
    return run_crash_sweep(spec, only_engine, runs);
  }
  if (spec.mode == CaseMode::Explore) {
    // Sim-only by construction; a threaded engine pin has nothing to run.
    if (only_engine && *only_engine == EngineKind::Threaded) return std::nullopt;
    // Fuzz-diet budgets: tiny clamped models, a bounded tree, and a short
    // sampling pass over whatever the bound cut off. The CLI's --explore
    // path calls explore_case directly with user-controlled budgets.
    ExploreOptions eopts;
    eopts.depth = 12;
    eopts.max_runs = 3000;
    eopts.fallback_samples = 8;
    return explore_case(explore_base(spec), eopts, runs).failure;
  }
  for (const CaseSpec& s : expand_case(spec)) {
    if (only_engine && s.engine != *only_engine && spec.mode != CaseMode::Single)
      continue;
    if (runs != nullptr) ++*runs;
    const RunOutcome outcome = run_single(s);
    if (!outcome.ok) return Failure{s, outcome.reason};
  }
  return std::nullopt;
}

CaseSpec shrink(const CaseSpec& failing, int budget, std::string* reason,
                std::int64_t* runs) {
  CaseSpec best = failing;
  best.mode = CaseMode::Single;
  int spent = 0;
  auto still_fails = [&](const CaseSpec& candidate) {
    if (spent >= budget) return false;
    ++spent;
    if (runs != nullptr) ++*runs;
    const RunOutcome outcome = run_single(candidate);
    if (!outcome.ok && reason != nullptr) *reason = outcome.reason;
    return !outcome.ok;
  };

  // Each reduction step mutates a copy; a step that produces no change is
  // skipped (encode() is the canonical identity).
  using Step = void (*)(CaseSpec&);
  static constexpr Step kSteps[] = {
      [](CaseSpec& s) { s.crash_place3 = -1; },  // peel cascading kills first
      [](CaseSpec& s) { s.crash_place2 = -1; },
      [](CaseSpec& s) { s.crash_event3 = -1; },  // collapse to a tie
      [](CaseSpec& s) { s.crash_event2 = -1; },
      [](CaseSpec& s) { s.crash_place = -1; },  // then drop the crash whole
      [](CaseSpec& s) { s.hook_seed = 0; },
      [](CaseSpec& s) { s.witness.clear(); },  // schedule-independent bug?
      [](CaseSpec& s) { s.witness.resize(s.witness.size() / 2); },
      [](CaseSpec& s) { s.tile = 0; },  // does it reproduce per-cell?
      [](CaseSpec& s) { s.height /= 2; },
      [](CaseSpec& s) { s.width /= 2; },
      [](CaseSpec& s) { s.prefin = 0; },
      [](CaseSpec& s) { s.max_preds /= 2; },
      [](CaseSpec& s) { s.nthreads = 1; },
      [](CaseSpec& s) { s.nplaces /= 2; },
      [](CaseSpec& s) { s.crash_event /= 2; },
      [](CaseSpec& s) { s.retirement = mem::RetirementMode::Off; },
      [](CaseSpec& s) { s.memory_limit = 0; },
      [](CaseSpec& s) { s.recovery = RecoveryPolicy::Rebuild; },
      [](CaseSpec& s) { s.restore = RestoreMode::DiscardRemote; },
      [](CaseSpec& s) { s.scheduling = Scheduling::Local; },
      [](CaseSpec& s) { s.order = ReadyOrder::Fifo; },
      [](CaseSpec& s) { s.cache_policy = CachePolicy::Fifo; },
      [](CaseSpec& s) { s.dist = DistKind::BlockRow; },
      [](CaseSpec& s) { s.coalescing = false; },
      [](CaseSpec& s) { s.shards = 1; },
      [](CaseSpec& s) { s.stripes = 1; },
      [](CaseSpec& s) { s.cache = 64; },
  };

  bool progress = true;
  while (progress && spent < budget) {
    progress = false;
    for (const Step step : kSteps) {
      CaseSpec candidate = best;
      step(candidate);
      candidate.normalize();
      if (candidate.encode() == best.encode()) continue;
      if (still_fails(candidate)) {
        best = candidate;
        progress = true;
      }
      if (spent >= budget) break;
    }
  }
  return best;
}

std::string repro_command(const CaseSpec& spec) {
  return "dpx10check --repro='" + describe(spec) + "'";
}

FuzzResult fuzz(const FuzzOptions& options) {
  FuzzResult result;
  Xoshiro256 rng(mix64(options.seed, 0xca5eULL));
  for (std::int64_t k = 0; k < options.cases; ++k) {
    CaseSpec spec = CaseSpec::draw(rng);
    spec.height = std::min(spec.height, options.max_dim);
    spec.width = std::min(spec.width, options.max_dim);
    if (options.engine) spec.engine = *options.engine;
    if (options.wedge_ms) spec.wedge_ms = *options.wedge_ms;
    spec.bug = options.bug;
    if (spec.bug != PlantedBug::None) {
      spec.bug_salt = options.bug_salt != 0 ? options.bug_salt : spec.seed;
    }
    if (options.mode) {
      spec.mode = *options.mode;
    } else {
      // Mixed diet: mostly plain Single runs (the random knob draw covers
      // the matrix probabilistically), with periodic structured sweeps.
      const std::uint64_t roll = rng.below(100);
      if (roll < 85) {
        spec.mode = CaseMode::Single;
        if (roll < 10) {
          // One-off crash decoration on ~1/10 of single cases; a third of
          // those add a second kill (tied or trailing into the recovery).
          spec.prefin = 0;
          spec.crash_place = static_cast<std::int32_t>(
              rng.below(static_cast<std::uint64_t>(std::max(spec.nplaces, 2))));
          spec.crash_event = 1 + static_cast<std::int64_t>(rng.below(64));
          if (rng.below(3) == 0) {
            spec.crash_place2 = static_cast<std::int32_t>(
                rng.below(static_cast<std::uint64_t>(std::max(spec.nplaces, 3))));
            spec.crash_event2 =
                rng.below(2) == 0
                    ? -1  // normalize(): same instant as the first kill
                    : spec.crash_event + 1 + static_cast<std::int64_t>(rng.below(8));
          }
        }
      } else if (roll < 89) {
        spec.mode = CaseMode::Matrix;
      } else if (roll < 93) {
        spec.mode = CaseMode::Schedules;
      } else if (roll < 95) {
        spec.mode = CaseMode::Explore;
      } else {
        spec.mode = CaseMode::Crashes;
      }
    }
    spec.normalize();

    ++result.cases_run;
    if (options.log != nullptr &&
        (options.verbose || result.cases_run % 500 == 0)) {
      *options.log << "case " << result.cases_run << "/" << options.cases
                   << " [" << case_mode_name(spec.mode) << "] "
                   << describe(spec) << "\n";
    }
    std::optional<Failure> failure =
        run_case(spec, options.engine, &result.engine_runs);
    if (!failure) continue;

    result.failure = failure;
    if (options.log != nullptr) {
      *options.log << "FAIL after " << result.cases_run << " cases ("
                   << result.engine_runs << " runs): " << failure->reason
                   << "\n  spec: " << describe(failure->spec)
                   << "\n  shrinking (budget " << options.shrink_budget
                   << ")...\n";
    }
    std::string shrunk_reason = failure->reason;
    const CaseSpec shrunk = shrink(failure->spec, options.shrink_budget,
                                   &shrunk_reason, &result.engine_runs);
    result.shrunk = Failure{shrunk, shrunk_reason};
    return result;
  }
  return result;
}

}  // namespace dpx10::check
