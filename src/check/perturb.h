// Schedule exploration hooks for dpx10check (see check/hooks.h).
//
// Two ScheduleHook implementations, one per engine:
//
//   PctPerturber (ThreadedEngine) — a PCT-style randomized scheduler in the
//   spirit of Burckhardt et al.'s probabilistic concurrency testing,
//   adapted to a hook that cannot control the OS scheduler directly: it
//   realizes priority changes as short sleeps. The perturber pre-draws d
//   "priority change points" over the expected stream of synchronization
//   events; the thread that hits change point k sleeps a few hundred
//   microseconds, demoting it exactly where a PCT scheduler would lower its
//   priority. Between change points it also yields on a seeded ~1/16 of
//   sync events (cheap fine-grained reordering), with extra weight on a
//   seeded victim place so perturbation concentrates rather than averaging
//   out. Everything derives from the seed: re-running the same CaseSpec
//   replays the same perturbation policy (the OS still interleaves, but the
//   bias is reproducible, which is what shrinking needs).
//
//   SimShuffler (SimEngine) — the simulator is deterministic given its
//   options, so exploring schedules means overriding dispatch order:
//   pick_ready() draws a uniformly random index into the ready list. In
//   virtual time this explores alternative topological orders exactly, and
//   the run is perfectly reproducible from the seed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "check/hooks.h"
#include "common/rng.h"

namespace dpx10::check {

class PctPerturber final : public ScheduleHook {
 public:
  explicit PctPerturber(std::uint64_t seed) : seed_(seed) {
    Xoshiro256 rng(mix64(seed, 0x9c7ULL));
    depth_ = 3 + static_cast<std::int32_t>(rng.below(4));
    for (std::int32_t k = 0; k < depth_; ++k) {
      change_points_[k] = rng.below(kExpectedEvents);
    }
    victim_place_ = static_cast<std::int32_t>(rng.below(8));
  }

  void sync_point(SyncPoint point, std::int32_t place) noexcept override {
    const std::uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed);
    for (std::int32_t k = 0; k < depth_; ++k) {
      if (change_points_[k] == n) {
        // A PCT priority change: demote the thread that got here first.
        std::this_thread::sleep_for(std::chrono::microseconds(
            100 + static_cast<std::int64_t>(splitmix64(mix64(seed_, n)) % 300)));
        return;
      }
    }
    const std::uint64_t h =
        splitmix64(mix64(seed_, mix64(n, static_cast<std::uint64_t>(place))));
    // Concentrate reordering on one place's queue/publish traffic.
    if (place == victim_place_ &&
        (point == SyncPoint::QueuePop || point == SyncPoint::Publish)) {
      if (h % 4 == 0) std::this_thread::yield();
      return;
    }
    if (h % 16 == 0) std::this_thread::yield();
  }

 private:
  static constexpr std::uint64_t kExpectedEvents = 4096;
  std::uint64_t seed_;
  std::int32_t depth_ = 3;
  std::uint64_t change_points_[8] = {};
  std::int32_t victim_place_ = 0;
  std::atomic<std::uint64_t> counter_{0};
};

class SimShuffler final : public ScheduleHook {
 public:
  explicit SimShuffler(std::uint64_t seed) : rng_(mix64(seed, 0x51caULL)) {}

  void sync_point(SyncPoint, std::int32_t) noexcept override {}

  std::int64_t pick_ready(std::int32_t, std::size_t size) noexcept override {
    if (size <= 1) return -1;
    // The simulator is single-threaded, so the unguarded rng draw is safe.
    return static_cast<std::int64_t>(rng_.below(size));
  }

 private:
  Xoshiro256 rng_;
};

}  // namespace dpx10::check
