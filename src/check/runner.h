// dpx10check runner — executes CaseSpecs, verifies invariants, shrinks
// failures.
//
// run_single() is the atom: build the case, install the spec's hooks
// (schedule perturber, planted bug), run the chosen engine, and verify
//
//   * every readable cell equals the serial oracle bit-for-bit (outside
//     retire mode, EVERY cell must be readable);
//   * report bookkeeping: vertices/prefinished match the generator, and
//     the replay law computed == (vertices - prefinished)
//                            + sum over recoveries of (lost + discarded
//                                                      + resurrected)
//     holds exactly for fault-free runs and for crash runs without
//     prefinished cells;
//   * recovery-mode accounting: restored_remote only under RestoreRemote,
//     resurrected only in retire mode, restored_spilled only in spill
//     mode;
//   * every planned death is survived — normalize() always leaves a
//     survivor, and with coordinator failover that includes place 0, so
//     any DeadPlaceException is a failure.
//
// run_case() expands Matrix / Schedules / Crashes specs into Single runs
// (the crash sweep first runs a fault-free baseline to learn the event
// count, then kills a place at every K-th event, and finishes with three
// cascading-failure points: a place-0 kill, a simultaneous pair, and a
// pair plus a third kill during the resulting recovery). shrink() greedily
// minimizes a failing Single spec — dimensions, fan-in, knobs back to
// defaults, crash index, hook — re-verifying every candidate, so the
// printed reproducer is close to minimal. fuzz() is the driving loop used
// by tools/dpx10check and the self-tests.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "check/gen.h"

namespace dpx10::check {

struct RunOutcome {
  bool ok = true;
  std::string reason;            ///< first violated invariant when !ok
  std::uint64_t sim_events = 0;  ///< SimEngine event count (crash sweeps)
  std::uint64_t computed = 0;
};

/// Runs one Single spec and verifies every invariant above. Never throws:
/// engine/config exceptions become a failed outcome. A spec with a
/// witness installs a WitnessReplayHook (explore.h); `override_hook`
/// installs the given hook instead of anything the spec implies — the
/// DPOR explorer drives its prefix-replay runs through it.
RunOutcome run_single(const CaseSpec& spec,
                      ScheduleHook* override_hook = nullptr);

struct Failure {
  CaseSpec spec;       ///< the failing SINGLE spec (already expanded)
  std::string reason;
};

/// Matrix/Schedules expansion (pure). Single expands to itself; Crashes
/// is expanded inside run_case (it needs a baseline run first).
std::vector<CaseSpec> expand_case(const CaseSpec& spec);

/// Expands and runs a spec of any mode; returns the first failing Single
/// spec, or nullopt if every run passed. `only_engine` filters expanded
/// runs (the CLI's --engine pin); `runs` accumulates engine invocations.
std::optional<Failure> run_case(const CaseSpec& spec,
                                std::optional<EngineKind> only_engine = {},
                                std::int64_t* runs = nullptr);

/// Greedy shrink of a failing Single spec: repeatedly applies the first
/// reduction (halve dims, drop fan-in/prefinish, reset knobs to legacy
/// defaults, halve the crash index, drop the crash/hook) that still fails,
/// until none applies or `budget` verification runs are spent. Returns the
/// smallest failing spec found (at worst the input) and stores its failure
/// reason in `reason`.
CaseSpec shrink(const CaseSpec& failing, int budget, std::string* reason,
                std::int64_t* runs = nullptr);

/// The one-line reproducer printed on failure.
std::string repro_command(const CaseSpec& spec);

struct FuzzOptions {
  std::int64_t cases = 100;
  std::uint64_t seed = 1;
  /// nullopt = mixed (mostly Single, with periodic Matrix / Schedules /
  /// Crashes cases); set to pin every case to one mode.
  std::optional<CaseMode> mode;
  std::optional<EngineKind> engine;  ///< pin the engine under test
  PlantedBug bug = PlantedBug::None; ///< self-test: plant this bug
  std::uint64_t bug_salt = 0;        ///< 0 = derive from each case's seed
  std::int32_t max_dim = 12;         ///< cap drawn heights/widths
  std::optional<std::int32_t> wedge_ms;  ///< override the wedge timeout
  int shrink_budget = 200;
  std::ostream* log = nullptr;       ///< progress / failure narration
  bool verbose = false;
};

struct FuzzResult {
  std::int64_t cases_run = 0;
  std::int64_t engine_runs = 0;
  std::optional<Failure> failure;  ///< first failure, as found
  std::optional<Failure> shrunk;   ///< after shrinking (set iff failure is)
};

/// Draws and runs `cases` specs from the seed; stops at the first failure,
/// shrinks it, and returns both the original and the shrunk reproducer.
FuzzResult fuzz(const FuzzOptions& options);

}  // namespace dpx10::check
