// Check hooks — the engines' test-only instrumentation surface.
//
// dpx10check (tools/dpx10check, src/check) needs three capabilities the
// production engines must not pay for:
//
//   1. Schedule exploration. A ScheduleHook installed in the global Hooks
//      registry is consulted at every scheduler synchronization point
//      (queue push/pop, cache get/put, publish, indegree decrement,
//      governor accounting). The threaded harness uses it to run a
//      PCT-style perturber (seeded priority changes realized as short
//      delays); the sim harness uses pick_ready() to override which ready
//      vertex a place dispatches next, exploring alternative topological
//      orders in virtual time.
//
//   2. Planted bugs (mutation-testing guard). The self-test plants a bug —
//      flip a bit in a published value, or drop an indegree decrement —
//      and asserts the harness catches it within N cases. The bug sites
//      live in the engines, gated here, selecting victims by a seeded hash
//      so a planted run is deterministic and shrinkable.
//
//   3. Zero cost when off. Every gate is one relaxed/acquire atomic load
//      of a pointer or int that is null/zero outside the harness; the
//      branch predictor eats it.
//
// Everything here is process-global: the harness runs cases sequentially
// and installs/uninstalls around each engine run (HookGuard/PlantedBugGuard).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "common/rng.h"

namespace dpx10::check {

/// Scheduler synchronization points at which an installed ScheduleHook is
/// consulted. These are exactly the places where thread interleaving (or,
/// in the sim, ready-list order) can change the execution order of the DAG
/// without changing its data dependencies.
enum class SyncPoint : std::uint8_t {
  QueuePush = 0,    ///< a ready vertex is about to be enqueued
  QueuePop,         ///< a worker popped a vertex and is about to execute it
  CacheGet,         ///< per-place vertex-cache lookup
  CachePut,         ///< per-place vertex-cache insert
  Publish,          ///< the finished value is about to become visible
  Decrement,        ///< an anti-dependency indegree is about to drop
  GovernorPublish,  ///< memory-governor publish accounting
  GovernorConsume,  ///< memory-governor consume accounting
  // Richer events (fired through sync_event with operands) for the DPOR
  // explorer's independence relation — batched traffic, payload eviction
  // and recovery are exactly the engine features whose internal ordering
  // a cell-footprint relation cannot see.
  CoalesceFlush,    ///< a coalesced fetch/control batch leaves for a place
  GovernorRetire,   ///< the governor retired a cell's payload (a = cell)
  GovernorSpill,    ///< the governor spilled a cell's payload (a = cell)
  RecoveryEpoch,    ///< a recovery pass announces itself (b: 0 begin, 1 end)
};

/// Installed by the harness for one engine run. Implementations must be
/// thread-safe (the threaded engine calls from every worker) and must
/// never block indefinitely or throw.
class ScheduleHook {
 public:
  virtual ~ScheduleHook() = default;

  /// Called at each SyncPoint with the acting place. May delay/yield the
  /// calling thread to perturb the interleaving; called outside engine
  /// locks, so sleeping here cannot deadlock the engine.
  virtual void sync_point(SyncPoint point, std::int32_t place) noexcept = 0;

  /// SimEngine dispatch override: given `size` ready vertices at `place`,
  /// return the index (0..size-1) to dispatch next, or -1 to keep the
  /// engine's configured ReadyOrder. Single-threaded (virtual time).
  virtual std::int64_t pick_ready(std::int32_t place, std::size_t size) noexcept {
    (void)place;
    (void)size;
    return -1;
  }

  /// SimEngine dispatch override with vertex identities: `ready` holds the
  /// linear indices of the candidates in queue order. The DPOR explorer
  /// needs the identities (its independence relation is over cells), plain
  /// samplers only the count — the default forwards to pick_ready so
  /// existing hooks keep working unchanged.
  virtual std::int64_t pick_ready_ids(std::int32_t place,
                                      std::span<const std::int64_t> ready) noexcept {
    return pick_ready(place, ready.size());
  }

  /// Sync event with operands (see the SyncPoint comments for each point's
  /// a/b meaning). The default forwards to sync_point, so hooks that only
  /// perturb timing observe the new points without change.
  virtual void sync_event(SyncPoint point, std::int32_t place, std::int64_t a,
                          std::int64_t b) noexcept {
    (void)a;
    (void)b;
    sync_point(point, place);
  }
};

/// Hidden test-only defects for the mutation-testing self-test.
enum class PlantedBug : int {
  None = 0,
  MutateValue = 1,    ///< flip one bit of the published value of ~1/8 vertices
  DropDecrement = 2,  ///< skip ~1/8 of anti-dependency indegree decrements
};

struct Hooks {
  std::atomic<ScheduleHook*> schedule{nullptr};
  std::atomic<int> planted_bug{static_cast<int>(PlantedBug::None)};
  std::atomic<std::uint64_t> bug_salt{0};
};

inline Hooks& hooks() {
  static Hooks h;
  return h;
}

inline void sync_point(SyncPoint point, std::int32_t place) {
  ScheduleHook* h = hooks().schedule.load(std::memory_order_acquire);
  if (h != nullptr) h->sync_point(point, place);
}

inline std::int64_t pick_ready(std::int32_t place, std::size_t size) {
  ScheduleHook* h = hooks().schedule.load(std::memory_order_acquire);
  if (h == nullptr) return -1;
  return h->pick_ready(place, size);
}

inline std::int64_t pick_ready_ids(std::int32_t place,
                                   std::span<const std::int64_t> ready) {
  ScheduleHook* h = hooks().schedule.load(std::memory_order_acquire);
  if (h == nullptr) return -1;
  return h->pick_ready_ids(place, ready);
}

inline void sync_event(SyncPoint point, std::int32_t place, std::int64_t a,
                       std::int64_t b) {
  ScheduleHook* h = hooks().schedule.load(std::memory_order_acquire);
  if (h != nullptr) h->sync_event(point, place, a, b);
}

/// True iff a ScheduleHook is installed — lets the sim skip the ready-list
/// snapshot pick_ready_ids needs on the (default) hookless path.
inline bool hook_installed() {
  return hooks().schedule.load(std::memory_order_acquire) != nullptr;
}

/// PlantedBug::MutateValue — flip the low bit of the first byte of `value`
/// for a seeded-hash-selected ~1/8 of vertices. Called by both engines at
/// the publish site; a bit-identical differential oracle must notice.
/// Value types with non-trivial layout are left alone (the harness always
/// runs over a trivially-copyable value type).
template <typename T>
inline void maybe_mutate_value(T& value, std::int64_t idx) {
  if constexpr (std::is_trivially_copyable_v<T>) {
    if (hooks().planted_bug.load(std::memory_order_acquire) !=
        static_cast<int>(PlantedBug::MutateValue)) {
      return;
    }
    const std::uint64_t salt = hooks().bug_salt.load(std::memory_order_relaxed);
    if (splitmix64(mix64(salt, static_cast<std::uint64_t>(idx))) % 8 != 0) return;
    unsigned char bytes[sizeof(T)];
    std::memcpy(bytes, &value, sizeof(T));
    bytes[0] ^= 1u;
    std::memcpy(&value, bytes, sizeof(T));
  } else {
    (void)value;
    (void)idx;
  }
}

/// PlantedBug::DropDecrement — true when the decrement for edge
/// (publisher `idx` → consumer `anti_idx`) should be silently skipped
/// (~1/8 of edges, seeded). The consumer's indegree never reaches zero:
/// the sim's event queue drains (InternalError) and the threaded engine
/// wedges, which its quiescence detector converts into an InternalError.
inline bool bug_drops_decrement(std::int64_t idx, std::int64_t anti_idx) {
  if (hooks().planted_bug.load(std::memory_order_acquire) !=
      static_cast<int>(PlantedBug::DropDecrement)) {
    return false;
  }
  const std::uint64_t salt = hooks().bug_salt.load(std::memory_order_relaxed);
  const std::uint64_t edge =
      mix64(static_cast<std::uint64_t>(idx), static_cast<std::uint64_t>(anti_idx));
  return splitmix64(mix64(salt, edge)) % 8 == 0;
}

/// RAII installer for a ScheduleHook (one engine run at a time).
class HookGuard {
 public:
  explicit HookGuard(ScheduleHook* hook) {
    hooks().schedule.store(hook, std::memory_order_release);
  }
  ~HookGuard() { hooks().schedule.store(nullptr, std::memory_order_release); }
  HookGuard(const HookGuard&) = delete;
  HookGuard& operator=(const HookGuard&) = delete;
};

/// RAII installer for a planted bug (self-test only).
class PlantedBugGuard {
 public:
  PlantedBugGuard(PlantedBug bug, std::uint64_t salt) {
    hooks().bug_salt.store(salt, std::memory_order_relaxed);
    hooks().planted_bug.store(static_cast<int>(bug), std::memory_order_release);
  }
  ~PlantedBugGuard() {
    hooks().planted_bug.store(static_cast<int>(PlantedBug::None),
                              std::memory_order_release);
    hooks().bug_salt.store(0, std::memory_order_relaxed);
  }
  PlantedBugGuard(const PlantedBugGuard&) = delete;
  PlantedBugGuard& operator=(const PlantedBugGuard&) = delete;
};

}  // namespace dpx10::check
