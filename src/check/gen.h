// dpx10check case generation — random DP applications with a cheap oracle.
//
// A CaseSpec is one fully-determined harness case: the DP structure (a
// built-in pattern by name, or a randomized custom DAG over a rect /
// banded / upper-triangular domain), the recurrence seed, and every
// runtime knob of both engines (places, threads, dist, scheduling, ready
// order, cache, coalescing, shards, stripes, retirement/spill, recovery,
// restore), plus optional decorations: a crash point (place + event index),
// a schedule-exploration hook seed, and a planted bug for the self-test.
//
// The recurrence is a commutative fold over dependency values,
//
//   value(v) = splitmix64(mix64(salt, v.key())) + sum of dep values  (mod 2^64)
//
// so the result is independent of evaluation order and of the order in
// which the engines present the deps span — any engine, any schedule, any
// crash/recovery sequence must reproduce the serial Kahn evaluation
// bit-for-bit. That serial evaluation (build_case's `oracle`) costs O(V+E)
// and is the differential baseline every run is compared against.
//
// Everything is derived deterministically from CaseSpec fields, and a spec
// round-trips through encode()/decode() — the one-line reproducer printed
// on failure (`dpx10check --repro='...'`) is the encoded spec.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/hooks.h"
#include "common/rng.h"
#include "core/dpx10.h"

namespace dpx10::check {

enum class EngineKind : std::uint8_t { Sim = 0, Threaded };
std::string_view engine_kind_name(EngineKind e);
bool parse_engine_kind(const std::string& name, EngineKind& out);

/// How a CaseSpec expands into engine runs (see runner.h). Single is the
/// unit every other mode decomposes into — a failing Matrix/Schedules/
/// Crashes case always reports (and shrinks) the failing Single spec.
enum class CaseMode : std::uint8_t {
  Single = 0,  ///< one engine run, exactly as specified
  Matrix,      ///< knob matrix: scheduling x coalescing x retirement (+ more)
  Schedules,   ///< seeded schedule exploration (PCT perturber / sim shuffler)
  Crashes,     ///< crash-point sweep: kill a place at every K-th event
  Explore,     ///< bounded-DPOR exhaustive interleaving exploration (sim)
};
std::string_view case_mode_name(CaseMode m);
bool parse_case_mode(const std::string& name, CaseMode& out);

struct CaseSpec {
  CaseMode mode = CaseMode::Single;
  EngineKind engine = EngineKind::Sim;
  std::uint64_t seed = 1;  ///< recurrence salt + structure seed

  // --- DP structure ---------------------------------------------------
  /// "random" / "random-banded" / "random-upper" (randomized custom DAG
  /// over the matching domain) or any pattern-library name ("left-top",
  /// "interval", "full-prefix", ...).
  std::string pattern = "random";
  std::int32_t height = 8;
  std::int32_t width = 8;
  std::int32_t band = 2;        ///< "random-banded" only
  std::int32_t max_preds = 4;   ///< random patterns: per-cell predecessor cap
  std::int32_t prefin = 0;      ///< permille of cells prefinished (0..500)
  /// Macro-DAG tiling: > 1 runs the engines over B x B tiles of the cell
  /// DAG (TiledDag + TiledApp, same wrapper the launchers use for --tile).
  /// The differential check then diffs the re-materialized cell view
  /// against the same serial oracle, retained-mask-aware: interior cells
  /// without an out-of-tile consumer are absent by design. 0/1 = per-cell.
  std::int32_t tile = 0;

  // --- runtime knobs (both engines) -----------------------------------
  std::int32_t nplaces = 4;
  std::int32_t nthreads = 2;
  DistKind dist = DistKind::BlockRow;
  Scheduling scheduling = Scheduling::Local;
  ReadyOrder order = ReadyOrder::Fifo;
  CachePolicy cache_policy = CachePolicy::Fifo;
  std::int64_t cache = 64;        ///< cache_capacity; 0 disables
  bool coalescing = false;
  std::int32_t shards = 0;        ///< threaded queue shards (0 = per-worker)
  std::int32_t stripes = 0;       ///< threaded cache stripes (0 = per-worker)
  mem::RetirementMode retirement = mem::RetirementMode::Off;
  std::uint64_t memory_limit = 0; ///< spill pressure budget, bytes
  RecoveryPolicy recovery = RecoveryPolicy::Rebuild;
  RestoreMode restore = RestoreMode::DiscardRemote;

  // --- decorations ----------------------------------------------------
  std::int32_t crash_place = -1;   ///< -1 = no fault
  std::int64_t crash_event = -1;   ///< sim: event index; threaded: finished count
  /// Up to two more kills for cascading-failure cases. crash_place2 with
  /// crash_event2 < 0 means "same instant as the first kill" (a tie, broken
  /// by place id); crash_place3/crash_event3 likewise default to the second
  /// kill's instant. normalize() dedupes places and orders events.
  std::int32_t crash_place2 = -1;
  std::int64_t crash_event2 = -1;
  std::int32_t crash_place3 = -1;
  std::int64_t crash_event3 = -1;
  std::uint64_t hook_seed = 0;     ///< 0 = no schedule hook installed
  /// Schedule witness from the DPOR explorer (see explore.h): the i-th
  /// entry is the ready-list index dispatched at the i-th *branch point*
  /// (a dispatch with >= 2 ready vertices); beyond the prefix, index 0.
  /// Replaying the witness on the sim engine reproduces the interleaving
  /// deterministically, so normalize() forces engine=Sim when non-empty.
  /// Encoded as `witness=` with DOT-separated indices (commas are field
  /// separators); trailing zeros are canonical no-ops and get stripped.
  std::vector<std::int32_t> witness;
  std::int32_t wedge_ms = 10000;   ///< threaded wedge-detector timeout
  PlantedBug bug = PlantedBug::None;  ///< self-test only
  std::uint64_t bug_salt = 0;

  /// Clamps dependent fields into a consistent state (square domains for
  /// square-only patterns, band wide enough for every row, crash place in
  /// range, ...). draw() and the shrinker call this after every mutation.
  void normalize();

  /// Number of valid cells of the case's domain.
  std::int64_t vertex_count() const;

  DagDomain make_domain() const;
  RuntimeOptions runtime_options() const;

  /// Key=value serialization; only fields that differ from the defaults
  /// are emitted, so reproducer lines stay short. decode() accepts any
  /// subset of fields over a default-constructed spec and throws
  /// ConfigError on unknown keys or malformed values.
  std::string encode() const;
  static CaseSpec decode(const std::string& text);

  /// Draws a random Single spec (structure + knobs; no crash, no hook —
  /// the fuzz loop adds those per mode). Deterministic in the rng state.
  static CaseSpec draw(Xoshiro256& rng);
};

/// The generated application: a commutative hash fold (see file header).
/// Stateless and reentrant across compute() calls; app_finished() captures
/// which cells still hold a value and what it is, so the runner can diff
/// against the oracle (in retire mode, retired payloads are gone by design
/// and are skipped rather than failed).
class CheckApp final : public DPX10App<std::uint64_t> {
 public:
  CheckApp(DagDomain domain, std::uint64_t salt, std::int32_t prefin_permille);

  std::uint64_t compute(std::int32_t i, std::int32_t j,
                        std::span<const Vertex<std::uint64_t>> deps) override;
  std::optional<std::uint64_t> initial_value(VertexId id) const override;
  void app_finished(const DagView<std::uint64_t>& dag) override;
  std::string_view name() const override { return "dpx10check"; }

  /// Seeded-hash cell selection shared with the oracle. The LAST linear
  /// index is never prefinished, so every case keeps at least one
  /// computable vertex (the engines require a non-empty schedule).
  static bool is_prefinished(const DagDomain& domain, std::uint64_t salt,
                             std::int32_t prefin_permille, VertexId id);
  static std::uint64_t prefinish_value(std::uint64_t salt, VertexId id);
  static std::uint64_t vertex_hash(std::uint64_t salt, VertexId id);

  /// Captured by app_finished(): value per linear index, and whether the
  /// cell still held a readable value (false only for retired cells in
  /// retire mode).
  const std::vector<std::uint64_t>& values() const { return values_; }
  const std::vector<char>& present() const { return present_; }

 private:
  DagDomain domain_;
  std::uint64_t salt_;
  std::int32_t prefin_;
  std::vector<std::uint64_t> values_;
  std::vector<char> present_;
};

/// Randomized custom DAG: per cell, up to `max_preds` distinct predecessors
/// drawn from the cells strictly before it in linear order (acyclic by
/// construction), over any of the three domain shapes. Produces long-range
/// and high-fan-in edges the regular pattern library never does.
///
/// `monotone` restricts predecessors to the cell's upper-left quadrant
/// (pi <= i && pj <= j) — the tile-able contract (docs/PATTERNS.md): a
/// quadrant-monotone cell DAG regroups into an acyclic macro-DAG for every
/// tile size, which arbitrary linear-order back-edges do not. build_case
/// turns it on for tiled specs; edges stay long-range and high-fan-in.
class RandomCheckDag final : public Dag {
 public:
  RandomCheckDag(DagDomain domain, std::uint64_t seed, std::int32_t max_preds,
                 bool monotone = false);

  void dependencies(VertexId v, std::vector<VertexId>& out) const override;
  void anti_dependencies(VertexId v, std::vector<VertexId>& out) const override;
  std::string_view name() const override { return "random-check-dag"; }

 private:
  std::vector<std::vector<std::int64_t>> deps_;
  std::vector<std::vector<std::int64_t>> antideps_;
};

/// A built case: the DAG plus the serial oracle evaluation.
struct GeneratedCase {
  std::unique_ptr<Dag> dag;
  std::int64_t vertices = 0;
  std::int64_t prefinished = 0;           ///< cells is_prefinished selects
  std::vector<std::uint64_t> oracle;      ///< expected value per linear index
};

/// Instantiates the spec's DAG and evaluates the recurrence serially with
/// an indegree-driven (Kahn) worklist — linear order is NOT topological for
/// interval-family patterns, so a plain left-to-right sweep would deadlock.
/// Throws InternalError if the structure is cyclic (cannot happen for the
/// shipped generators; guards against generator bugs).
GeneratedCase build_case(const CaseSpec& spec);

}  // namespace dpx10::check
