// dpx10check bounded-DPOR exploration — exhaustive interleaving coverage
// for small models on the deterministic SimEngine.
//
// The sim engine is a pure function of (dag, app, options) plus the
// dispatch decisions a ScheduleHook returns from pick_ready_ids(): virtual
// time fixes the cross-place interleaving, so the only nondeterminism the
// production schedulers ever exercise is WHICH ready vertex each place
// dispatches next. explore_case() enumerates exactly that space:
//
//   * A run is identified by its choice sequence — one ready-list index
//     per *branch point* (a dispatch whose ready list holds >= 2
//     vertices); forced dispatches always take index 0. A prefix of that
//     sequence is a tree node; re-running with the prefix and defaulting
//     to 0 beyond it deterministically reaches the node and extends it to
//     a leaf.
//   * DFS over that tree visits every interleaving once (naive mode), or
//     a reduced set under dynamic partial-order reduction: an alternative
//     vertex v at a branch is explored only if some transition executed
//     between the branch and v's actual dispatch is DEPENDENT with v
//     (persistent-set-style race rule), and sleep sets additionally skip
//     alternatives whose subtree a sibling already covered. Two
//     transitions are dependent iff their cell footprints ({v} ∪ deps ∪
//     antideps) intersect, or they dispatch at the same place while the
//     per-place cache is live (cache state couples same-place order).
//     Runs that observe coalescer flushes, recovery epochs, or (with a
//     live cache) governor retire/spill events fall back to conservative
//     expansion — no pruning is derived from such a run.
//   * A configurable depth bound caps how deep alternatives are seeded;
//     alternatives beyond it are counted into `frontier`, and when the
//     frontier is non-empty the explorer falls back to the existing
//     seeded-sampling hooks (SimShuffler) for a principled best-effort
//     pass over the unexplored remainder.
//
// Every explored run goes through run_single()'s full differential oracle,
// so a reported failure is always real; `exhausted` is a completeness
// claim modulo the independence relation above. A failing run's choice
// sequence is returned as CaseSpec::witness — a one-line deterministic
// reproducer replayed by WitnessReplayHook below.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "check/hooks.h"
#include "check/runner.h"

namespace dpx10::check {

/// Replays a CaseSpec::witness on the sim engine: the i-th branch point
/// dispatches ready-list index witness[i] (clamped into range); beyond the
/// witness, and at forced dispatches, index 0. The replayed interleaving
/// is a pure function of the witness — ReadyOrder never breaks a tie.
/// run_single() installs one automatically for specs with a witness.
class WitnessReplayHook final : public ScheduleHook {
 public:
  explicit WitnessReplayHook(std::span<const std::int32_t> witness)
      : witness_(witness.begin(), witness.end()) {}

  void sync_point(SyncPoint, std::int32_t) noexcept override {}

  std::int64_t pick_ready_ids(
      std::int32_t, std::span<const std::int64_t> ready) noexcept override {
    if (ready.size() < 2) return 0;
    const std::size_t b = branch_++;
    if (b >= witness_.size() || witness_[b] <= 0) return 0;
    return std::min<std::int64_t>(witness_[b],
                                  static_cast<std::int64_t>(ready.size()) - 1);
  }

 private:
  std::vector<std::int32_t> witness_;
  std::size_t branch_ = 0;
};

struct ExploreOptions {
  /// Branch-point depth bound: alternatives at branch ordinals >= depth
  /// are not expanded (they count into ExploreResult::frontier).
  std::int32_t depth = 64;
  /// Run budget; pending tree nodes at exhaustion count into frontier.
  std::int64_t max_runs = 50000;
  /// false = naive enumeration (every interleaving; the pruning baseline).
  bool dpor = true;
  /// Seeded SimShuffler runs over the remainder when not exhausted.
  std::int32_t fallback_samples = 32;
};

struct ExploreResult {
  /// True iff the whole bounded tree was explored without failure —
  /// complete interleaving coverage modulo the independence relation.
  bool exhausted = false;
  std::int64_t explored = 0;   ///< engine runs executed by the DFS
  std::int64_t pruned = 0;     ///< alternatives skipped by DPOR
  std::int64_t frontier = 0;   ///< alternatives beyond depth/run budget
  std::int64_t fallback_runs = 0;     ///< seeded sampling runs afterwards
  std::int64_t max_branch_points = 0; ///< deepest run's branch count
  std::optional<Failure> failure;     ///< witness-bearing Single spec
};

/// Explores the spec's interleaving space on the sim engine (the spec is
/// forced to mode=Single, engine=Sim, per-cell, no witness/hook first —
/// the caller's other knobs, including crash decorations, are honored).
/// `runs` accumulates engine invocations like run_case's counter.
ExploreResult explore_case(CaseSpec spec, const ExploreOptions& options = {},
                           std::int64_t* runs = nullptr);

/// The fuzz-diet clamp: shrinks a drawn spec to an explorable model
/// (tiny dims, no crash decorations) before explore_case. run_case uses
/// it for CaseMode::Explore; exposed so self-tests expand the same way.
CaseSpec explore_base(const CaseSpec& spec);

}  // namespace dpx10::check
