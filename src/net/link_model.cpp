#include "net/link_model.h"

#include <limits>

#include "net/message.h"

namespace dpx10::net {

double LinkModel::fetch_round_trip(std::size_t reply_wire_bytes) const {
  return transfer_time(wire_bytes(kControlPayloadBytes)) + transfer_time(reply_wire_bytes);
}

double LinkModel::batch_fetch_round_trip(std::size_t k,
                                         std::size_t reply_payload_bytes) const {
  return transfer_time(wire_bytes(batch_fetch_request_payload(k))) +
         transfer_time(wire_bytes(reply_payload_bytes));
}

LinkModel zero_cost_link() {
  LinkModel link;
  link.latency_s = 0.0;
  // Infinite rates make byte costs exactly 0.0 (x / inf == 0).
  link.bandwidth_bytes_s = std::numeric_limits<double>::infinity();
  link.nic_bytes_s = std::numeric_limits<double>::infinity();
  link.nic_per_msg_s = 0.0;
  return link;
}

}  // namespace dpx10::net
