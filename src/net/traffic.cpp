#include "net/traffic.h"

#include "common/error.h"

namespace dpx10::net {

TrafficBook::TrafficBook(std::int32_t nplaces)
    : nplaces_(nplaces), counters_(static_cast<std::size_t>(nplaces)) {
  require(nplaces > 0, "TrafficBook: nplaces must be positive");
}

void TrafficBook::record(std::int32_t src, std::int32_t dst, MessageKind kind,
                         std::size_t payload) {
  check_internal(src >= 0 && src < nplaces_ && dst >= 0 && dst < nplaces_,
                 "TrafficBook::record: place out of range");
  if (src == dst) {
    local_messages_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t k = static_cast<std::size_t>(kind);
  const std::uint64_t wire = wire_bytes(payload);
  auto& s = counters_[static_cast<std::size_t>(src)];
  auto& d = counters_[static_cast<std::size_t>(dst)];
  s.messages_out[k].fetch_add(1, std::memory_order_relaxed);
  s.bytes_out.fetch_add(wire, std::memory_order_relaxed);
  d.messages_in[k].fetch_add(1, std::memory_order_relaxed);
  d.bytes_in.fetch_add(wire, std::memory_order_relaxed);
}

TrafficSnapshot TrafficBook::snapshot(std::int32_t place) const {
  check_internal(place >= 0 && place < nplaces_, "TrafficBook::snapshot: place out of range");
  const auto& c = counters_[static_cast<std::size_t>(place)];
  TrafficSnapshot snap;
  for (std::size_t k = 0; k < kMessageKindCount; ++k) {
    snap.messages_out[k] = c.messages_out[k].load(std::memory_order_relaxed);
    snap.messages_in[k] = c.messages_in[k].load(std::memory_order_relaxed);
  }
  snap.bytes_out = c.bytes_out.load(std::memory_order_relaxed);
  snap.bytes_in = c.bytes_in.load(std::memory_order_relaxed);
  return snap;
}

TrafficSnapshot TrafficBook::total() const {
  TrafficSnapshot sum;
  for (std::int32_t p = 0; p < nplaces_; ++p) {
    TrafficSnapshot snap = snapshot(p);
    for (std::size_t k = 0; k < kMessageKindCount; ++k) {
      sum.messages_out[k] += snap.messages_out[k];
      sum.messages_in[k] += snap.messages_in[k];
    }
    sum.bytes_out += snap.bytes_out;
    sum.bytes_in += snap.bytes_in;
  }
  return sum;
}

void TrafficBook::reset() {
  for (auto& c : counters_) {
    for (std::size_t k = 0; k < kMessageKindCount; ++k) {
      c.messages_out[k].store(0, std::memory_order_relaxed);
      c.messages_in[k].store(0, std::memory_order_relaxed);
    }
    c.bytes_out.store(0, std::memory_order_relaxed);
    c.bytes_in.store(0, std::memory_order_relaxed);
  }
  local_messages_.store(0, std::memory_order_relaxed);
}

}  // namespace dpx10::net
