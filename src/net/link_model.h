// Analytic cost model of the cluster interconnect.
//
// The paper's testbed connected nodes with Infiniband QDR and ran the X10
// socket runtime on top. We model a link with the classic alpha-beta model
// (latency + inverse bandwidth) plus a per-place NIC that serializes
// outgoing replies, which is what produces the communication-bound plateau
// in Fig. 10 when many places hammer the same owner.
//
// Defaults approximate QDR IB driven by the X10 socket runtime (kernel TCP
// over IPoIB): ~25 us effective one-way small-message latency, ~1.5 GB/s
// effective point-to-point bandwidth, ~3 GB/s NIC byte rate and ~6 us of
// serialized per-message handling on each place's communication thread.
// The latency and per-message values are calibrated so the simulated
// Fig. 10 sweep reproduces the paper's speedup shape (see EXPERIMENTS.md).
#pragma once

#include <cstddef>

namespace dpx10::net {

struct LinkModel {
  double latency_s = 25.0e-6;         ///< alpha: one-way message latency
  double bandwidth_bytes_s = 1.5e9;   ///< beta⁻¹: point-to-point bandwidth
  double nic_bytes_s = 3.0e9;         ///< per-place NIC byte rate
  /// Fixed per-message cost on the serving place's communication thread.
  /// The X10 socket runtime funnels every incoming request through one
  /// comm worker (TCP syscalls, deserialization, activity hand-off), which
  /// is a per-message — not per-byte — bottleneck; it is what makes
  /// fetch-heavy boundary rows gate the place pipeline at scale.
  double nic_per_msg_s = 6.0e-6;

  /// Time on the wire for a payload (excludes NIC queueing, which the
  /// simulator tracks statefully per place).
  double transfer_time(std::size_t wire_bytes) const {
    return latency_s + static_cast<double>(wire_bytes) / bandwidth_bytes_s;
  }

  /// Time the serving place's comm thread is occupied by one message.
  double nic_time(std::size_t wire_bytes) const {
    return nic_per_msg_s + static_cast<double>(wire_bytes) / nic_bytes_s;
  }

  /// A round trip for a fetch: request (control-sized) out, reply back.
  double fetch_round_trip(std::size_t reply_wire_bytes) const;

  /// A round trip for a coalesced fetch of `k` dependencies from one owner:
  /// one k-id request out, one k-value reply back. The alpha latency and
  /// the two envelopes are paid once instead of k times.
  double batch_fetch_round_trip(std::size_t k, std::size_t reply_payload_bytes) const;
};

/// Model of an instantaneous, free interconnect — used to isolate
/// compute-only behaviour in tests and ablations.
LinkModel zero_cost_link();

}  // namespace dpx10::net
