// Message taxonomy of the simulated interconnect.
//
// The real DPX10 exchanges three kinds of traffic between places:
//   * vertex fetches    — a worker pulls a dependency value from its owner
//   * indegree control    — "vertex (i,j) finished" notifications that
//                          decrement a remote anti-dependency's indegree
//   * recovery transfers — finished results copied while rebuilding the
//                          distributed array after a place death
// We keep the same taxonomy so traffic statistics and the cost model can
// distinguish them exactly as the paper's discussion does (§VI-C, §VI-D).
// Heartbeats — the failure detector's periodic liveness beats — share the
// modeled NIC with application traffic, so detection is not free.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dpx10::net {

enum class MessageKind : std::uint8_t {
  FetchRequest = 0,   ///< ask owner for a dependency value
  FetchReply,         ///< owner returns the value
  IndegreeControl,    ///< remote anti-dependency decrement
  ReadyTransfer,      ///< a ready vertex handed to a non-owner place
  ResultWriteback,    ///< result of a non-locally-executed vertex sent home
  RecoveryTransfer,   ///< finished value copied during recovery
  Heartbeat,          ///< periodic liveness beat to the monitor (place 0)
  KindCount,
};

inline constexpr std::size_t kMessageKindCount =
    static_cast<std::size_t>(MessageKind::KindCount);

/// Fixed per-message envelope size (headers, routing, serialization tag).
/// Matches the order of magnitude of the X10 socket runtime's message
/// framing; exact value only shifts constants, not shapes.
inline constexpr std::size_t kEnvelopeBytes = 32;

/// A small control payload: a VertexId (two int32) plus a counter delta.
inline constexpr std::size_t kControlPayloadBytes = 12;

/// Wire size of a message carrying `payload` bytes of application data.
inline constexpr std::size_t wire_bytes(std::size_t payload) {
  return kEnvelopeBytes + payload;
}

}  // namespace dpx10::net
