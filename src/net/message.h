// Message taxonomy of the simulated interconnect.
//
// The real DPX10 exchanges three kinds of traffic between places:
//   * vertex fetches    — a worker pulls a dependency value from its owner
//   * indegree control    — "vertex (i,j) finished" notifications that
//                          decrement a remote anti-dependency's indegree
//   * recovery transfers — finished results copied while rebuilding the
//                          distributed array after a place death
// We keep the same taxonomy so traffic statistics and the cost model can
// distinguish them exactly as the paper's discussion does (§VI-C, §VI-D).
// Heartbeats — the failure detector's periodic liveness beats — share the
// modeled NIC with application traffic, so detection is not free.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dpx10::net {

enum class MessageKind : std::uint8_t {
  FetchRequest = 0,   ///< ask owner for a dependency value
  FetchReply,         ///< owner returns the value
  IndegreeControl,    ///< remote anti-dependency decrement
  ReadyTransfer,      ///< a ready vertex handed to a non-owner place
  ResultWriteback,    ///< result of a non-locally-executed vertex sent home
  RecoveryTransfer,   ///< finished value copied during recovery
  Heartbeat,          ///< periodic liveness beat to the monitor (place 0)
  // Coalesced kinds (RuntimeOptions::coalescing). A batch is ONE wire
  // message: one envelope, one link traversal, one NIC slot, one fault
  // injector draw — that is the whole point. Appended after the legacy
  // kinds so per-kind indices (and serialized counters) stay stable.
  BatchFetchRequest,   ///< k dependency ids, grouped by owner place
  BatchFetchReply,     ///< the k values, one envelope
  BatchIndegreeControl,///< k indegree decrements + the finished value
  KindCount,
};

inline constexpr std::size_t kMessageKindCount =
    static_cast<std::size_t>(MessageKind::KindCount);

/// Fixed per-message envelope size (headers, routing, serialization tag).
/// Matches the order of magnitude of the X10 socket runtime's message
/// framing; exact value only shifts constants, not shapes.
inline constexpr std::size_t kEnvelopeBytes = 32;

/// A small control payload: a VertexId (two int32) plus a counter delta.
inline constexpr std::size_t kControlPayloadBytes = 12;

/// One VertexId on the wire (two int32) — the per-dependency cost of a
/// batched fetch request.
inline constexpr std::size_t kVertexIdBytes = 8;

/// Wire size of a message carrying `payload` bytes of application data.
inline constexpr std::size_t wire_bytes(std::size_t payload) {
  return kEnvelopeBytes + payload;
}

/// Payload of a BatchFetchRequest asking for `k` dependencies: k ids under
/// a single envelope (vs k * (envelope + id) unbatched).
inline constexpr std::size_t batch_fetch_request_payload(std::size_t k) {
  return k * kVertexIdBytes;
}

/// Payload of a BatchIndegreeControl carrying `k` decrements plus one copy
/// of the publisher's value (`value_bytes`). Every edge of the batch shares
/// the same source vertex, so the value ships once and seeds the
/// destination's vertex cache — a pull round-trip turned into a one-way
/// push.
inline constexpr std::size_t batch_control_payload(std::size_t k,
                                                   std::size_t value_bytes) {
  return k * kControlPayloadBytes + value_bytes;
}

}  // namespace dpx10::net
