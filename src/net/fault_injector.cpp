#include "net/fault_injector.h"

namespace dpx10::net {

namespace {
constexpr double to01(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}
}  // namespace

double FaultInjector::roll01(std::uint64_t base, std::uint64_t salt) const {
  return to01(splitmix64(base ^ salt));
}

Perturbation FaultInjector::perturb(MessageKind kind, std::int32_t src,
                                    std::int32_t dst, double now) {
  Perturbation p;
  if (!enabled_) return p;
  const std::uint64_t base =
      mix64(seed_, seq_.fetch_add(1, std::memory_order_relaxed));
  if (cfg_.drop_prob > 0.0 && roll01(base, 0xd801) < cfg_.drop_prob) {
    p.dropped = true;
    drops_.fetch_add(1, std::memory_order_relaxed);
    if (observer_) observer_->on_perturb(kind, src, dst, p, now);
    return p;
  }
  if (cfg_.dup_prob > 0.0 && roll01(base, 0xd802) < cfg_.dup_prob) {
    p.extra_copies = 1;
    duplicates_.fetch_add(1, std::memory_order_relaxed);
  }
  if (cfg_.delay_jitter_s > 0.0) {
    p.extra_delay_s = cfg_.delay_jitter_s * roll01(base, 0xd803);
  }
  for (const StallWindow& w : cfg_.stalls) {
    if ((w.place == src || w.place == dst) && now >= w.start_s &&
        now < w.end_s) {
      p.extra_delay_s += w.end_s - now;
      stalled_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (observer_) observer_->on_perturb(kind, src, dst, p, now);
  return p;
}

double FaultInjector::uniform01() {
  if (!enabled_) return 0.5;
  return to01(
      splitmix64(mix64(seed_, seq_.fetch_add(1, std::memory_order_relaxed)) ^
                 0xd804));
}

}  // namespace dpx10::net
