// Per-place traffic accounting.
//
// Both engines route every inter-place interaction through a TrafficBook so
// tests can assert conservation (bytes out of p to q == bytes into q from p)
// and benches can report communication volume alongside time. Counters are
// atomics because the threaded engine updates them from many workers; the
// simulator uses them single-threaded with relaxed ordering.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "net/message.h"

namespace dpx10::net {

/// Aggregated view of one place's traffic (snapshot, plain integers).
struct TrafficSnapshot {
  std::uint64_t messages_out[kMessageKindCount] = {};
  std::uint64_t messages_in[kMessageKindCount] = {};
  std::uint64_t bytes_out = 0;
  std::uint64_t bytes_in = 0;

  std::uint64_t total_messages_out() const {
    std::uint64_t n = 0;
    for (auto v : messages_out) n += v;
    return n;
  }
  std::uint64_t total_messages_in() const {
    std::uint64_t n = 0;
    for (auto v : messages_in) n += v;
    return n;
  }
};

class TrafficBook {
 public:
  explicit TrafficBook(std::int32_t nplaces);

  TrafficBook(const TrafficBook&) = delete;
  TrafficBook& operator=(const TrafficBook&) = delete;

  std::int32_t nplaces() const { return nplaces_; }

  /// Records one message from `src` to `dst` carrying `payload` application
  /// bytes (the envelope is added here). src == dst is legal and counted
  /// separately as local, so callers don't need to special-case.
  void record(std::int32_t src, std::int32_t dst, MessageKind kind, std::size_t payload);

  TrafficSnapshot snapshot(std::int32_t place) const;
  TrafficSnapshot total() const;

  std::uint64_t local_messages() const { return local_messages_.load(std::memory_order_relaxed); }

  void reset();

 private:
  struct PlaceCounters {
    std::atomic<std::uint64_t> messages_out[kMessageKindCount] = {};
    std::atomic<std::uint64_t> messages_in[kMessageKindCount] = {};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> bytes_in{0};
  };

  std::int32_t nplaces_;
  std::vector<PlaceCounters> counters_;
  std::atomic<std::uint64_t> local_messages_{0};
};

}  // namespace dpx10::net
