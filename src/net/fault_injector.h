// Deterministic network fault injection.
//
// The paper's testbed (and §VI-D's failure experiment) assumes a perfectly
// reliable interconnect: messages always arrive, exactly once, after the
// alpha-beta delay. Real clusters misbehave — packets are dropped and
// retransmitted, replies are duplicated, switches add jitter, and a place
// can stall for milliseconds (GC pause, cron job, flaky NIC) and look dead
// without being dead. The FaultInjector perturbs every simulated message
// with exactly those failure modes, reproducibly from the run seed, so the
// heartbeat detector and the retry protocol can be exercised — and two runs
// with the same seed see the *same* sequence of faults.
//
// Determinism: each perturb() consumes one global sequence number and hashes
// (seed, seq) statelessly. In the simulator messages are perturbed in event
// order, so the fault sequence is a pure function of the seed. The counter
// is atomic so the threaded engine can share one injector across workers
// (there, per-run determinism is already out of scope — wall clock rules).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "net/message.h"

namespace dpx10::net {

/// A transient straggler window: every message touching `place` (as sender
/// or receiver) during [start_s, end_s) is held until the window closes.
/// Models GC pauses / noisy neighbours — long windows make a live place
/// look dead and provoke false suspicion in the failure detector.
struct StallWindow {
  std::int32_t place = -1;
  double start_s = 0.0;
  double end_s = 0.0;

  void validate(std::int32_t nplaces) const {
    require(place >= 0 && place < nplaces, "StallWindow: place out of range");
    require(start_s >= 0.0 && end_s > start_s,
            "StallWindow: need 0 <= start_s < end_s");
  }
};

/// Configuration of the unreliable network. Default-constructed = perfectly
/// reliable (the injector short-circuits and the engines keep their exact
/// seed-identical behaviour).
struct NetFaultConfig {
  double drop_prob = 0.0;      ///< P(message silently lost)
  double dup_prob = 0.0;       ///< P(message delivered twice)
  double delay_jitter_s = 0.0; ///< extra uniform [0, jitter) delivery delay
  std::vector<StallWindow> stalls;

  bool any() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || delay_jitter_s > 0.0 ||
           !stalls.empty();
  }

  void validate(std::int32_t nplaces) const {
    // Drop is capped below 1 so retry loops terminate (each attempt keeps a
    // bounded success probability); 0.9 already models a catastrophic link.
    require(drop_prob >= 0.0 && drop_prob <= 0.9,
            "NetFaultConfig: drop_prob must be in [0, 0.9]");
    require(dup_prob >= 0.0 && dup_prob <= 1.0,
            "NetFaultConfig: dup_prob must be in [0, 1]");
    require(delay_jitter_s >= 0.0,
            "NetFaultConfig: delay_jitter_s must be >= 0");
    for (const StallWindow& w : stalls) w.validate(nplaces);
  }
};

/// What the network did to one message.
struct Perturbation {
  bool dropped = false;
  std::int32_t extra_copies = 0;  ///< duplicates delivered beyond the first
  double extra_delay_s = 0.0;     ///< jitter + stall hold, on top of the link
};

/// Observability hook: an observer wired via set_observer() sees every
/// rolled message fate (the obs::Tracer histograms injected delays and
/// counts drops/duplicates at the source). Implementations must be
/// thread-safe when the injector is shared by threaded workers.
class PerturbObserver {
 public:
  virtual ~PerturbObserver() = default;
  virtual void on_perturb(MessageKind kind, std::int32_t src, std::int32_t dst,
                          const Perturbation& p, double now) = 0;
};

class FaultInjector {
 public:
  FaultInjector(const NetFaultConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), seed_(seed), enabled_(cfg.any()) {}

  bool enabled() const { return enabled_; }
  const NetFaultConfig& config() const { return cfg_; }

  /// Wires (or clears, with nullptr) the fate observer. Not synchronized:
  /// set it before the run starts. A disabled injector never calls it.
  void set_observer(PerturbObserver* observer) { observer_ = observer; }

  /// Rolls the fate of one message from src to dst at (virtual) time `now`.
  /// Consumes exactly one sequence number per call regardless of which
  /// faults are configured, so enabling one fault mode never perturbs the
  /// sequence of another.
  Perturbation perturb(MessageKind kind, std::int32_t src, std::int32_t dst,
                       double now);

  /// Auxiliary deterministic uniform [0,1) stream (backoff jitter). Shares
  /// the sequence counter with perturb() — same determinism argument.
  double uniform01();

  // Whole-run totals (atomic: shared by threaded workers).
  std::uint64_t drops() const { return drops_.load(std::memory_order_relaxed); }
  std::uint64_t duplicates() const {
    return duplicates_.load(std::memory_order_relaxed);
  }
  std::uint64_t stalled() const {
    return stalled_.load(std::memory_order_relaxed);
  }

 private:
  double roll01(std::uint64_t base, std::uint64_t salt) const;

  NetFaultConfig cfg_;
  std::uint64_t seed_;
  bool enabled_;
  PerturbObserver* observer_ = nullptr;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> stalled_{0};
};

}  // namespace dpx10::net
