// VertexId — the 2D coordinate of a DP-matrix cell.
//
// The paper identifies every vertex by its (i, j) pair; the pair is the
// unique identifier passed to compute() and returned by the pattern's
// dependency methods. It lives in common/ because every layer (domains,
// distributions, patterns, engines) speaks in these coordinates.
#pragma once

#include <cstdint>
#include <functional>

namespace dpx10 {

struct VertexId {
  std::int32_t i = 0;
  std::int32_t j = 0;

  friend bool operator==(const VertexId&, const VertexId&) = default;

  /// Row-major ordering; handy for sorting dependency lists in tests.
  friend bool operator<(const VertexId& x, const VertexId& y) {
    if (x.i != y.i) return x.i < y.i;
    return x.j < y.j;
  }

  /// Packs the pair into one 64-bit key (for hash maps and caches).
  std::uint64_t key() const {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(j));
  }
};

}  // namespace dpx10

template <>
struct std::hash<dpx10::VertexId> {
  std::size_t operator()(const dpx10::VertexId& id) const noexcept {
    // splitmix-style finalizer over the packed key
    std::uint64_t x = id.key();
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};
