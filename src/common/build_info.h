// Build identification shared by every CLI tool (`--version`).
//
// The values are injected by CMake at configure time (git describe plus the
// build type) and compiled into exactly one translation unit, so a new
// commit re-links the tools without rebuilding the world. The serve
// protocol version lives here too: dpx10serve and dpx10submit exchange it
// in every hello/ping, so a daemon/client skew is diagnosable from either
// end with `--version` instead of manifesting as a confusing parse error.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dpx10 {

/// `git describe --always --dirty --tags` at configure time, or "unknown"
/// when the source tree is not a git checkout.
std::string_view git_describe();

/// CMAKE_BUILD_TYPE of this binary (Release, RelWithDebInfo, ...).
std::string_view build_type();

/// Version of the dpx10serve line-JSON protocol understood by this build.
/// Bump on any incompatible request/response change.
constexpr std::int32_t kServeProtocolVersion = 1;

/// One-line banner: "<tool> <describe> (<build type>, serve protocol <v>)".
std::string build_info_line(std::string_view tool);

}  // namespace dpx10
