#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

#include "common/error.h"

namespace dpx10 {

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(delim, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      out.push_back(',');
      since_sep = 0;
    }
    out.push_back(*it);
    ++since_sep;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string human_bytes(double bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return strformat("%.2f %s", bytes, units[unit]);
}

std::string human_seconds(double seconds) {
  if (seconds >= 1.0) return strformat("%.3f s", seconds);
  if (seconds >= 1e-3) return strformat("%.3f ms", seconds * 1e3);
  if (seconds >= 1e-6) return strformat("%.3f us", seconds * 1e6);
  return strformat("%.1f ns", seconds * 1e9);
}

std::uint64_t parse_scaled_u64(const std::string& text) {
  std::string t = trim(text);
  require(!t.empty(), "parse_scaled_u64: empty string");
  std::uint64_t scale = 1;
  char last = static_cast<char>(std::tolower(static_cast<unsigned char>(t.back())));
  if (last == 'k') scale = 1000ULL;
  if (last == 'm') scale = 1000000ULL;
  if (last == 'g') scale = 1000000000ULL;
  if (scale != 1) t.pop_back();
  require(!t.empty(), "parse_scaled_u64: missing digits in '" + text + "'");
  std::uint64_t value = 0;
  for (char c : t) {
    require(c >= '0' && c <= '9', "parse_scaled_u64: bad digit in '" + text + "'");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value * scale;
}

}  // namespace dpx10
