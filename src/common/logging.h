// Minimal leveled logger.
//
// The framework is quiet by default (Warn level); benches and examples can
// raise verbosity via set_log_level() or the DPX10_LOG environment variable
// (one of: trace, debug, info, warn, error, off). Logging is safe to call
// from any thread; each message is written with a single write so lines
// never interleave. Every line carries the elapsed time since process start
// and — where the calling thread has declared one via set_log_place() — the
// place id, so interleaved multi-place output stays attributable:
//   [dpx10 INFO +1.204s p2] place 2 suspected ...
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace dpx10 {

enum class LogLevel : int { Trace = 0, Debug, Info, Warn, Error, Off };

LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off"; returns Warn on junk.
LogLevel parse_log_level(const std::string& text);

/// Tags every subsequent log line from the calling thread with a place id
/// (pass a negative id to clear the tag). Thread-local: worker threads each
/// declare their own place.
void set_log_place(std::int32_t place);
std::int32_t log_place();

/// RAII place tag for scopes that log on behalf of one place.
class ScopedLogPlace {
 public:
  explicit ScopedLogPlace(std::int32_t place) : prev_(log_place()) {
    set_log_place(place);
  }
  ScopedLogPlace(const ScopedLogPlace&) = delete;
  ScopedLogPlace& operator=(const ScopedLogPlace&) = delete;
  ~ScopedLogPlace() { set_log_place(prev_); }

 private:
  std::int32_t prev_;
};

namespace detail {
void log_emit(LogLevel level, const std::string& message);

/// Builds the full line (sans newline) — split out so tests can check the
/// prefix format without capturing stderr.
std::string format_log_line(LogLevel level, double elapsed_s, std::int32_t place,
                            const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

}  // namespace dpx10

#define DPX10_LOG(level)                           \
  if (!::dpx10::log_enabled(::dpx10::LogLevel::level)) { \
  } else                                           \
    ::dpx10::detail::LogLine(::dpx10::LogLevel::level)

#define DPX10_TRACE DPX10_LOG(Trace)
#define DPX10_DEBUG DPX10_LOG(Debug)
#define DPX10_INFO DPX10_LOG(Info)
#define DPX10_WARN DPX10_LOG(Warn)
#define DPX10_ERROR DPX10_LOG(Error)
