// Deterministic pseudo-random number generation.
//
// Everything random in dpx10 (random scheduling, workload generators, fault
// points in sweeps) flows through these generators so that a run is fully
// reproducible from a single seed. We use SplitMix64 for seeding/stateless
// hashing and xoshiro256** for streams — both are tiny, fast, and have
// well-studied statistical quality, which matters more here than
// cryptographic strength.
#pragma once

#include <array>
#include <cstdint>

namespace dpx10 {

/// One SplitMix64 step: maps any 64-bit value to a well-mixed 64-bit value.
/// Stateless — ideal for hashing coordinates into reproducible "random"
/// workload data (e.g. Manhattan-Tourists edge weights).
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Mixes two 64-bit values; used to derive independent per-place streams
/// from a run seed.
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2)));
}

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    // Seed the full 256-bit state through SplitMix64 per the authors'
    // recommendation; guarantees a nonzero state for any seed.
    std::uint64_t s = seed;
    for (auto& word : state_) {
      s = splitmix64(s);
      word = s;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    while (true) {
      std::uint64_t x = (*this)();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= std::uint64_t(-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dpx10
