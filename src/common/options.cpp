#include "common/options.h"

#include <cstdlib>

#include "common/error.h"
#include "common/strings.h"

namespace dpx10 {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    require(!arg.empty(), "Options: bare '--' is not a valid flag");
    std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // boolean flag form: --verbose
    }
  }
}

std::pair<bool, std::string> Options::lookup(const std::string& key) const {
  auto it = values_.find(key);
  if (it != values_.end()) return {true, it->second};
  std::string env_key = "DPX10_";
  for (char c : key) {
    env_key.push_back(c == '-' ? '_' : static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  if (const char* env = std::getenv(env_key.c_str())) return {true, env};
  return {false, {}};
}

bool Options::has(const std::string& key) const { return lookup(key).first; }

std::string Options::get(const std::string& key, const std::string& fallback) const {
  auto [found, value] = lookup(key);
  return found ? value : fallback;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t fallback) const {
  auto [found, value] = lookup(key);
  if (!found) return fallback;
  try {
    return std::stoll(value);
  } catch (const std::exception&) {
    throw ConfigError("option --" + key + ": expected integer, got '" + value + "'");
  }
}

std::uint64_t Options::get_scaled(const std::string& key, std::uint64_t fallback) const {
  auto [found, value] = lookup(key);
  if (!found) return fallback;
  return parse_scaled_u64(value);
}

double Options::get_double(const std::string& key, double fallback) const {
  auto [found, value] = lookup(key);
  if (!found) return fallback;
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    throw ConfigError("option --" + key + ": expected number, got '" + value + "'");
  }
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  auto [found, value] = lookup(key);
  if (!found) return fallback;
  if (value == "true" || value == "1" || value == "yes" || value == "on") return true;
  if (value == "false" || value == "0" || value == "no" || value == "off") return false;
  throw ConfigError("option --" + key + ": expected boolean, got '" + value + "'");
}

std::vector<std::int64_t> Options::get_int_list(const std::string& key,
                                                std::vector<std::int64_t> fallback) const {
  auto [found, value] = lookup(key);
  if (!found) return fallback;
  std::vector<std::int64_t> out;
  for (const std::string& part : split(value, ',')) {
    std::string p = trim(part);
    if (p.empty()) continue;
    try {
      out.push_back(std::stoll(p));
    } catch (const std::exception&) {
      throw ConfigError("option --" + key + ": expected integer list, got '" + value + "'");
    }
  }
  return out;
}

}  // namespace dpx10
