// Error taxonomy for the dpx10 framework.
//
// All exceptions thrown by the library derive from dpx10::Error so callers
// can catch framework failures with a single handler while still
// distinguishing configuration mistakes from runtime faults.
#pragma once

#include <stdexcept>
#include <string>

namespace dpx10 {

/// Root of the dpx10 exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller supplied an invalid configuration (bad sizes, zero places,
/// a distribution that does not cover the domain, ...). These indicate
/// programming errors and are thrown before any execution begins.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// An internal invariant was violated. Seeing this is a bug in dpx10.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Throw-if helpers keep precondition checks one-liners at call sites.
/// The message must be built only on failure — these sit on hot paths, so
/// the common form takes a string literal (no allocation when the check
/// passes) and composed-message call sites pay for their std::string only
/// when they actually compose one.
inline void require(bool cond, const char* what) {
  if (!cond) [[unlikely]] throw ConfigError(what);
}

inline void require(bool cond, const std::string& what) {
  if (!cond) [[unlikely]] throw ConfigError(what);
}

inline void check_internal(bool cond, const char* what) {
  if (!cond) [[unlikely]] throw InternalError(what);
}

inline void check_internal(bool cond, const std::string& what) {
  if (!cond) [[unlikely]] throw InternalError(what);
}

}  // namespace dpx10
