// Small string/formatting helpers shared by benches, examples and tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dpx10 {

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits on a delimiter; empty fields are preserved ("a,,b" -> {a,"",b}).
std::vector<std::string> split(const std::string& text, char delim);

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string& text);

/// "1234567" -> "1,234,567" for readable bench tables.
std::string with_commas(std::uint64_t value);

/// Human-readable byte count: "3.2 MiB".
std::string human_bytes(double bytes);

/// Human-readable seconds: "1.24 s", "830 ms", "12.1 us".
std::string human_seconds(double seconds);

/// Parses a non-negative integer with optional k/m/g (×1000) suffix,
/// e.g. "300m" -> 300000000. Throws ConfigError on junk.
std::uint64_t parse_scaled_u64(const std::string& text);

}  // namespace dpx10
