#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace dpx10 {
namespace {

using SteadyClock = std::chrono::steady_clock;

/// Process-start reference for the elapsed-time prefix. function-local so
/// the first log call anchors it; close enough to process start for a
/// human-readable offset.
SteadyClock::time_point process_start() {
  static const SteadyClock::time_point start = SteadyClock::now();
  return start;
}

thread_local std::int32_t t_log_place = -1;

std::atomic<int>& level_storage() {
  static std::atomic<int> level = [] {
    const char* env = std::getenv("DPX10_LOG");
    LogLevel initial = env ? parse_log_level(env) : LogLevel::Warn;
    return static_cast<int>(initial);
  }();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) { level_storage().store(static_cast<int>(level), std::memory_order_relaxed); }

LogLevel parse_log_level(const std::string& text) {
  if (text == "trace") return LogLevel::Trace;
  if (text == "debug") return LogLevel::Debug;
  if (text == "info") return LogLevel::Info;
  if (text == "warn") return LogLevel::Warn;
  if (text == "error") return LogLevel::Error;
  if (text == "off") return LogLevel::Off;
  return LogLevel::Warn;
}

void set_log_place(std::int32_t place) { t_log_place = place < 0 ? -1 : place; }

std::int32_t log_place() { return t_log_place; }

namespace detail {

std::string format_log_line(LogLevel level, double elapsed_s, std::int32_t place,
                            const std::string& message) {
  char prefix[96];
  if (place >= 0) {
    std::snprintf(prefix, sizeof prefix, "[dpx10 %s +%.3fs p%d] ",
                  level_name(level), elapsed_s, place);
  } else {
    std::snprintf(prefix, sizeof prefix, "[dpx10 %s +%.3fs] ",
                  level_name(level), elapsed_s);
  }
  return std::string(prefix) + message;
}

void log_emit(LogLevel level, const std::string& message) {
  const double elapsed_s =
      std::chrono::duration<double>(SteadyClock::now() - process_start()).count();
  const std::string line = format_log_line(level, elapsed_s, t_log_place, message);
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace detail
}  // namespace dpx10
