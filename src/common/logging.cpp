#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace dpx10 {
namespace {

std::atomic<int>& level_storage() {
  static std::atomic<int> level = [] {
    const char* env = std::getenv("DPX10_LOG");
    LogLevel initial = env ? parse_log_level(env) : LogLevel::Warn;
    return static_cast<int>(initial);
  }();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) { level_storage().store(static_cast<int>(level), std::memory_order_relaxed); }

LogLevel parse_log_level(const std::string& text) {
  if (text == "trace") return LogLevel::Trace;
  if (text == "debug") return LogLevel::Debug;
  if (text == "info") return LogLevel::Info;
  if (text == "warn") return LogLevel::Warn;
  if (text == "error") return LogLevel::Error;
  if (text == "off") return LogLevel::Off;
  return LogLevel::Warn;
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[dpx10 %s] %s\n", level_name(level), message.c_str());
}

}  // namespace detail
}  // namespace dpx10
