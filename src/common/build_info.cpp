#include "common/build_info.h"

// Fallbacks keep non-CMake builds (and IDE indexers) compiling.
#ifndef DPX10_GIT_DESCRIBE
#define DPX10_GIT_DESCRIBE "unknown"
#endif
#ifndef DPX10_BUILD_TYPE
#define DPX10_BUILD_TYPE "unknown"
#endif

namespace dpx10 {

std::string_view git_describe() { return DPX10_GIT_DESCRIBE; }

std::string_view build_type() { return DPX10_BUILD_TYPE; }

std::string build_info_line(std::string_view tool) {
  std::string line(tool);
  line += ' ';
  line += git_describe();
  line += " (";
  line += build_type();
  line += ", serve protocol ";
  line += std::to_string(kServeProtocolVersion);
  line += ")";
  return line;
}

}  // namespace dpx10
