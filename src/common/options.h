// Tiny CLI/environment option parser used by benches and examples.
//
// Values resolve in priority order: command line (--key=value or
// --key value) > environment (DPX10_KEY, upper-cased, '-'→'_') > default.
// This mirrors how the paper's experiments were driven by X10_NPLACES /
// X10_NTHREADS environment variables while letting bench sweeps override
// per invocation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dpx10 {

class Options {
 public:
  Options() = default;
  /// Parses argv; unrecognized positional arguments are kept in
  /// positional(). Throws ConfigError on malformed flags.
  Options(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  /// Accepts k/m/g suffixes: --vertices=300m.
  std::uint64_t get_scaled(const std::string& key, std::uint64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Comma-separated integer list, e.g. --nodes=2,4,6,8,10,12.
  std::vector<std::int64_t> get_int_list(const std::string& key,
                                         std::vector<std::int64_t> fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  /// Returns the raw string for key from CLI then environment, or empty
  /// optional-like pair (found, value).
  std::pair<bool, std::string> lookup(const std::string& key) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dpx10
