// Wall-clock stopwatch used by the threaded engine and benches.
#pragma once

#include <chrono>

namespace dpx10 {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dpx10
