#!/usr/bin/env bash
# Benchmark regression gate (PR 7).
#
# The SimEngine's virtual clock makes its elapsed time a deterministic
# function of the code, so cheap sim scenarios double as regression
# fixtures: this script re-runs the pinned scenarios with `dpx10run --json`
# and fails if any drifts more than 10% from the baselines committed in
# BENCH_PR*.json. It also enforces the PR 7 transparency contract exactly:
# a run with the default-on flight recorder + status export must emit a
# byte-identical JSON report to one with both disabled.
#
#   scripts/bench_gate.sh            # compare against committed baselines
#   scripts/bench_gate.sh --write    # regenerate BENCH_PR7.json
#
# Requires build/tools/dpx10run (override with DPX10_RUN=...).
set -euo pipefail
cd "$(dirname "$0")/.."

mode="check"
[[ "${1:-}" == "--write" ]] && mode="write"
run="${DPX10_RUN:-build/tools/dpx10run}"
[[ -x "${run}" ]] || { echo "bench_gate.sh: ${run} not built" >&2; exit 2; }

tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT

# scenario name -> dpx10run flags. Sim only: wall-clock benches (the
# threaded overhead table in bench/ablate_trace_overhead) are too noisy for
# a CI gate and stay informational.
declare -A scenarios=(
  [swlag_sim_100k_8n]="--app=swlag --engine=sim --vertices=100k --nodes=8"
  [swlag_sim_100k_8n_coalesce]="--app=swlag --engine=sim --vertices=100k --nodes=8 --coalescing=true"
  [lcs_sim_100k_4n]="--app=lcs --engine=sim --vertices=100k --nodes=4"
  [nussinov_sim_10k]="--app=nussinov --engine=sim --vertices=10k"
  [lcs_sim_fault_100k]="--app=lcs --engine=sim --vertices=100k --nodes=8 --fault-place=2 --fault-at=0.5"
)

echo "==> transparency: default recorder + status vs disabled (byte-identical)"
"${run}" --app=swlag --engine=sim --vertices=100k --nodes=8 \
  --flight-events=0 --json > "${tmp}/plain.json"
"${run}" --app=swlag --engine=sim --vertices=100k --nodes=8 \
  --status-file="${tmp}/gate.status" --status-interval=0.001 --json \
  > "${tmp}/obs.json"
cmp "${tmp}/plain.json" "${tmp}/obs.json" || {
  echo "bench_gate.sh: recorder/status export changed the report" >&2
  exit 1
}

echo "==> sim scenarios"
for name in "${!scenarios[@]}"; do
  # shellcheck disable=SC2086
  "${run}" ${scenarios[$name]} --json > "${tmp}/${name}.json"
done

command -v python3 >/dev/null || {
  echo "bench_gate.sh: python3 not found; skipping baseline diff" >&2
  exit 0
}

python3 - "${mode}" "${tmp}" "${!scenarios[@]}" <<'PY'
import json, sys

mode, tmpdir, names = sys.argv[1], sys.argv[2], sys.argv[3:]
fresh = {}
for name in names:
    r = json.load(open(f"{tmpdir}/{name}.json"))
    fresh[name] = {"elapsed_s": r["elapsed_s"], "computed": r["computed"]}

if mode == "write":
    report = {
        "pr": "flight recorder, stall watchdog, live introspection",
        "gate_tolerance_pct": 10,
        "sim_baseline": dict(sorted(fresh.items())),
    }
    with open("BENCH_PR7.json", "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print("bench_gate.sh: wrote BENCH_PR7.json")
    sys.exit(0)

base = json.load(open("BENCH_PR7.json"))
tol = base.get("gate_tolerance_pct", 10) / 100.0
failed = False
for name, b in base["sim_baseline"].items():
    f = fresh.get(name)
    if f is None:
        print(f"  {name}: MISSING from this run"); failed = True; continue
    if f["computed"] != b["computed"]:
        print(f"  {name}: computed {f['computed']} != baseline {b['computed']}")
        failed = True
        continue
    drift = (f["elapsed_s"] - b["elapsed_s"]) / b["elapsed_s"]
    flag = "FAIL" if drift > tol else "ok"
    print(f"  {name}: {f['elapsed_s']:.6f}s vs {b['elapsed_s']:.6f}s "
          f"({drift:+.2%}) {flag}")
    if drift > tol:
        failed = True
sys.exit(1 if failed else 0)
PY
