#!/usr/bin/env bash
# Benchmark regression gate (PR 7 baselines + PR 8 tiling + PR 9 serve).
#
# The SimEngine's virtual clock makes its elapsed time a deterministic
# function of the code, so cheap sim scenarios double as regression
# fixtures: this script re-runs the pinned scenarios with `dpx10run --json`
# and fails if any drifts more than 10% from the baselines committed in
# BENCH_PR*.json. It also enforces the PR 7 transparency contract exactly:
# a run with the default-on flight recorder + status export must emit a
# byte-identical JSON report to one with both disabled.
#
# PR 8 adds tiled macro-DAG scenarios (gated the same way against
# BENCH_PR8.json) and two recorded acceptance metrics from
# bench/ablate_tiling --json: the best tiled threaded SWLAG elapsed must be
# <= 1.3x the hand-coded native baseline, and tiled Nussinov under
# --retirement=retire must hold >= 10x fewer resident payloads. The
# threaded numbers are measured at --write time and re-asserted (not
# re-measured) in check mode — wall clock is too noisy for CI.
#
# PR 9 adds the serve multiplexing ablation (bench/ablate_serve): the same
# mixed SWLAG/Nussinov batch run back-to-back vs multiplexed on one shared
# dpx10serve worker pool. Its acceptance metric — multiplex_speedup >= 1.2x
# — is wall clock, so like the PR 8 threaded numbers it is measured at
# --write time into BENCH_PR9.json and re-asserted (not re-measured) in
# check mode.
#
#   scripts/bench_gate.sh            # compare against committed baselines
#   scripts/bench_gate.sh --write    # regenerate BENCH_PR8.json + BENCH_PR9.json
#
# Requires build/tools/dpx10run, build/bench/ablate_tiling and
# build/bench/ablate_serve (override with DPX10_RUN=... /
# DPX10_ABLATE_TILING=... / DPX10_ABLATE_SERVE=...).
set -euo pipefail
cd "$(dirname "$0")/.."

mode="check"
[[ "${1:-}" == "--write" ]] && mode="write"
run="${DPX10_RUN:-build/tools/dpx10run}"
ablate="${DPX10_ABLATE_TILING:-build/bench/ablate_tiling}"
ablate_serve="${DPX10_ABLATE_SERVE:-build/bench/ablate_serve}"
[[ -x "${run}" ]] || { echo "bench_gate.sh: ${run} not built" >&2; exit 2; }

tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT

# scenario name -> dpx10run flags. Sim only: wall-clock benches (the
# threaded overhead table in bench/ablate_trace_overhead) are too noisy for
# a CI gate and stay informational. The pr7 set is frozen (BENCH_PR7.json);
# the pr8 set pins the tiled launcher path on both DAG families, with
# coalescing, retirement and a mid-run fault composed on top.
declare -A pr7_scenarios=(
  [swlag_sim_100k_8n]="--app=swlag --engine=sim --vertices=100k --nodes=8"
  [swlag_sim_100k_8n_coalesce]="--app=swlag --engine=sim --vertices=100k --nodes=8 --coalescing=true"
  [lcs_sim_100k_4n]="--app=lcs --engine=sim --vertices=100k --nodes=4"
  [nussinov_sim_10k]="--app=nussinov --engine=sim --vertices=10k"
  [lcs_sim_fault_100k]="--app=lcs --engine=sim --vertices=100k --nodes=8 --fault-place=2 --fault-at=0.5"
)
declare -A pr8_scenarios=(
  [swlag_sim_100k_8n_tile32]="--app=swlag --engine=sim --vertices=100k --nodes=8 --tile=32"
  [swlag_sim_100k_8n_tile32_coalesce]="--app=swlag --engine=sim --vertices=100k --nodes=8 --tile=32 --coalescing=true"
  [nussinov_sim_10k_tile16]="--app=nussinov --engine=sim --vertices=10k --tile=16"
  [nussinov_sim_10k_tile16_retire]="--app=nussinov --engine=sim --vertices=10k --tile=16 --retirement=retire"
  [lcs_sim_fault_100k_tile32]="--app=lcs --engine=sim --vertices=100k --nodes=8 --tile=32 --fault-place=2 --fault-at=0.5"
)

echo "==> transparency: default recorder + status vs disabled (byte-identical)"
"${run}" --app=swlag --engine=sim --vertices=100k --nodes=8 \
  --flight-events=0 --json > "${tmp}/plain.json"
"${run}" --app=swlag --engine=sim --vertices=100k --nodes=8 \
  --status-file="${tmp}/gate.status" --status-interval=0.001 --json \
  > "${tmp}/obs.json"
cmp "${tmp}/plain.json" "${tmp}/obs.json" || {
  echo "bench_gate.sh: recorder/status export changed the report" >&2
  exit 1
}

echo "==> sim scenarios"
for name in "${!pr7_scenarios[@]}"; do
  # shellcheck disable=SC2086
  "${run}" ${pr7_scenarios[$name]} --json > "${tmp}/${name}.json"
done
for name in "${!pr8_scenarios[@]}"; do
  # shellcheck disable=SC2086
  "${run}" ${pr8_scenarios[$name]} --json > "${tmp}/${name}.json"
done

if [[ "${mode}" == "write" ]]; then
  echo "==> tiling acceptance sweep (threaded vs native; this measures wall clock)"
  [[ -x "${ablate}" ]] || { echo "bench_gate.sh: ${ablate} not built" >&2; exit 2; }
  "${ablate}" --vertices=100k --threaded-vertices=100k \
    --tiles=1,8,16,32,64 --json > "${tmp}/tiling.json"

  echo "==> serve multiplexing sweep (wall clock)"
  [[ -x "${ablate_serve}" ]] || { echo "bench_gate.sh: ${ablate_serve} not built" >&2; exit 2; }
  "${ablate_serve}" --json > "${tmp}/serve.json"
fi

command -v python3 >/dev/null || {
  echo "bench_gate.sh: python3 not found; skipping baseline diff" >&2
  exit 0
}

python3 - "${mode}" "${tmp}" \
  "$(echo "${!pr7_scenarios[@]}")" "$(echo "${!pr8_scenarios[@]}")" <<'PY'
import json, sys

mode, tmpdir, pr7_names, pr8_names = (
    sys.argv[1], sys.argv[2], sys.argv[3].split(), sys.argv[4].split())

def load(names):
    out = {}
    for name in names:
        r = json.load(open(f"{tmpdir}/{name}.json"))
        out[name] = {"elapsed_s": r["elapsed_s"], "computed": r["computed"]}
    return out

fresh7, fresh8 = load(pr7_names), load(pr8_names)

if mode == "write":
    tiling = json.load(open(f"{tmpdir}/tiling.json"))
    report = {
        "pr": "tiling as a first-class macro-DAG execution mode",
        "gate_tolerance_pct": 10,
        "sim_baseline": dict(sorted(fresh8.items())),
        "tiling": tiling,
    }
    with open("BENCH_PR8.json", "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    serve = json.load(open(f"{tmpdir}/serve.json"))
    with open("BENCH_PR9.json", "w") as f:
        json.dump({
            "pr": "dpx10serve: multi-tenant DP-as-a-service daemon",
            "serve": serve,
        }, f, indent=2)
        f.write("\n")
    ratio = tiling["swlag_threaded"]["best_vs_native"]
    red = tiling["nussinov_peak_live"]["reduction"]
    mux = serve["multiplex_speedup"]
    print(f"bench_gate.sh: wrote BENCH_PR8.json + BENCH_PR9.json "
          f"(swlag best_vs_native {ratio:.2f}x, nussinov reduction {red:.1f}x, "
          f"serve multiplex {mux:.2f}x)")
    sys.exit(0 if ratio <= 1.3 and red >= 10 and mux >= 1.2 else 1)

failed = False

def diff(fresh, path):
    global failed
    base = json.load(open(path))
    tol = base.get("gate_tolerance_pct", 10) / 100.0
    for name, b in base["sim_baseline"].items():
        f = fresh.get(name)
        if f is None:
            print(f"  {name}: MISSING from this run"); failed = True; continue
        if f["computed"] != b["computed"]:
            print(f"  {name}: computed {f['computed']} != baseline {b['computed']}")
            failed = True
            continue
        drift = (f["elapsed_s"] - b["elapsed_s"]) / b["elapsed_s"]
        flag = "FAIL" if drift > tol else "ok"
        print(f"  {name}: {f['elapsed_s']:.6f}s vs {b['elapsed_s']:.6f}s "
              f"({drift:+.2%}) {flag}")
        if drift > tol:
            failed = True
    return base

diff(fresh7, "BENCH_PR7.json")
base8 = diff(fresh8, "BENCH_PR8.json")

# PR 8 acceptance metrics, asserted from the committed record (the threaded
# sweep is re-measured only by --write; CI machines are too noisy).
tiling = base8.get("tiling", {})
ratio = tiling.get("swlag_threaded", {}).get("best_vs_native")
red = tiling.get("nussinov_peak_live", {}).get("reduction")
if ratio is None or ratio > 1.3:
    print(f"  tiling: swlag best_vs_native {ratio} exceeds 1.3x"); failed = True
else:
    print(f"  tiling: swlag best_vs_native {ratio:.2f}x (<= 1.3x) ok")
if red is None or red < 10:
    print(f"  tiling: nussinov peak-live reduction {red} below 10x"); failed = True
else:
    print(f"  tiling: nussinov peak-live reduction {red:.1f}x (>= 10x) ok")

# PR 9 acceptance: the recorded serve multiplexing speedup (wall clock,
# measured at --write time like the threaded tiling numbers).
serve = json.load(open("BENCH_PR9.json")).get("serve", {})
mux = serve.get("multiplex_speedup")
if mux is None or mux < 1.2:
    print(f"  serve: multiplex speedup {mux} below 1.2x"); failed = True
else:
    print(f"  serve: multiplex speedup {mux:.2f}x (>= 1.2x, "
          f"p99 latency {serve.get('latency_p99_s', 0):.3f}s) ok")
sys.exit(1 if failed else 0)
PY
