#!/usr/bin/env sh
# Regenerates every paper figure and ablation into two log files.
#
#   scripts/run_all_experiments.sh [build-dir]
#
# Pass DPX10_VERTICES / DPX10_NODES etc. via the environment to rescale
# (each bench also accepts --vertices/--nodes flags when run directly).
set -eu

BUILD="${1:-build}"

if [ ! -d "$BUILD/bench" ]; then
  echo "error: '$BUILD' is not a configured build directory" >&2
  echo "run: cmake -B $BUILD -G Ninja && cmake --build $BUILD" >&2
  exit 1
fi

ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

{
  for b in "$BUILD"/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== $b"
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

echo "wrote test_output.txt and bench_output.txt"
