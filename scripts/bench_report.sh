#!/usr/bin/env bash
# Benchmark evidence, one section per PR. Builds the Release preset, then:
#   * PR 3 (BENCH_PR3.json): threaded-engine throughput with the legacy
#     single-deque scheduler (queue_shards=1) vs the sharded per-worker
#     default (micro_engine), plus one Figure-10 sim scaling point (SWLAG,
#     1M vertices, 8 nodes) with coalescing off and on.
#   * PR 4 (BENCH_PR4.json): memory-governor ablation — SWLAG + Nussinov
#     under --retirement off/retire/spill, recording peak live cells/bytes
#     per configuration (retire should sit orders of magnitude below off on
#     SWLAG) and checking the reports stay result-identical across modes.
#
# Later PRs record their evidence through scripts/bench_gate.sh, which both
# regenerates and regression-gates BENCH_PR7.json / BENCH_PR8.json (the PR 8
# file carries the tiling acceptance metrics from bench/ablate_tiling --json).
#
#   scripts/bench_report.sh            # full run (~a minute)
#   scripts/bench_report.sh --quick    # CI-sized smoke run
set -euo pipefail
cd "$(dirname "$0")/.."

quick=""
[[ "${1:-}" == "--quick" ]] && quick="yes"

jobs="$(nproc 2>/dev/null || echo 4)"
echo "==> build (release)"
cmake --preset release >/dev/null
cmake --build --preset release -j "${jobs}" --target micro_engine dpx10run >/dev/null

bench_json="$(mktemp)"
fig10_off="$(mktemp)"
fig10_on="$(mktemp)"
memdir="$(mktemp -d)"
trap 'rm -f "${bench_json}" "${fig10_off}" "${fig10_on}"; rm -rf "${memdir}"' EXIT

echo "==> micro_engine (sharded vs legacy ready queues)"
if [[ -n "${quick}" ]]; then
  build-release/bench/micro_engine --quick \
    --benchmark_out="${bench_json}" --benchmark_out_format=json >/dev/null
else
  build-release/bench/micro_engine \
    --benchmark_filter='BM_Threaded' \
    --benchmark_out="${bench_json}" --benchmark_out_format=json >/dev/null
fi

echo "==> fig10 scaling point (swlag, sim, 8 nodes)"
vertices="1m"
[[ -n "${quick}" ]] && vertices="100k"
build-release/tools/dpx10run --app=swlag --engine=sim --vertices="${vertices}" \
  --nodes=8 --scheduling=min-comm --json > "${fig10_off}"
build-release/tools/dpx10run --app=swlag --engine=sim --vertices="${vertices}" \
  --nodes=8 --scheduling=min-comm --coalescing=true --json > "${fig10_on}"

if ! command -v python3 >/dev/null; then
  echo "bench_report.sh: python3 not found; leaving raw outputs" >&2
  cp "${bench_json}" BENCH_PR3.json
  exit 0
fi

echo "==> memory governor ablation (swlag + nussinov, off/retire/spill)"
mem_vertices="1m"
[[ -n "${quick}" ]] && mem_vertices="100k"
for app in swlag nussinov; do
  for mode in off retire spill; do
    args=(--app="${app}" --engine=sim --vertices="${mem_vertices}" --nodes=8 --json)
    [[ "${mode}" != "off" ]] && args+=(--retirement="${mode}")
    [[ "${mode}" == "spill" ]] && args+=(--spill-dir="${memdir}")
    build-release/tools/dpx10run "${args[@]}" > "${memdir}/${app}_${mode}.json"
  done
done

python3 - "${bench_json}" "${fig10_off}" "${fig10_on}" "${memdir}" <<'PY'
import json, sys

bench = json.load(open(sys.argv[1]))
fig10_off = json.load(open(sys.argv[2]))
fig10_on = json.load(open(sys.argv[3]))

def items_per_second(name_prefix):
    best = 0.0
    for b in bench.get("benchmarks", []):
        if b["name"].startswith(name_prefix):
            best = max(best, b.get("items_per_second", 0.0))
    return best

legacy = items_per_second("BM_ThreadedQueueLegacy")
sharded = items_per_second("BM_ThreadedQueueSharded")

def fig10_point(r):
    return {
        "elapsed_s": r["elapsed_s"],
        "messages_out": r["traffic"]["messages_out"],
        "bytes_out": r["traffic"]["bytes_out"],
        "messages_per_vertex": r["traffic"]["messages_out"] / max(r["vertices"], 1),
        "fetch_batches": r["fetch_batches"],
        "control_batches": r["control_batches"],
    }

report = {
    "pr": "message coalescing + sharded ready queues",
    "threaded_queue": {
        "legacy_items_per_second": legacy,
        "sharded_items_per_second": sharded,
        "speedup": (sharded / legacy) if legacy else None,
    },
    "fig10_swlag_8_nodes": {
        "vertices": fig10_off["vertices"],
        "coalescing_off": fig10_point(fig10_off),
        "coalescing_on": fig10_point(fig10_on),
        "message_reduction":
            fig10_off["traffic"]["messages_out"] /
            max(fig10_on["traffic"]["messages_out"], 1),
    },
}
with open("BENCH_PR3.json", "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(json.dumps(report["threaded_queue"], indent=2))
print("fig10 message reduction: %.2fx" %
      report["fig10_swlag_8_nodes"]["message_reduction"])

# ---- PR 4: memory governor ablation -------------------------------------
memdir = sys.argv[4]
mem = {}
for app in ("swlag", "nussinov"):
    runs = {mode: json.load(open(f"{memdir}/{app}_{mode}.json"))
            for mode in ("off", "retire", "spill")}
    # Legacy runs keep every computed value resident to the end, so the
    # off-path peak is the whole computed set (its gauges stay 0).
    off_peak = runs["off"]["live_cells_peak"] or (
        runs["off"]["computed"] + runs["off"]["prefinished"])
    mem[app] = {
        "vertices": runs["off"]["vertices"],
        "configs": {
            mode: {
                "elapsed_s": r["elapsed_s"],
                "peak_live_cells": (r["live_cells_peak"] or
                                    (r["computed"] + r["prefinished"])),
                "peak_live_bytes": r["live_bytes_peak"],
                "retired_cells": r["retired_cells"],
                "spilled_cells": r["spilled_cells"],
                "spill_reads": r["spill_reads"],
            } for mode, r in runs.items()
        },
        "peak_reduction_retire":
            off_peak / max(runs["retire"]["live_cells_peak"], 1),
        "peak_reduction_spill":
            off_peak / max(runs["spill"]["live_cells_peak"], 1),
        "results_identical_across_modes": len({
            (r["computed"], r["vertices"]) for r in runs.values()}) == 1,
    }
mem_report = {"pr": "memory governor: retirement, accounting, spill",
              "ablation": mem}
with open("BENCH_PR4.json", "w") as f:
    json.dump(mem_report, f, indent=2)
    f.write("\n")
for app, a in mem.items():
    print("%s peak live cells: off=%d retire=%d (%.1fx reduction) spill=%d" % (
        app, a["configs"]["off"]["peak_live_cells"],
        a["configs"]["retire"]["peak_live_cells"], a["peak_reduction_retire"],
        a["configs"]["spill"]["peak_live_cells"]))
PY

echo "bench_report.sh: wrote BENCH_PR3.json and BENCH_PR4.json"
