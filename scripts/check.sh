#!/usr/bin/env bash
# Full local gate: build + test the default config, then the sanitizer
# config (ASan + UBSan). Usage:
#
#   scripts/check.sh             # both configs
#   scripts/check.sh default     # just the plain build
#   scripts/check.sh sanitize    # just the sanitizer build
set -euo pipefail
cd "$(dirname "$0")/.."

configs=("${@:-default sanitize}")
# Word-split a single "default sanitize" default into two entries.
read -r -a configs <<< "${configs[*]}"

jobs="$(nproc 2>/dev/null || echo 4)"

for preset in "${configs[@]}"; do
  echo "==> configure (${preset})"
  cmake --preset "${preset}" >/dev/null
  echo "==> build (${preset})"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "==> test (${preset})"
  ctest --preset "${preset}"
done

echo "check.sh: all configs passed"
