// Figure 10 — execution time of the four DP applications (SWLAG, MTP, LPS,
// 0/1KP) at a fixed vertex count while the node count grows from 2 to 12.
//
// Paper setup: 300M vertices, nodes ∈ {2,4,6,8,10,12}, NPLACES = 2×nodes,
// NTHREADS = 6, on Tianhe-1A. Here the cluster is the simulated one (see
// DESIGN.md §2); the default size is scaled down to 1M vertices
// (override with --vertices=...). The paper's headline shapes to look for:
// time falls steeply then flattens; SWLAG/MTP/LPS reach a speedup of ~4 at
// a 6-fold node increase while 0/1KP only reaches ~3 (its data-dependent
// far-column dependencies defeat the FIFO cache and cost extra traffic).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/options.h"
#include "common/strings.h"
#include "dp/runners.h"

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const std::int64_t vertices =
      static_cast<std::int64_t>(cli.get_scaled("vertices", 1'000'000));
  const std::vector<std::int64_t> nodes = cli.get_int_list("nodes", {2, 4, 6, 8, 10, 12});
  const std::vector<std::string> apps = {"swlag", "mtp", "lps", "knapsack"};

  std::printf("Figure 10: execution time vs. nodes (%s vertices, places = 2 x nodes, "
              "%d threads/place, simulated cluster)\n",
              with_commas(static_cast<std::uint64_t>(vertices)).c_str(),
              bench::kThreadsPerPlace);
  std::vector<std::int64_t> axis(nodes.begin(), nodes.end());
  bench::print_header("app \\ nodes", axis);

  for (const std::string& app : apps) {
    std::vector<double> times;
    times.reserve(nodes.size());
    for (std::int64_t n : nodes) {
      RuntimeOptions opts = bench::sim_options_for_nodes(static_cast<std::int32_t>(n), cli);
      RunReport report = dp::run_dp_app(app, dp::EngineKind::Sim, vertices, opts);
      times.push_back(report.elapsed_seconds);
    }
    bench::print_series(app, times, "sim seconds");
    const double speedup = times.front() / times.back();
    std::printf("  %-22s speedup %.2fx from %lldx node increase\n", "",
                speedup, static_cast<long long>(nodes.back() / nodes.front()));
  }
  return 0;
}
