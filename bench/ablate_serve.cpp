// Ablation — serve-mode multiplexing vs back-to-back execution (PR 9).
//
// The dpx10serve pitch: jobs that cannot individually saturate the machine
// should share it. There are two sources of un-saturation: jobs whose
// nplaces x nthreads is smaller than the machine (multi-core overlap), and
// jobs stalled in fault recovery — a place death costs a heartbeat
// detection window of pure dead wall clock during which the job computes
// nothing. Back-to-back execution eats both serially; a shared pool fills
// them with other tenants' work. The batch therefore mixes clean
// SWLAG/Nussinov jobs with a deterministic subset that suffers an injected
// place death (JobSpec::fault_place), so the bench measures both effects —
// and on a single-core host, recovery-latency hiding alone carries it.
//
//   1. back-to-back: each job executed alone via dp::run_dp_app, exactly
//      as N successive dpx10run invocations would (each job's own
//      nplaces x nthreads workers, the rest of the machine idle — and the
//      whole machine idle for the faulted jobs' detection windows).
//   2. multiplexed: the same jobs submitted concurrently to an in-process
//      Server on one shared worker-slot pool; the FairScheduler overlaps
//      them, so per-job latencies (p50/p99 reported) trade against batch
//      throughput.
//
// The acceptance metric (scripts/bench_gate.sh, BENCH_PR9.json) is
// multiplex_speedup = back_to_back_s / multiplex_s, required >= 1.2x.
// Wall clock is noisy, so the number is recorded at --write time and
// re-asserted, not re-measured, by the CI gate — the PR 8 convention.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/error.h"
#include "common/options.h"
#include "core/dpx10.h"
#include "dp/runners.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

using namespace dpx10;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<serve::JobSpec> make_batch(std::int64_t vertices,
                                       std::int32_t job_places,
                                       std::int32_t job_threads) {
  // Mixed batch, alternating the regular kernel-family DAG (SWLAG) with
  // the triangular one (Nussinov): 8 jobs across 3 tenants. Three of them
  // lose a place mid-run and pay a real heartbeat-detection window.
  const char* tenants[] = {"a", "b", "c"};
  std::vector<serve::JobSpec> batch;
  for (int i = 0; i < 8; ++i) {
    serve::JobSpec spec;
    spec.tenant = tenants[i % 3];
    spec.app = i % 2 == 0 ? "swlag" : "nussinov";
    spec.engine = "threaded";
    spec.vertices = i % 2 == 0 ? vertices : vertices / 2;
    spec.nplaces = job_places;
    spec.nthreads = job_threads;
    spec.input_seed = 1234 + static_cast<std::uint64_t>(i);
    if (i == 1 || i == 3 || i == 4 || i == 6) {
      spec.nplaces = job_places + 1;  // keep a surviving worker per fault
      spec.fault_place = spec.nplaces - 1;
      spec.fault_at = 0.5;
      // Dispatch faulted jobs early: their detection windows then overlap
      // the bulk of the batch instead of dangling dead at the tail.
      spec.priority = 1;
    }
    batch.push_back(spec);
  }
  return batch;
}

RuntimeOptions job_options(const serve::JobSpec& spec) {
  RuntimeOptions opts;
  opts.nplaces = spec.nplaces;
  opts.nthreads = spec.nthreads;
  if (spec.fault_place >= 0) {
    opts.faults.push_back(FaultPlan{spec.fault_place, spec.fault_at});
  }
  return opts;
}

double percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);
  const auto vertices =
      static_cast<std::int64_t>(cli.get_scaled("vertices", 32'000));
  const auto job_places = static_cast<std::int32_t>(cli.get_int("job-places", 2));
  const auto job_threads = static_cast<std::int32_t>(cli.get_int("job-threads", 1));
  // The pool must at least fit two faulted jobs (job_places + 1 slots
  // each) alongside two clean ones, or detection windows barely overlap
  // anything and the batch degenerates toward serial execution.
  const std::int64_t hw = std::thread::hardware_concurrency();
  const auto slots = static_cast<std::int32_t>(cli.get_int(
      "slots",
      std::max<std::int64_t>(
          hw, (2 * (job_places + 1) + 2 * job_places) * job_threads)));
  const bool json = cli.get_bool("json", false);

  const auto reps = static_cast<int>(cli.get_int("reps", 3));
  const std::vector<serve::JobSpec> batch =
      make_batch(vertices, job_places, job_threads);

  // ---- back-to-back: one job at a time, same executor configuration.
  const auto run_back_to_back = [&batch]() {
    const double start = now_s();
    for (const serve::JobSpec& spec : batch) {
      dp::run_dp_app(spec.app, dp::EngineKind::Threaded, spec.vertices,
                     job_options(spec), spec.input_seed);
    }
    return now_s() - start;
  };

  // ---- multiplexed: everything submitted up front to one shared pool.
  namespace fs = std::filesystem;
  std::vector<double> latencies;
  const auto run_multiplexed = [&batch, slots, &latencies]() {
    const fs::path root =
        fs::temp_directory_path() /
        ("dpx10_ablate_serve_" + std::to_string(::getpid()));
    fs::remove_all(root);
    serve::ServerOptions sopts;
    sopts.socket_path = (root / "serve.sock").string();
    sopts.registry_dir = (root / "registry").string();
    sopts.total_slots = slots;
    sopts.max_queue = static_cast<std::int32_t>(batch.size());
    fs::create_directories(root);
    double multiplex_s = 0.0;
    {
      serve::Server server(sopts);
      server.start();
      serve::Client client(sopts.socket_path);
      const double mux_start = now_s();
      std::vector<std::int64_t> ids;
      for (const serve::JobSpec& spec : batch) {
        serve::Json req = spec.to_json();
        req.set("op", "submit");
        const serve::Json resp = client.request(req);
        if (!resp.at("ok").as_bool()) {
          throw Error("ablate_serve: submit rejected: " + resp.dump());
        }
        ids.push_back(resp.at("job").as_int());
      }
      latencies.assign(ids.size(), 0.0);
      std::vector<bool> done(ids.size(), false);
      std::size_t remaining = ids.size();
      while (remaining > 0) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
          if (done[i]) continue;
          serve::JobRecord rec;
          server.scheduler().get(ids[i], rec);
          if (rec.state == serve::JobState::Done ||
              rec.state == serve::JobState::Failed) {
            done[i] = true;
            latencies[i] = now_s() - mux_start;
            --remaining;
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      multiplex_s = now_s() - mux_start;
      server.drain_and_stop();
    }
    fs::remove_all(root);
    return multiplex_s;
  };

  // Wall clock on a shared host is noisy (a starved heartbeat thread can
  // stretch one run's detection window arbitrarily), so each phase runs
  // `reps` times and the medians are what get recorded.
  std::vector<double> b2b_times, mux_times;
  std::vector<std::vector<double>> mux_latencies;
  for (int r = 0; r < reps; ++r) b2b_times.push_back(run_back_to_back());
  for (int r = 0; r < reps; ++r) {
    mux_times.push_back(run_multiplexed());
    mux_latencies.push_back(latencies);
  }
  const double back_to_back_s = percentile(b2b_times, 0.5);
  const double multiplex_s = percentile(mux_times, 0.5);
  // Report the latencies of the median-time repetition.
  for (std::size_t r = 0; r < mux_times.size(); ++r) {
    if (mux_times[r] == multiplex_s) latencies = mux_latencies[r];
  }

  const double speedup = back_to_back_s / multiplex_s;
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  if (json) {
    std::printf(
        "{\"jobs\":%zu,\"slots\":%d,\"job_slots\":%d,"
        "\"vertices_per_job\":%lld,"
        "\"back_to_back_s\":%.6f,\"multiplex_s\":%.6f,"
        "\"multiplex_speedup\":%.4f,\"latency_p50_s\":%.6f,"
        "\"latency_p99_s\":%.6f}\n",
        batch.size(), slots, job_places * job_threads,
        static_cast<long long>(vertices), back_to_back_s, multiplex_s,
        speedup, p50, p99);
  } else {
    std::printf("ablate_serve: %zu jobs (swlag/nussinov), %d-slot pool, "
                "%d slots/job\n",
                batch.size(), slots, job_places * job_threads);
    std::printf("  back-to-back : %8.3f s\n", back_to_back_s);
    std::printf("  multiplexed  : %8.3f s  (%.2fx)\n", multiplex_s, speedup);
    std::printf("  latency p50  : %8.3f s   p99: %.3f s\n", p50, p99);
  }
  return 0;
}
