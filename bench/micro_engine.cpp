// Micro-benchmarks of whole-engine throughput (google-benchmark): vertices
// per second through the simulated and threaded engines on a fixed small
// workload. These are the end-to-end constants behind the figure benches'
// host runtime.
//
// Ships its own main: `micro_engine --quick` runs one fast pass over the
// small problem sizes — the CI smoke mode (also used by scripts/
// bench_report.sh for the sharded-vs-legacy scheduler comparison).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/dpx10.h"
#include "dp/inputs.h"
#include "dp/lcs.h"
#include "dp/runners.h"

namespace {

using namespace dpx10;

void BM_SimEngineLcs(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  std::string a = dp::random_sequence(static_cast<std::size_t>(side - 1), 1);
  std::string b = dp::random_sequence(static_cast<std::size_t>(side - 1), 2);
  auto dag = patterns::make_pattern("left-top-diag", side, side);
  RuntimeOptions opts;
  opts.nplaces = 8;
  opts.nthreads = 6;
  for (auto _ : state) {
    dp::LcsApp app(a, b);
    SimEngine<std::int32_t> engine(opts);
    benchmark::DoNotOptimize(engine.run(*dag, app).elapsed_seconds);
  }
  state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(BM_SimEngineLcs)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_ThreadedEngineLcs(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  std::string a = dp::random_sequence(static_cast<std::size_t>(side - 1), 1);
  std::string b = dp::random_sequence(static_cast<std::size_t>(side - 1), 2);
  auto dag = patterns::make_pattern("left-top-diag", side, side);
  RuntimeOptions opts;
  opts.nplaces = 4;
  opts.nthreads = 2;
  for (auto _ : state) {
    dp::LcsApp app(a, b);
    ThreadedEngine<std::int32_t> engine(opts);
    benchmark::DoNotOptimize(engine.run(*dag, app).elapsed_seconds);
  }
  state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(BM_ThreadedEngineLcs)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

// The scheduler hot path under contention: many workers, one place, so the
// ready queue itself is the bottleneck. Legacy pins queue_shards (and the
// cache-lock stripes) to 1 — the single-deque, single-lock layout this PR
// replaced; Sharded uses the per-worker default. The spread between the two
// is the sharding win reported in BENCH_PR3.json.
void threaded_queue_bench(benchmark::State& state, std::int32_t queue_shards) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  std::string a = dp::random_sequence(static_cast<std::size_t>(side - 1), 1);
  std::string b = dp::random_sequence(static_cast<std::size_t>(side - 1), 2);
  auto dag = patterns::make_pattern("left-top-diag", side, side);
  RuntimeOptions opts;
  opts.nplaces = 2;
  opts.nthreads = 6;
  opts.ready_order = ReadyOrder::Lifo;
  opts.queue_shards = queue_shards;
  opts.cache_stripes = queue_shards;
  for (auto _ : state) {
    dp::LcsApp app(a, b);
    ThreadedEngine<std::int32_t> engine(opts);
    benchmark::DoNotOptimize(engine.run(*dag, app).elapsed_seconds);
  }
  state.SetItemsProcessed(state.iterations() * side * side);
}

void BM_ThreadedQueueLegacy(benchmark::State& state) { threaded_queue_bench(state, 1); }
void BM_ThreadedQueueSharded(benchmark::State& state) { threaded_queue_bench(state, 0); }
BENCHMARK(BM_ThreadedQueueLegacy)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ThreadedQueueSharded)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool quick = false;
  for (auto it = args.begin(); it != args.end();) {
    if (std::string(*it) == "--quick") {
      quick = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  static char filter[] = "--benchmark_filter=/64";
  static char min_time[] = "--benchmark_min_time=0.05";
  if (quick) {
    args.push_back(filter);
    args.push_back(min_time);
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
