// Micro-benchmarks of whole-engine throughput (google-benchmark): vertices
// per second through the simulated and threaded engines on a fixed small
// workload. These are the end-to-end constants behind the figure benches'
// host runtime.
#include <benchmark/benchmark.h>

#include "core/dpx10.h"
#include "dp/inputs.h"
#include "dp/lcs.h"
#include "dp/runners.h"

namespace {

using namespace dpx10;

void BM_SimEngineLcs(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  std::string a = dp::random_sequence(static_cast<std::size_t>(side - 1), 1);
  std::string b = dp::random_sequence(static_cast<std::size_t>(side - 1), 2);
  auto dag = patterns::make_pattern("left-top-diag", side, side);
  RuntimeOptions opts;
  opts.nplaces = 8;
  opts.nthreads = 6;
  for (auto _ : state) {
    dp::LcsApp app(a, b);
    SimEngine<std::int32_t> engine(opts);
    benchmark::DoNotOptimize(engine.run(*dag, app).elapsed_seconds);
  }
  state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(BM_SimEngineLcs)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_ThreadedEngineLcs(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  std::string a = dp::random_sequence(static_cast<std::size_t>(side - 1), 1);
  std::string b = dp::random_sequence(static_cast<std::size_t>(side - 1), 2);
  auto dag = patterns::make_pattern("left-top-diag", side, side);
  RuntimeOptions opts;
  opts.nplaces = 4;
  opts.nthreads = 2;
  for (auto _ : state) {
    dp::LcsApp app(a, b);
    ThreadedEngine<std::int32_t> engine(opts);
    benchmark::DoNotOptimize(engine.run(*dag, app).elapsed_seconds);
  }
  state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(BM_ThreadedEngineLcs)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace
