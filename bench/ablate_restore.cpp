// Ablation — §VI-E restore manner.
//
// "By default the result of the finished vertices on the remote places will
// be abandoned during recovery. But the user can tell DPX10 to restore them
// if the computation is more time consuming than data transfer." Sweeps
// both restore modes against two per-vertex compute weights (cheap
// recurrence vs expensive compute) and reports the crossover the paper
// predicts: discard-remote wins when recomputing is cheap, restore-remote
// wins when compute dominates transfer.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/options.h"
#include "dp/runners.h"

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const std::int64_t vertices =
      static_cast<std::int64_t>(cli.get_scaled("vertices", 500'000));
  const std::int32_t nodes = static_cast<std::int32_t>(cli.get_int("nodes", 8));
  const double at = cli.get_double("at", 0.5);

  std::printf("Ablation: restore manner, SWLAG, one fault at %.0f%% "
              "(%lld vertices, %d nodes, simulated cluster)\n",
              at * 100.0, static_cast<long long>(vertices), nodes);
  std::printf("  %-18s %-16s | %9s | %12s | %10s | %10s\n", "compute/vertex", "restore",
              "time (s)", "recovery (s)", "restored", "discarded");

  const double compute_levels_ns[] = {7000.0, 120000.0};
  const RestoreMode modes[] = {RestoreMode::DiscardRemote, RestoreMode::RestoreRemote};

  for (double compute_ns : compute_levels_ns) {
    for (RestoreMode mode : modes) {
      RuntimeOptions opts = bench::sim_options_for_nodes(nodes, cli);
      opts.cost.compute_ns = compute_ns;
      opts.restore = mode;
      opts.faults.push_back(FaultPlan{opts.nplaces - 1, at});
      RunReport r = dp::run_dp_app("swlag", dp::EngineKind::Sim, vertices, opts);
      const RecoveryRecord& rec = r.recoveries.at(0);
      char level[32];
      std::snprintf(level, sizeof level, "%.0f us", compute_ns / 1000.0);
      std::printf("  %-18s %-16s | %9.3f | %12.4f | %10llu | %10llu\n", level,
                  std::string(restore_mode_name(mode)).c_str(), r.elapsed_seconds,
                  r.recovery_seconds, static_cast<unsigned long long>(rec.restored),
                  static_cast<unsigned long long>(rec.discarded));
    }
  }
  return 0;
}
