// Shared helpers for the figure benches: option-driven sweeps, paper-style
// table output, and the canonical experiment configuration (the paper runs
// NPLACES = 2 × nodes and NTHREADS = 6, §VIII).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/options.h"
#include "core/runtime_options.h"

namespace dpx10::bench {

/// Paper topology: two places per node, six worker threads per place.
inline constexpr std::int32_t kPlacesPerNode = 2;
inline constexpr std::int32_t kThreadsPerPlace = 6;

inline RuntimeOptions sim_options_for_nodes(std::int32_t nodes, const Options& cli) {
  RuntimeOptions opts;
  opts.nplaces = nodes * kPlacesPerNode;
  opts.nthreads = static_cast<std::int32_t>(cli.get_int("nthreads", kThreadsPerPlace));
  opts.cache_capacity = static_cast<std::size_t>(cli.get_int("cache", 1024));
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  return opts;
}

/// Prints "name: v1 v2 v3 ..." rows with a fixed label column.
inline void print_series(const std::string& label, const std::vector<double>& values,
                         const char* unit) {
  std::printf("  %-22s", label.c_str());
  for (double v : values) std::printf(" %9.3f", v);
  std::printf("  [%s]\n", unit);
}

inline void print_header(const std::string& label, const std::vector<std::int64_t>& axis) {
  std::printf("  %-22s", label.c_str());
  for (std::int64_t v : axis) std::printf(" %9lld", static_cast<long long>(v));
  std::printf("\n");
}

}  // namespace dpx10::bench
