// Micro-benchmarks of the framework's hot-path primitives
// (google-benchmark): event queue throughput, FIFO cache operations, DAG
// pattern edge enumeration, domain (de)linearization, and distribution
// lookups. These quantify the per-vertex constant the engines pay and back
// the CostModel's framework_ns figure.
#include <benchmark/benchmark.h>

#include "apgas/dist.h"
#include "apgas/domain.h"
#include "common/rng.h"
#include "core/cache.h"
#include "core/patterns/registry.h"
#include "sim/event_queue.h"
#include "sim/slot_pool.h"

namespace {

using namespace dpx10;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  Xoshiro256 rng(7);
  const std::int64_t depth = state.range(0);
  for (std::int64_t i = 0; i < depth; ++i) q.push(rng.uniform01(), 0, i, 0);
  for (auto _ : state) {
    q.push(rng.uniform01(), 0, 1, 2);
    benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_CachePutGet(benchmark::State& state) {
  FifoVertexCache<std::int64_t> cache(static_cast<std::size_t>(state.range(0)));
  Xoshiro256 rng(11);
  std::int64_t hits = 0;
  for (auto _ : state) {
    VertexId id{static_cast<std::int32_t>(rng.below(4096)),
                static_cast<std::int32_t>(rng.below(4096))};
    std::int64_t out;
    if (cache.get(id, out)) {
      ++hits;
    } else {
      cache.put(id, id.key() & 0xffff);
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachePutGet)->Arg(64)->Arg(1024)->Arg(16384);

void BM_PatternDependencies(benchmark::State& state) {
  const auto& names = patterns::builtin_pattern_names();
  const std::string& name = names[static_cast<std::size_t>(state.range(0))];
  auto dag = patterns::make_pattern(name, 512, 512);
  std::vector<VertexId> out;
  out.reserve(1024);
  Xoshiro256 rng(13);
  for (auto _ : state) {
    VertexId v = dag->domain().delinearize(
        static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(dag->domain().size()))));
    out.clear();
    dag->dependencies(v, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(name);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PatternDependencies)->DenseRange(0, 6);  // full-prefix (7) is O(n), bench apart

void BM_PatternDependenciesFullPrefix(benchmark::State& state) {
  auto dag = patterns::make_pattern("full-prefix", 512, 512);
  std::vector<VertexId> out;
  out.reserve(2048);
  Xoshiro256 rng(13);
  for (auto _ : state) {
    VertexId v = dag->domain().delinearize(
        static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(dag->domain().size()))));
    out.clear();
    dag->dependencies(v, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PatternDependenciesFullPrefix);

void BM_DomainRoundTrip(benchmark::State& state) {
  DagDomain domain = state.range(0) == 0   ? DagDomain::rect(2048, 2048)
                     : state.range(0) == 1 ? DagDomain::upper_triangular(2048)
                                           : DagDomain::banded(2048, 2048, 64);
  Xoshiro256 rng(17);
  for (auto _ : state) {
    std::int64_t idx =
        static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(domain.size())));
    VertexId id = domain.delinearize(idx);
    benchmark::DoNotOptimize(domain.linearize(id));
  }
  state.SetLabel(std::string(domain.kind_name()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DomainRoundTrip)->DenseRange(0, 2);

void BM_DistSlotOf(benchmark::State& state) {
  DagDomain domain = DagDomain::rect(4096, 4096);
  auto dist = make_dist(static_cast<DistKind>(state.range(0)), 24, domain);
  Xoshiro256 rng(19);
  for (auto _ : state) {
    VertexId id{static_cast<std::int32_t>(rng.below(4096)),
                static_cast<std::int32_t>(rng.below(4096))};
    benchmark::DoNotOptimize(dist->slot_of(id));
  }
  state.SetLabel(std::string(dist_kind_name(static_cast<DistKind>(state.range(0)))));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DistSlotOf)->DenseRange(0, 3);

void BM_SlotPoolReserve(benchmark::State& state) {
  sim::SlotPool pool(6);
  double t = 0.0;
  for (auto _ : state) {
    double start = pool.earliest_start(t);
    pool.reserve(start, start + 1e-6);
    t = start;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlotPoolReserve);

}  // namespace
