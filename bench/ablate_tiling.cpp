// Ablation — tile size (the §X "sophisticated scheduling" extension).
//
// Sweeps the macro-vertex tile size for SWLAG on the simulated cluster.
// Per-cell compute work is held constant (compute_cost_units scales with
// tile area), so the sweep isolates the granularity tradeoff:
//   * tile 1 ~ per-vertex execution: full parallelism, maximal framework
//     overhead and per-cell boundary traffic;
//   * medium tiles amortize framework cost and batch boundary exchange;
//   * huge tiles starve the tile wavefront of parallelism.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/options.h"
#include "common/strings.h"
#include "core/dpx10.h"
#include "core/tiling.h"
#include "dp/inputs.h"
#include "dp/kernels.h"

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const std::int64_t vertices =
      static_cast<std::int64_t>(cli.get_scaled("vertices", 1'000'000));
  const std::int32_t nodes = static_cast<std::int32_t>(cli.get_int("nodes", 8));
  const std::vector<std::int64_t> tiles =
      cli.get_int_list("tiles", {1, 4, 16, 64, 128, 256});

  const auto side = static_cast<std::int32_t>(std::llround(std::sqrt(double(vertices))));
  const std::string a = dp::random_sequence(static_cast<std::size_t>(side - 1), 21);
  const std::string b = dp::random_sequence(static_cast<std::size_t>(side - 1), 22);

  std::printf("Ablation: tile size, SWLAG %dx%d cells, %d nodes (simulated cluster)\n",
              side, side, nodes);

  // Two per-cell cost regimes: the calibrated default (activity-dominated,
  // ~10%% framework share — tiling has little to amortize) and a
  // fine-grained recurrence (framework cost dominates the arithmetic —
  // the regime tiling exists for).
  struct Regime {
    const char* label;
    double compute_ns;
  };
  const Regime regimes[] = {{"activity-dominated (7 us/cell)", 7000.0},
                            {"fine-grained (0.3 us/cell)", 300.0}};

  for (const Regime& regime : regimes) {
    std::printf("-- %s\n", regime.label);
    std::printf("  %9s | %9s | %10s | %12s | %14s\n", "tile", "time (s)", "vertices",
                "fetches", "bytes moved");
    for (std::int64_t tile : tiles) {
      dp::SwlagKernel kernel(a, b);
      TiledWavefrontApp<dp::SwlagKernel> app(
          kernel, TileGeometry(side, side, static_cast<std::int32_t>(tile)));
      auto dag = app.make_dag();
      RuntimeOptions opts = bench::sim_options_for_nodes(nodes, cli);
      opts.cost.compute_ns = regime.compute_ns;
      SimEngine<TileEdge<dp::SwlagCell>> engine(opts);
      RunReport r = engine.run(*dag, app);
      std::printf("  %9lld | %9.3f | %10llu | %12llu | %14s\n",
                  static_cast<long long>(tile), r.elapsed_seconds,
                  static_cast<unsigned long long>(r.vertices),
                  static_cast<unsigned long long>(r.totals().remote_fetches),
                  human_bytes(static_cast<double>(r.traffic.bytes_out)).c_str());
    }
  }
  std::printf("\n(tile 1 pays per-cell framework overhead and per-cell fetches; huge\n"
              "tiles starve the wavefront — the optimum moves with the cost regime)\n");
  return 0;
}
