// Ablation — macro-DAG tile size, on BOTH engines (PR 8).
//
// Three experiments, all through the production --tile launcher path
// (dp::run_dp_app with RuntimeOptions::tile_size):
//
//   1. Sim sweep: SWLAG and Nussinov elapsed/traffic across tile sizes
//      under two per-cell cost regimes. Virtual time is deterministic, so
//      these rows double as regression fixtures (scripts/bench_gate.sh).
//   2. Threaded SWLAG vs the hand-coded native baseline (Fig. 12
//      methodology, cache disabled on the DPX10 side): the ratio of the
//      best tiled elapsed over native is the PR 8 acceptance number
//      (<= 1.3x). Untiled DPX10 pays per-cell dispatch; tiled interiors
//      run as raw kernel loops and amortize the framework per tile.
//   3. Nussinov peak-live under --retirement=retire, untiled vs tiled:
//      the governor tracks macro-cells, so the resident-payload count
//      drops by ~B^2 (acceptance: >= 10x).
//
// --json emits one object with all three sections for
// scripts/bench_gate.sh --write to fold into BENCH_PR8.json.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "baseline/native_swlag.h"
#include "bench/bench_util.h"
#include "common/options.h"
#include "common/strings.h"
#include "core/dpx10.h"
#include "dp/inputs.h"
#include "dp/runners.h"

namespace {

using namespace dpx10;

struct TilePoint {
  std::int64_t tile = 0;
  double elapsed_s = 0.0;
  std::uint64_t vertices = 0;
  std::uint64_t fetches = 0;
  std::uint64_t bytes_out = 0;
};

RunReport run_tiled(const std::string& app, dp::EngineKind engine,
                    std::int64_t vertices, RuntimeOptions opts,
                    std::int64_t tile) {
  opts.tile_size = static_cast<std::int32_t>(tile);
  return dp::run_dp_app(app, engine, vertices, opts);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const std::int64_t vertices =
      static_cast<std::int64_t>(cli.get_scaled("vertices", 1'000'000));
  const std::int32_t nodes = static_cast<std::int32_t>(cli.get_int("nodes", 8));
  const std::vector<std::int64_t> tiles =
      cli.get_int_list("tiles", {1, 8, 16, 32, 64, 128});
  const std::int64_t threaded_vertices =
      static_cast<std::int64_t>(cli.get_scaled("threaded-vertices", 250'000));
  const std::int32_t tplaces =
      static_cast<std::int32_t>(cli.get_int("threaded-places", 2));
  const std::int32_t tthreads =
      static_cast<std::int32_t>(cli.get_int("threaded-nthreads", 2));
  const bool json = cli.get_bool("json", false);

  // ---- 1. Sim sweep: both apps, two cost regimes ----------------------
  struct Regime {
    const char* label;
    double compute_ns;
  };
  const Regime regimes[] = {{"activity-dominated (7 us/cell)", 7000.0},
                            {"fine-grained (0.3 us/cell)", 300.0}};
  struct SimRow {
    const char* app;
    double compute_ns;
    std::vector<TilePoint> points;
  };
  std::vector<SimRow> sim_rows;
  for (const char* app : {"swlag", "nussinov"}) {
    // Nussinov's interval DAG is quadratic in wall time at 1M cells; keep
    // the sim sweep affordable while still crossing many tile boundaries.
    const std::int64_t n = std::string(app) == "nussinov"
                               ? std::min<std::int64_t>(vertices, 20'000)
                               : vertices;
    for (const Regime& regime : regimes) {
      SimRow row{app, regime.compute_ns, {}};
      for (std::int64_t tile : tiles) {
        RuntimeOptions opts = bench::sim_options_for_nodes(nodes, cli);
        opts.cost.compute_ns = regime.compute_ns;
        const RunReport r =
            run_tiled(app, dp::EngineKind::Sim, n, opts, tile);
        row.points.push_back({tile, r.elapsed_seconds, r.vertices,
                              r.totals().remote_fetches,
                              r.traffic.bytes_out});
      }
      sim_rows.push_back(std::move(row));
    }
  }

  // ---- 2. Threaded SWLAG vs the native baseline -----------------------
  const dp::ProblemShape tshape = dp::shape_for("swlag", threaded_vertices);
  const std::string a =
      dp::random_sequence(static_cast<std::size_t>(tshape.height - 1), 21);
  const std::string b =
      dp::random_sequence(static_cast<std::size_t>(tshape.width - 1), 22);
  const baseline::NativeRunResult native =
      baseline::native_swlag_threaded(a, b, tplaces, tthreads);

  RuntimeOptions topts;
  topts.nplaces = tplaces;
  topts.nthreads = tthreads;
  topts.cache_capacity = 0;  // Fig. 12 methodology: no cache on either side
  std::vector<TilePoint> threaded_points;
  for (std::int64_t tile : tiles) {
    const RunReport r = run_tiled("swlag", dp::EngineKind::Threaded,
                                  threaded_vertices, topts, tile);
    threaded_points.push_back({tile, r.elapsed_seconds, r.vertices,
                               r.totals().remote_fetches, r.traffic.bytes_out});
  }
  const TilePoint best = *std::min_element(
      threaded_points.begin(), threaded_points.end(),
      [](const TilePoint& x, const TilePoint& y) {
        return x.elapsed_s < y.elapsed_s;
      });
  const double untiled_s = threaded_points.front().elapsed_s;
  const double ratio = best.elapsed_s / native.elapsed_seconds;

  // ---- 3. Nussinov peak-live cells under retirement -------------------
  const std::int64_t nuss_vertices =
      static_cast<std::int64_t>(cli.get_scaled("nussinov-vertices", 10'000));
  const std::int64_t nuss_tile = cli.get_int("nussinov-tile", 16);
  RuntimeOptions mopts = bench::sim_options_for_nodes(nodes, cli);
  mopts.memory.retirement = mem::RetirementMode::Retire;
  const RunReport nuss_flat =
      run_tiled("nussinov", dp::EngineKind::Sim, nuss_vertices, mopts, 0);
  const RunReport nuss_tiled = run_tiled("nussinov", dp::EngineKind::Sim,
                                         nuss_vertices, mopts, nuss_tile);
  const auto flat_peak = nuss_flat.totals().live_cells_peak;
  const auto tiled_peak = nuss_tiled.totals().live_cells_peak;
  const double reduction =
      tiled_peak > 0 ? static_cast<double>(flat_peak) /
                           static_cast<double>(tiled_peak)
                     : 0.0;

  if (json) {
    std::printf("{\n  \"swlag_threaded\": {\n");
    std::printf("    \"vertices\": %lld, \"nplaces\": %d, \"nthreads\": %d,\n",
                static_cast<long long>(tshape.vertices), tplaces, tthreads);
    std::printf("    \"native_elapsed_s\": %.6f,\n", native.elapsed_seconds);
    std::printf("    \"untiled_elapsed_s\": %.6f,\n", untiled_s);
    std::printf("    \"tiles\": {");
    const char* sep = "";
    for (const TilePoint& p : threaded_points) {
      std::printf("%s\"%lld\": %.6f", sep, static_cast<long long>(p.tile),
                  p.elapsed_s);
      sep = ", ";
    }
    std::printf("},\n");
    std::printf("    \"best_tile\": %lld,\n", static_cast<long long>(best.tile));
    std::printf("    \"best_elapsed_s\": %.6f,\n", best.elapsed_s);
    std::printf("    \"best_vs_native\": %.4f\n  },\n", ratio);
    std::printf("  \"nussinov_peak_live\": {\n");
    std::printf("    \"vertices\": %llu, \"tile\": %lld,\n",
                static_cast<unsigned long long>(nuss_flat.vertices),
                static_cast<long long>(nuss_tile));
    std::printf("    \"untiled_peak_live_cells\": %llu,\n",
                static_cast<unsigned long long>(flat_peak));
    std::printf("    \"tiled_peak_live_tiles\": %llu,\n",
                static_cast<unsigned long long>(tiled_peak));
    std::printf("    \"reduction\": %.2f\n  }\n}\n", reduction);
    return 0;
  }

  std::printf("Ablation: macro-DAG tile size on both engines\n\n");
  for (const SimRow& row : sim_rows) {
    std::printf("-- sim %s, %.1f us/cell\n", row.app, row.compute_ns / 1000.0);
    std::printf("  %9s | %9s | %10s | %12s | %14s\n", "tile", "time (s)",
                "vertices", "fetches", "bytes moved");
    for (const TilePoint& p : row.points) {
      std::printf("  %9lld | %9.3f | %10llu | %12llu | %14s\n",
                  static_cast<long long>(p.tile), p.elapsed_s,
                  static_cast<unsigned long long>(p.vertices),
                  static_cast<unsigned long long>(p.fetches),
                  human_bytes(static_cast<double>(p.bytes_out)).c_str());
    }
  }
  std::printf("\n-- threaded swlag %dx%d vs native baseline (%d places x %d threads)\n",
              tshape.height, tshape.width, tplaces, tthreads);
  std::printf("  native: %.3f s (score %d)\n", native.elapsed_seconds,
              native.best_score);
  std::printf("  %9s | %9s | %9s\n", "tile", "time (s)", "vs native");
  for (const TilePoint& p : threaded_points) {
    std::printf("  %9lld | %9.3f | %8.2fx\n", static_cast<long long>(p.tile),
                p.elapsed_s, p.elapsed_s / native.elapsed_seconds);
  }
  std::printf("  best: tile %lld at %.3f s — %.2fx native (acceptance <= 1.3x)\n",
              static_cast<long long>(best.tile), best.elapsed_s, ratio);
  std::printf("\n-- nussinov peak-live (sim, --retirement=retire)\n");
  std::printf("  untiled: %llu live cells peak\n",
              static_cast<unsigned long long>(flat_peak));
  std::printf("  tile %lld: %llu live tiles peak — %.1fx fewer resident "
              "payloads (acceptance >= 10x;\n"
              "  note: tile payloads are larger, so BYTES shrink less than "
              "the count)\n",
              static_cast<long long>(nuss_tile),
              static_cast<unsigned long long>(tiled_peak), reduction);
  std::printf("\n(tile 1 pays per-cell framework overhead and per-cell fetches; huge\n"
              "tiles starve the wavefront — the optimum moves with the cost regime)\n");
  return 0;
}
