// Ablation — message coalescing x vertex cache on the comm-bound apps.
//
// The coalescing layer batches same-owner dependency fetches under one
// envelope and aggregates per-destination indegree decrements (carrying the
// finished value, which seeds the consumer's cache). Its payoff therefore
// interacts with the cache: with caching off, batching only amortizes
// envelopes; with caching on, the piggybacked values turn fetch round-trips
// into hits. This sweep separates the two effects on Smith-Waterman (4-dep
// stencil, wide wavefronts) and Nussinov (interval DP, long-range deps),
// reporting the per-vertex framework cost the PR attacks: wire messages and
// bytes per vertex, plus the simulated makespan.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/options.h"
#include "dp/runners.h"

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const std::int64_t vertices =
      static_cast<std::int64_t>(cli.get_scaled("vertices", 250'000));
  const std::int32_t nodes = static_cast<std::int32_t>(cli.get_int("nodes", 8));
  const std::size_t cache_on = static_cast<std::size_t>(cli.get_int("cache", 1024));

  std::printf("Ablation: coalescing x cache (%lld vertices, %d nodes, simulated "
              "cluster, min-comm)\n",
              static_cast<long long>(vertices), nodes);
  std::printf("  %-10s %-10s %-6s | %9s | %10s | %10s | %9s | %9s\n", "app",
              "coalescing", "cache", "time (s)", "msgs/vtx", "bytes/vtx",
              "batches", "hit rate");

  for (const char* app : {"sw", "nussinov"}) {
    for (bool coalescing : {false, true}) {
      for (std::size_t cache : {std::size_t{0}, cache_on}) {
        RuntimeOptions opts = bench::sim_options_for_nodes(nodes, cli);
        opts.scheduling = Scheduling::MinCommunication;
        opts.coalescing = coalescing;
        opts.cache_capacity = cache;
        RunReport r = dp::run_dp_app(app, dp::EngineKind::Sim, vertices, opts);
        PlaceStats t = r.totals();
        const auto n = static_cast<double>(r.vertices);
        const std::uint64_t lookups = t.cache_hits + t.remote_fetches;
        const double hit_rate =
            lookups ? 100.0 * static_cast<double>(t.cache_hits) /
                          static_cast<double>(lookups)
                    : 0.0;
        std::printf("  %-10s %-10s %6zu | %9.3f | %10.3f | %10.1f | %9llu | %8.1f%%\n",
                    app, coalescing ? "on" : "off", cache, r.elapsed_seconds,
                    static_cast<double>(r.traffic.total_messages_out()) / n,
                    static_cast<double>(r.traffic.bytes_out) / n,
                    static_cast<unsigned long long>(t.fetch_batches + t.control_batches),
                    hit_rate);
      }
    }
  }
  return 0;
}
