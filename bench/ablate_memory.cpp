// Ablation — memory governor retirement modes (docs/MEMORY.md).
//
// Sweeps --retirement off/retire/spill on SWLAG (regular wavefront: a
// cell's last consumer runs one anti-diagonal later, so the live window is
// the frontier) and Nussinov (interval recurrence: cell (i,j) feeds every
// larger interval containing it, so values live much longer). With
// retirement the peak resident set should track the consumer window, not
// the whole matrix — orders of magnitude below the off-path peak on SWLAG,
// a smaller win on Nussinov — while the computed results stay identical.
// Spill mode additionally reports the out-of-core traffic; pass
// --memory-limit to exercise the pressure-spill path.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/options.h"
#include "common/strings.h"
#include "dp/runners.h"

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const std::int64_t vertices =
      static_cast<std::int64_t>(cli.get_scaled("vertices", 500'000));
  const std::int32_t nodes = static_cast<std::int32_t>(cli.get_int("nodes", 8));
  const std::uint64_t limit = cli.get_scaled("memory-limit", 0);

  std::printf("Ablation: memory governor retirement mode (%lld vertices, %d nodes, "
              "simulated cluster)\n",
              static_cast<long long>(vertices), nodes);
  std::printf("  %-10s %-7s %9s | %10s | %12s | %10s | %10s | %10s\n", "app", "mode",
              "time (s)", "peak cells", "peak bytes", "retired", "spilled", "rd spill");

  for (const char* app : {"swlag", "nussinov"}) {
    for (mem::RetirementMode mode :
         {mem::RetirementMode::Off, mem::RetirementMode::Retire,
          mem::RetirementMode::Spill}) {
      RuntimeOptions opts = bench::sim_options_for_nodes(nodes, cli);
      opts.memory.retirement = mode;
      if (mode == mem::RetirementMode::Spill) {
        opts.memory.memory_limit_bytes = limit;
      }
      RunReport r = dp::run_dp_app(app, dp::EngineKind::Sim, vertices, opts);
      const PlaceStats t = r.totals();
      // Off leaves the gauges at zero: legacy runs keep every computed
      // value resident to the end, so the peak is the whole computed set.
      const std::uint64_t peak_cells =
          t.live_cells_peak ? t.live_cells_peak : r.computed + r.prefinished;
      std::printf("  %-10s %-7s %9.3f | %10llu | %12llu | %10llu | %10llu | %10llu\n",
                  app, std::string(mem::retirement_mode_name(mode)).c_str(),
                  r.elapsed_seconds, static_cast<unsigned long long>(peak_cells),
                  static_cast<unsigned long long>(t.live_bytes_peak),
                  static_cast<unsigned long long>(t.retired_cells),
                  static_cast<unsigned long long>(t.spilled_cells),
                  static_cast<unsigned long long>(t.spill_reads));
    }
  }
  return 0;
}
