// Ablation — §VI-B/§VI-E DAG distribution.
//
// "How to distribute [vertices] among the places can be flexibly defined by
// using a Dist structure ... the user can define the partition and
// distribution of the DAG to realize a better locality." Sweeps the four
// shipped distributions for each of the four evaluated applications and
// reports time plus the locality metrics that explain it (remote fetches,
// boundary control traffic). Expected: block-row and block-col are
// symmetric for square wavefronts; block-cyclic multiplies boundaries;
// block-2d trades row boundaries for corner traffic; 0/1KP strongly prefers
// column blocks (its dependencies run down columns, modulo weight jumps).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/options.h"
#include "dp/runners.h"

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const std::int64_t vertices =
      static_cast<std::int64_t>(cli.get_scaled("vertices", 500'000));
  const std::int32_t nodes = static_cast<std::int32_t>(cli.get_int("nodes", 8));

  std::printf("Ablation: Dist structure (%lld vertices, %d nodes, simulated cluster)\n",
              static_cast<long long>(vertices), nodes);
  std::printf("  %-10s %-18s | %9s | %12s | %12s\n", "app", "dist", "time (s)", "fetches",
              "control msgs");

  const DistKind kinds[] = {DistKind::BlockRow, DistKind::BlockCol,
                            DistKind::BlockCyclicRow, DistKind::Block2D};
  for (const char* app : {"swlag", "mtp", "lps", "knapsack"}) {
    for (DistKind kind : kinds) {
      RuntimeOptions opts = bench::sim_options_for_nodes(nodes, cli);
      opts.dist = kind;
      RunReport r = dp::run_dp_app(app, dp::EngineKind::Sim, vertices, opts);
      PlaceStats t = r.totals();
      std::printf("  %-10s %-18s | %9.3f | %12llu | %12llu\n", app,
                  std::string(dist_kind_name(kind)).c_str(), r.elapsed_seconds,
                  static_cast<unsigned long long>(t.remote_fetches),
                  static_cast<unsigned long long>(t.control_msgs_out));
    }
  }
  return 0;
}
