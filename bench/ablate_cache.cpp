// Ablation — §VI-C/§VI-E vertex-cache size and replacement policy.
//
// "The size of the cache list on each worker can be specified to achieve
// maximum benefit." Sweeps the cache capacity on SWLAG (streaming reuse:
// the previous fetch is exactly the next vertex's neighbour — small caches
// already capture it) and 0/1KP (weight-jump accesses need a window as wide
// as the largest item weight), under both FIFO (the paper's choice,
// justified by DP access regularity) and LRU replacement. If the paper's
// §VI-C argument holds, LRU's extra bookkeeping buys nothing here.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/options.h"
#include "common/strings.h"
#include "dp/runners.h"

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const std::int64_t vertices =
      static_cast<std::int64_t>(cli.get_scaled("vertices", 500'000));
  const std::int32_t nodes = static_cast<std::int32_t>(cli.get_int("nodes", 8));
  const std::vector<std::int64_t> capacities =
      cli.get_int_list("capacities", {0, 16, 64, 256, 1024, 4096});

  std::printf("Ablation: vertex-cache capacity x policy (%lld vertices, %d nodes, "
              "simulated cluster)\n", static_cast<long long>(vertices), nodes);
  std::printf("  %-10s %-6s %9s | %9s | %8s | %12s | %12s\n", "app", "policy", "capacity",
              "time (s)", "hit rate", "fetches", "bytes moved");

  for (const char* app : {"swlag", "knapsack"}) {
    for (CachePolicy policy : {CachePolicy::Fifo, CachePolicy::Lru}) {
      for (std::int64_t cap : capacities) {
        RuntimeOptions opts = bench::sim_options_for_nodes(nodes, cli);
        opts.cache_capacity = static_cast<std::size_t>(cap);
        opts.cache_policy = policy;
        RunReport r = dp::run_dp_app(app, dp::EngineKind::Sim, vertices, opts);
        PlaceStats t = r.totals();
        const std::uint64_t lookups = t.cache_hits + t.remote_fetches;
        const double hit_rate =
            lookups ? 100.0 * static_cast<double>(t.cache_hits) / static_cast<double>(lookups)
                    : 0.0;
        std::printf("  %-10s %-6s %9lld | %9.3f | %7.1f%% | %12llu | %12s\n", app,
                    std::string(cache_policy_name(policy)).c_str(),
                    static_cast<long long>(cap), r.elapsed_seconds, hit_rate,
                    static_cast<unsigned long long>(t.remote_fetches),
                    human_bytes(static_cast<double>(r.traffic.bytes_out)).c_str());
      }
    }
  }
  return 0;
}
