// Ablation — §VI-C/§VI-E scheduling strategies and ready-list order.
//
// Sweeps the three paper strategies (local / random / min-communication)
// plus the work-stealing strategy (the paper's future work) and the
// FIFO-vs-LIFO ready-list order, on SWLAG (regular wavefront) and 0/1KP
// (data-dependent edges) over the simulated cluster. The paper's guidance
// to verify: local scheduling wins for these regular DAGs, min-comm "should
// be used in appropriate scenarios" (it pays an overhead for no benefit
// when the owner already holds the dependencies), and random scheduling
// floods the network with non-local executions.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/options.h"
#include "dp/runners.h"

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const std::int64_t vertices =
      static_cast<std::int64_t>(cli.get_scaled("vertices", 500'000));
  const std::int32_t nodes = static_cast<std::int32_t>(cli.get_int("nodes", 8));

  std::printf("Ablation: scheduling strategy x ready order "
              "(%lld vertices, %d nodes, simulated cluster)\n",
              static_cast<long long>(vertices), nodes);
  std::printf("  %-10s %-14s %-6s | %9s | %10s | %10s\n", "app", "strategy", "order",
              "time (s)", "non-local", "fetches");

  const Scheduling strategies[] = {Scheduling::Local, Scheduling::Random,
                                   Scheduling::MinCommunication, Scheduling::WorkStealing};
  const ReadyOrder orders[] = {ReadyOrder::Fifo, ReadyOrder::Lifo};

  for (const char* app : {"swlag", "knapsack"}) {
    for (Scheduling s : strategies) {
      for (ReadyOrder order : orders) {
        RuntimeOptions opts = bench::sim_options_for_nodes(nodes, cli);
        opts.scheduling = s;
        opts.ready_order = order;
        RunReport r = dp::run_dp_app(app, dp::EngineKind::Sim, vertices, opts);
        PlaceStats t = r.totals();
        std::printf("  %-10s %-14s %-6s | %9.3f | %10llu | %10llu\n", app,
                    std::string(scheduling_name(s)).c_str(),
                    std::string(ready_order_name(order)).c_str(), r.elapsed_seconds,
                    static_cast<unsigned long long>(t.executed_nonlocal),
                    static_cast<unsigned long long>(t.remote_fetches));
      }
    }
  }
  return 0;
}
