// Figure 13 — cost of the new recovery mechanism: (a) time to recover the
// distributed array, (b) total execution time with one fault, normalized to
// the fault-free run.
//
// Paper setup: SWLAG on 4 and 8 nodes, 100M-500M vertices, one failure
// triggered manually mid-run (at 50% completion here), discard-remote
// restore (the default). Scaled default sizes: 200k-1M vertices.
// Headline shapes: recovery time grows linearly with size, halves from 4 to
// 8 nodes (recovery runs in parallel on all survivors), and the normalized
// impact of one fault shrinks as nodes are added.
//
// Series (c) reports the heartbeat detector's latency: the gap between the
// crash and the §VI-D declaration. It is a property of the detector config
// (interval x (suspect + confirm) beats), not of the problem size, so the
// row should be flat across sizes — pass --hb-interval style knobs through
// RuntimeOptions to move it.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/options.h"
#include "dp/runners.h"

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  std::vector<std::int64_t> sizes =
      cli.get_int_list("sizes", {200'000, 400'000, 600'000, 800'000, 1'000'000});
  const std::vector<std::int64_t> node_counts = cli.get_int_list("nodes", {4, 8});
  const double at = cli.get_double("at", 0.5);

  std::printf("Figure 13: recovery cost, SWLAG, one fault at %.0f%% completion "
              "(simulated cluster)\n", at * 100.0);
  bench::print_header("\\ vertices", sizes);

  for (std::int64_t nodes : node_counts) {
    std::vector<double> recovery, normalized, detection;
    for (std::int64_t v : sizes) {
      RuntimeOptions opts = bench::sim_options_for_nodes(static_cast<std::int32_t>(nodes), cli);
      opts.faults.push_back(FaultPlan{opts.nplaces - 1, at});
      RunReport faulty = dp::run_dp_app("swlag", dp::EngineKind::Sim, v, opts);

      RuntimeOptions clean = opts;
      clean.faults.clear();
      RunReport baseline = dp::run_dp_app("swlag", dp::EngineKind::Sim, v, clean);

      recovery.push_back(faulty.recovery_seconds);
      normalized.push_back(faulty.elapsed_seconds / baseline.elapsed_seconds);
      detection.push_back(faulty.detection_seconds);
    }
    char label[64];
    std::snprintf(label, sizeof label, "(a) recovery, %lldn", static_cast<long long>(nodes));
    bench::print_series(label, recovery, "sim seconds");
    std::snprintf(label, sizeof label, "(b) normalized, %lldn", static_cast<long long>(nodes));
    bench::print_series(label, normalized, "x fault-free");
    std::snprintf(label, sizeof label, "(c) detection, %lldn", static_cast<long long>(nodes));
    bench::print_series(label, detection, "sim seconds");
  }
  return 0;
}
