// Ablation — tracing overhead on the real-thread engine (ISSUE 2
// acceptance: compiled-in-but-disabled tracing must cost < 2%).
//
// Runs each app on the ThreadedEngine at the three trace levels and
// reports wall time and throughput relative to `off`. `off` pays one
// predictable branch per potential event; `counters` adds shard-local
// histogram records and clock reads; `full` additionally appends a
// VertexSpan per execution and message events on the lossy-fetch path.
// Several repetitions are taken and the fastest kept, since wall-clock
// noise on a loaded machine easily exceeds the effect being measured.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/options.h"
#include "dp/runners.h"
#include "obs/trace_level.h"

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const std::int64_t vertices =
      static_cast<std::int64_t>(cli.get_scaled("vertices", 1'000'000));
  const std::int32_t nplaces = static_cast<std::int32_t>(cli.get_int("nplaces", 4));
  const std::int32_t nthreads = static_cast<std::int32_t>(cli.get_int("nthreads", 2));
  const int reps = static_cast<int>(cli.get_int("reps", 3));

  std::printf("Ablation: tracing overhead, threaded engine (%lld vertices, "
              "%d places x %d threads, best of %d)\n",
              static_cast<long long>(vertices), nplaces, nthreads, reps);
  std::printf("  %-10s %-9s | %9s | %12s | %9s\n", "app", "level", "time (s)",
              "vertices/s", "overhead");

  for (const char* app : {"swlag", "lcs"}) {
    double base = 0.0;
    for (obs::TraceLevel level :
         {obs::TraceLevel::Off, obs::TraceLevel::Counters, obs::TraceLevel::Full}) {
      double best = 0.0;
      std::uint64_t computed = 0;
      for (int rep = 0; rep < reps; ++rep) {
        RuntimeOptions opts;
        opts.nplaces = nplaces;
        opts.nthreads = nthreads;
        opts.trace_level = level;
        RunReport r = dp::run_dp_app(app, dp::EngineKind::Threaded, vertices, opts);
        if (rep == 0 || r.elapsed_seconds < best) best = r.elapsed_seconds;
        computed = r.computed;
      }
      if (level == obs::TraceLevel::Off) base = best;
      const double overhead = base > 0.0 ? 100.0 * (best - base) / base : 0.0;
      std::printf("  %-10s %-9s | %9.3f | %12.0f | %+8.2f%%\n", app,
                  std::string(trace_level_name(level)).c_str(), best,
                  static_cast<double>(computed) / best, overhead);
    }
  }
  return 0;
}
