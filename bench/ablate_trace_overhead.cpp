// Ablation — observability overhead on the real-thread engine (ISSUE 2
// acceptance: compiled-in-but-disabled tracing must cost < 2%; ISSUE 7
// acceptance: the default-on flight recorder + status export too).
//
// Part 1 runs each app on the ThreadedEngine at the three trace levels and
// reports wall time and throughput relative to `off`. `off` pays one
// predictable branch per potential event; `counters` adds shard-local
// histogram records and clock reads; `full` additionally appends a
// VertexSpan per execution and message events on the lossy-fetch path.
//
// Part 2 ablates the PR 7 live-introspection machinery at trace level off:
// flight recorder disabled (--flight-events=0) vs the default-on per-worker
// ring vs ring + periodic status-file export vs the framework-tax profile
// (the one config documented to add measurable cost: 6 clock reads/vertex).
// Its overhead column is computed from process CPU time, not wall time: on
// an oversubscribed or shared host, wall-clock noise (scheduler placement,
// competing load) is far larger than the few ns/vertex being measured,
// while CPU time counts exactly the cycles the machinery burns — including
// the status/obs thread's.
//
// Several repetitions are taken and the fastest kept, since wall-clock
// noise on a loaded machine easily exceeds the effect being measured.
#include <algorithm>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/options.h"
#include "dp/runners.h"
#include "obs/trace_level.h"

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const std::int64_t vertices =
      static_cast<std::int64_t>(cli.get_scaled("vertices", 1'000'000));
  const std::int32_t nplaces = static_cast<std::int32_t>(cli.get_int("nplaces", 4));
  const std::int32_t nthreads = static_cast<std::int32_t>(cli.get_int("nthreads", 2));
  const int reps = static_cast<int>(cli.get_int("reps", 3));

  std::printf("Ablation: tracing overhead, threaded engine (%lld vertices, "
              "%d places x %d threads, best of %d)\n",
              static_cast<long long>(vertices), nplaces, nthreads, reps);
  std::printf("  %-10s %-9s | %9s | %12s | %9s\n", "app", "level", "time (s)",
              "vertices/s", "overhead");

  for (const char* app : {"swlag", "lcs"}) {
    double base = 0.0;
    for (obs::TraceLevel level :
         {obs::TraceLevel::Off, obs::TraceLevel::Counters, obs::TraceLevel::Full}) {
      double best = 0.0;
      std::uint64_t computed = 0;
      for (int rep = 0; rep < reps; ++rep) {
        RuntimeOptions opts;
        opts.nplaces = nplaces;
        opts.nthreads = nthreads;
        opts.trace_level = level;
        RunReport r = dp::run_dp_app(app, dp::EngineKind::Threaded, vertices, opts);
        if (rep == 0 || r.elapsed_seconds < best) best = r.elapsed_seconds;
        computed = r.computed;
      }
      if (level == obs::TraceLevel::Off) base = best;
      const double overhead = base > 0.0 ? 100.0 * (best - base) / base : 0.0;
      std::printf("  %-10s %-9s | %9.3f | %12.0f | %+8.2f%%\n", app,
                  std::string(trace_level_name(level)).c_str(), best,
                  static_cast<double>(computed) / best, overhead);
    }
  }

  std::printf("\nAblation: flight recorder / status export / framework tax "
              "(trace level off; overhead on CPU time)\n");
  std::printf("  %-10s %-15s | %9s | %9s | %12s | %9s\n", "app", "config",
              "wall (s)", "cpu (s)", "vertices/s", "overhead");

  const std::string status_path =
      (std::filesystem::temp_directory_path() / "ablate_obs.status").string();
  struct ObsConfig {
    const char* name;
    std::int32_t flight_events;
    bool status;
    bool tax;
  };
  const ObsConfig configs[] = {
      {"recorder-off", 0, false, false},
      {"recorder", 4096, false, false},
      {"recorder+status", 4096, true, false},
      {"framework-tax", 4096, false, true},
  };
  for (const char* app : {"swlag", "lcs"}) {
    double base_cpu = 0.0;
    for (const ObsConfig& cfg : configs) {
      double best_wall = 0.0, best_cpu = 0.0;
      std::uint64_t computed = 0;
      for (int rep = 0; rep < reps; ++rep) {
        RuntimeOptions opts;
        opts.nplaces = nplaces;
        opts.nthreads = nthreads;
        opts.flight_events = cfg.flight_events;
        if (cfg.status) opts.status_file = status_path;
        opts.framework_tax = cfg.tax;
        // std::clock() is whole-process CPU time (all threads), so the rep
        // delta charges the config for worker, monitor AND obs cycles. The
        // DAG/input build inside run_dp_app is identical across configs.
        const std::clock_t c0 = std::clock();
        RunReport r = dp::run_dp_app(app, dp::EngineKind::Threaded, vertices, opts);
        const double cpu =
            static_cast<double>(std::clock() - c0) / CLOCKS_PER_SEC;
        if (rep == 0 || r.elapsed_seconds < best_wall) best_wall = r.elapsed_seconds;
        if (rep == 0 || cpu < best_cpu) best_cpu = cpu;
        computed = r.computed;
      }
      if (cfg.flight_events == 0) base_cpu = best_cpu;
      const double overhead =
          base_cpu > 0.0 ? 100.0 * (best_cpu - base_cpu) / base_cpu : 0.0;
      std::printf("  %-10s %-15s | %9.3f | %9.3f | %12.0f | %+8.2f%%\n", app,
                  cfg.name, best_wall, best_cpu,
                  static_cast<double>(computed) / best_wall, overhead);
    }
  }
  std::filesystem::remove(status_path);
  return 0;
}
