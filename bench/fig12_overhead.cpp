// Figure 12 — DPX10's framework overhead: SWLAG implemented through DPX10
// vs the same algorithm hand-coded "natively", on identical hardware.
//
// Paper setup: 4 and 8 nodes, 100M-500M vertices, cache list disabled,
// everything else equal; the DPX10/X10 ratio lands between 1.02 and 1.12.
//
// This bench runs for real (ThreadedEngine wall-clock vs
// baseline::native_swlag_threaded) because an overhead *ratio* is
// meaningful on whatever host executes it — both sides run the same thread
// topology at the same per-vertex task granularity.
//
// Granularity matters for the ratio: X10 spawns one activity per vertex, so
// both of the paper's programs pay a per-vertex floor on the order of
// microseconds, which dwarfs the framework's bookkeeping delta. Our C++
// native baseline's floor is ~100 ns, so the same absolute delta shows as a
// larger raw ratio. We therefore report two rows per size: the raw ratio
// (work = 0) and the ratio at an X10-like per-activity floor
// (--work-ns, default 2000), which is the paper's regime.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "baseline/native_swlag.h"
#include "bench/bench_util.h"
#include "common/options.h"
#include "core/dpx10.h"
#include "dp/inputs.h"
#include "dp/swlag.h"

namespace {

using namespace dpx10;

/// SwlagApp plus a busy-wait emulating the X10 per-activity floor.
class SwlagWithFloor final : public dp::SwlagApp {
 public:
  SwlagWithFloor(std::string a, std::string b, double work_ns)
      : SwlagApp(std::move(a), std::move(b)), work_ns_(work_ns) {}

  dp::SwlagCell compute(std::int32_t i, std::int32_t j,
                        std::span<const Vertex<dp::SwlagCell>> deps) override {
    dp::SwlagCell out = SwlagApp::compute(i, j, deps);
    baseline::spin_for_ns(work_ns_);
    return out;
  }

 private:
  double work_ns_;
};

struct Measurement {
  double dpx10 = 0.0;
  double native = 0.0;
};

Measurement measure(const std::string& a, const std::string& b, std::int32_t nplaces,
                    int nthreads, double work_ns, int repeat) {
  const auto side = static_cast<std::int32_t>(a.size()) + 1;
  Measurement best;
  for (int r = 0; r < repeat; ++r) {
    SwlagWithFloor app(a, b, work_ns);
    auto dag = patterns::make_pattern("left-top-diag", side, side);
    RuntimeOptions opts;
    opts.nplaces = nplaces;
    opts.nthreads = nthreads;
    opts.cache_capacity = 0;  // paper: "the cache list was not used"
    ThreadedEngine<dp::SwlagCell> engine(opts);
    const double t = engine.run(*dag, app).elapsed_seconds;
    best.dpx10 = (r == 0) ? t : std::min(best.dpx10, t);
  }
  for (int r = 0; r < repeat; ++r) {
    const double t =
        baseline::native_swlag_threaded(a, b, nplaces, nthreads, work_ns).elapsed_seconds;
    best.native = (r == 0) ? t : std::min(best.native, t);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Options cli(argc, argv);

  std::vector<std::int64_t> sizes =
      cli.get_int_list("sizes", {250'000, 500'000, 1'000'000});
  const std::vector<std::int64_t> node_counts = cli.get_int_list("nodes", {4, 8});
  const int nthreads = static_cast<int>(cli.get_int("nthreads", 1));
  const int repeat = static_cast<int>(cli.get_int("repeat", 3));
  const double work_ns = cli.get_double("work-ns", 2000.0);

  std::printf("Figure 12: DPX10 vs hand-coded native SWLAG (threaded engine, wall clock,\n"
              "cache disabled, %d thread(s)/place, best of %d runs)\n", nthreads, repeat);

  for (std::int64_t nodes : node_counts) {
    const std::int32_t nplaces =
        static_cast<std::int32_t>(nodes) * bench::kPlacesPerNode;
    std::printf("-- %lld nodes (%d places)\n", static_cast<long long>(nodes), nplaces);
    std::printf("  %10s | %12s | %12s | %12s | %s\n", "vertices", "activity", "dpx10 (s)",
                "native (s)", "dpx10/native");
    for (std::int64_t v : sizes) {
      const auto side = static_cast<std::int32_t>(std::llround(std::sqrt(double(v))));
      std::string a = dp::random_sequence(static_cast<std::size_t>(side - 1), 1234);
      std::string b = dp::random_sequence(static_cast<std::size_t>(side - 1), 1235);

      for (double w : {0.0, work_ns}) {
        Measurement m = measure(a, b, nplaces, nthreads, w, repeat);
        char label[32];
        std::snprintf(label, sizeof label, w == 0.0 ? "raw" : "%.1f us", w / 1000.0);
        std::printf("  %10lld | %12s | %12.3f | %12.3f | %.3fx\n",
                    static_cast<long long>(v), label, m.dpx10, m.native,
                    m.dpx10 / m.native);
      }
    }
  }
  return 0;
}
