// Figure 11 — execution time of the four DP applications on a fixed
// 10-node cluster (20 places × 6 threads) while the vertex count grows.
//
// Paper setup: 100M → 1B vertices. Scaled default here: 200k → 2M
// (override with --scale or --sizes). The headline shape: near-linear
// growth with size for all four applications, with 0/1KP sitting above the
// others ("0/1KP takes a little longer since it needs more time to resolve
// the dependencies").
#include <cstdio>

#include "bench/bench_util.h"
#include "common/options.h"
#include "common/strings.h"
#include "dp/runners.h"

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const std::int64_t nodes = cli.get_int("nodes", 10);
  std::vector<std::int64_t> sizes = cli.get_int_list(
      "sizes", {200'000, 400'000, 600'000, 800'000, 1'000'000, 1'400'000, 2'000'000});
  const std::vector<std::string> apps = {"swlag", "mtp", "lps", "knapsack"};

  std::printf("Figure 11: execution time vs. graph size on %lld nodes "
              "(%lld places x %d threads, simulated cluster)\n",
              static_cast<long long>(nodes),
              static_cast<long long>(nodes * bench::kPlacesPerNode),
              bench::kThreadsPerPlace);
  bench::print_header("app \\ vertices", sizes);

  for (const std::string& app : apps) {
    std::vector<double> times;
    for (std::int64_t v : sizes) {
      RuntimeOptions opts = bench::sim_options_for_nodes(static_cast<std::int32_t>(nodes), cli);
      RunReport report = dp::run_dp_app(app, dp::EngineKind::Sim, v, opts);
      times.push_back(report.elapsed_seconds);
    }
    bench::print_series(app, times, "sim seconds");
    // Linearity check the paper claims. Small sizes carry fixed overheads
    // (pipeline fill, fetch latency), so compare *marginal* per-vertex cost
    // between the middle and the top of the sweep: 1.0 = perfectly linear.
    const std::size_t n = times.size();
    const double marginal_top = (times[n - 1] - times[n - 2]) /
                                static_cast<double>(sizes[n - 1] - sizes[n - 2]);
    const double marginal_mid = (times[n / 2] - times[n / 2 - 1]) /
                                static_cast<double>(sizes[n / 2] - sizes[n / 2 - 1]);
    std::printf("  %-22s marginal per-vertex cost, top/middle of sweep = %.2f\n", "",
                marginal_top / marginal_mid);
  }
  return 0;
}
