// Ablation — DPX10's new recovery vs Resilient X10's periodic snapshots.
//
// §VI-D argues the ResilientDistArray snapshot mechanism is "infeasible
// because a large volume of intermediate results may be produced", and the
// conclusion claims the new recovery "is more efficient than the periodical
// snapshot mechanism". This bench quantifies the claim on the simulated
// cluster: for each policy it reports the fault-free overhead (snapshots
// pause the whole cluster periodically; rebuild costs nothing until a
// fault), the recovery time, the work thrown away, and the end-to-end time
// with one mid-run fault.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/options.h"
#include "dp/runners.h"

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const std::int64_t vertices =
      static_cast<std::int64_t>(cli.get_scaled("vertices", 500'000));
  const std::int32_t nodes = static_cast<std::int32_t>(cli.get_int("nodes", 8));
  const double at = cli.get_double("at", 0.55);

  std::printf("Ablation: recovery policy, SWLAG, fault at %.0f%% "
              "(%lld vertices, %d nodes, simulated cluster)\n",
              at * 100.0, static_cast<long long>(vertices), nodes);
  std::printf("  %-28s | %11s | %11s | %9s | %10s | %10s\n", "policy", "no-fault(s)",
              "w/fault (s)", "recov (s)", "lost", "snapshots");

  struct PolicyCase {
    const char* label;
    RecoveryPolicy policy;
    double interval;
  };
  const PolicyCase cases[] = {
      {"rebuild (DPX10, Sec VI-D)", RecoveryPolicy::Rebuild, 0.1},
      {"snapshot every 5%", RecoveryPolicy::PeriodicSnapshot, 0.05},
      {"snapshot every 10%", RecoveryPolicy::PeriodicSnapshot, 0.10},
      {"snapshot every 25%", RecoveryPolicy::PeriodicSnapshot, 0.25},
  };

  for (const PolicyCase& c : cases) {
    RuntimeOptions opts = bench::sim_options_for_nodes(nodes, cli);
    opts.recovery = c.policy;
    opts.snapshot_interval = c.interval;

    RunReport clean = dp::run_dp_app("swlag", dp::EngineKind::Sim, vertices, opts);

    RuntimeOptions faulty = opts;
    faulty.faults.push_back(FaultPlan{faulty.nplaces - 1, at});
    RunReport with_fault = dp::run_dp_app("swlag", dp::EngineKind::Sim, vertices, faulty);

    const RecoveryRecord& rec = with_fault.recoveries.at(0);
    std::printf("  %-28s | %11.3f | %11.3f | %9.4f | %10llu | %10llu\n", c.label,
                clean.elapsed_seconds, with_fault.elapsed_seconds,
                with_fault.recovery_seconds,
                static_cast<unsigned long long>(rec.lost + rec.discarded),
                static_cast<unsigned long long>(with_fault.snapshots_taken));
  }
  return 0;
}
