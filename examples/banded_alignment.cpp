// Banded Smith-Waterman — custom pattern + custom domain in one example.
//
// When two sequences are known to be similar, restricting the alignment to
// a diagonal band of width 2k+1 turns an O(n^2) DP into O(nk). The
// BandedWavefrontDag declares exactly the in-band cells; the framework
// stores, schedules, and distributes only those. This example aligns two
// sequences that differ by a handful of mutations and shows that a narrow
// band already recovers the full-matrix score at a fraction of the work.
//
//   ./build/examples/banded_alignment --length=2000 --band=32
#include <iostream>

#include "common/options.h"
#include "common/rng.h"
#include "core/dpx10.h"
#include "core/report_io.h"
#include "dp/banded.h"
#include "dp/inputs.h"
#include "dp/smith_waterman.h"

namespace {

/// Mutates ~rate of the characters, preserving overall similarity.
std::string mutate(const std::string& base, double rate, std::uint64_t seed) {
  dpx10::Xoshiro256 rng(seed);
  std::string out = base;
  const std::string_view alphabet = "ACGT";
  for (char& c : out) {
    if (rng.uniform01() < rate) {
      c = alphabet[static_cast<std::size_t>(rng.below(alphabet.size()))];
    }
  }
  return out;
}

class BestBandedApp final : public dpx10::dp::BandedSwApp {
 public:
  using BandedSwApp::BandedSwApp;
  std::int32_t best = 0;

  void app_finished(const dpx10::DagView<std::int32_t>& dag) override {
    for (std::int32_t i = 0; i < dag.domain().height(); ++i) {
      for (std::int32_t j = dag.domain().row_begin(i); j < dag.domain().row_end(i); ++j) {
        best = std::max(best, dag.at(i, j));
      }
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const auto length = static_cast<std::size_t>(cli.get_int("length", 2000));
  const auto band = static_cast<std::int32_t>(cli.get_int("band", 32));
  const std::string a = dp::random_sequence(length, 55);
  const std::string b = mutate(a, 0.05, 56);  // 5% point mutations

  const auto n = static_cast<std::int32_t>(length) + 1;
  dp::BandedWavefrontDag dag(n, n, band);

  BestBandedApp app(a, b);
  RuntimeOptions opts;
  opts.nplaces = static_cast<std::int32_t>(cli.get_int("nplaces", 4));
  opts.nthreads = static_cast<std::int32_t>(cli.get_int("nthreads", 2));
  ThreadedEngine<std::int32_t> engine(opts);
  RunReport report = engine.run(dag, app);

  auto full = dp::serial_smith_waterman(a, b);
  const std::int32_t full_score = dp::matrix_max(full);
  const double full_cells = static_cast<double>(n) * n;

  std::cout << "banded score (band " << band << "): " << app.best << "\n";
  std::cout << "full-matrix score:       " << full_score << "\n";
  std::cout << "band recovers the score: " << (app.best == full_score ? "yes" : "no - widen the band")
            << "\n";
  std::cout << "cells computed:          " << report.computed << " ("
            << static_cast<int>(100.0 * static_cast<double>(report.computed) / full_cells)
            << "% of the full matrix)\n\n";
  print_report(std::cout, report);
  return 0;
}
