// 0/1 Knapsack — the paper's custom-DAG-pattern walkthrough (§VII-B).
//
// Most DP problems fit one of the eight built-in patterns, but the knapsack
// recurrence's edges jump by item weights, so its pattern is data-dependent.
// dp::KnapsackDag subclasses Dag and implements dependencies() /
// anti_dependencies() exactly as the paper's Fig. 9 implements
// getDependency()/getAntiDependency(). This example builds a random
// instance, solves it through the framework, and tracebacks the chosen
// items in app_finished.
//
//   ./build/examples/knapsack_custom_pattern --items=60 --capacity=300
#include <iostream>
#include <memory>
#include <vector>

#include "common/options.h"
#include "core/dpx10.h"
#include "core/report_io.h"
#include "dp/knapsack.h"

namespace {

class TracebackApp final : public dpx10::dp::KnapsackApp {
 public:
  TracebackApp(std::shared_ptr<const dpx10::dp::KnapsackInstance> instance)
      : KnapsackApp(instance), instance_(std::move(instance)) {}

  void app_finished(const dpx10::DagView<std::int64_t>& dag) override {
    const std::int32_t n = instance_->items();
    best_ = dag.at(n, instance_->capacity);
    // Walk up the table: item i was taken iff the value changed vs row i-1.
    std::int32_t j = instance_->capacity;
    for (std::int32_t i = n; i >= 1; --i) {
      if (dag.at(i, j) != dag.at(i - 1, j)) {
        chosen_.push_back(i);
        j -= instance_->weights[static_cast<std::size_t>(i - 1)];
      }
    }
  }

  std::int64_t best() const { return best_; }
  const std::vector<std::int32_t>& chosen() const { return chosen_; }

 private:
  std::shared_ptr<const dpx10::dp::KnapsackInstance> instance_;
  std::int64_t best_ = 0;
  std::vector<std::int32_t> chosen_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const auto items = static_cast<std::int32_t>(cli.get_int("items", 60));
  const auto capacity = static_cast<std::int32_t>(cli.get_int("capacity", 300));
  auto instance = std::make_shared<const dp::KnapsackInstance>(
      dp::random_knapsack(items, capacity, 25, cli.get_int("seed", 99)));

  TracebackApp app(instance);
  dp::KnapsackDag dag(instance);  // the custom pattern — step 1 of §VII

  RuntimeOptions opts;
  opts.nplaces = static_cast<std::int32_t>(cli.get_int("nplaces", 4));
  opts.nthreads = static_cast<std::int32_t>(cli.get_int("nthreads", 2));

  ThreadedEngine<std::int64_t> engine(opts);
  RunReport report = engine.run(dag, app);

  std::cout << "optimal value " << app.best() << " using " << app.chosen().size()
            << " of " << items << " items (capacity " << capacity << ")\n";
  std::int64_t weight = 0;
  for (std::int32_t i : app.chosen()) {
    weight += instance->weights[static_cast<std::size_t>(i - 1)];
  }
  std::cout << "total weight of chosen items: " << weight << "\n";
  auto serial = dp::serial_knapsack(*instance);
  std::cout << "serial reference agrees:      "
            << (serial.at(items, capacity) == app.best() ? "yes" : "NO — BUG") << "\n\n";
  print_report(std::cout, report);
  return 0;
}
