// Fault tolerance demo — §VI-D's recovery mechanism in action.
//
// Runs SWLAG on the simulated cluster, kills a place mid-run, and shows the
// recovery census: what was lost with the dead place, what was restored on
// the survivors, what the discard-remote default threw away for
// recomputation — and that the final result is identical to the fault-free
// run. Also kills place 0: the Resilient-X10 limitation the paper notes is
// lifted by coordinator failover, so that run recovers too.
//
//   ./build/examples/fault_tolerance --vertices=250000 --dead-place=5 --at=0.6
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/options.h"
#include "core/dpx10.h"
#include "core/report_io.h"
#include "dp/inputs.h"
#include "dp/swlag.h"

namespace {

std::int32_t run_once(const std::string& a, const std::string& b,
                      dpx10::RuntimeOptions opts, dpx10::RunReport& report_out) {
  using namespace dpx10;
  struct BestApp final : dp::SwlagApp {
    using SwlagApp::SwlagApp;
    std::int32_t best = 0;
    void app_finished(const DagView<dp::SwlagCell>& dag) override {
      for (std::int32_t i = 0; i < dag.domain().height(); ++i) {
        for (std::int32_t j = 0; j < dag.domain().width(); ++j) {
          best = std::max(best, dag.at(i, j).h);
        }
      }
    }
  } app(a, b);
  auto dag = patterns::make_pattern("left-top-diag",
                                    static_cast<std::int32_t>(a.size()) + 1,
                                    static_cast<std::int32_t>(b.size()) + 1);
  SimEngine<dp::SwlagCell> engine(opts);
  report_out = engine.run(*dag, app);
  return app.best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const auto vertices = static_cast<std::int64_t>(cli.get_scaled("vertices", 250'000));
  const auto side = static_cast<std::int32_t>(std::llround(std::sqrt(double(vertices))));
  const std::string a = dp::random_sequence(static_cast<std::size_t>(side - 1), 31);
  const std::string b = dp::random_sequence(static_cast<std::size_t>(side - 1), 32);

  RuntimeOptions opts;
  opts.nplaces = static_cast<std::int32_t>(cli.get_int("nplaces", 8));
  opts.nthreads = static_cast<std::int32_t>(cli.get_int("nthreads", 6));

  RunReport clean_report;
  const std::int32_t clean_score = run_once(a, b, opts, clean_report);
  std::cout << "fault-free run:  score " << clean_score << ", "
            << clean_report.elapsed_seconds << "s\n";

  RuntimeOptions faulty = opts;
  faulty.faults.push_back(FaultPlan{
      static_cast<std::int32_t>(cli.get_int("dead-place", opts.nplaces - 1)),
      cli.get_double("at", 0.6)});
  RunReport fault_report;
  const std::int32_t faulty_score = run_once(a, b, faulty, fault_report);
  std::cout << "one-fault run:   score " << faulty_score << ", "
            << fault_report.elapsed_seconds << "s\n";
  std::cout << "results match:   " << (faulty_score == clean_score ? "yes" : "NO — BUG")
            << "\n\n";
  print_report(std::cout, fault_report);

  // §VI-D inherits from Resilient X10 the rule that place 0 must survive —
  // but coordinator failover lifts it: the lowest surviving place adopts
  // the monitor role and the run still finishes with the fault-free result.
  RuntimeOptions zero_death = opts;
  zero_death.faults.push_back(FaultPlan{0, 0.5});
  RunReport zero_report;
  const std::int32_t zero_score = run_once(a, b, zero_death, zero_report);
  std::cout << "\nkilling place 0: survived via coordinator failover, score "
            << zero_score << " ("
            << (zero_score == clean_score ? "matches" : "MISMATCH — BUG")
            << ")\n";
  return zero_score == clean_score ? 0 : 1;
}
