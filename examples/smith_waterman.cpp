// Smith-Waterman local alignment — the paper's §VII-A demo application.
//
// Aligns two random DNA sequences (or --a/--b literals) with the built-in
// left-top-diag pattern on the threaded engine, then prints the alignment
// score, the run report, and the per-place breakdown.
//
//   ./build/examples/smith_waterman --length=400 --nplaces=4 --nthreads=2
#include <algorithm>
#include <iostream>

#include "common/options.h"
#include "core/dpx10.h"
#include "core/report_io.h"
#include "dp/inputs.h"
#include "dp/smith_waterman.h"

namespace {

/// SmithWatermanApp that finds the best score cell in app_finished — the
/// "result processing" step the paper leaves to the user.
class BestScoreApp final : public dpx10::dp::SmithWatermanApp {
 public:
  using SmithWatermanApp::SmithWatermanApp;

  void app_finished(const dpx10::DagView<std::int32_t>& dag) override {
    for (std::int32_t i = 0; i <= static_cast<std::int32_t>(a().size()); ++i) {
      for (std::int32_t j = 0; j <= static_cast<std::int32_t>(b().size()); ++j) {
        if (dag.at(i, j) > best_) {
          best_ = dag.at(i, j);
          best_i_ = i;
          best_j_ = j;
        }
      }
    }
  }

  std::int32_t best() const { return best_; }
  std::int32_t best_i() const { return best_i_; }
  std::int32_t best_j() const { return best_j_; }

 private:
  std::int32_t best_ = 0, best_i_ = 0, best_j_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const auto length = static_cast<std::size_t>(cli.get_int("length", 400));
  const std::string a = cli.get("a", dp::random_sequence(length, 7));
  const std::string b = cli.get("b", dp::random_sequence(length, 8));

  BestScoreApp app(a, b);
  auto dag = patterns::make_pattern("left-top-diag",
                                    static_cast<std::int32_t>(a.size()) + 1,
                                    static_cast<std::int32_t>(b.size()) + 1);

  RuntimeOptions opts;
  opts.nplaces = static_cast<std::int32_t>(cli.get_int("nplaces", 4));
  opts.nthreads = static_cast<std::int32_t>(cli.get_int("nthreads", 2));
  opts.cache_capacity = static_cast<std::size_t>(cli.get_int("cache", 1024));

  ThreadedEngine<std::int32_t> engine(opts);
  RunReport report = engine.run(*dag, app);

  std::cout << "best local alignment score: " << app.best() << " at (" << app.best_i()
            << ", " << app.best_j() << ")\n";
  auto serial = dp::serial_smith_waterman(a, b);
  std::cout << "serial reference agrees:    "
            << (dp::matrix_max(serial) == app.best() ? "yes" : "NO — BUG") << "\n\n";
  print_report(std::cout, report);
  std::cout << "\n";
  print_place_table(std::cout, report);
  return 0;
}
