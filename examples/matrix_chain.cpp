// Matrix-chain multiplication — a 2D/1D DP (paper Algorithm 3.2) on a
// custom interval-prefix pattern.
//
// §III classifies DP problems as tD/eD; DPX10's sweet spot is 2D/0D, but
// the paper states the framework "can also express the type of 2D/iD
// (i >= 1), nonetheless, the performance is less than satisfactory". This
// example reproduces that expressibility claim end to end: a custom Dag
// whose cells each depend on O(n) predecessors —
//
//   m(i,j) = min_{i <= k < j} m(i,k) + m(k+1,j) + p_i * p_{k+1} * p_{j+1}
//
// — runs unchanged through the same engines as the 2D/0D applications.
// (dp/nussinov.h is the full library application of this class; this
// example keeps the walkthrough minimal.)
//
//   ./build/examples/matrix_chain --matrices=48
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/options.h"
#include "common/rng.h"
#include "core/dpx10.h"
#include "core/patterns/interval_prefix.h"
#include "core/report_io.h"

namespace {

using namespace dpx10;

class MatrixChainApp final : public DPX10App<std::int64_t> {
 public:
  explicit MatrixChainApp(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {}

  std::int64_t compute(std::int32_t i, std::int32_t j,
                       std::span<const Vertex<std::int64_t>> deps) override {
    if (i == j) return 0;
    // Index the O(n) dependencies for direct lookup by split point.
    row_.assign(static_cast<std::size_t>(j - i), 0);
    col_.assign(static_cast<std::size_t>(j - i), 0);
    for (const Vertex<std::int64_t>& v : deps) {
      if (v.i() == i) row_[static_cast<std::size_t>(v.j() - i)] = v.result();
      if (v.j() == j) col_[static_cast<std::size_t>(v.i() - i - 1)] = v.result();
    }
    std::int64_t best = INT64_MAX;
    for (std::int32_t k = i; k < j; ++k) {
      const std::int64_t left = row_[static_cast<std::size_t>(k - i)];
      const std::int64_t right = col_[static_cast<std::size_t>(k - i)];
      best = std::min(best, left + right + dims_[static_cast<std::size_t>(i)] *
                                               dims_[static_cast<std::size_t>(k + 1)] *
                                               dims_[static_cast<std::size_t>(j + 1)]);
    }
    return best;
  }

  std::string_view name() const override { return "matrix-chain"; }

 private:
  std::vector<std::int64_t> dims_;
  std::vector<std::int64_t> row_, col_;  // scratch (single-threaded use only)
};

std::int64_t serial_matrix_chain(const std::vector<std::int64_t>& dims) {
  const std::int32_t n = static_cast<std::int32_t>(dims.size()) - 1;
  std::vector<std::vector<std::int64_t>> m(static_cast<std::size_t>(n),
                                           std::vector<std::int64_t>(static_cast<std::size_t>(n), 0));
  for (std::int32_t len = 2; len <= n; ++len) {
    for (std::int32_t i = 0; i + len - 1 < n; ++i) {
      const std::int32_t j = i + len - 1;
      std::int64_t best = INT64_MAX;
      for (std::int32_t k = i; k < j; ++k) {
        best = std::min(best, m[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] +
                                  m[static_cast<std::size_t>(k + 1)][static_cast<std::size_t>(j)] +
                                  dims[static_cast<std::size_t>(i)] *
                                      dims[static_cast<std::size_t>(k + 1)] *
                                      dims[static_cast<std::size_t>(j + 1)]);
      }
      m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = best;
    }
  }
  return m[0][static_cast<std::size_t>(n - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  Options cli(argc, argv);

  const auto n = static_cast<std::int32_t>(cli.get_int("matrices", 48));
  Xoshiro256 rng(static_cast<std::uint64_t>(cli.get_int("seed", 5)));
  std::vector<std::int64_t> dims(static_cast<std::size_t>(n) + 1);
  for (auto& d : dims) d = 8 + static_cast<std::int64_t>(rng.below(120));

  MatrixChainApp app(dims);
  patterns::IntervalPrefixDag dag(n);  // the library form of the 2D/1D class

  // The O(n) fan-in makes compute() stateful (scratch buffers), so run on
  // the deterministic single-threaded simulator. The threaded engine would
  // need per-thread scratch — exactly the "less than satisfactory" caveat.
  RuntimeOptions opts;
  opts.nplaces = static_cast<std::int32_t>(cli.get_int("nplaces", 4));
  opts.nthreads = static_cast<std::int32_t>(cli.get_int("nthreads", 6));

  SimEngine<std::int64_t> engine(opts);

  struct Capture final : DPX10App<std::int64_t> {
    MatrixChainApp* inner;
    std::int32_t n;
    std::int64_t answer = -1;
    std::int64_t compute(std::int32_t i, std::int32_t j,
                         std::span<const Vertex<std::int64_t>> deps) override {
      return inner->compute(i, j, deps);
    }
    void app_finished(const DagView<std::int64_t>& dag) override {
      answer = dag.at(0, n - 1);
    }
    std::string_view name() const override { return "matrix-chain"; }
  } capture;
  capture.inner = &app;
  capture.n = n;

  RunReport report = engine.run(dag, capture);

  const std::int64_t reference = serial_matrix_chain(dims);
  std::cout << "minimum multiplication cost for " << n << " matrices: " << capture.answer
            << "\n";
  std::cout << "serial reference agrees: "
            << (capture.answer == reference ? "yes" : "NO — BUG") << "\n\n";
  print_report(std::cout, report);
  return 0;
}
