// Quickstart: the paper's Fig. 1 example — longest common subsequence of
// two small strings, written as a DPX10 application in the paper's three
// steps:
//
//   1. pick a built-in DAG pattern        -> "left-top-diag" (Fig. 5b)
//   2. implement compute()/app_finished() -> dp::LcsApp
//   3. launch                             -> ThreadedEngine::run
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "common/options.h"
#include "core/dpx10.h"
#include "core/report_io.h"
#include "dp/lcs.h"

int main(int argc, char** argv) {
  using namespace dpx10;
  Options cli(argc, argv);

  const std::string a = cli.get("a", "ABCBDAB");
  const std::string b = cli.get("b", "BDCABA");

  dp::LcsApp app(a, b);
  auto dag = patterns::make_pattern("left-top-diag",
                                    static_cast<std::int32_t>(a.size()) + 1,
                                    static_cast<std::int32_t>(b.size()) + 1);

  RuntimeOptions opts;
  opts.nplaces = static_cast<std::int32_t>(cli.get_int("nplaces", 4));
  opts.nthreads = static_cast<std::int32_t>(cli.get_int("nthreads", 2));

  ThreadedEngine<std::int32_t> engine(opts);
  RunReport report = engine.run(*dag, app);

  // The engine has called app_finished(); re-run the traceback through a
  // second deterministic engine to show result access from outside too.
  SimEngine<std::int32_t> sim(opts);
  dp::LcsApp app2(a, b);

  struct Capture final : dp::LcsApp {
    using LcsApp::LcsApp;
    std::string lcs;
    void app_finished(const DagView<std::int32_t>& dag) override { lcs = traceback(dag); }
  } capture(a, b);
  sim.run(*dag, capture);

  std::cout << "LCS(\"" << a << "\", \"" << b << "\") = \"" << capture.lcs << "\" (length "
            << capture.lcs.size() << ")\n\n";
  print_report(std::cout, report);
  return 0;
}
