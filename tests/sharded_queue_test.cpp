// Sharded ready queues (RuntimeOptions::queue_shards) in the threaded
// engine: per-worker deques with LIFO-local push/pop and steal-from-the-
// other-end, plus the striped per-place cache lock.
//
// The headline properties:
//   * sharding is pure scheduling — any shard count produces the serial
//     reference results, with every vertex computed exactly once;
//   * queue_shards=1 (the legacy single-deque layout) and the auto
//     per-worker layout agree cell for cell;
//   * cross-shard and cross-place stealing stays correct under the full
//     §VI-D two-deaths fault matrix, where recovery drains and reseeds
//     every shard.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/dpx10.h"
#include "dp/inputs.h"
#include "dp/lcs.h"

namespace dpx10 {
namespace {

class ChecksumLcs final : public dp::LcsApp {
 public:
  using LcsApp::LcsApp;
  std::uint64_t checksum = 0;

  void app_finished(const DagView<std::int32_t>& dag) override {
    for (std::int32_t i = 0; i < dag.domain().height(); ++i) {
      for (std::int32_t j = 0; j < dag.domain().width(); ++j) {
        checksum = checksum * 1099511628211ULL +
                   static_cast<std::uint64_t>(dag.at(i, j) + 1);
      }
    }
  }
};

std::uint64_t run_checksum(const RuntimeOptions& opts, std::int32_t n = 48,
                           RunReport* report_out = nullptr) {
  ChecksumLcs app(dp::random_sequence(n - 1, 50), dp::random_sequence(n - 1, 51));
  auto dag = patterns::make_pattern("left-top-diag", n, n);
  ThreadedEngine<std::int32_t> engine(opts);
  RunReport report = engine.run(*dag, app);
  if (report_out) *report_out = report;
  return app.checksum;
}

std::uint64_t reference_checksum(std::int32_t n = 48) {
  ChecksumLcs app(dp::random_sequence(n - 1, 50), dp::random_sequence(n - 1, 51));
  auto dag = patterns::make_pattern("left-top-diag", n, n);
  RuntimeOptions opts;
  opts.nplaces = 1;
  opts.nthreads = 1;
  SimEngine<std::int32_t> engine(opts);
  engine.run(*dag, app);
  return app.checksum;
}

// shards x ready-order x scheduling: every combination must match the
// single-place serial reference with nothing lost or recomputed.
using Param = std::tuple<std::int32_t, ReadyOrder, Scheduling>;

class ShardedQueue : public ::testing::TestWithParam<Param> {};

TEST_P(ShardedQueue, MatchesReferenceAndComputesEachVertexOnce) {
  auto [shards, order, sched] = GetParam();
  RuntimeOptions opts;
  opts.nplaces = 4;
  opts.nthreads = 4;  // auto => 4 shards, real cross-shard contention
  opts.queue_shards = shards;
  opts.ready_order = order;
  opts.scheduling = sched;
  RunReport report;
  EXPECT_EQ(run_checksum(opts, 48, &report), reference_checksum(48));
  // A clean run computes every vertex exactly once: a lost vertex would
  // deadlock the wavefront, a duplicated one would overcount.
  EXPECT_EQ(report.computed, report.vertices);
  EXPECT_TRUE(report.recoveries.empty());
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  auto [shards, order, sched] = info.param;
  std::string name = "shards";
  name += shards == 0 ? "auto" : std::to_string(shards);
  name += order == ReadyOrder::Lifo ? "_lifo" : "_fifo";
  name += sched == Scheduling::WorkStealing ? "_steal" : "_local";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, ShardedQueue,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(ReadyOrder::Fifo, ReadyOrder::Lifo),
                       ::testing::Values(Scheduling::Local, Scheduling::WorkStealing)),
    param_name);

// The legacy layout and the sharded layout agree with coalescing and the
// striped cache in play too — the three knobs compose.
TEST(ShardedQueueKnobs, SingleShardMatchesAutoWithAllKnobs) {
  const std::uint64_t expected = reference_checksum();
  for (bool coalescing : {false, true}) {
    RuntimeOptions legacy;
    legacy.nplaces = 4;
    legacy.nthreads = 4;
    legacy.queue_shards = 1;
    legacy.cache_stripes = 1;
    legacy.coalescing = coalescing;
    legacy.scheduling = Scheduling::WorkStealing;
    EXPECT_EQ(run_checksum(legacy), expected);

    RuntimeOptions sharded = legacy;
    sharded.queue_shards = 0;
    sharded.cache_stripes = 0;
    EXPECT_EQ(run_checksum(sharded), expected);
  }
}

TEST(ShardedQueueKnobs, OversubscribedShardCountClamps) {
  // queue_shards far above nthreads must clamp, not crash or strand work.
  RuntimeOptions opts;
  opts.nplaces = 2;
  opts.nthreads = 2;
  opts.queue_shards = 64;
  opts.cache_stripes = 64;
  RunReport report;
  EXPECT_EQ(run_checksum(opts, 32, &report), reference_checksum(32));
  EXPECT_EQ(report.computed, report.vertices);
}

// Steal correctness under the §VI-D two-deaths matrix: recovery drains and
// reseeds per-worker shards while survivors keep stealing; suspicion-aware
// stealing must still avoid resurrecting work from declared-dead places.
using MatrixParam = std::tuple<std::int32_t, RecoveryPolicy>;

class ShardedFaultMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ShardedFaultMatrix, TwoDeathsStayTransparent) {
  auto [shards, policy] = GetParam();
  RuntimeOptions clean;
  clean.nplaces = 5;
  clean.nthreads = 2;
  const std::uint64_t expected = reference_checksum(36);

  RuntimeOptions faulty = clean;
  faulty.queue_shards = shards;
  faulty.recovery = policy;
  faulty.scheduling = Scheduling::WorkStealing;
  faulty.netfaults.drop_prob = 0.1;
  // Kill the owners of the LAST wavefront rows so recovery is guaranteed
  // (see net_fault_test.cpp for the rationale).
  faulty.faults.push_back(FaultPlan{3, 0.3});
  faulty.faults.push_back(FaultPlan{4, 0.65});
  RunReport report;
  EXPECT_EQ(run_checksum(faulty, 36, &report), expected);
  ASSERT_EQ(report.recoveries.size(), 2u);
  std::uint64_t redone = 0;
  for (const RecoveryRecord& rec : report.recoveries) {
    EXPECT_GT(rec.detected_after_s, 0.0);
    redone += rec.lost + rec.discarded;
  }
  // Exactly-once modulo recovery: every computed vertex is either a live
  // result or a re-execution of one lost/discarded by a death.
  EXPECT_EQ(report.computed, report.vertices + redone);
}

std::string matrix_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  auto [shards, policy] = info.param;
  std::string name = "shards";
  name += shards == 0 ? "auto" : std::to_string(shards);
  name += policy == RecoveryPolicy::Rebuild ? "_rebuild" : "_snapshot";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ShardedFaultMatrix,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(RecoveryPolicy::Rebuild,
                                         RecoveryPolicy::PeriodicSnapshot)),
    matrix_name);

}  // namespace
}  // namespace dpx10
