// Randomized-structure property test: the engines must evaluate *any*
// acyclic dependency structure correctly, not just the regular shipped
// patterns. A RandomDag draws, per cell, a random set of predecessors from
// the cells strictly before it in row-major order (acyclic by
// construction, with long-range and high-fan-in edges the built-ins never
// produce), and an order-insensitive hash recurrence checks that every
// engine × strategy delivers exactly the row-major serial evaluation.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/rng.h"
#include "core/dpx10.h"
#include "dp/runners.h"

namespace dpx10 {
namespace {

class RandomDag final : public Dag {
 public:
  RandomDag(std::int32_t height, std::int32_t width, std::uint64_t seed, double edge_rate)
      : Dag(height, width, DagDomain::rect(height, width)) {
    const DagDomain& dom = domain();
    deps_.resize(static_cast<std::size_t>(dom.size()));
    antideps_.resize(static_cast<std::size_t>(dom.size()));
    Xoshiro256 rng(mix64(seed, 0xdadULL));
    for (std::int64_t idx = 1; idx < dom.size(); ++idx) {
      // Up to 4 predecessors drawn uniformly from [0, idx).
      const std::uint64_t k = rng.below(5);
      for (std::uint64_t e = 0; e < k; ++e) {
        if (rng.uniform01() > edge_rate) continue;
        std::int64_t pred = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(idx)));
        auto& dep_list = deps_[static_cast<std::size_t>(idx)];
        if (std::find(dep_list.begin(), dep_list.end(), pred) != dep_list.end()) continue;
        dep_list.push_back(pred);
        antideps_[static_cast<std::size_t>(pred)].push_back(idx);
      }
    }
  }

  void dependencies(VertexId v, std::vector<VertexId>& out) const override {
    for (std::int64_t d : deps_[static_cast<std::size_t>(domain().linearize(v))]) {
      out.push_back(domain().delinearize(d));
    }
  }

  void anti_dependencies(VertexId v, std::vector<VertexId>& out) const override {
    for (std::int64_t a : antideps_[static_cast<std::size_t>(domain().linearize(v))]) {
      out.push_back(domain().delinearize(a));
    }
  }

  std::string_view name() const override { return "random-dag"; }

  const std::vector<std::int64_t>& deps_of(std::int64_t idx) const {
    return deps_[static_cast<std::size_t>(idx)];
  }

 private:
  std::vector<std::vector<std::int64_t>> deps_;
  std::vector<std::vector<std::int64_t>> antideps_;
};

/// value(v) = splitmix(id) + sum of dep values — order-insensitive, so any
/// legal schedule must produce the same numbers.
class HashApp : public DPX10App<std::uint64_t> {
 public:
  std::uint64_t compute(std::int32_t i, std::int32_t j,
                        std::span<const Vertex<std::uint64_t>> deps) override {
    std::uint64_t acc = splitmix64(VertexId{i, j}.key());
    for (const auto& d : deps) acc += d.result();
    return acc;
  }

  std::string_view name() const override { return "hash-app"; }
};

std::vector<std::uint64_t> serial_evaluate(const RandomDag& dag) {
  const DagDomain& dom = dag.domain();
  std::vector<std::uint64_t> values(static_cast<std::size_t>(dom.size()));
  for (std::int64_t idx = 0; idx < dom.size(); ++idx) {
    std::uint64_t acc = splitmix64(dom.delinearize(idx).key());
    for (std::int64_t d : dag.deps_of(idx)) {
      acc += values[static_cast<std::size_t>(d)];  // d < idx by construction
    }
    values[static_cast<std::size_t>(idx)] = acc;
  }
  return values;
}

using Param = std::tuple<std::uint64_t, dp::EngineKind, Scheduling>;

class RandomDagAgreement : public ::testing::TestWithParam<Param> {};

TEST_P(RandomDagAgreement, AnyAcyclicStructureEvaluatesCorrectly) {
  const std::uint64_t seed = std::get<0>(GetParam());
  RandomDag dag(18, 22, seed, 0.8);
  const std::vector<std::uint64_t> expected = serial_evaluate(dag);

  struct Capture final : HashApp {
    std::vector<std::uint64_t> seen;
    const DagDomain* dom = nullptr;
    void app_finished(const DagView<std::uint64_t>& view) override {
      seen.resize(static_cast<std::size_t>(dom->size()));
      for (std::int64_t idx = 0; idx < dom->size(); ++idx) {
        VertexId id = dom->delinearize(idx);
        seen[static_cast<std::size_t>(idx)] = view.at(id.i, id.j);
      }
    }
  } app;
  app.dom = &dag.domain();

  RuntimeOptions opts;
  opts.nplaces = 4;
  opts.nthreads = 2;
  opts.scheduling = std::get<2>(GetParam());
  opts.seed = seed;
  if (std::get<1>(GetParam()) == dp::EngineKind::Threaded) {
    ThreadedEngine<std::uint64_t> engine(opts);
    engine.run(dag, app);
  } else {
    SimEngine<std::uint64_t> engine(opts);
    engine.run(dag, app);
  }
  ASSERT_EQ(app.seen, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomDagAgreement,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(dp::EngineKind::Threaded, dp::EngineKind::Sim),
                       ::testing::Values(Scheduling::Local, Scheduling::Random,
                                         Scheduling::WorkStealing)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = "seed" + std::to_string(std::get<0>(info.param));
      name += std::get<1>(info.param) == dp::EngineKind::Threaded ? "_threaded" : "_sim";
      name += "_";
      name += scheduling_name(std::get<2>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(RandomDagFault, TransparentAcrossRandomStructures) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    RandomDag dag(16, 16, seed, 0.8);
    const std::vector<std::uint64_t> expected = serial_evaluate(dag);
    struct Capture final : HashApp {
      std::vector<std::uint64_t> seen;
      const DagDomain* dom = nullptr;
      void app_finished(const DagView<std::uint64_t>& view) override {
        for (std::int64_t idx = 0; idx < dom->size(); ++idx) {
          VertexId id = dom->delinearize(idx);
          seen.push_back(view.at(id.i, id.j));
        }
      }
    } app;
    app.dom = &dag.domain();
    RuntimeOptions opts;
    opts.nplaces = 4;
    opts.nthreads = 2;
    opts.faults.push_back(FaultPlan{2, 0.4});
    SimEngine<std::uint64_t> engine(opts);
    engine.run(dag, app);
    ASSERT_EQ(app.seen, expected) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dpx10
