// Structural invariants every DAG pattern must satisfy (DESIGN.md §6) —
// parameterized over all built-in patterns, the knapsack custom pattern,
// and several sizes.
//
//  * all emitted ids lie inside the domain
//  * no self-edges, no duplicate edges
//  * duality: u in deps(v)  <=>  v in antideps(u)
//  * acyclicity: Kahn's algorithm consumes the whole domain
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "core/dag_validate.h"
#include "core/patterns/registry.h"
#include "core/tiling.h"
#include "dp/inputs.h"
#include "dp/knapsack.h"
#include "dp/nussinov.h"

namespace dpx10 {
namespace {

struct PatternCase {
  std::string label;
  std::shared_ptr<Dag> dag;
};

std::vector<PatternCase> all_cases() {
  std::vector<PatternCase> cases;
  for (const std::string& name : patterns::builtin_pattern_names()) {
    for (std::int32_t side : {1, 2, 5, 12}) {
      std::string label = name + "_" + std::to_string(side);
      for (char& c : label) {
        if (c == '-') c = '_';
      }
      cases.push_back({label, patterns::make_pattern(name, side, side)});
    }
    // Non-square instance for the rectangular patterns.
    if (name != "interval") {
      std::string label = name + "_rect";
      for (char& c : label) {
        if (c == '-') c = '_';
      }
      cases.push_back({label, patterns::make_pattern(name, 4, 9)});
    }
  }
  for (const std::string& name : patterns::extended_pattern_names()) {
    for (std::int32_t side : {1, 2, 9}) {
      std::string label = name + "_" + std::to_string(side);
      for (char& c : label) {
        if (c == '-') c = '_';
      }
      cases.push_back({label, patterns::make_pattern(name, side, side)});
    }
  }
  for (std::uint64_t seed : {1u, 7u}) {
    auto instance = std::make_shared<const dp::KnapsackInstance>(
        dp::random_knapsack(6, 20, 8, seed));
    cases.push_back({"knapsack_seed" + std::to_string(seed),
                     std::make_shared<dp::KnapsackDag>(instance)});
  }
  for (std::int32_t side : {2, 11}) {
    cases.push_back({"nussinov_" + std::to_string(side),
                     std::make_shared<dp::NussinovDag>(side)});
  }
  // Tiled macro-DAGs (core/tiling.h): the pattern TiledWavefrontApp::
  // make_dag instantiates at tile granularity, on a square matrix, a
  // rectangular one, and ragged edges (extents not divisible by the tile).
  for (auto [rows, cols, tile] : {std::tuple<int, int, int>{16, 16, 4},
                                  std::tuple<int, int, int>{9, 23, 5},
                                  std::tuple<int, int, int>{7, 3, 2}}) {
    TileGeometry geo(rows, cols, tile);
    cases.push_back({"tiled_" + std::to_string(rows) + "x" + std::to_string(cols) +
                         "_b" + std::to_string(tile),
                     std::make_shared<patterns::LeftTopDiagDag>(geo.tiles_i(),
                                                                geo.tiles_j())});
  }
  return cases;
}

class PatternInvariants : public ::testing::TestWithParam<PatternCase> {};

TEST_P(PatternInvariants, EdgesInDomainNoSelfNoDuplicates) {
  const Dag& dag = *GetParam().dag;
  const DagDomain& domain = dag.domain();
  std::vector<VertexId> out;
  for (std::int64_t idx = 0; idx < domain.size(); ++idx) {
    VertexId v = domain.delinearize(idx);
    for (bool anti : {false, true}) {
      out.clear();
      if (anti) {
        dag.anti_dependencies(v, out);
      } else {
        dag.dependencies(v, out);
      }
      std::set<std::pair<std::int32_t, std::int32_t>> seen;
      for (VertexId u : out) {
        ASSERT_TRUE(domain.contains(u))
            << "(" << u.i << "," << u.j << ") outside domain (anti=" << anti << ")";
        ASSERT_FALSE(u == v) << "self-edge at (" << v.i << "," << v.j << ")";
        ASSERT_TRUE(seen.insert({u.i, u.j}).second)
            << "duplicate edge (" << v.i << "," << v.j << ")->(" << u.i << "," << u.j << ")";
      }
    }
  }
}

TEST_P(PatternInvariants, DepsAndAntiDepsAreDual) {
  const Dag& dag = *GetParam().dag;
  const DagDomain& domain = dag.domain();
  // Build both edge sets and compare.
  std::set<std::pair<std::int64_t, std::int64_t>> forward, backward;
  std::vector<VertexId> out;
  for (std::int64_t idx = 0; idx < domain.size(); ++idx) {
    VertexId v = domain.delinearize(idx);
    out.clear();
    dag.dependencies(v, out);
    for (VertexId u : out) forward.insert({domain.linearize(u), idx});
    out.clear();
    dag.anti_dependencies(v, out);
    for (VertexId u : out) backward.insert({idx, domain.linearize(u)});
  }
  EXPECT_EQ(forward, backward) << "getDependency/getAntiDependency disagree";
}

TEST_P(PatternInvariants, KahnConsumesWholeDomain) {
  const Dag& dag = *GetParam().dag;
  const DagDomain& domain = dag.domain();
  std::vector<std::int32_t> indegree(static_cast<std::size_t>(domain.size()), 0);
  std::vector<VertexId> out;
  for (std::int64_t idx = 0; idx < domain.size(); ++idx) {
    out.clear();
    dag.dependencies(domain.delinearize(idx), out);
    indegree[static_cast<std::size_t>(idx)] = static_cast<std::int32_t>(out.size());
  }
  std::vector<std::int64_t> frontier;
  for (std::int64_t idx = 0; idx < domain.size(); ++idx) {
    if (indegree[static_cast<std::size_t>(idx)] == 0) frontier.push_back(idx);
  }
  ASSERT_FALSE(frontier.empty()) << "no zero-indegree seeds: graph cannot start";
  std::int64_t consumed = 0;
  while (!frontier.empty()) {
    std::int64_t idx = frontier.back();
    frontier.pop_back();
    ++consumed;
    out.clear();
    dag.anti_dependencies(domain.delinearize(idx), out);
    for (VertexId u : out) {
      if (--indegree[static_cast<std::size_t>(domain.linearize(u))] == 0) {
        frontier.push_back(domain.linearize(u));
      }
    }
  }
  EXPECT_EQ(consumed, domain.size()) << "cycle or unreachable vertices";
}

// The shipped checker must agree with the hand-rolled invariants above on
// every registry pattern — this is what `dpx10run --validate-dag` runs.
TEST_P(PatternInvariants, ValidateDagPasses) {
  const DagValidation v = validate_dag(*GetParam().dag);
  std::string joined;
  for (const std::string& p : v.problems) joined += p + "; ";
  EXPECT_TRUE(v.ok) << joined;
  EXPECT_GT(v.seeds, 0);
  EXPECT_GE(v.edges, 0);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, PatternInvariants, ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<PatternCase>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace dpx10
