// common/strings helpers.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/strings.h"

namespace dpx10 {
namespace {

TEST(Strings, Strformat) {
  EXPECT_EQ(strformat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(strformat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strformat("%s", ""), "");
}

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(split("", ',').size(), 1u);
  EXPECT_EQ(split("xyz", ',').size(), 1u);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\na b\r "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(1000000000ULL), "1,000,000,000");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512.00 B");
  EXPECT_EQ(human_bytes(2048), "2.00 KiB");
  EXPECT_EQ(human_bytes(3.5 * 1024 * 1024), "3.50 MiB");
}

TEST(Strings, HumanSeconds) {
  EXPECT_EQ(human_seconds(2.5), "2.500 s");
  EXPECT_EQ(human_seconds(0.002), "2.000 ms");
  EXPECT_EQ(human_seconds(3e-6), "3.000 us");
  EXPECT_EQ(human_seconds(5e-9), "5.0 ns");
}

TEST(Strings, ParseScaled) {
  EXPECT_EQ(parse_scaled_u64("0"), 0u);
  EXPECT_EQ(parse_scaled_u64("42"), 42u);
  EXPECT_EQ(parse_scaled_u64("3k"), 3000u);
  EXPECT_EQ(parse_scaled_u64("300m"), 300'000'000u);
  EXPECT_EQ(parse_scaled_u64("1g"), 1'000'000'000u);
  EXPECT_EQ(parse_scaled_u64("2G"), 2'000'000'000u);
  EXPECT_EQ(parse_scaled_u64(" 5k "), 5000u);
}

TEST(Strings, ParseScaledRejectsJunk) {
  EXPECT_THROW(parse_scaled_u64(""), ConfigError);
  EXPECT_THROW(parse_scaled_u64("k"), ConfigError);
  EXPECT_THROW(parse_scaled_u64("12x"), ConfigError);
  EXPECT_THROW(parse_scaled_u64("-5"), ConfigError);
  EXPECT_THROW(parse_scaled_u64("1.5k"), ConfigError);
}

}  // namespace
}  // namespace dpx10
