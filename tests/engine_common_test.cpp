// detail::initialize_cells / seed_ready / rebuild_after_death — the engine-
// shared structural phases, exercised directly on a DistArray.
#include <gtest/gtest.h>

#include <map>

#include "core/engine_common.h"
#include "core/patterns/registry.h"

namespace dpx10 {
namespace {

/// Counts upward; pre-finishes row 0 when `prefinish_row0` is set.
class CountApp final : public DPX10App<std::int32_t> {
 public:
  explicit CountApp(bool prefinish_row0 = false) : prefinish_row0_(prefinish_row0) {}

  std::int32_t compute(std::int32_t i, std::int32_t j,
                       std::span<const Vertex<std::int32_t>> deps) override {
    std::int32_t best = 0;
    for (const auto& d : deps) best = std::max(best, d.result());
    return best + i + j;
  }

  std::optional<std::int32_t> initial_value(VertexId id) const override {
    if (prefinish_row0_ && id.i == 0) return 100 + id.j;
    return std::nullopt;
  }

 private:
  bool prefinish_row0_;
};

TEST(InitializeCells, IndegreesMatchPattern) {
  auto dag = patterns::make_pattern("left-top-diag", 4, 4);
  DistArray<std::int32_t> array(dag->domain(), DistKind::BlockRow, PlaceGroup::dense(2));
  CountApp app;
  auto summary = detail::initialize_cells(array, *dag, app);
  EXPECT_EQ(summary.prefinished, 0u);
  EXPECT_EQ(summary.to_compute, 16u);
  EXPECT_EQ(array.cell(VertexId{0, 0}).indegree.load(), 0);
  EXPECT_EQ(array.cell(VertexId{0, 3}).indegree.load(), 1);
  EXPECT_EQ(array.cell(VertexId{3, 0}).indegree.load(), 1);
  EXPECT_EQ(array.cell(VertexId{2, 2}).indegree.load(), 3);
}

TEST(InitializeCells, PrefinishedCellsDoNotCount) {
  auto dag = patterns::make_pattern("left-top-diag", 4, 4);
  DistArray<std::int32_t> array(dag->domain(), DistKind::BlockRow, PlaceGroup::dense(2));
  CountApp app(/*prefinish_row0=*/true);
  auto summary = detail::initialize_cells(array, *dag, app);
  EXPECT_EQ(summary.prefinished, 4u);
  EXPECT_EQ(summary.to_compute, 12u);
  // Row-0 cells carry their initial values and the Prefinished state.
  EXPECT_EQ(array.cell(VertexId{0, 2}).value, 102);
  EXPECT_EQ(array.cell(VertexId{0, 2}).load_state(), CellState::Prefinished);
  // (1,1)'s deps (0,0),(0,1) are pre-finished; only (1,0) counts.
  EXPECT_EQ(array.cell(VertexId{1, 1}).indegree.load(), 1);
  // (1,0)'s only remaining dep (0,0) is pre-finished -> seed.
  EXPECT_EQ(array.cell(VertexId{1, 0}).indegree.load(), 0);
}

TEST(SeedReady, EmitsExactlyZeroIndegreeUnfinished) {
  auto dag = patterns::make_pattern("left", 3, 5);  // three row chains
  DistArray<std::int32_t> array(dag->domain(), DistKind::BlockRow, PlaceGroup::dense(3));
  CountApp app;
  detail::initialize_cells(array, *dag, app);
  std::map<std::int32_t, std::vector<std::int64_t>> pushed;
  detail::seed_ready(array, [&](std::int32_t place, std::int64_t idx) {
    pushed[place].push_back(idx);
  });
  // One seed per row: (i, 0), owned by place i under BlockRow/3 over 3 rows.
  ASSERT_EQ(pushed.size(), 3u);
  for (std::int32_t p = 0; p < 3; ++p) {
    ASSERT_EQ(pushed[p].size(), 1u) << "place " << p;
    EXPECT_EQ(array.domain().delinearize(pushed[p][0]), (VertexId{p, 0}));
  }
}

class RebuildTest : public ::testing::TestWithParam<RestoreMode> {};

TEST_P(RebuildTest, RestoreRulesPerMode) {
  const RestoreMode mode = GetParam();
  auto dag = patterns::make_pattern("left-top", 8, 4);
  CountApp app;
  // Old world: 4 places, rows {0,1},{2,3},{4,5},{6,7}.
  DistArray<std::int32_t> old_array(dag->domain(), DistKind::BlockRow, PlaceGroup::dense(4));
  detail::initialize_cells(old_array, *dag, app);
  // Mark rows 0..3 finished (places 0 and 1 in the old layout).
  for (std::int32_t i = 0; i < 4; ++i) {
    for (std::int32_t j = 0; j < 4; ++j) {
      auto& cell = old_array.cell(VertexId{i, j});
      cell.value = 1000 + i * 4 + j;
      cell.store_state(CellState::Finished, std::memory_order_relaxed);
    }
  }
  // Kill place 1 (owned rows 2,3 — finished, so they are lost).
  net::TrafficBook book(4);
  PlaceGroup survivors = PlaceGroup::dense(4).without(1);
  DistArray<std::int32_t> fresh(dag->domain(), DistKind::BlockRow, survivors);
  RecoveryRecord record =
      detail::rebuild_after_death(old_array, 1, mode, *dag, app, fresh, book);

  EXPECT_EQ(record.dead_place, 1);
  EXPECT_EQ(record.lost, 8u);  // rows 2-3
  // New layout over survivors {0,2,3}: rows {0,1,2},{3,4,5},{6,7}.
  // Finished rows 0,1 stay with old owner (place 0 slot 0) -> restored.
  // Row 2's data died. Row 3 was on dead place too. So restored = rows 0,1.
  EXPECT_EQ(record.restored, 8u);
  EXPECT_EQ(record.discarded, 0u);
  for (std::int32_t j = 0; j < 4; ++j) {
    EXPECT_EQ(fresh.cell(VertexId{0, j}).load_state(), CellState::Finished);
    EXPECT_EQ(fresh.cell(VertexId{0, j}).value, 1000 + j);
    EXPECT_EQ(fresh.cell(VertexId{2, j}).load_state(), CellState::Unfinished);
  }
  // Indegrees of unfinished cells count only unfinished deps:
  // (2,0) <- (1,0) finished -> indegree 0; (4,1) <- (3,1),(4,0) unfinished -> 2.
  EXPECT_EQ(fresh.cell(VertexId{2, 0}).indegree.load(), 0);
  EXPECT_EQ(fresh.cell(VertexId{4, 1}).indegree.load(), 2);
  EXPECT_EQ(detail::count_finished(fresh), 8u);
}

TEST_P(RebuildTest, OwnerChangeRespectsMode) {
  const RestoreMode mode = GetParam();
  auto dag = patterns::make_pattern("left-top", 6, 2);
  CountApp app;
  // Old: 3 places, rows {0,1},{2,3},{4,5}. Finish rows 4,5 (place 2).
  DistArray<std::int32_t> old_array(dag->domain(), DistKind::BlockRow, PlaceGroup::dense(3));
  detail::initialize_cells(old_array, *dag, app);
  for (std::int32_t i = 4; i < 6; ++i) {
    for (std::int32_t j = 0; j < 2; ++j) {
      auto& cell = old_array.cell(VertexId{i, j});
      cell.value = 7;
      cell.store_state(CellState::Finished, std::memory_order_relaxed);
    }
  }
  // Kill place 0. Survivors {1,2}: new rows {0,1,2},{3,4,5}.
  // Rows 4,5: old owner place 2, new owner place 2 for rows 3-5 -> stays!
  // To force a move, kill place 1 instead: survivors {0,2}: rows {0,1,2} ->
  // place 0, rows {3,4,5} -> place 2; rows 4,5 stay with place 2 again.
  // Use BlockCol... simpler: kill place 2's neighbour and check row 4 via
  // survivors {0,1}: rows {0,1,2} -> 0, {3,4,5} -> 1: rows 4,5 move 2 -> 1.
  net::TrafficBook book(3);
  PlaceGroup survivors = PlaceGroup::dense(3).without(2);
  // Place 2 is NOT dead here — we kill place 0's data but place 2 leaves the
  // group? That cannot happen in the real engine; instead simulate the
  // legal case: place 0 dies, but rows 4,5 owned by place 2 map to the new
  // slot of place 1? Recompute: survivors {1,2} -> slot0=place1 rows{0,1,2},
  // slot1=place2 rows{3,4,5}. Rows 4,5 stay. To exercise the move path we
  // finish rows 2,3 instead (old owner place 1):
  for (std::int32_t i = 4; i < 6; ++i) {
    for (std::int32_t j = 0; j < 2; ++j) {
      old_array.cell(VertexId{i, j}).store_state(CellState::Unfinished,
                                                 std::memory_order_relaxed);
    }
  }
  for (std::int32_t i = 2; i < 4; ++i) {
    for (std::int32_t j = 0; j < 2; ++j) {
      auto& cell = old_array.cell(VertexId{i, j});
      cell.value = 9;
      cell.store_state(CellState::Finished, std::memory_order_relaxed);
    }
  }
  // Kill place 0: survivors {1,2}; new owner of row 2 is place 1 (same),
  // row 3 -> place 2 (moved from place 1).
  PlaceGroup surv = PlaceGroup::dense(3).without(0);
  DistArray<std::int32_t> fresh(dag->domain(), DistKind::BlockRow, surv);
  RecoveryRecord record =
      detail::rebuild_after_death(old_array, 0, mode, *dag, app, fresh, book);
  (void)survivors;
  EXPECT_EQ(record.lost, 0u);
  if (mode == RestoreMode::DiscardRemote) {
    EXPECT_EQ(record.restored, 2u);   // row 2 stayed local
    EXPECT_EQ(record.discarded, 2u);  // row 3 moved -> dropped
    EXPECT_EQ(fresh.cell(VertexId{3, 0}).load_state(), CellState::Unfinished);
  } else {
    EXPECT_EQ(record.restored, 4u);
    EXPECT_EQ(record.restored_remote, 2u);
    EXPECT_EQ(record.discarded, 0u);
    EXPECT_EQ(fresh.cell(VertexId{3, 0}).load_state(), CellState::Finished);
    EXPECT_EQ(fresh.cell(VertexId{3, 0}).value, 9);
    // The move was accounted as recovery traffic from old to new owner.
    auto snap = book.snapshot(1);
    EXPECT_EQ(snap.messages_out[static_cast<std::size_t>(net::MessageKind::RecoveryTransfer)],
              2u);
  }
}

TEST_P(RebuildTest, PrefinishedCellsAlwaysRecovered) {
  const RestoreMode mode = GetParam();
  auto dag = patterns::make_pattern("left-top-diag", 4, 4);
  CountApp app(/*prefinish_row0=*/true);
  DistArray<std::int32_t> old_array(dag->domain(), DistKind::BlockRow, PlaceGroup::dense(4));
  detail::initialize_cells(old_array, *dag, app);
  net::TrafficBook book(4);
  PlaceGroup surv = PlaceGroup::dense(4).without(0);
  DistArray<std::int32_t> fresh(dag->domain(), DistKind::BlockRow, surv);
  detail::rebuild_after_death(old_array, 0, mode, *dag, app, fresh, book);
  // Row 0 was owned by the dead place, but it is pre-finished state derived
  // from the app, so it must be re-derived, not lost.
  for (std::int32_t j = 0; j < 4; ++j) {
    EXPECT_EQ(fresh.cell(VertexId{0, j}).load_state(), CellState::Prefinished);
    EXPECT_EQ(fresh.cell(VertexId{0, j}).value, 100 + j);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, RebuildTest,
                         ::testing::Values(RestoreMode::DiscardRemote,
                                           RestoreMode::RestoreRemote),
                         [](const ::testing::TestParamInfo<RestoreMode>& info) {
                           return info.param == RestoreMode::DiscardRemote ? "discard"
                                                                           : "restore";
                         });

}  // namespace
}  // namespace dpx10
