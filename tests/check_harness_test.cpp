// dpx10check runner tests: single-run differential verification on both
// engines, knob-matrix / schedule / crash-sweep expansion, event-indexed
// fault plans, and the reproducer plumbing.
#include <gtest/gtest.h>

#include <set>

#include "check/perturb.h"
#include "check/runner.h"

namespace dpx10::check {
namespace {

TEST(CheckHarness, DefaultSpecPassesOnBothEngines) {
  for (EngineKind engine : {EngineKind::Sim, EngineKind::Threaded}) {
    CaseSpec spec;
    spec.engine = engine;
    const RunOutcome outcome = run_single(spec);
    EXPECT_TRUE(outcome.ok) << outcome.reason;
    EXPECT_EQ(outcome.computed, 64u);  // 8x8 rect, nothing prefinished
  }
}

TEST(CheckHarness, EveryPatternPassesOnBothEngines) {
  for (const char* pattern :
       {"left-top", "left-top-diag", "left", "interval", "top", "diag",
        "pyramid", "full-prefix", "interval-prefix", "random",
        "random-banded", "random-upper"}) {
    for (EngineKind engine : {EngineKind::Sim, EngineKind::Threaded}) {
      CaseSpec spec;
      spec.pattern = pattern;
      spec.height = 6;
      spec.width = 7;
      spec.seed = 11;
      spec.engine = engine;
      spec.normalize();
      const RunOutcome outcome = run_single(spec);
      EXPECT_TRUE(outcome.ok) << pattern << "/" << engine_kind_name(engine)
                              << ": " << outcome.reason;
    }
  }
}

TEST(CheckHarness, PrefinishedCellsKeepTheReplayLawExact) {
  CaseSpec spec;
  spec.prefin = 300;
  spec.seed = 21;
  spec.normalize();
  const RunOutcome outcome = run_single(spec);
  EXPECT_TRUE(outcome.ok) << outcome.reason;
  EXPECT_LT(outcome.computed, 64u);  // prefinished cells never compute
}

TEST(CheckHarness, MatrixExpansionCoversTheKnobCross) {
  CaseSpec spec;
  spec.mode = CaseMode::Matrix;
  spec.seed = 9;
  const std::vector<CaseSpec> expanded = expand_case(spec);
  ASSERT_EQ(expanded.size(), 54u);  // 48 sim cross + 6 threaded slice
  std::set<std::string> sim_combos;
  int threaded = 0;
  int tiled = 0;
  for (const CaseSpec& s : expanded) {
    EXPECT_EQ(s.mode, CaseMode::Single);
    EXPECT_EQ(s.crash_place, -1);
    tiled += s.tile > 1;
    if (s.engine == EngineKind::Sim) {
      sim_combos.insert(std::string(scheduling_name(s.scheduling)) + "/" +
                        std::to_string(s.coalescing) + "/" +
                        std::string(mem::retirement_mode_name(s.retirement)) +
                        "/" + std::to_string(s.tile));
    } else {
      ++threaded;
    }
  }
  // Full scheduling x coal x retirement cross, per-cell AND B=3 macro-DAG.
  EXPECT_EQ(sim_combos.size(), 48u);
  EXPECT_EQ(threaded, 6);
  EXPECT_GT(tiled, 0);  // the tiled half of the cross survives normalize()
}

TEST(CheckHarness, SchedulesExpansionSeedsBothEngines) {
  CaseSpec spec;
  spec.mode = CaseMode::Schedules;
  spec.seed = 31;
  const std::vector<CaseSpec> expanded = expand_case(spec);
  ASSERT_EQ(expanded.size(), 6u);
  int sim = 0, threaded = 0;
  for (const CaseSpec& s : expanded) {
    EXPECT_NE(s.hook_seed, 0u);
    (s.engine == EngineKind::Sim ? sim : threaded)++;
  }
  EXPECT_EQ(sim, 3);
  EXPECT_EQ(threaded, 3);
}

TEST(CheckHarness, MatrixAndSchedulesCasesPass) {
  for (CaseMode mode : {CaseMode::Matrix, CaseMode::Schedules}) {
    CaseSpec spec;
    spec.mode = mode;
    spec.height = 6;
    spec.width = 6;
    spec.seed = 17;
    spec.normalize();
    std::int64_t runs = 0;
    const std::optional<Failure> failure = run_case(spec, {}, &runs);
    EXPECT_FALSE(failure.has_value())
        << case_mode_name(mode) << ": " << failure->reason;
    EXPECT_GT(runs, 0);
  }
}

TEST(CheckHarness, SimEventFaultFiresAndReplaysWork) {
  // Deterministic: the simulator kills place 2 before its 50th event; the
  // recovery recomputes the dead place's finished work, so the compute
  // count exceeds the 64-vertex domain while values still match the oracle.
  const CaseSpec spec =
      CaseSpec::decode("engine=sim,seed=5,nplaces=4,cplace=2,cevent=50");
  const RunOutcome outcome = run_single(spec);
  EXPECT_TRUE(outcome.ok) << outcome.reason;
  EXPECT_GT(outcome.computed, 64u);
}

TEST(CheckHarness, ThreadedEventFaultFiresAtTheFinishedThreshold) {
  const CaseSpec spec =
      CaseSpec::decode("engine=threaded,seed=5,nplaces=4,cplace=2,cevent=60");
  const RunOutcome outcome = run_single(spec);
  EXPECT_TRUE(outcome.ok) << outcome.reason;
  EXPECT_GE(outcome.computed, 64u);
}

TEST(CheckHarness, PlaceZeroDeathIsExpectedToRaise) {
  for (EngineKind engine : {EngineKind::Sim, EngineKind::Threaded}) {
    CaseSpec spec;
    spec.engine = engine;
    spec.nplaces = 4;
    spec.crash_place = 0;
    spec.crash_event = 10;
    spec.seed = 5;
    spec.normalize();
    const RunOutcome outcome = run_single(spec);
    EXPECT_TRUE(outcome.ok) << engine_kind_name(engine) << ": "
                            << outcome.reason;
  }
}

TEST(CheckHarness, CrashSweepPassesOnBothEngines) {
  for (EngineKind engine : {EngineKind::Sim, EngineKind::Threaded}) {
    CaseSpec spec;
    spec.mode = CaseMode::Crashes;
    spec.engine = engine;
    spec.height = 6;
    spec.width = 6;
    spec.nplaces = 3;
    spec.seed = 41;
    spec.normalize();
    std::int64_t runs = 0;
    const std::optional<Failure> failure = run_case(spec, {}, &runs);
    EXPECT_FALSE(failure.has_value())
        << engine_kind_name(engine) << ": " << failure->reason;
    EXPECT_GT(runs, 2);  // baseline + several crash points
  }
}

TEST(CheckHarness, SimShufflerExploresButStaysDeterministic) {
  CaseSpec spec;
  spec.hook_seed = 123;
  spec.seed = 7;
  const RunOutcome first = run_single(spec);
  const RunOutcome second = run_single(spec);
  EXPECT_TRUE(first.ok) << first.reason;
  // Virtual time: the same shuffle seed replays the same schedule exactly.
  EXPECT_EQ(first.sim_events, second.sim_events);

  CaseSpec other = spec;
  other.hook_seed = 456;
  EXPECT_TRUE(run_single(other).ok);
}

TEST(CheckHarness, PctPerturberKeepsTheThreadedEngineCorrect) {
  for (std::uint64_t hook_seed : {1ull, 2ull, 3ull}) {
    CaseSpec spec;
    spec.engine = EngineKind::Threaded;
    spec.hook_seed = hook_seed;
    spec.nthreads = 3;
    spec.seed = 13;
    const RunOutcome outcome = run_single(spec);
    EXPECT_TRUE(outcome.ok) << "hook_seed " << hook_seed << ": "
                            << outcome.reason;
  }
}

TEST(CheckHarness, ReproCommandRoundTrips) {
  CaseSpec spec;
  spec.engine = EngineKind::Threaded;
  spec.height = 5;
  spec.normalize();
  const std::string command = repro_command(spec);
  EXPECT_NE(command.find("dpx10check --repro='"), std::string::npos);
  const std::size_t open = command.find('\'');
  const std::size_t close = command.rfind('\'');
  const CaseSpec decoded =
      CaseSpec::decode(command.substr(open + 1, close - open - 1));
  EXPECT_EQ(decoded.encode(), spec.encode());
}

TEST(CheckHarness, FuzzRunsCleanOnASmallBudget) {
  FuzzOptions options;
  options.cases = 40;
  options.seed = 2026;
  const FuzzResult result = fuzz(options);
  EXPECT_EQ(result.cases_run, 40);
  EXPECT_FALSE(result.failure.has_value()) << result.failure->reason;
  EXPECT_GE(result.engine_runs, 40);
}

}  // namespace
}  // namespace dpx10::check
