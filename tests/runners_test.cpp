// dp::runners — the bench entry point: sizing and end-to-end launches.
#include <gtest/gtest.h>

#include "common/error.h"
#include "dp/runners.h"

namespace dpx10::dp {
namespace {

TEST(Shapes, ApproximateTargetSize) {
  for (const std::string& app : runnable_apps()) {
    for (std::int64_t target : {1000, 10'000, 250'000}) {
      ProblemShape shape = shape_for(app, target);
      EXPECT_GT(shape.height, 1) << app;
      EXPECT_GT(shape.width, 1) << app;
      // Within a factor of two of the request (rounding a square/triangle).
      EXPECT_GT(shape.vertices, target / 2) << app << " at " << target;
      EXPECT_LT(shape.vertices, target * 2) << app << " at " << target;
    }
  }
}

TEST(Shapes, LpsIsTriangular) {
  ProblemShape s = shape_for("lps", 10'000);
  EXPECT_EQ(s.height, s.width);
  EXPECT_EQ(s.vertices, static_cast<std::int64_t>(s.height) * (s.height + 1) / 2);
}

TEST(Shapes, KnapsackIsWide) {
  ProblemShape s = shape_for("knapsack", 100'000);
  EXPECT_GT(s.width, s.height);
}

TEST(Shapes, TooSmallRejected) { EXPECT_THROW(shape_for("lcs", 2), ConfigError); }

class RunnerSweep
    : public ::testing::TestWithParam<std::tuple<std::string, EngineKind>> {};

TEST_P(RunnerSweep, CompletesAndAccounts) {
  auto [app, engine] = GetParam();
  RuntimeOptions opts;
  opts.nplaces = 3;
  opts.nthreads = 2;
  RunReport report = run_dp_app(app, engine, 2000, opts);
  EXPECT_EQ(report.computed, report.vertices - report.prefinished);
  EXPECT_GT(report.elapsed_seconds, 0.0);
  EXPECT_EQ(report.places.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    AppsTimesEngines, RunnerSweep,
    ::testing::Combine(::testing::Values("swlag", "mtp", "lps", "knapsack", "lcs", "sw",
                                         "nussinov"),
                       ::testing::Values(EngineKind::Threaded, EngineKind::Sim)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, EngineKind>>& info) {
      return std::get<0>(info.param) +
             (std::get<1>(info.param) == EngineKind::Threaded ? "_threaded" : "_sim");
    });

TEST(Runner, UnknownAppThrows) {
  RuntimeOptions opts;
  EXPECT_THROW(run_dp_app("nope", EngineKind::Sim, 1000, opts), ConfigError);
}

TEST(Runner, SameSeedSameSimTime) {
  RuntimeOptions opts;
  opts.nplaces = 4;
  opts.nthreads = 2;
  RunReport a = run_dp_app("swlag", EngineKind::Sim, 5000, opts, 9);
  RunReport b = run_dp_app("swlag", EngineKind::Sim, 5000, opts, 9);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
}

}  // namespace
}  // namespace dpx10::dp
