// Regression corpus: every line of tests/repro/cases.txt is an encoded
// dpx10check CaseSpec that once exercised a bug or a hard-won edge case
// (crash-at-place-0, spill pressure during recovery, snapshot rollback
// under coalescing, ...). Each must pass forever. When dpx10check finds a
// failure, its shrunk reproducer line gets appended here — see
// docs/TESTING.md for the workflow.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "check/runner.h"

#ifndef DPX10_REPRO_DIR
#error "DPX10_REPRO_DIR must point at tests/repro"
#endif

namespace dpx10::check {
namespace {

std::vector<std::string> load_corpus() {
  std::ifstream in(std::string(DPX10_REPRO_DIR) + "/cases.txt");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    lines.push_back(line);
  }
  return lines;
}

TEST(ReproCorpus, CorpusExistsAndIsNonEmpty) {
  EXPECT_FALSE(load_corpus().empty())
      << "tests/repro/cases.txt missing or empty";
}

TEST(ReproCorpus, EveryCaseStillPasses) {
  for (const std::string& line : load_corpus()) {
    SCOPED_TRACE(line);
    CaseSpec spec;
    ASSERT_NO_THROW(spec = CaseSpec::decode(line));
    const RunOutcome outcome = run_single(spec);
    EXPECT_TRUE(outcome.ok) << outcome.reason << "\n  repro: "
                            << repro_command(spec);
  }
}

}  // namespace
}  // namespace dpx10::check
