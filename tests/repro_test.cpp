// Regression corpus: every line of tests/repro/cases.txt is an encoded
// dpx10check CaseSpec that once exercised a bug or a hard-won edge case
// (crash-at-place-0, spill pressure during recovery, snapshot rollback
// under coalescing, ...). Each must pass forever. When dpx10check finds a
// failure, its shrunk reproducer line gets appended here — see
// docs/TESTING.md for the workflow.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "check/runner.h"

#ifndef DPX10_REPRO_DIR
#error "DPX10_REPRO_DIR must point at tests/repro"
#endif

namespace dpx10::check {
namespace {

std::vector<std::string> load_corpus() {
  std::ifstream in(std::string(DPX10_REPRO_DIR) + "/cases.txt");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    lines.push_back(line);
  }
  return lines;
}

TEST(ReproCorpus, CorpusExistsAndIsNonEmpty) {
  EXPECT_FALSE(load_corpus().empty())
      << "tests/repro/cases.txt missing or empty";
}

TEST(ReproCorpus, EveryCaseStillPasses) {
  for (const std::string& line : load_corpus()) {
    SCOPED_TRACE(line);
    CaseSpec spec;
    ASSERT_NO_THROW(spec = CaseSpec::decode(line));
    const RunOutcome outcome = run_single(spec);
    EXPECT_TRUE(outcome.ok) << outcome.reason << "\n  repro: "
                            << repro_command(spec);
  }
}

TEST(ReproCorpus, WitnessSchedulesReplayByteIdentically) {
  // DPOR-discovered schedules (the `witness=` lines) are kept canonical:
  // decode -> normalize -> encode reproduces the corpus line byte for
  // byte, and replaying the schedule twice is bit-stable — same event
  // count, same computed count, same verdict. Anything else means the
  // witness encoding or the sim's determinism regressed, and every stored
  // schedule silently stops testing the interleaving it was mined from.
  int witnesses = 0;
  for (const std::string& line : load_corpus()) {
    if (line.find("witness=") == std::string::npos) continue;
    SCOPED_TRACE(line);
    ++witnesses;
    CaseSpec spec;
    ASSERT_NO_THROW(spec = CaseSpec::decode(line));
    spec.normalize();
    EXPECT_EQ(spec.encode(), line) << "corpus witness line is not canonical";
    EXPECT_EQ(spec.engine, EngineKind::Sim);
    const RunOutcome first = run_single(spec);
    const RunOutcome again = run_single(spec);
    EXPECT_TRUE(first.ok) << first.reason;
    EXPECT_EQ(first.ok, again.ok);
    EXPECT_EQ(first.sim_events, again.sim_events);
    EXPECT_EQ(first.computed, again.computed);
  }
  EXPECT_GT(witnesses, 0) << "the DPOR schedule batch is missing";
}

}  // namespace
}  // namespace dpx10::check
