// End-to-end smoke: both engines compute the same LCS matrix as the serial
// reference on a small instance.
#include <gtest/gtest.h>

#include "core/dpx10.h"
#include "dp/lcs.h"

namespace dpx10 {
namespace {

TEST(Smoke, ThreadedLcsMatchesSerial) {
  dp::LcsApp app("TAGCCATGC", "CATGCTTAG");
  auto dag = patterns::make_pattern("left-top-diag", 10, 10);
  RuntimeOptions opts;
  opts.nplaces = 3;
  opts.nthreads = 2;
  ThreadedEngine<std::int32_t> engine(opts);
  RunReport report = engine.run(*dag, app);
  EXPECT_EQ(report.computed, 100u);

  // Re-run to get a view: use the sim engine which is deterministic.
  SimEngine<std::int32_t> sim(opts);
  dp::LcsApp app2("TAGCCATGC", "CATGCTTAG");
  RunReport r2 = sim.run(*dag, app2);
  EXPECT_EQ(r2.computed, 100u);

  auto serial = dp::serial_lcs("TAGCCATGC", "CATGCTTAG");
  EXPECT_EQ(serial.at(9, 9), 5);
}

}  // namespace
}  // namespace dpx10
