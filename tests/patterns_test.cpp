// Built-in DAG patterns: explicit edge expectations on small instances.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "core/patterns/registry.h"

namespace dpx10 {
namespace {

std::vector<VertexId> deps_of(const Dag& dag, VertexId v) {
  std::vector<VertexId> out;
  dag.dependencies(v, out);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VertexId> antideps_of(const Dag& dag, VertexId v) {
  std::vector<VertexId> out;
  dag.anti_dependencies(v, out);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(PatternRegistry, HasEightBuiltins) {
  EXPECT_EQ(patterns::builtin_pattern_names().size(), 8u);
}

TEST(PatternRegistry, UnknownNameThrows) {
  EXPECT_THROW(patterns::make_pattern("no-such-pattern", 4, 4), ConfigError);
}

TEST(PatternRegistry, IntervalRequiresSquare) {
  EXPECT_THROW(patterns::make_pattern("interval", 4, 5), ConfigError);
  EXPECT_NO_THROW(patterns::make_pattern("interval", 5, 5));
}

TEST(Pattern, LeftTopEdges) {
  auto dag = patterns::make_pattern("left-top", 4, 4);
  EXPECT_TRUE(deps_of(*dag, {0, 0}).empty());
  EXPECT_EQ(deps_of(*dag, {0, 2}), (std::vector<VertexId>{{0, 1}}));
  EXPECT_EQ(deps_of(*dag, {2, 0}), (std::vector<VertexId>{{1, 0}}));
  EXPECT_EQ(deps_of(*dag, {2, 2}), (std::vector<VertexId>{{1, 2}, {2, 1}}));
  EXPECT_EQ(antideps_of(*dag, {3, 3}), (std::vector<VertexId>{}));
  EXPECT_EQ(antideps_of(*dag, {1, 1}), (std::vector<VertexId>{{1, 2}, {2, 1}}));
}

TEST(Pattern, LeftTopDiagEdges) {
  auto dag = patterns::make_pattern("left-top-diag", 4, 4);
  EXPECT_TRUE(deps_of(*dag, {0, 0}).empty());
  EXPECT_EQ(deps_of(*dag, {1, 0}), (std::vector<VertexId>{{0, 0}}));
  EXPECT_EQ(deps_of(*dag, {2, 2}), (std::vector<VertexId>{{1, 1}, {1, 2}, {2, 1}}));
  EXPECT_EQ(antideps_of(*dag, {1, 1}), (std::vector<VertexId>{{1, 2}, {2, 1}, {2, 2}}));
}

TEST(Pattern, LeftOnlyRowChains) {
  auto dag = patterns::make_pattern("left", 3, 4);
  for (std::int32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(deps_of(*dag, {i, 0}).empty());
    EXPECT_EQ(deps_of(*dag, {i, 2}), (std::vector<VertexId>{{i, 1}}));
    EXPECT_TRUE(antideps_of(*dag, {i, 3}).empty());
  }
}

TEST(Pattern, TopOnlyColumnChains) {
  auto dag = patterns::make_pattern("top", 4, 3);
  for (std::int32_t j = 0; j < 3; ++j) {
    EXPECT_TRUE(deps_of(*dag, {0, j}).empty());
    EXPECT_EQ(deps_of(*dag, {2, j}), (std::vector<VertexId>{{1, j}}));
    EXPECT_TRUE(antideps_of(*dag, {3, j}).empty());
  }
}

TEST(Pattern, DiagOnlyChains) {
  auto dag = patterns::make_pattern("diag", 4, 4);
  EXPECT_TRUE(deps_of(*dag, {0, 2}).empty());
  EXPECT_TRUE(deps_of(*dag, {2, 0}).empty());
  EXPECT_EQ(deps_of(*dag, {2, 3}), (std::vector<VertexId>{{1, 2}}));
  EXPECT_EQ(antideps_of(*dag, {1, 2}), (std::vector<VertexId>{{2, 3}}));
}

TEST(Pattern, IntervalEdgesAndDomain) {
  auto dag = patterns::make_pattern("interval", 5, 5);
  EXPECT_EQ(dag->domain().kind(), DagDomain::Kind::UpperTriangular);
  // Diagonal cells are the seeds.
  EXPECT_TRUE(deps_of(*dag, {2, 2}).empty());
  // (1,3) <- (1,2), (2,3), (2,2)
  EXPECT_EQ(deps_of(*dag, {1, 3}), (std::vector<VertexId>{{1, 2}, {2, 2}, {2, 3}}));
  // The top-right corner is the sink.
  EXPECT_TRUE(antideps_of(*dag, {0, 4}).empty());
}

TEST(Pattern, PyramidEdges) {
  auto dag = patterns::make_pattern("pyramid", 4, 4);
  EXPECT_TRUE(deps_of(*dag, {0, 1}).empty());
  EXPECT_EQ(deps_of(*dag, {1, 0}), (std::vector<VertexId>{{0, 0}, {0, 1}}));
  EXPECT_EQ(deps_of(*dag, {2, 1}), (std::vector<VertexId>{{1, 0}, {1, 1}, {1, 2}}));
  EXPECT_EQ(antideps_of(*dag, {1, 3}), (std::vector<VertexId>{{2, 2}, {2, 3}}));
}

TEST(Pattern, FullPrefixEdges) {
  auto dag = patterns::make_pattern("full-prefix", 3, 3);
  EXPECT_TRUE(deps_of(*dag, {0, 0}).empty());
  EXPECT_EQ(deps_of(*dag, {2, 2}),
            (std::vector<VertexId>{{0, 2}, {1, 2}, {2, 0}, {2, 1}}));
  EXPECT_EQ(deps_of(*dag, {0, 2}), (std::vector<VertexId>{{0, 0}, {0, 1}}));
  EXPECT_EQ(antideps_of(*dag, {1, 1}), (std::vector<VertexId>{{1, 2}, {2, 1}}));
}

TEST(Pattern, SizeOneByOne) {
  // Every rectangular pattern must handle the degenerate 1x1 DAG.
  for (const std::string& name : patterns::builtin_pattern_names()) {
    if (name == "interval") continue;  // needs n >= 1 too, but check square
    auto dag = patterns::make_pattern(name, 1, 1);
    EXPECT_TRUE(deps_of(*dag, {0, 0}).empty()) << name;
    EXPECT_TRUE(antideps_of(*dag, {0, 0}).empty()) << name;
  }
  auto interval = patterns::make_pattern("interval", 1, 1);
  EXPECT_TRUE(deps_of(*interval, {0, 0}).empty());
}

}  // namespace
}  // namespace dpx10
