// SpillStore (src/mem): the file-backed byte store one place uses for
// retired cell payloads. Append-only with a latest-extent index; the file
// vanishes with clear()/destruction.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.h"
#include "mem/spill_codec.h"
#include "mem/spill_store.h"

namespace dpx10::mem {
namespace {

namespace fs = std::filesystem;

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) out[i] = static_cast<std::byte>(s[i]);
  return out;
}

std::string string_of(const std::vector<std::byte>& b) {
  std::string out(b.size(), '\0');
  for (std::size_t i = 0; i < b.size(); ++i) out[i] = static_cast<char>(b[i]);
  return out;
}

TEST(SpillStore, PutGetRoundtrip) {
  SpillStore store;
  store.configure(::testing::TempDir(), 0);
  const auto a = bytes_of("hello");
  const auto b = bytes_of("governor");
  store.put(7, a.data(), a.size());
  store.put(42, b.data(), b.size());

  EXPECT_TRUE(store.has(7));
  EXPECT_TRUE(store.has(42));
  EXPECT_FALSE(store.has(8));
  EXPECT_EQ(store.entries(), 2u);
  EXPECT_EQ(store.bytes_stored(), a.size() + b.size());

  std::vector<std::byte> out;
  ASSERT_TRUE(store.get(7, out));
  EXPECT_EQ(string_of(out), "hello");
  ASSERT_TRUE(store.get(42, out));
  EXPECT_EQ(string_of(out), "governor");
}

TEST(SpillStore, GetOnMissingKeyIsFalse) {
  SpillStore store;
  store.configure(::testing::TempDir(), 1);
  std::vector<std::byte> out;
  EXPECT_FALSE(store.get(123, out));
}

// A respill after recovery appends a new extent; the index serves the
// newest one and bytes_stored tracks only addressable bytes, while
// bytes_written keeps the cumulative file traffic.
TEST(SpillStore, ReplaceServesLatestExtent) {
  SpillStore store;
  store.configure(::testing::TempDir(), 2);
  const auto v1 = bytes_of("first");
  const auto v2 = bytes_of("second!");
  store.put(5, v1.data(), v1.size());
  store.put(5, v2.data(), v2.size());

  EXPECT_EQ(store.entries(), 1u);
  EXPECT_EQ(store.bytes_stored(), v2.size());
  EXPECT_EQ(store.bytes_written(), v1.size() + v2.size());
  std::vector<std::byte> out;
  ASSERT_TRUE(store.get(5, out));
  EXPECT_EQ(string_of(out), "second!");
}

TEST(SpillStore, ClearForgetsEntriesAndRemovesFile) {
  SpillStore store;
  store.configure(::testing::TempDir(), 3);
  const auto v = bytes_of("payload");
  store.put(1, v.data(), v.size());
  const std::string path = store.path();
  ASSERT_TRUE(fs::exists(path));

  store.clear();
  EXPECT_FALSE(fs::exists(path));
  EXPECT_EQ(store.entries(), 0u);
  EXPECT_EQ(store.bytes_stored(), 0u);
  EXPECT_FALSE(store.has(1));
}

TEST(SpillStore, DestructorRemovesFile) {
  std::string path;
  {
    SpillStore store;
    store.configure(::testing::TempDir(), 4);
    const auto v = bytes_of("x");
    store.put(0, v.data(), v.size());
    path = store.path();
    ASSERT_TRUE(fs::exists(path));
  }
  EXPECT_FALSE(fs::exists(path));
}

TEST(SpillStore, ReconfigureDropsPreviousContents) {
  SpillStore store;
  store.configure(::testing::TempDir(), 5);
  const auto v = bytes_of("old");
  store.put(9, v.data(), v.size());
  const std::string old_path = store.path();

  store.configure(::testing::TempDir(), 6);
  EXPECT_FALSE(fs::exists(old_path));
  EXPECT_EQ(store.entries(), 0u);
  EXPECT_FALSE(store.has(9));
}

TEST(SpillStore, EmptyDirMeansSystemTemp) {
  SpillStore store;
  store.configure("", 7);
  const auto v = bytes_of("tmp");
  store.put(3, v.data(), v.size());
  EXPECT_EQ(fs::path(store.path()).parent_path(), fs::temp_directory_path());
  std::vector<std::byte> out;
  ASSERT_TRUE(store.get(3, out));
  EXPECT_EQ(string_of(out), "tmp");
}

TEST(SpillStore, PutBeforeConfigureThrows) {
  SpillStore store;
  const auto v = bytes_of("no");
  EXPECT_THROW(store.put(0, v.data(), v.size()), ConfigError);
}

// The codec the governor feeds the store with: trivially-copyable values
// round-trip byte-exactly, and decode rejects size mismatches.
TEST(SpillCodec, TriviallyCopyableRoundtrip) {
  static_assert(SpillCodec<std::int32_t>::available);
  std::vector<std::byte> bytes;
  SpillCodec<std::int32_t>::encode(-123456, bytes);
  std::int32_t back = 0;
  ASSERT_TRUE(SpillCodec<std::int32_t>::decode(bytes.data(), bytes.size(), back));
  EXPECT_EQ(back, -123456);
  EXPECT_FALSE(SpillCodec<std::int32_t>::decode(bytes.data(), bytes.size() - 1, back));
}

}  // namespace
}  // namespace dpx10::mem
