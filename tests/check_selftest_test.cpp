// dpx10check self-test (mutation-testing guard): plant a hidden bug in the
// engines — flip a bit of a published value, or silently drop an
// anti-dependency indegree decrement — and assert the harness (a) catches
// it within a small number of cases, (b) shrinks the failure to a <= 64
// vertex reproducer that still fails. If the harness ever loses its teeth,
// these tests rust shut before a real engine bug slips through.
#include <gtest/gtest.h>

#include "check/explore.h"
#include "check/runner.h"

namespace dpx10::check {
namespace {

constexpr int kMaxCases = 50;
constexpr std::int64_t kMaxShrunkVertices = 64;

FuzzOptions planted(PlantedBug bug, EngineKind engine) {
  FuzzOptions options;
  options.cases = kMaxCases;
  options.seed = 3;
  options.engine = engine;
  options.bug = bug;
  options.shrink_budget = 60;
  options.wedge_ms = 300;  // wedging candidates cost this much wall time
  return options;
}

void expect_caught_and_shrunk(const FuzzResult& result) {
  ASSERT_TRUE(result.failure.has_value())
      << "planted bug survived " << result.cases_run << " cases";
  ASSERT_TRUE(result.shrunk.has_value());
  const Failure& shrunk = *result.shrunk;
  EXPECT_LE(shrunk.spec.vertex_count(), kMaxShrunkVertices);
  // The reproducer is self-contained: replaying the shrunk spec (which
  // carries the planted bug and its salt) must still fail.
  const RunOutcome replay = run_single(shrunk.spec);
  EXPECT_FALSE(replay.ok);
}

TEST(CheckSelfTest, MutatedValueIsCaughtOnTheSimEngine) {
  const FuzzResult result = fuzz(planted(PlantedBug::MutateValue, EngineKind::Sim));
  expect_caught_and_shrunk(result);
  EXPECT_NE(result.failure->reason.find("mismatch"), std::string::npos)
      << result.failure->reason;
}

TEST(CheckSelfTest, MutatedValueIsCaughtOnTheThreadedEngine) {
  const FuzzResult result =
      fuzz(planted(PlantedBug::MutateValue, EngineKind::Threaded));
  expect_caught_and_shrunk(result);
}

TEST(CheckSelfTest, DroppedDecrementDrainsTheSimEventQueue) {
  const FuzzResult result =
      fuzz(planted(PlantedBug::DropDecrement, EngineKind::Sim));
  expect_caught_and_shrunk(result);
  EXPECT_NE(result.failure->reason.find("drained"), std::string::npos)
      << result.failure->reason;
}

TEST(CheckSelfTest, DroppedDecrementWedgesTheThreadedEngine) {
  // The threaded engine cannot notice a lost decrement directly — the run
  // just stops making progress. The wedge (quiescence) detector must turn
  // that hang into a diagnosable InternalError within the spec's timeout.
  const FuzzResult result =
      fuzz(planted(PlantedBug::DropDecrement, EngineKind::Threaded));
  expect_caught_and_shrunk(result);
  EXPECT_NE(result.failure->reason.find("wedged"), std::string::npos)
      << result.failure->reason;
}

// ---- explorer self-tests: the bounded-DPOR DFS must catch both planted
// bugs by EXHAUSTIVE exploration at minimal depth (the bugs are
// schedule-independent, so the very first explored interleaving — the
// all-defaults root run — must already trip the oracle), and the returned
// witness spec must replay and shrink like any other failure.

// The explorer's 8-vertex model with a planted bug. The bug salt is swept
// until the seeded victim hash actually selects a victim inside this tiny
// model (selection is ~1/8 per vertex/edge, so a fixed salt could select
// nobody and the test would assert vacuously).
void explorer_finds_planted_bug(PlantedBug bug) {
  for (std::uint64_t salt = 1; salt <= 64; ++salt) {
    CaseSpec spec =
        CaseSpec::decode("seed=3,h=2,w=4,nplaces=2,nthreads=1,cache=0");
    spec.bug = bug;
    spec.bug_salt = salt;
    spec.normalize();
    ExploreOptions eopts;
    eopts.fallback_samples = 0;  // the DFS itself must find it
    const ExploreResult r = explore_case(spec, eopts);
    if (!r.failure.has_value()) continue;  // salt selected no victim
    EXPECT_EQ(r.explored, 1)
        << "a schedule-independent bug must fall out of the root run";
    // The failure spec is a complete one-line reproducer: same model, same
    // planted bug, plus the (possibly empty — the root run takes every
    // default branch) schedule witness. It must replay to the same verdict.
    const Failure& failure = *r.failure;
    EXPECT_EQ(failure.spec.mode, CaseMode::Single);
    EXPECT_EQ(failure.spec.engine, EngineKind::Sim);
    const RunOutcome replay = run_single(failure.spec);
    ASSERT_FALSE(replay.ok);
    EXPECT_EQ(replay.reason, failure.reason);
    // And it shrinks like any fuzz failure, still failing afterwards.
    std::string reason = failure.reason;
    const CaseSpec shrunk = shrink(failure.spec, 60, &reason);
    EXPECT_LE(shrunk.vertex_count(), failure.spec.vertex_count());
    EXPECT_FALSE(run_single(shrunk).ok);
    return;
  }
  FAIL() << "no bug salt selected a victim in 64 attempts";
}

TEST(CheckSelfTest, ExplorerFindsMutatedValueExhaustively) {
  explorer_finds_planted_bug(PlantedBug::MutateValue);
}

TEST(CheckSelfTest, ExplorerFindsDroppedDecrementExhaustively) {
  explorer_finds_planted_bug(PlantedBug::DropDecrement);
}

TEST(CheckSelfTest, ExplorerWitnessSurvivesNonRootFailures) {
  // Force the failure to be discovered on a NON-root run: plant the bug,
  // but cap the run budget to walk a few nodes first. Wherever the DFS
  // trips (here: still the first run, but the witness plumbing is what we
  // assert), the witness spec must replay byte-stable through the
  // one-line encoding — decode(encode(spec)) reproduces the failure.
  for (std::uint64_t salt = 1; salt <= 64; ++salt) {
    CaseSpec spec =
        CaseSpec::decode("seed=3,h=2,w=4,nplaces=2,nthreads=1,cache=0");
    spec.bug = PlantedBug::MutateValue;
    spec.bug_salt = salt;
    spec.normalize();
    ExploreOptions eopts;
    eopts.fallback_samples = 0;
    const ExploreResult r = explore_case(spec, eopts);
    if (!r.failure.has_value()) continue;
    CaseSpec decoded = CaseSpec::decode(r.failure->spec.encode());
    decoded.normalize();
    EXPECT_EQ(decoded.encode(), r.failure->spec.encode());
    const RunOutcome replay = run_single(decoded);
    EXPECT_FALSE(replay.ok);
    EXPECT_EQ(replay.reason, r.failure->reason);
    return;
  }
  FAIL() << "no bug salt selected a victim in 64 attempts";
}

TEST(CheckSelfTest, NoPlantedBugMeansNoFailure) {
  FuzzOptions options;
  options.cases = kMaxCases;
  options.seed = 3;  // the same seed the planted runs start from
  const FuzzResult result = fuzz(options);
  EXPECT_FALSE(result.failure.has_value()) << result.failure->reason;
}

TEST(CheckSelfTest, WedgeDetectorStaysQuietOnHealthyRuns) {
  // A healthy threaded run with a very short wedge timeout must NOT be
  // reported as wedged — idle moments while work is executing elsewhere
  // are part of normal operation.
  CaseSpec spec;
  spec.engine = EngineKind::Threaded;
  spec.height = 10;
  spec.width = 10;
  spec.nthreads = 3;
  spec.wedge_ms = 50;
  spec.seed = 77;
  spec.normalize();
  for (int k = 0; k < 5; ++k) {
    const RunOutcome outcome = run_single(spec);
    EXPECT_TRUE(outcome.ok) << outcome.reason;
  }
}

}  // namespace
}  // namespace dpx10::check
