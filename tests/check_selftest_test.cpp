// dpx10check self-test (mutation-testing guard): plant a hidden bug in the
// engines — flip a bit of a published value, or silently drop an
// anti-dependency indegree decrement — and assert the harness (a) catches
// it within a small number of cases, (b) shrinks the failure to a <= 64
// vertex reproducer that still fails. If the harness ever loses its teeth,
// these tests rust shut before a real engine bug slips through.
#include <gtest/gtest.h>

#include "check/runner.h"

namespace dpx10::check {
namespace {

constexpr int kMaxCases = 50;
constexpr std::int64_t kMaxShrunkVertices = 64;

FuzzOptions planted(PlantedBug bug, EngineKind engine) {
  FuzzOptions options;
  options.cases = kMaxCases;
  options.seed = 3;
  options.engine = engine;
  options.bug = bug;
  options.shrink_budget = 60;
  options.wedge_ms = 300;  // wedging candidates cost this much wall time
  return options;
}

void expect_caught_and_shrunk(const FuzzResult& result) {
  ASSERT_TRUE(result.failure.has_value())
      << "planted bug survived " << result.cases_run << " cases";
  ASSERT_TRUE(result.shrunk.has_value());
  const Failure& shrunk = *result.shrunk;
  EXPECT_LE(shrunk.spec.vertex_count(), kMaxShrunkVertices);
  // The reproducer is self-contained: replaying the shrunk spec (which
  // carries the planted bug and its salt) must still fail.
  const RunOutcome replay = run_single(shrunk.spec);
  EXPECT_FALSE(replay.ok);
}

TEST(CheckSelfTest, MutatedValueIsCaughtOnTheSimEngine) {
  const FuzzResult result = fuzz(planted(PlantedBug::MutateValue, EngineKind::Sim));
  expect_caught_and_shrunk(result);
  EXPECT_NE(result.failure->reason.find("mismatch"), std::string::npos)
      << result.failure->reason;
}

TEST(CheckSelfTest, MutatedValueIsCaughtOnTheThreadedEngine) {
  const FuzzResult result =
      fuzz(planted(PlantedBug::MutateValue, EngineKind::Threaded));
  expect_caught_and_shrunk(result);
}

TEST(CheckSelfTest, DroppedDecrementDrainsTheSimEventQueue) {
  const FuzzResult result =
      fuzz(planted(PlantedBug::DropDecrement, EngineKind::Sim));
  expect_caught_and_shrunk(result);
  EXPECT_NE(result.failure->reason.find("drained"), std::string::npos)
      << result.failure->reason;
}

TEST(CheckSelfTest, DroppedDecrementWedgesTheThreadedEngine) {
  // The threaded engine cannot notice a lost decrement directly — the run
  // just stops making progress. The wedge (quiescence) detector must turn
  // that hang into a diagnosable InternalError within the spec's timeout.
  const FuzzResult result =
      fuzz(planted(PlantedBug::DropDecrement, EngineKind::Threaded));
  expect_caught_and_shrunk(result);
  EXPECT_NE(result.failure->reason.find("wedged"), std::string::npos)
      << result.failure->reason;
}

TEST(CheckSelfTest, NoPlantedBugMeansNoFailure) {
  FuzzOptions options;
  options.cases = kMaxCases;
  options.seed = 3;  // the same seed the planted runs start from
  const FuzzResult result = fuzz(options);
  EXPECT_FALSE(result.failure.has_value()) << result.failure->reason;
}

TEST(CheckSelfTest, WedgeDetectorStaysQuietOnHealthyRuns) {
  // A healthy threaded run with a very short wedge timeout must NOT be
  // reported as wedged — idle moments while work is executing elsewhere
  // are part of normal operation.
  CaseSpec spec;
  spec.engine = EngineKind::Threaded;
  spec.height = 10;
  spec.width = 10;
  spec.nthreads = 3;
  spec.wedge_ms = 50;
  spec.seed = 77;
  spec.normalize();
  for (int k = 0; k < 5; ++k) {
    const RunOutcome outcome = run_single(spec);
    EXPECT_TRUE(outcome.ok) << outcome.reason;
  }
}

}  // namespace
}  // namespace dpx10::check
