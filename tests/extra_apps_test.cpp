// Edit distance and banded alignment: the extension applications agree with
// their serial references on both engines.
#include <gtest/gtest.h>

#include "core/dpx10.h"
#include "dp/banded.h"
#include "dp/edit_distance.h"
#include "dp/inputs.h"
#include "dp/runners.h"

namespace dpx10 {
namespace {

TEST(EditDistanceSerial, KnownValues) {
  EXPECT_EQ(dp::serial_edit_distance("kitten", "sitting").at(6, 7), 3);
  EXPECT_EQ(dp::serial_edit_distance("flaw", "lawn").at(4, 4), 2);
  EXPECT_EQ(dp::serial_edit_distance("abc", "abc").at(3, 3), 0);
  EXPECT_EQ(dp::serial_edit_distance("abc", "xyz").at(3, 3), 3);
  // Deleting everything / inserting everything.
  EXPECT_EQ(dp::serial_edit_distance("abcd", "a").at(4, 1), 3);
}

template <typename App>
class CapturingApp final : public App {
 public:
  using App::App;
  std::unique_ptr<dp::Matrix<std::int32_t>> result;

  void app_finished(const DagView<std::int32_t>& dag) override {
    result = std::make_unique<dp::Matrix<std::int32_t>>(dag.domain().height(),
                                                        dag.domain().width());
    for (std::int32_t i = 0; i < dag.domain().height(); ++i) {
      for (std::int32_t j = dag.domain().row_begin(i); j < dag.domain().row_end(i); ++j) {
        result->at(i, j) = dag.at(i, j);
      }
    }
  }
};

class ExtraApps : public ::testing::TestWithParam<dp::EngineKind> {
 protected:
  template <typename T>
  void run(const Dag& dag, DPX10App<T>& app) {
    RuntimeOptions opts;
    opts.nplaces = 3;
    opts.nthreads = 2;
    if (GetParam() == dp::EngineKind::Threaded) {
      ThreadedEngine<T> engine(opts);
      engine.run(dag, app);
    } else {
      SimEngine<T> engine(opts);
      engine.run(dag, app);
    }
  }
};

TEST_P(ExtraApps, EditDistanceMatchesSerial) {
  const std::string a = dp::random_sequence(25, 41, "ACGTN");
  const std::string b = dp::random_sequence(31, 42, "ACGTN");
  CapturingApp<dp::EditDistanceApp> app(a, b);
  auto dag = patterns::make_pattern("left-top-diag", 26, 32);
  run(*dag, app);
  auto ref = dp::serial_edit_distance(a, b);
  for (std::int32_t i = 0; i <= 25; ++i) {
    for (std::int32_t j = 0; j <= 31; ++j) {
      ASSERT_EQ(app.result->at(i, j), ref.at(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

TEST_P(ExtraApps, EditDistancePrefinishedBoundaries) {
  const std::string a = dp::random_sequence(20, 43);
  const std::string b = dp::random_sequence(20, 44);
  CapturingApp<dp::EditDistancePrefinishedApp> app(a, b);
  auto dag = patterns::make_pattern("left-top-diag", 21, 21);
  run(*dag, app);
  auto ref = dp::serial_edit_distance(a, b);
  for (std::int32_t i = 0; i <= 20; ++i) {
    for (std::int32_t j = 0; j <= 20; ++j) {
      ASSERT_EQ(app.result->at(i, j), ref.at(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

TEST_P(ExtraApps, BandedSwMatchesSerial) {
  const std::string a = dp::random_sequence(30, 45);
  const std::string b = dp::random_sequence(30, 46);
  for (std::int32_t band : {1, 4, 10, 30}) {
    CapturingApp<dp::BandedSwApp> app(a, b);
    dp::BandedWavefrontDag dag(31, 31, band);
    run(dag, app);
    auto ref = dp::serial_banded_sw(a, b, band);
    for (std::int32_t i = 0; i <= 30; ++i) {
      for (std::int32_t j = dag.domain().row_begin(i); j < dag.domain().row_end(i); ++j) {
        ASSERT_EQ(app.result->at(i, j), ref.at(i, j))
            << "band " << band << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST_P(ExtraApps, BandedFaultTransparency) {
  const std::string a = dp::random_sequence(40, 47);
  const std::string b = dp::random_sequence(40, 48);
  dp::BandedWavefrontDag dag(41, 41, 6);

  CapturingApp<dp::BandedSwApp> clean(a, b);
  run(dag, clean);

  CapturingApp<dp::BandedSwApp> faulty(a, b);
  RuntimeOptions opts;
  opts.nplaces = 3;
  opts.nthreads = 2;
  opts.faults.push_back(FaultPlan{2, 0.5});
  if (GetParam() == dp::EngineKind::Threaded) {
    ThreadedEngine<std::int32_t> engine(opts);
    engine.run(dag, faulty);
  } else {
    SimEngine<std::int32_t> engine(opts);
    engine.run(dag, faulty);
  }
  for (std::int32_t i = 0; i <= 40; ++i) {
    for (std::int32_t j = dag.domain().row_begin(i); j < dag.domain().row_end(i); ++j) {
      ASSERT_EQ(faulty.result->at(i, j), clean.result->at(i, j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, ExtraApps,
                         ::testing::Values(dp::EngineKind::Threaded, dp::EngineKind::Sim),
                         [](const ::testing::TestParamInfo<dp::EngineKind>& info) {
                           return info.param == dp::EngineKind::Threaded ? "threaded"
                                                                         : "sim";
                         });

TEST(BandedDag, PatternInvariantsHold) {
  dp::BandedWavefrontDag dag(12, 12, 3);
  const DagDomain& domain = dag.domain();
  std::vector<VertexId> out;
  // Duality spot check over the whole band.
  for (std::int64_t idx = 0; idx < domain.size(); ++idx) {
    VertexId v = domain.delinearize(idx);
    out.clear();
    dag.dependencies(v, out);
    for (VertexId u : out) {
      ASSERT_TRUE(domain.contains(u));
      std::vector<VertexId> anti;
      dag.anti_dependencies(u, anti);
      ASSERT_NE(std::find(anti.begin(), anti.end(), v), anti.end());
    }
  }
}

}  // namespace
}  // namespace dpx10
