// Memory governor (src/mem, docs/MEMORY.md): anti-dependency-driven cell
// retirement, per-place accounting, and out-of-core spill.
//
// The headline properties:
//   * retirement changes only memory residency, never a DP cell: results
//     are identical across --retirement off/retire/spill on both engines,
//     and on the sim the governor is invisible on the virtual clock and
//     the wire;
//   * with the knob OFF the engines take the legacy code path verbatim —
//     pinned against the pre-governor golden counters;
//   * under retirement the peak resident set tracks the consumer window
//     (the wavefront), not the whole matrix;
//   * recovery composes with retirement: two mid-run deaths under either
//     recovery policy, in either retirement mode, still yield exactly the
//     fault-free results (spill restores retired values from the file,
//     retire resurrects them for recomputation).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "check/hooks.h"
#include "core/dpx10.h"
#include "dp/inputs.h"
#include "dp/lcs.h"
#include "dp/runners.h"
#include "mem/options.h"

namespace dpx10 {
namespace {

constexpr auto kFetchRequest = static_cast<std::size_t>(net::MessageKind::FetchRequest);
constexpr auto kIndegree = static_cast<std::size_t>(net::MessageKind::IndegreeControl);

/// LCS recording every compute() result as it happens. This is the oracle
/// that works under every retirement mode: retire frees the payloads, so a
/// post-run matrix walk (fault_test's ChecksumLcs) cannot be used here.
/// Recomputation after a fault rewrites the same deterministic value, so
/// the record is idempotent across recoveries, and concurrent writers
/// (threaded engine) touch distinct elements.
class RecordingLcs final : public dp::LcsApp {
 public:
  RecordingLcs(std::string x, std::string y)
      : LcsApp(std::move(x), std::move(y)),
        width_(static_cast<std::int64_t>(b().size()) + 1),
        cells_(static_cast<std::size_t>((a().size() + 1) * (b().size() + 1)), -1) {}

  std::int32_t compute(std::int32_t i, std::int32_t j,
                       std::span<const Vertex<std::int32_t>> deps) override {
    const std::int32_t v = dp::LcsApp::compute(i, j, deps);
    cells_[static_cast<std::size_t>(i * width_ + j)] = v;
    return v;
  }

  const std::vector<std::int32_t>& cells() const { return cells_; }

 private:
  std::int64_t width_;
  std::vector<std::int32_t> cells_;
};

std::vector<std::int32_t> run_recording(dp::EngineKind kind, const RuntimeOptions& opts,
                                        RunReport* report_out = nullptr,
                                        std::int32_t n = 36) {
  RecordingLcs app(dp::random_sequence(n - 1, 50), dp::random_sequence(n - 1, 51));
  auto dag = patterns::make_pattern("left-top-diag", n, n);
  RunReport report;
  if (kind == dp::EngineKind::Threaded) {
    ThreadedEngine<std::int32_t> engine(opts);
    report = engine.run(*dag, app);
  } else {
    SimEngine<std::int32_t> engine(opts);
    report = engine.run(*dag, app);
  }
  if (report_out) *report_out = report;
  return app.cells();
}

RuntimeOptions base_opts() {
  RuntimeOptions opts;
  opts.nplaces = 4;
  opts.nthreads = 2;
  // Large enough that nothing is ever capacity-evicted (36x36 = 1296
  // cells): eager eviction of retirees must not perturb cache occupancy,
  // or hit/miss divergence would mask a real result divergence below.
  opts.cache_capacity = 4096;
  return opts;
}

TEST(MemOptions, ParseRetirementModeRoundtrips) {
  mem::RetirementMode m = mem::RetirementMode::Retire;
  EXPECT_TRUE(mem::parse_retirement_mode("off", m));
  EXPECT_EQ(m, mem::RetirementMode::Off);
  EXPECT_TRUE(mem::parse_retirement_mode("retire", m));
  EXPECT_EQ(m, mem::RetirementMode::Retire);
  EXPECT_TRUE(mem::parse_retirement_mode("spill", m));
  EXPECT_EQ(m, mem::RetirementMode::Spill);
  EXPECT_FALSE(mem::parse_retirement_mode("bogus", m));
  for (mem::RetirementMode mode :
       {mem::RetirementMode::Off, mem::RetirementMode::Retire,
        mem::RetirementMode::Spill}) {
    mem::RetirementMode back = mem::RetirementMode::Off;
    ASSERT_TRUE(mem::parse_retirement_mode(
        std::string(mem::retirement_mode_name(mode)), back));
    EXPECT_EQ(back, mode);
  }
}

class MemModeIdentity : public ::testing::TestWithParam<dp::EngineKind> {};

TEST_P(MemModeIdentity, ResultsIdenticalAcrossRetirementModes) {
  const dp::EngineKind kind = GetParam();
  RunReport off_report;
  const std::vector<std::int32_t> expected =
      run_recording(kind, base_opts(), &off_report);

  // Off leaves every governor counter untouched.
  const PlaceStats off_t = off_report.totals();
  EXPECT_EQ(off_t.retired_cells, 0u);
  EXPECT_EQ(off_t.spilled_cells, 0u);
  EXPECT_EQ(off_t.spill_reads, 0u);
  EXPECT_EQ(off_t.live_cells_peak, 0u);
  EXPECT_EQ(off_t.live_bytes_peak, 0u);

  for (mem::RetirementMode mode :
       {mem::RetirementMode::Retire, mem::RetirementMode::Spill}) {
    RuntimeOptions opts = base_opts();
    opts.memory.retirement = mode;
    if (mode == mem::RetirementMode::Spill) {
      opts.memory.spill_dir = ::testing::TempDir();
    }
    RunReport report;
    const std::vector<std::int32_t> actual = run_recording(kind, opts, &report);
    EXPECT_EQ(actual, expected) << mem::retirement_mode_name(mode);

    const PlaceStats t = report.totals();
    EXPECT_GT(t.retired_cells, 0u) << mem::retirement_mode_name(mode);
    EXPECT_GT(t.live_cells_peak, 0u) << mem::retirement_mode_name(mode);
    EXPECT_LT(t.live_cells_peak, report.computed) << mem::retirement_mode_name(mode);
    if (mode == mem::RetirementMode::Spill) {
      // Every retiree is preserved in the file before release.
      EXPECT_EQ(t.spilled_cells, t.retired_cells);
    } else {
      EXPECT_EQ(t.spilled_cells, 0u);
      EXPECT_EQ(t.spill_reads, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothEngines, MemModeIdentity,
                         ::testing::Values(dp::EngineKind::Sim, dp::EngineKind::Threaded),
                         [](const ::testing::TestParamInfo<dp::EngineKind>& info) {
                           return info.param == dp::EngineKind::Threaded ? "threaded"
                                                                         : "sim";
                         });

// The governor must be invisible to the simulation itself: it charges no
// virtual time and sends no messages, so the sim's clock, event count and
// wire traffic are bit-identical across all three modes.
TEST(MemModes, GovernorStaysOffTheVirtualClockAndWire) {
  RunReport reports[3];
  int i = 0;
  for (mem::RetirementMode mode :
       {mem::RetirementMode::Off, mem::RetirementMode::Retire,
        mem::RetirementMode::Spill}) {
    RuntimeOptions opts = base_opts();
    opts.scheduling = Scheduling::MinCommunication;  // nontrivial traffic
    opts.memory.retirement = mode;
    if (mode == mem::RetirementMode::Spill) {
      opts.memory.spill_dir = ::testing::TempDir();
    }
    run_recording(dp::EngineKind::Sim, opts, &reports[i++]);
  }
  for (int m = 1; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(reports[m].elapsed_seconds, reports[0].elapsed_seconds) << m;
    EXPECT_EQ(reports[m].sim_events, reports[0].sim_events) << m;
    EXPECT_EQ(reports[m].traffic.total_messages_out(),
              reports[0].traffic.total_messages_out()) << m;
    EXPECT_EQ(reports[m].traffic.bytes_out, reports[0].traffic.bytes_out) << m;
    const PlaceStats t = reports[m].totals();
    const PlaceStats t0 = reports[0].totals();
    EXPECT_EQ(t.remote_fetches, t0.remote_fetches) << m;
    EXPECT_EQ(t.cache_hits, t0.cache_hits) << m;
  }
}

// Golden pin: with --retirement=off (the default) the engines must
// reproduce the exact pre-governor counters, byte for byte in virtual
// time — the same pins coalescing_test captured at commit 9425832. Any
// drift means the OFF path is no longer the old code.
TEST(MemGolden, OffPathMatchesPreGovernorCounters) {
  RuntimeOptions opts;
  opts.nplaces = 4;
  opts.nthreads = 2;
  opts.cache_capacity = 16;
  opts.scheduling = Scheduling::MinCommunication;
  opts.queue_shards = 1;
  opts.memory.retirement = mem::RetirementMode::Off;
  RunReport report;
  run_recording(dp::EngineKind::Sim, opts, &report);

  const PlaceStats t = report.totals();
  EXPECT_DOUBLE_EQ(report.elapsed_seconds, 0.0029169079999999989);
  EXPECT_EQ(report.sim_events, 4311u);
  EXPECT_EQ(report.traffic.bytes_out, 18012u);
  EXPECT_EQ(report.traffic.total_messages_out(), 429u);
  EXPECT_EQ(report.traffic.messages_out[kFetchRequest], 108u);
  EXPECT_EQ(report.traffic.messages_out[kIndegree], 213u);
  EXPECT_EQ(t.remote_fetches, 108u);
  EXPECT_EQ(t.cache_hits, 105u);
  EXPECT_EQ(t.retired_cells + t.spilled_cells + t.spill_reads, 0u);
  EXPECT_EQ(t.live_cells_peak + t.live_bytes_peak, 0u);
}

// Left-top-diag retires a cell one anti-diagonal after it finishes, so
// with local scheduling the resident set is the wavefront: every cell but
// the sink (the only one with no anti-dependencies) retires, and the
// summed per-place peaks sit far below the matrix the off path keeps
// resident to the end.
TEST(MemAccounting, RetirePeakTracksWavefrontNotMatrix) {
  RuntimeOptions opts = base_opts();
  opts.memory.retirement = mem::RetirementMode::Retire;
  RunReport report;
  run_recording(dp::EngineKind::Sim, opts, &report, 60);

  const PlaceStats t = report.totals();
  EXPECT_EQ(report.computed, 3600u);
  EXPECT_EQ(t.retired_cells, report.computed - 1);
  EXPECT_LT(t.live_cells_peak * 2, report.computed);
  EXPECT_GT(t.live_bytes_peak, 0u);
}

// --memory-limit: pressure spill retires cells that still have pending
// consumers; those consumers read the values back from the file, and the
// per-place resident set never exceeds the budget by more than the one
// cell accounted before the trim.
TEST(MemSpill, PressureLimitCapsResidentBytes) {
  RuntimeOptions opts = base_opts();
  opts.memory.retirement = mem::RetirementMode::Spill;
  // Tight enough (8 cells per place) that the trim runs ahead of the
  // consumer frontier: pending consumers must demand-read from the file.
  opts.memory.memory_limit_bytes = 32;
  opts.memory.spill_dir = ::testing::TempDir();
  RunReport report;
  const std::vector<std::int32_t> actual =
      run_recording(dp::EngineKind::Sim, opts, &report);
  const std::vector<std::int32_t> expected =
      run_recording(dp::EngineKind::Sim, base_opts());

  EXPECT_EQ(actual, expected);
  const PlaceStats t = report.totals();
  EXPECT_GT(t.spilled_cells, 0u);
  EXPECT_GT(t.spill_reads, 0u);
  // Summed per-place peaks: each place tops out at limit + one payload.
  EXPECT_LE(t.live_bytes_peak,
            static_cast<std::uint64_t>(opts.nplaces) *
                (opts.memory.memory_limit_bytes + sizeof(std::int32_t)));
}

/// LCS walking the finished matrix after the run — the post-run access
/// pattern retire mode forbids but spill mode must keep serving: DagView
/// routes Retired cells to the owner place's spill file, so both the
/// checksum walk and LcsApp::traceback still work out-of-core.
class WalkingLcs final : public dp::LcsApp {
 public:
  using LcsApp::LcsApp;
  std::uint64_t checksum = 0;
  std::string lcs;

  void app_finished(const DagView<std::int32_t>& dag) override {
    for (std::int32_t i = 0; i < dag.domain().height(); ++i) {
      for (std::int32_t j = 0; j < dag.domain().width(); ++j) {
        checksum = checksum * 1099511628211ULL +
                   static_cast<std::uint64_t>(dag.at(i, j) + 1);
      }
    }
    lcs = traceback(dag);
  }
};

TEST(MemSpill, TracebackReadsRetiredValuesFromTheFile) {
  std::uint64_t checksums[2];
  std::string traces[2];
  int i = 0;
  for (bool spill : {false, true}) {
    RuntimeOptions opts = base_opts();
    if (spill) {
      opts.memory.retirement = mem::RetirementMode::Spill;
      opts.memory.spill_dir = ::testing::TempDir();
    }
    WalkingLcs app(dp::random_sequence(35, 50), dp::random_sequence(35, 51));
    auto dag = patterns::make_pattern("left-top-diag", 36, 36);
    SimEngine<std::int32_t> engine(opts);
    RunReport report = engine.run(*dag, app);
    if (spill) EXPECT_GT(report.totals().retired_cells, 0u);
    checksums[i] = app.checksum;
    traces[i] = app.lcs;
    ++i;
  }
  EXPECT_EQ(checksums[1], checksums[0]);
  EXPECT_EQ(traces[1], traces[0]);
  EXPECT_FALSE(traces[0].empty());
}

// Recovery composition: two mid-run deaths, both recovery policies, both
// retirement modes, both engines — results stay exactly the fault-free
// ones. In spill mode recovery re-reads retired values from the surviving
// files; in retire mode they are gone, so consumers that must re-run get
// their dependencies resurrected and recomputed.

/// Deterministic two-epoch barrier for the threaded faulty runs below.
/// The oracle faults fire when the finished count crosses 30% and 60% of
/// the 1296-cell target. Between the first threshold being claimed and
/// the claiming worker actually pausing the world, the OTHER workers keep
/// finishing vertices — on an oversubscribed (1-core) host the claimant
/// can be descheduled long enough for them to overshoot past the SECOND
/// threshold, producing two concurrent coordinators and a batched or
/// nested recovery instead of two clean epochs. The barrier closes that
/// window: once the publish count passes a gate safely between the two
/// thresholds, publishing workers block until the first recovery
/// announces itself (the RecoveryEpoch begin sync event fires before the
/// pause gate engages, so the release cannot deadlock the pause), which
/// bounds the overshoot to the handful of in-flight workers.
///
/// The faulty runs force oracle detection (heartbeat.enabled = false):
/// the threshold-crossing worker coordinates recovery synchronously, so
/// the begin event — and with it the gate release — never depends on the
/// workers this barrier is blocking. Under the heartbeat detector the
/// dependency inverts and livelocks: blocked workers stop beating, the
/// monitor's starvation guard re-baselines forever (a wall-clock detector
/// must not evict places because the process was starved), and nothing is
/// declared until the timeout below lets the workers go.
class TwoEpochBarrier final : public check::ScheduleHook {
 public:
  void sync_point(check::SyncPoint point, std::int32_t) noexcept override {
    if (point != check::SyncPoint::Publish) return;
    if (publishes_.fetch_add(1, std::memory_order_acq_rel) + 1 < kGate) return;
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_for(lk, std::chrono::seconds(20),
                 [this] { return first_recovery_started_; });
  }

  void sync_event(check::SyncPoint point, std::int32_t, std::int64_t,
                  std::int64_t b) noexcept override {
    if (point != check::SyncPoint::RecoveryEpoch || b != 0) return;
    {
      const std::lock_guard<std::mutex> lk(mu_);
      first_recovery_started_ = true;
    }
    cv_.notify_all();
  }

 private:
  // Past the first threshold (~389 of 1296) with slack for recovery
  // replays, comfortably below the second (~778).
  static constexpr int kGate = 600;
  std::atomic<int> publishes_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool first_recovery_started_ = false;
};

using MemFaultParam =
    std::tuple<dp::EngineKind, RecoveryPolicy, mem::RetirementMode>;

class MemFaultMatrix : public ::testing::TestWithParam<MemFaultParam> {};

TEST_P(MemFaultMatrix, TwoDeathsStayTransparent) {
  auto [kind, policy, mode] = GetParam();
  RuntimeOptions clean = base_opts();
  clean.nplaces = 5;
  const std::vector<std::int32_t> expected = run_recording(kind, clean);

  RuntimeOptions faulty = clean;
  faulty.recovery = policy;
  faulty.memory.retirement = mode;
  if (mode == mem::RetirementMode::Spill) {
    faulty.memory.spill_dir = ::testing::TempDir();
  }
  faulty.faults.push_back(FaultPlan{2, 0.3});
  faulty.faults.push_back(FaultPlan{3, 0.6});
  // Oracle detection: recovery begins the instant each threshold is
  // crossed. Detection latency is covered elsewhere (heartbeat_test,
  // fault_test); this test pins what recovery does to retired/spilled
  // memory, and needs exactly two clean epochs to do it.
  faulty.heartbeat.enabled = false;
  // The sim is deterministic on its own; the threaded runs get the
  // sync-point barrier so the two thresholds can never race into one
  // batched/nested epoch (see TwoEpochBarrier).
  std::optional<TwoEpochBarrier> barrier;
  std::optional<check::HookGuard> guard;
  if (kind == dp::EngineKind::Threaded) {
    barrier.emplace();
    guard.emplace(&*barrier);
  }
  RunReport report;
  const std::vector<std::int32_t> actual = run_recording(kind, faulty, &report);
  guard.reset();

  EXPECT_EQ(actual, expected);
  // Exactly two clean epochs, in fault-plan order, on BOTH engines.
  ASSERT_EQ(report.recoveries.size(), 2u);
  EXPECT_EQ(report.recoveries[0].dead_places, (std::vector<std::int32_t>{2}));
  EXPECT_EQ(report.recoveries[1].dead_places, (std::vector<std::int32_t>{3}));
  for (const RecoveryRecord& rec : report.recoveries) {
    ASSERT_FALSE(rec.dead_places.empty());
    EXPECT_EQ(rec.dead_place, rec.dead_places.front());
  }
  // Deaths lose work, so some vertices were computed more than once.
  EXPECT_GE(report.computed, report.vertices);
  EXPECT_GT(report.totals().retired_cells, 0u);
  for (const RecoveryRecord& rec : report.recoveries) {
    if (mode == mem::RetirementMode::Retire) {
      // Nothing to restore from a file that was never written.
      EXPECT_EQ(rec.restored_spilled, 0u);
    } else {
      // Spill keeps every retired value readable: no resurrection needed.
      EXPECT_EQ(rec.resurrected, 0u);
    }
  }
}

std::string mem_fault_name(const ::testing::TestParamInfo<MemFaultParam>& info) {
  auto [kind, policy, mode] = info.param;
  std::string name = kind == dp::EngineKind::Threaded ? "threaded" : "sim";
  name += policy == RecoveryPolicy::PeriodicSnapshot ? "_snapshot" : "_rebuild";
  name += "_";
  name += mem::retirement_mode_name(mode);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MemFaultMatrix,
    ::testing::Combine(::testing::Values(dp::EngineKind::Sim, dp::EngineKind::Threaded),
                       ::testing::Values(RecoveryPolicy::Rebuild,
                                         RecoveryPolicy::PeriodicSnapshot),
                       ::testing::Values(mem::RetirementMode::Retire,
                                         mem::RetirementMode::Spill)),
    mem_fault_name);

}  // namespace
}  // namespace dpx10
